#!/usr/bin/env bash
# serve-smoke: the crash-resume acceptance for the emulation daemon.
#
#   1. Baseline: run a 64-cell sweep to completion on a fresh state
#      dir, then SIGTERM the daemon and require a clean exit 0.
#   2. Crash: run the same sweep on a second state dir and SIGKILL the
#      daemon mid-run, after K cells have reached the journal.
#   3. Resume: restart over the half-written journal, resubmit, and
#      assert (a) exactly K ledger hits — zero journaled cells were
#      recomputed — and (b) the merged cell output is byte-identical
#      to the uninterrupted baseline's.
#
# Everything the script asserts is deterministic: cells are
# content-hashed, cell events are emitted in grid order, and ledger
# hits replay stored bytes verbatim. Only *where* the kill lands is
# timing-dependent, and the assertions are written relative to the
# journal length the kill actually left behind.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/emulated" ./cmd/emulated

# 64 timing-only cells (2 policies x 2 rates x 16 seeds), a few
# seconds of work at 2 workers — wide enough to kill mid-run.
REQ='{
  "tenant": "smoke",
  "platform": {"name": "synthetic", "cores": 16, "ffts": 4},
  "policies": ["frfs", "eft"],
  "rates_jobs_per_ms": [4, 6],
  "frame_ms": 100,
  "seeds": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],
  "skip_execution": true
}'
CELLS=64

# start_daemon <statedir> <logfile>: sets DPID and ADDR.
start_daemon() {
    "$WORK/emulated" -addr 127.0.0.1:0 -state "$1" -workers 2 \
        -snapshot-every -1ms -tenant-rate 1000 -tenant-burst 1000 \
        >"$2" 2>&1 &
    DPID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*listening on \([0-9.:]*\),.*/\1/p' "$2" | head -n1)
        [ -n "$ADDR" ] && return 0
        sleep 0.1
    done
    echo "serve-smoke: daemon never became ready" >&2
    cat "$2" >&2
    exit 1
}

post_sweep() { # <outfile>
    curl -sS -N -X POST "http://$ADDR/v1/sweeps" \
        -H 'Content-Type: application/json' -d "$REQ" >"$1"
}

field() { # <file> <name>: last value of "name":N in the terminal event, 0 if absent
    grep -o "\"$2\":[0-9]*" "$1" | tail -n1 | cut -d: -f2 || echo 0
}

# --- 1. Baseline: uninterrupted run, then a clean SIGTERM drain. ---
start_daemon "$WORK/baseline" "$WORK/baseline.log"
post_sweep "$WORK/baseline.ndjson"
grep '"type":"cell"' "$WORK/baseline.ndjson" >"$WORK/baseline.cells"
if [ "$(wc -l <"$WORK/baseline.cells")" -ne "$CELLS" ]; then
    echo "serve-smoke: baseline produced $(wc -l <"$WORK/baseline.cells") cells, want $CELLS" >&2
    exit 1
fi
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "serve-smoke: SIGTERM drain did not exit 0" >&2
    cat "$WORK/baseline.log" >&2
    exit 1
fi
DPID=""

# --- 2. Crash: SIGKILL once a few cells are journaled. ---
STATE="$WORK/state"
start_daemon "$STATE" "$WORK/crash.log"
post_sweep "$WORK/partial.ndjson" &
CURL=$!
for _ in $(seq 1 300); do
    LINES=$(wc -l <"$STATE/ledger.ndjson" 2>/dev/null || echo 0)
    [ "$LINES" -ge 5 ] && break
    sleep 0.1
done
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
wait "$CURL" 2>/dev/null || true
DPID=""
# wc -l counts newline-terminated lines only, so a torn final append is
# excluded here exactly as the ledger's replay excludes it.
PRE=$(wc -l <"$STATE/ledger.ndjson")
if [ "$PRE" -lt 1 ] || [ "$PRE" -ge "$CELLS" ]; then
    echo "serve-smoke: kill landed outside mid-run ($PRE of $CELLS cells journaled)" >&2
    exit 1
fi
echo "serve-smoke: SIGKILL with $PRE/$CELLS cells journaled"

# --- 3. Resume: restart, resubmit, prove zero recompute + identical bytes. ---
start_daemon "$STATE" "$WORK/resume.log"
post_sweep "$WORK/resumed.ndjson"
HITS=$(field "$WORK/resumed.ndjson" ledger_hits)
COMPUTED=$(field "$WORK/resumed.ndjson" computed)
if [ "$HITS" -ne "$PRE" ]; then
    echo "serve-smoke: resume recomputed journaled cells (ledger_hits=$HITS, want $PRE)" >&2
    exit 1
fi
if [ "$COMPUTED" -ne $((CELLS - PRE)) ]; then
    echo "serve-smoke: resume computed $COMPUTED cells, want $((CELLS - PRE))" >&2
    exit 1
fi
grep '"type":"cell"' "$WORK/resumed.ndjson" >"$WORK/resumed.cells"
if ! cmp -s "$WORK/baseline.cells" "$WORK/resumed.cells"; then
    echo "serve-smoke: resumed merged output differs from the uninterrupted baseline:" >&2
    diff "$WORK/baseline.cells" "$WORK/resumed.cells" >&2 || true
    exit 1
fi
kill -TERM "$DPID"
wait "$DPID"
DPID=""

echo "serve-smoke: OK — drain exits 0; resume after SIGKILL replayed $PRE cells from the ledger, recomputed $COMPUTED, byte-identical output"
