// Package repro is a Go reproduction of "User-Space Emulation
// Framework for Domain-Specific SoC Design" (Mack et al., 2020): a
// pre-silicon DSSoC emulation framework with pluggable applications,
// schedulers and processing elements, plus the paper's automatic
// application conversion toolchain.
//
// The library lives under internal/ (see README.md for the package
// map and ARCHITECTURE.md for the emulation loop and the parallel
// sweep engine); this root package hosts the benchmark harness that
// regenerates every table and figure of the paper's evaluation
// (bench_test.go).
package repro
