# Repo convention: `make check` is the pre-commit gate — formatting,
# vet, build, the full test suite, repolint (the repo's determinism &
# ownership contracts as static-analysis passes), and the sweep engine
# under the race detector. Tier-1 (the driver's gate) is build + test.

GO ?= go

.PHONY: check fmt vet build test lint sharing-report race fuzz serve-smoke bench bench-check benchfull experiments

# Inside `make check`, a missing-dependency lint probe downgrades to a
# loud skip (exit 0) so the rest of the gate still runs; standalone
# `make lint` keeps the hard failure.
check: LINT_MISSING_DEPS_EXIT = 0
check: fmt vet build test lint race serve-smoke fuzz

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# repolint: the eight contract analyzers (detorder, novtime, singleuse,
# metafreeze, scratchown, vtflow, sharedmut, singlewriter) over the
# whole module, _test.go files included — the last three are
# interprocedural, propagating facts bottom-up over the import graph.
# The linter is deliberately stdlib-only — golang.org/x/tools
# cannot be fetched in the offline/hermetic builds this repo targets,
# so internal/lint/analysis mirrors the go/analysis surface instead of
# pinning x/tools in go.mod (see ARCHITECTURE.md). The build probe
# below exists for the day a module dependency creeps back in: if the
# linter can't build because modules are unresolvable offline, fail
# fast with an explicit message (standalone default, exit 1) or skip
# loudly (LINT_MISSING_DEPS_EXIT=0, what `make check` sets) instead of
# dying mid-gate on a cryptic resolution error.
LINT_MISSING_DEPS_EXIT ?= 1
lint:
	@err=$$($(GO) build -o /dev/null ./cmd/repolint 2>&1); status=$$?; \
	if [ $$status -ne 0 ]; then \
		if echo "$$err" | grep -qE 'no required module provides|missing go.sum entry|cannot find module|cannot query module'; then \
			echo "WARNING: repolint's dependencies cannot be resolved in this (offline?) build:" >&2; \
			echo "$$err" >&2; \
			if [ "$(LINT_MISSING_DEPS_EXIT)" = "0" ]; then \
				echo "WARNING: skipping repolint — the determinism/ownership contracts were NOT checked." >&2; \
			else \
				echo "repolint is part of the gate; fix the module graph or run 'make check' for a loud skip." >&2; \
			fi; \
			exit $(LINT_MISSING_DEPS_EXIT); \
		fi; \
		echo "$$err" >&2; exit $$status; \
	fi; \
	$(GO) run ./cmd/repolint ./...

# Regenerate the PDES sharing baseline (the sharedmut analyzer's
# inventory of package-level mutable state across the simulation
# surface). TestSharingReportFresh pins the committed file to the code,
# so rerun this after adding/removing/re-classifying a package-level
# variable.
sharing-report:
	$(GO) run ./cmd/repolint -sharing-report > PDES_SHARING.md

# The sweep engine is the only deliberately concurrent code in the
# repo; run it (and the core scratch plumbing it exercises) under the
# race detector. The sweep package's own cells are timing-only, so
# also race-run the experiments goldens, whose cells execute kernels
# functionally in parallel, and the scheduler package itself — its
# pooled buffers and assignment recycling are shared across sweep
# workers, so the policy parity suites run raced too. Since the
# dynamic-platform layer, platevent Schedules are shared read-only
# across grid cells (the churn golden and the corpus event grid race
# that sharing), so platevent itself races too, and the core package
# contributes its zero-event dynamic differential — the full core
# suite under -race is minutes, so the filter mirrors the
# ParallelGolden pattern. workload and stats ride along since the
# repolint PR: replay sources feed RunStream from sweep workers and
# sinks accumulate inside concurrently-executing cells, so both
# packages' suites run raced in full (each is seconds, not minutes).
# The serving layer joins since the daemon PR: admission waiters, the
# snapshot ticker, drain, and the grid-order emitter are all
# goroutine-heavy by design.
race:
	$(GO) test -race ./internal/sweep/... ./internal/sched/... ./internal/platevent/... ./internal/workload/... ./internal/stats/... ./internal/serve/...
	$(GO) test -race -run ParallelGolden ./internal/experiments
	$(GO) test -race -run Dynamic ./internal/core

# serve-smoke is the daemon's crash-resume acceptance, run against the
# real binary: SIGKILL mid-sweep, restart over the half-written
# journal, assert zero journaled cells recomputed and byte-identical
# merged output, plus a clean SIGTERM drain (exit 0). The in-process
# halves of the same contracts live in internal/serve's tests; this
# target proves them across a process boundary.
serve-smoke:
	bash scripts/serve_smoke.sh

# Fuzz smoke: each native fuzz target gets a short engine run on top
# of the committed seed corpus (which plain `go test` already replays).
# One target per invocation — go's fuzz engine requires it. 10s each
# keeps the gate fast while still mutating past the seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run NONE -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run NONE -fuzz '^FuzzConvert$$' -fuzztime $(FUZZTIME) ./internal/outliner
	$(GO) test -run NONE -fuzz '^FuzzProgramLowering$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run NONE -fuzz '^FuzzEventSchedule$$' -fuzztime $(FUZZTIME) ./internal/core

# `make bench` records the perf trajectory: the emulator throughput
# benches (tasks/sec, allocs/op — including the streaming Online-sink
# path) and the sweep scaling benches, parsed into BENCH_<PR>.json by
# cmd/benchreport. Bump BENCH_N when a PR moves the numbers. The
# allocation regression gate lives in `test`: TestRunSteadyStateAllocs
# plus its sink/stream companions (constant allocs with an Online sink).
# BENCH_TRIALS > 1 repeats the suite as separate processes (benchreport
# -exec); benchreport folds the repeated lines into mean/stdev records,
# and bench-check then treats over-threshold drops whose noise
# intervals overlap as warnings rather than failures. Each trial
# process additionally contributes a trial_resources record — wall /
# user / system time, peak RSS, and summed stop-the-world GC pauses
# under GODEBUG=gctrace=1 — so BENCH files carry memory-pressure
# context next to the throughput numbers.
BENCH_N ?= 10
BENCH_TRIALS ?= 3

# The recorded regex includes the scheduler path ablation since PR 5:
# BENCH_5.json pins the indexed-vs-slice gap on the big.LITTLE and
# 512-PE heterogeneous pools alongside the throughput headlines.
BENCH_REGEX = EmulatorThroughput|SweepWorkers|SchedulerPathAblation

# The report lands in a temp file first so neither a failed benchmark
# trial nor a parse error can truncate the recorded
# BENCH_$(BENCH_N).json (`>` truncates before the command runs).
# benchreport -exec runs the go test child itself — one process per
# trial — and -raw preserves the combined raw benchmark text alongside
# the JSON for debugging a failed run.
bench:
	$(GO) run ./cmd/benchreport -exec -trials $(BENCH_TRIALS) \
		-raw BENCH_$(BENCH_N).out \
		$(GO) test -run NONE -bench '$(BENCH_REGEX)' \
		-benchmem -benchtime 10x . > BENCH_$(BENCH_N).json.tmp
	@cat BENCH_$(BENCH_N).out
	@mv BENCH_$(BENCH_N).json.tmp BENCH_$(BENCH_N).json
	@rm BENCH_$(BENCH_N).out

# `make bench-check` is the perf-regression gate: it reruns the bench
# suite and diffs it against the last recorded BENCH_$(BENCH_PREV).json
# via benchreport -prev, failing on a >10% tasks/sec drop — the fresh
# numbers gate against the recorded BENCH_5.json trajectory point
# (BENCH_10 re-recorded the same suite with trial_resources). The
# fresh measurement is discarded (only the delta table on stderr
# survives); run `make bench` to record a new trajectory point.
BENCH_PREV ?= 5
bench-check:
	@status=0; $(GO) run ./cmd/benchreport -exec -trials $(BENCH_TRIALS) \
		-prev BENCH_$(BENCH_PREV).json \
		$(GO) test -run NONE -bench '$(BENCH_REGEX)' \
		-benchmem -benchtime 10x . > /dev/null || status=$$?; \
	exit $$status

# The full benchmark harness (every table/figure of the paper) at one
# iteration each.
benchfull:
	$(GO) test -bench . -benchtime 1x

experiments:
	$(GO) run ./cmd/experiments -exp all
