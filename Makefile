# Repo convention: `make check` is the pre-commit gate — formatting,
# vet, build, the full test suite, and the sweep engine under the race
# detector. Tier-1 (the driver's gate) is build + test.

GO ?= go

.PHONY: check fmt vet build test race bench experiments

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine is the only deliberately concurrent code in the
# repo; run it (and the core scratch plumbing it exercises) under the
# race detector. The sweep package's own cells are timing-only, so
# also race-run the experiments goldens, whose cells execute kernels
# functionally in parallel.
race:
	$(GO) test -race ./internal/sweep/...
	$(GO) test -race -run ParallelGolden ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x

experiments:
	$(GO) run ./cmd/experiments -exp all
