// Quickstart: parse one application from its JSON DAG representation,
// emulate it in validation mode on a small DSSoC configuration, and
// print the collected statistics — the framework's minimal end-to-end
// flow.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	// Applications are archetypes: a JSON-serialisable DAG plus
	// variables with real initial data. Round-trip through JSON to
	// show the on-disk format is the source of truth.
	params := apps.DefaultRangeParams()
	spec := apps.RangeDetection(params)
	data, err := spec.MarshalIndentJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range_detection JSON DAG: %d bytes, %d task nodes, %d variables\n",
		len(data), spec.TaskCount(), len(spec.Variables))

	// Emulated hardware: 2 ARM cores + 1 FFT accelerator drawn from
	// the ZCU102 resource pool.
	cfg, err := platform.ZCU102(2, 1)
	if err != nil {
		log.Fatal(err)
	}

	e, err := core.New(core.Options{
		Config:   cfg,
		Policy:   sched.FRFS{},
		Registry: apps.Registry(),
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Validation mode: everything injected at t=0, emulation finishes
	// when all applications complete.
	report, err := e.Run([]core.Arrival{{Spec: spec, At: 0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())

	// The kernels really executed: the pipeline located the synthetic
	// target embedded in the rx variable.
	inst := e.Instances()[0]
	if err := apps.CheckRangeDetection(inst.Mem, params); err != nil {
		log.Fatal(err)
	}
	lag := inst.Mem.MustLookup("lag").Int32()
	fmt.Printf("functional check passed: detected target at lag %d (expected %d)\n",
		lag, params.TargetLag)
}
