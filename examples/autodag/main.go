// Automatic application conversion end to end: take an unlabeled,
// monolithic C program, convert it to a DAG application with the
// tracing toolchain, recognise its naive transforms, and emulate both
// the as-outlined and the optimised versions — the paper's Case Study
// 4 as a library walkthrough.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/outliner"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	const n, lag = 512, 73

	// 1. The input: monolithic range detection, no labels, no
	// directives — just loops.
	src := outliner.MonolithicRangeDetection(n, lag)
	fmt.Printf("input: %d bytes of unlabeled C (n=%d, hidden target lag %d)\n", len(src), n, lag)

	// 2. Front end (the Clang stage).
	mod, err := minic.Compile(src, "rd_monolithic")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Trace + kernel detection + outlining (TraceAtlas +
	// CodeExtractor stages).
	res, err := outliner.Convert(mod, outliner.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic trace: %d IR instructions\n", res.TotalDynInstrs)
	for _, k := range res.Kernels {
		tag := "non-kernel"
		if k.Hot {
			tag = "kernel"
		}
		fmt.Printf("  %-9s %-10s dyn=%-10d %v\n", k.Name, tag, k.DynInstrs, k.Hints)
	}

	// 4. DAG generation with hash-based recognition.
	reg := kernels.NewRegistry()
	spec, recs, err := outliner.GenerateSpec(res, outliner.SpecOptions{
		AppName:   "rd_auto",
		Registry:  reg,
		Recognize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		node := spec.DAG[r.Node]
		cpu, _ := node.PlatformFor("cpu")
		accel, _ := node.PlatformFor("fft")
		fmt.Printf("recognised %s as %s: cpu runfunc -> %s (%.0fus), accel -> %.0fus\n",
			r.Node, r.Kind, cpu.RunFunc,
			float64(cpu.CostNS)/1e3, float64(accel.CostNS)/1e3)
	}

	// 5. Emulate the optimised application on the paper's 3C+1F target.
	cfg, err := platform.ZCU102(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: reg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report, err := e.Run([]core.Arrival{{Spec: spec, At: 0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())

	peak := int(e.Instances()[0].Mem.MustLookup("peak_index").Float64s()[0])
	fmt.Printf("converted application found the target at lag %d (expected %d): %v\n",
		peak, lag, peak == lag)
}
