// Scheduler study: compare every built-in policy — including the
// reservation-queue extension the paper lists as future work — on the
// mixed SDR workload, showing how scheduling overhead and PE-binding
// decisions shape the makespan (paper Case Study 2, extended). The
// per-policy emulations run concurrently on the sweep engine; the
// merged results print in policy order regardless of worker count.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	specs := apps.Specs()
	row := workload.TableII[1] // 2.28 jobs/ms
	trace, err := workload.TableIITrace(specs, row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: Table II @ %.2f jobs/ms (%d instances) on 3C+2F\n\n",
		row.RateJobsPerMS, row.Total())

	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		log.Fatal(err)
	}

	// One sweep cell per policy, each with its own policy value
	// (stateful policies must not be shared between workers).
	names := sched.Names()
	var cells []sweep.Cell[*stats.Report]
	for _, name := range names {
		policy, err := sched.New(name, 5)
		if err != nil {
			log.Fatal(err)
		}
		cells = append(cells, sweep.EmulationCell(name, sweep.Emulation{
			Config:        cfg,
			Policy:        policy,
			Registry:      apps.Registry(),
			Arrivals:      trace,
			Seed:          5,
			SkipExecution: true, // timing-only: the numeric results are studied elsewhere
		}))
	}
	reports, err := sweep.Run(cells, sweep.Options{Label: "schedstudy", Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %16s %14s %12s\n",
		"policy", "exec time", "avg overhead", "invocations", "maxReady")
	for i, name := range names {
		report := reports[i]
		fmt.Printf("%-10s %12v %13.2fus %14d %12d\n",
			name, report.Makespan,
			report.Sched.AvgOverheadNS()/1e3,
			report.Sched.Invocations,
			report.Sched.MaxReadyLen)
	}

	fmt.Println(`
reading the table:
  - frfs:      the paper's winner — near-constant microsecond overhead.
  - met/eft:   smarter placement, but the per-completion scheduling cost
               compounds under load (the paper's Figure 10 effect).
  - frfs-rq:   reservation queues (future work in the paper): PEs pull
               their next task locally, so far fewer scheduler
               invocations are needed.
  - eft-power: energy-aware placement at a small makespan premium.`)
}
