// Radar design-space exploration: sweep hypothetical DSSoC
// configurations for a radar workload (pulse Doppler + range
// detection) and report execution time, utilisation and energy per
// configuration — the pre-silicon what-if study the framework exists
// for (paper Case Study 1).
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	specs := apps.Specs()
	arrivals, err := workload.Validation(specs, map[string]int{
		apps.NamePulseDoppler:   1,
		apps.NameRangeDetection: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radar workload: 1x pulse doppler (770 tasks) + 4x range detection (6 tasks each)\n\n")
	fmt.Printf("%-8s %12s %10s %10s %s\n", "config", "makespan", "energy", "cpuUtil", "accelUtil")

	type result struct {
		name     string
		makespan float64
	}
	var best result
	for _, cf := range [][2]int{{1, 0}, {1, 2}, {2, 0}, {2, 1}, {2, 2}, {3, 0}, {3, 2}} {
		cfg, err := platform.ZCU102(cf[0], cf[1])
		if err != nil {
			log.Fatal(err)
		}
		e, err := core.New(core.Options{
			Config:   cfg,
			Policy:   sched.FRFS{},
			Registry: apps.Registry(),
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := e.Run(arrivals)
		if err != nil {
			log.Fatal(err)
		}

		var cpuUtil, accelUtil float64
		var cpus, accels int
		for _, pe := range report.PEs {
			u := report.Utilization(pe.PEID)
			if pe.Label[0] == 'A' { // A53 cores
				cpuUtil += u
				cpus++
			} else {
				accelUtil += u
				accels++
			}
		}
		if cpus > 0 {
			cpuUtil /= float64(cpus)
		}
		if accels > 0 {
			accelUtil /= float64(accels)
		}
		fmt.Printf("%-8s %12v %9.3fJ %9.1f%% %9.1f%%\n",
			cfg.Name, report.Makespan, report.TotalEnergyJ(), cpuUtil*100, accelUtil*100)

		// Verify the radar pipelines functionally on every config.
		for _, inst := range e.Instances() {
			var err error
			switch inst.Spec.AppName {
			case apps.NamePulseDoppler:
				err = apps.CheckPulseDoppler(inst.Mem, apps.DefaultDopplerParams())
			case apps.NameRangeDetection:
				err = apps.CheckRangeDetection(inst.Mem, apps.DefaultRangeParams())
			}
			if err != nil {
				log.Fatalf("%s: %v", cfg.Name, err)
			}
		}
		if best.name == "" || report.Makespan.Milliseconds() < best.makespan {
			best = result{cfg.Name, report.Makespan.Milliseconds()}
		}
	}
	fmt.Printf("\nall configurations produced functionally correct radar output\n")
	fmt.Printf("fastest configuration: %s (%.2f ms)\n", best.name, best.makespan)
	fmt.Println("(as in the paper, area-conscious designs may prefer a smaller config within a few percent)")
}
