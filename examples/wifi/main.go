// WiFi TX/RX under load: drive the emulator in performance mode with a
// dynamically injected stream of WiFi transmit and receive frames on a
// big.LITTLE platform, comparing scheduling policies including the
// power-aware extension — and verify every decoded frame bit-exactly.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	specs := apps.Specs()
	// 40 TX + 40 RX frames injected periodically over 10 ms.
	trace, err := workload.Performance(specs, workload.PerfSpec{
		Frame: 10 * vtime.Millisecond,
		Injections: []workload.AppInjection{
			{App: apps.NameWiFiTX, Period: workload.PeriodForCount(10*vtime.Millisecond, 40), Prob: 1},
			{App: apps.NameWiFiRX, Period: workload.PeriodForCount(10*vtime.Millisecond, 40), Prob: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WiFi workload: %d frames over 10 ms on Odroid XU3 (2 big + 2 LITTLE)\n\n", len(trace))

	cfg, err := platform.OdroidXU3(2, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s %14s %12s\n", "policy", "makespan", "energy", "meanRespTX", "meanRespRX")
	for _, name := range []string{"frfs", "eft", "eft-power"} {
		policy, err := sched.New(name, 3)
		if err != nil {
			log.Fatal(err)
		}
		e, err := core.New(core.Options{
			Config:   cfg,
			Policy:   policy,
			Registry: apps.Registry(),
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := e.Run(trace)
		if err != nil {
			log.Fatal(err)
		}
		resp := report.AppResponse()
		fmt.Printf("%-10s %12v %11.4fJ %14v %12v\n",
			name, report.Makespan, report.TotalEnergyJ(),
			resp[apps.NameWiFiTX], resp[apps.NameWiFiRX])

		// Every RX instance must have synchronised, decoded and
		// CRC-verified its frame; every TX must have produced a valid
		// frame.
		wp := apps.DefaultWiFiParams()
		decoded := 0
		for _, inst := range e.Instances() {
			switch inst.Spec.AppName {
			case apps.NameWiFiRX:
				if err := apps.CheckWiFiRX(inst.Mem, wp); err != nil {
					log.Fatalf("%s: RX frame %d corrupt: %v", name, inst.Index, err)
				}
				decoded++
			case apps.NameWiFiTX:
				if err := apps.CheckWiFiTX(inst.Mem, wp); err != nil {
					log.Fatalf("%s: TX frame %d invalid: %v", name, inst.Index, err)
				}
			}
		}
		fmt.Printf("           all %d received frames decoded bit-exactly through the AWGN channel\n", decoded)
	}
	fmt.Println("\nnote: eft-power trades a longer makespan for lower energy by steering")
	fmt.Println("work to LITTLE cores when the finish-time penalty is within its slack.")
}
