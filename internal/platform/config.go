package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Config is one emulated DSSoC hardware configuration: the PEs drawn
// from a platform's resource pool, the overlay (management) processor
// running the application handler and workload manager, and the
// platform's DMA characteristics.
type Config struct {
	// Name is the paper-style configuration label, e.g. "2C+1F" or
	// "3BIG+2LTL".
	Name string
	// Platform identifies the COTS board ("zcu102", "odroid-xu3").
	Platform string
	// PEs is the instantiated resource pool subset.
	PEs []*PE
	// Overlay is the PE type of the management core; its SchedOpNS
	// converts scheduler operation counts into charged overhead.
	Overlay *PEType
	// DMA models DDR<->accelerator transfers on this board.
	DMA DMAModel
}

// ZCU102 board limits: a quad-core A53 (one core reserved as the
// overlay processor) plus two FFT accelerators in the fabric.
const (
	ZCU102PoolCores = 3
	ZCU102PoolFFTs  = 2
)

// zcu102DMA reflects the udmabuf + AXI-DMA path of Figure 6: a fixed
// driver setup plus a per-byte streaming cost. Calibrated so FFTs up
// to 256 points (the paper's accelerator workloads are 128-point)
// complete faster on an A53 core than on the accelerator once both
// transfer directions are charged — the load-bearing observation of
// Figure 9 — while large transforms (Case Study 4's 1024-point DFT
// replacement) favour the accelerator over the naive CPU loop yet
// remain slightly slower than the optimised FFT library, matching the
// paper's 94x vs 102x speedups.
var zcu102DMA = DMAModel{SetupNS: 35_000, NSPerByte: 2.3, CtxSwitchNS: 12_000}

// ZCU102 builds a DSSoC configuration with nCores A53 cores and nFFT
// FFT accelerators, reproducing the resource-manager thread placement
// of Section II-D: CPU PEs get their own cores; accelerator manager
// threads fill unused pool cores first and then distribute round-robin
// across all pool cores, sharing where necessary.
func ZCU102(nCores, nFFT int) (*Config, error) {
	if nCores < 0 || nCores > ZCU102PoolCores {
		return nil, fmt.Errorf("platform: ZCU102 supports 0..%d cores, got %d", ZCU102PoolCores, nCores)
	}
	if nFFT < 0 || nFFT > ZCU102PoolFFTs {
		return nil, fmt.Errorf("platform: ZCU102 supports 0..%d FFT accelerators, got %d", ZCU102PoolFFTs, nFFT)
	}
	if nCores+nFFT == 0 {
		return nil, fmt.Errorf("platform: configuration needs at least one PE")
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dC+%dF", nCores, nFFT),
		Platform: "zcu102",
		Overlay:  A53,
		DMA:      zcu102DMA,
	}
	id := 0
	for i := 0; i < nCores; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A53, HostCore: i, Share: 1})
		id++
	}
	hosts := managerPlacement(nCores, ZCU102PoolCores, nFFT)
	occupancy := map[int]int{}
	for _, h := range hosts {
		occupancy[h]++
	}
	for i := 0; i < nFFT; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: FFTAccel, HostCore: hosts[i], Share: occupancy[hosts[i]]})
		id++
	}
	return cfg, nil
}

// managerPlacement assigns accelerator manager threads to pool cores:
// unused cores first (one each), then round-robin over the whole pool.
// Returns the host core index per accelerator.
func managerPlacement(usedCores, poolCores, nAccel int) []int {
	hosts := make([]int, nAccel)
	unused := make([]int, 0, poolCores-usedCores)
	for c := usedCores; c < poolCores; c++ {
		unused = append(unused, c)
	}
	for i := 0; i < nAccel; i++ {
		if i < len(unused) {
			hosts[i] = unused[i]
			continue
		}
		// Overflow: distribute evenly over all pool cores, continuing
		// from the unused ones so they absorb load first.
		k := i - len(unused)
		if len(unused) > 0 {
			hosts[i] = unused[k%len(unused)]
		} else {
			hosts[i] = k % poolCores
		}
	}
	return hosts
}

// Odroid XU3 board limits: four A15 big cores and four A7 LITTLE cores
// with one LITTLE core reserved as the overlay processor (Section
// III-B).
const (
	OdroidPoolBig    = 4
	OdroidPoolLittle = 3
)

// OdroidXU3 builds a big.LITTLE configuration. There are no
// accelerators, so the DMA model is unused; the distinguishing feature
// is the slow LITTLE overlay core, which inflates scheduling overhead
// as PE counts grow (Figure 11's 4B+3L inversion).
func OdroidXU3(nBig, nLittle int) (*Config, error) {
	if nBig < 0 || nBig > OdroidPoolBig {
		return nil, fmt.Errorf("platform: Odroid XU3 supports 0..%d big cores, got %d", OdroidPoolBig, nBig)
	}
	if nLittle < 0 || nLittle > OdroidPoolLittle {
		return nil, fmt.Errorf("platform: Odroid XU3 supports 0..%d LITTLE cores, got %d", OdroidPoolLittle, nLittle)
	}
	if nBig+nLittle == 0 {
		return nil, fmt.Errorf("platform: configuration needs at least one PE")
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dBIG+%dLTL", nBig, nLittle),
		Platform: "odroid-xu3",
		Overlay:  A7Little,
	}
	id := 0
	for i := 0; i < nBig; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A15Big, HostCore: i, Share: 1})
		id++
	}
	for i := 0; i < nLittle; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A7Little, HostCore: OdroidPoolBig + i, Share: 1})
		id++
	}
	return cfg, nil
}

// CountByClass reports how many PEs of each class the config has.
func (c *Config) CountByClass() (cpus, accels int) {
	for _, pe := range c.PEs {
		if pe.Type.Class == CPU {
			cpus++
		} else {
			accels++
		}
	}
	return
}

// SupportsKey reports whether any PE in the configuration matches the
// given platform key; used to validate that a workload can run.
func (c *Config) SupportsKey(key string) bool {
	for _, pe := range c.PEs {
		if pe.Type.Key == key {
			return true
		}
	}
	return false
}

// configJSON is the on-disk form consumed by cmd/emulate: the paper's
// "input configuration file" naming the number and types of PEs.
type configJSON struct {
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	FFTs     int    `json:"ffts"`
	Big      int    `json:"big"`
	Little   int    `json:"little"`
}

// LoadConfigFile reads a hardware configuration JSON of the form
//
//	{"platform": "zcu102", "cores": 2, "ffts": 1}
//	{"platform": "odroid-xu3", "big": 3, "little": 2}
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: reading config: %w", err)
	}
	return ParseConfigJSON(data)
}

// ParseConfigJSON parses the configuration document format of
// LoadConfigFile.
func ParseConfigJSON(data []byte) (*Config, error) {
	var cj configJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("platform: decoding config: %w", err)
	}
	switch strings.ToLower(cj.Platform) {
	case "zcu102":
		return ZCU102(cj.Cores, cj.FFTs)
	case "odroid-xu3", "odroid", "xu3":
		return OdroidXU3(cj.Big, cj.Little)
	default:
		return nil, fmt.Errorf("platform: unknown platform %q", cj.Platform)
	}
}
