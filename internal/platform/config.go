package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Config is one emulated DSSoC hardware configuration: the PEs drawn
// from a platform's resource pool, the overlay (management) processor
// running the application handler and workload manager, and the
// platform's DMA characteristics.
type Config struct {
	// Name is the paper-style configuration label, e.g. "2C+1F" or
	// "3BIG+2LTL".
	Name string
	// Platform identifies the COTS board ("zcu102", "odroid-xu3") or
	// the synthetic many-PE testbed ("synthetic").
	Platform string
	// PEs is the instantiated resource pool subset.
	PEs []*PE
	// Overlay is the PE type of the management core; its SchedOpNS
	// converts scheduler operation counts into charged overhead.
	Overlay *PEType
	// DMA models DDR<->accelerator transfers on this board.
	DMA DMAModel

	// typeKeys/typeIdx intern the distinct PE type keys of this
	// configuration into dense indices (in first-appearance order over
	// PEs). The emulation core compiles application platform choices
	// against these indices so the scheduling hot path compares
	// integers instead of strings. Filled by finalize(); configurations
	// built by the package constructors always carry them, and
	// TypeIndex falls back to a linear scan for hand-built Configs.
	typeKeys []string
	typeIdx  map[string]int

	// classes/classOf intern the configuration's cost classes: the
	// distinct (type key, speed factor, power) signatures, in
	// first-appearance order over PEs. A type key may span several
	// classes — the Odroid's big and LITTLE cores both match "cpu" but
	// differ in speed and power — and cost is uniform *within* a class
	// by construction, which is what lets the indexed scheduler's
	// cost-based fast paths (EFT family) decompose per class on any
	// configuration. Filled by finalize(); hand-built Configs recompute
	// through computeClasses.
	classes []ClassSig
	classOf []int32
}

// ClassSig is the cost signature of one interned PE class: everything
// the schedulers read per PE beyond its identity. Two PEs belong to the
// same class exactly when their signatures are equal, so any per-class
// quantity (scaled cost, energy) is exact for every member.
type ClassSig struct {
	// TypeIdx is the dense type index (TypeIndex of the class's key).
	TypeIdx int
	// Speed is the members' SpeedFactor.
	Speed float64
	// Power is the members' PowerW.
	Power float64
}

// computeClasses derives the configuration's cost classes in
// first-appearance order over PEs, with the per-PE class index. Like
// computeTypeKeys this is THE definition of the class interning order:
// sched.NewView re-derives the identical partition from its PE
// interface (same PE order, same signature), so compiled class masks
// and the view's class tables can never disagree.
func (c *Config) computeClasses() ([]ClassSig, []int32) {
	tidx := c.typeIdx
	if tidx == nil {
		_, tidx = c.computeTypeKeys()
	}
	classes := make([]ClassSig, 0, 2)
	of := make([]int32, len(c.PEs))
	for i, pe := range c.PEs {
		sig := ClassSig{TypeIdx: tidx[pe.Type.Key], Speed: pe.Type.SpeedFactor, Power: pe.Type.PowerW}
		ci := -1
		for j, s := range classes {
			if s == sig {
				ci = j
				break
			}
		}
		if ci < 0 {
			ci = len(classes)
			classes = append(classes, sig)
		}
		of[i] = int32(ci)
	}
	return classes, of
}

// NumClasses reports how many distinct cost classes the configuration
// interns (always >= NumTypes).
func (c *Config) NumClasses() int {
	if c.classOf != nil {
		return len(c.classes)
	}
	classes, _ := c.computeClasses()
	return len(classes)
}

// Classes lists the interned class signatures in index order. The
// returned slice must not be mutated.
func (c *Config) Classes() []ClassSig {
	if c.classOf != nil {
		return c.classes
	}
	classes, _ := c.computeClasses()
	return classes
}

// ClassOf returns the class index of the PE at the given position in
// PEs.
func (c *Config) ClassOf(peIdx int) int {
	if c.classOf != nil {
		return int(c.classOf[peIdx])
	}
	_, of := c.computeClasses()
	return int(of[peIdx])
}

// computeTypeKeys derives the configuration's distinct PE type keys in
// first-appearance order over PEs, with the reverse index. This is THE
// definition of the interning order: finalize caches its result, and
// every fallback for hand-built Configs recomputes through it, so the
// compiled choice TypeIDs and the resource handlers' type indices can
// never disagree.
func (c *Config) computeTypeKeys() ([]string, map[string]int) {
	keys := make([]string, 0, 2)
	idx := make(map[string]int, 2)
	for _, pe := range c.PEs {
		if _, ok := idx[pe.Type.Key]; !ok {
			idx[pe.Type.Key] = len(keys)
			keys = append(keys, pe.Type.Key)
		}
	}
	return keys, idx
}

// finalize interns the configuration's PE type keys and caches the PE
// labels. Constructors call it once the PE list is complete; after
// that the Config must be treated as immutable (configs are shared
// read-only across sweep workers).
func (c *Config) finalize() {
	c.typeKeys, c.typeIdx = c.computeTypeKeys()
	c.classes, c.classOf = c.computeClasses()
	for _, pe := range c.PEs {
		pe.label = pe.Label()
	}
}

// TypeIndex returns the dense index of a PE type key within this
// configuration, or -1 when no PE of that type is present. Indices are
// assigned in first-appearance order over PEs and are stable for the
// lifetime of the Config.
func (c *Config) TypeIndex(key string) int {
	idx := c.typeIdx
	if idx == nil {
		// Hand-built Config without finalize(): derive without caching
		// so concurrent readers stay safe.
		_, idx = c.computeTypeKeys()
	}
	if i, ok := idx[key]; ok {
		return i
	}
	return -1
}

// NumTypes reports how many distinct PE type keys the configuration
// uses.
func (c *Config) NumTypes() int {
	if c.typeIdx != nil {
		return len(c.typeKeys)
	}
	keys, _ := c.computeTypeKeys()
	return len(keys)
}

// TypeKeys lists the interned type keys in index order. The returned
// slice must not be mutated.
func (c *Config) TypeKeys() []string {
	if c.typeIdx != nil {
		return c.typeKeys
	}
	keys, _ := c.computeTypeKeys()
	return keys
}

// ZCU102 board limits: a quad-core A53 (one core reserved as the
// overlay processor) plus two FFT accelerators in the fabric.
const (
	ZCU102PoolCores = 3
	ZCU102PoolFFTs  = 2
)

// zcu102DMA reflects the udmabuf + AXI-DMA path of Figure 6: a fixed
// driver setup plus a per-byte streaming cost. Calibrated so FFTs up
// to 256 points (the paper's accelerator workloads are 128-point)
// complete faster on an A53 core than on the accelerator once both
// transfer directions are charged — the load-bearing observation of
// Figure 9 — while large transforms (Case Study 4's 1024-point DFT
// replacement) favour the accelerator over the naive CPU loop yet
// remain slightly slower than the optimised FFT library, matching the
// paper's 94x vs 102x speedups.
var zcu102DMA = DMAModel{SetupNS: 35_000, NSPerByte: 2.3, CtxSwitchNS: 12_000}

// ZCU102 builds a DSSoC configuration with nCores A53 cores and nFFT
// FFT accelerators, reproducing the resource-manager thread placement
// of Section II-D: CPU PEs get their own cores; accelerator manager
// threads fill unused pool cores first and then distribute round-robin
// across all pool cores, sharing where necessary.
func ZCU102(nCores, nFFT int) (*Config, error) {
	if nCores < 0 || nCores > ZCU102PoolCores {
		return nil, fmt.Errorf("platform: ZCU102 supports 0..%d cores, got %d", ZCU102PoolCores, nCores)
	}
	if nFFT < 0 || nFFT > ZCU102PoolFFTs {
		return nil, fmt.Errorf("platform: ZCU102 supports 0..%d FFT accelerators, got %d", ZCU102PoolFFTs, nFFT)
	}
	if nCores+nFFT == 0 {
		return nil, fmt.Errorf("platform: configuration needs at least one PE")
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dC+%dF", nCores, nFFT),
		Platform: "zcu102",
		Overlay:  A53,
		DMA:      zcu102DMA,
	}
	id := 0
	for i := 0; i < nCores; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A53, HostCore: i, Share: 1})
		id++
	}
	hosts := managerPlacement(nCores, ZCU102PoolCores, nFFT)
	occupancy := map[int]int{}
	for _, h := range hosts {
		occupancy[h]++
	}
	for i := 0; i < nFFT; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: FFTAccel, HostCore: hosts[i], Share: occupancy[hosts[i]]})
		id++
	}
	cfg.finalize()
	return cfg, nil
}

// SyntheticMaxPEs bounds the synthetic testbed's resource pool per PE
// class. It exists to catch typos, not hardware limits.
const SyntheticMaxPEs = 1024

// Synthetic builds a many-PE DSSoC configuration that no COTS board
// provides: nCores A53-class cores plus nFFT FFT accelerators, with
// accelerator manager threads placed round-robin across the cores. As
// everywhere else, Share counts co-located *manager* threads (the
// contention Figure 9's 2C+2F anomaly measures): with nFFT <= nCores
// each manager runs alone on its host core (Share=1, like the
// ZCU102's 3C+1F placement), and managers start contending once
// accelerators outnumber cores. Synthetic exists to exercise
// scheduling and emulator scalability well beyond the ZCU102's 3C+2F
// — the 32- and 64-PE sweeps of the scale study — while reusing the
// ZCU102's calibrated timing model so results stay comparable.
func Synthetic(nCores, nFFT int) (*Config, error) {
	if nCores < 1 || nCores > SyntheticMaxPEs {
		return nil, fmt.Errorf("platform: synthetic supports 1..%d cores, got %d", SyntheticMaxPEs, nCores)
	}
	if nFFT < 0 || nFFT > SyntheticMaxPEs {
		return nil, fmt.Errorf("platform: synthetic supports 0..%d FFT accelerators, got %d", SyntheticMaxPEs, nFFT)
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dC+%dF-syn", nCores, nFFT),
		Platform: "synthetic",
		Overlay:  A53,
		DMA:      zcu102DMA,
	}
	id := 0
	for i := 0; i < nCores; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A53, HostCore: i, Share: 1})
		id++
	}
	hosts := managerPlacement(nCores, nCores, nFFT)
	occupancy := map[int]int{}
	for _, h := range hosts {
		occupancy[h]++
	}
	for i := 0; i < nFFT; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: FFTAccel, HostCore: hosts[i], Share: occupancy[hosts[i]]})
		id++
	}
	cfg.finalize()
	return cfg, nil
}

// SyntheticHet builds a heterogeneous many-PE configuration no COTS
// board provides: nBig A15-class performance cores and nLittle A7-class
// efficiency cores (both matching the "cpu" platform key, like the
// Odroid's big.LITTLE pool) plus nFFT accelerators, with manager
// threads placed round-robin across all CPU cores. It exists to
// exercise the cost-class interning at scale — "cpu" spans two cost
// classes with different speed and power, so the EFT-family indexed
// paths must handle a split type on pools far past the Odroid's seven
// PEs. The overlay is an A53 (a slow LITTLE overlay at 512 PEs would
// drown every run in monitor overhead); the timing model is the
// ZCU102's, keeping results comparable with Synthetic.
func SyntheticHet(nBig, nLittle, nFFT int) (*Config, error) {
	if nBig < 0 || nBig > SyntheticMaxPEs {
		return nil, fmt.Errorf("platform: synthetic-het supports 0..%d big cores, got %d", SyntheticMaxPEs, nBig)
	}
	if nLittle < 0 || nLittle > SyntheticMaxPEs {
		return nil, fmt.Errorf("platform: synthetic-het supports 0..%d LITTLE cores, got %d", SyntheticMaxPEs, nLittle)
	}
	if nFFT < 0 || nFFT > SyntheticMaxPEs {
		return nil, fmt.Errorf("platform: synthetic-het supports 0..%d FFT accelerators, got %d", SyntheticMaxPEs, nFFT)
	}
	nCores := nBig + nLittle
	if nCores == 0 {
		if nFFT == 0 {
			return nil, fmt.Errorf("platform: configuration needs at least one PE")
		}
		return nil, fmt.Errorf("platform: synthetic-het needs at least one CPU core to host %d accelerator manager threads", nFFT)
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dB+%dL+%dF-het", nBig, nLittle, nFFT),
		Platform: "synthetic-het",
		Overlay:  A53,
		DMA:      zcu102DMA,
	}
	id := 0
	for i := 0; i < nBig; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A15Big, HostCore: id, Share: 1})
		id++
	}
	for i := 0; i < nLittle; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A7Little, HostCore: id, Share: 1})
		id++
	}
	hosts := managerPlacement(nCores, nCores, nFFT)
	occupancy := map[int]int{}
	for _, h := range hosts {
		occupancy[h]++
	}
	for i := 0; i < nFFT; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: FFTAccel, HostCore: hosts[i], Share: occupancy[hosts[i]]})
		id++
	}
	cfg.finalize()
	return cfg, nil
}

// managerPlacement assigns accelerator manager threads to pool cores:
// unused cores first (one each), then round-robin over the whole pool.
// Returns the host core index per accelerator.
func managerPlacement(usedCores, poolCores, nAccel int) []int {
	hosts := make([]int, nAccel)
	unused := make([]int, 0, poolCores-usedCores)
	for c := usedCores; c < poolCores; c++ {
		unused = append(unused, c)
	}
	for i := 0; i < nAccel; i++ {
		if i < len(unused) {
			hosts[i] = unused[i]
			continue
		}
		// Overflow: distribute evenly over all pool cores, continuing
		// from the unused ones so they absorb load first.
		k := i - len(unused)
		if len(unused) > 0 {
			hosts[i] = unused[k%len(unused)]
		} else {
			hosts[i] = k % poolCores
		}
	}
	return hosts
}

// Odroid XU3 board limits: four A15 big cores and four A7 LITTLE cores
// with one LITTLE core reserved as the overlay processor (Section
// III-B).
const (
	OdroidPoolBig    = 4
	OdroidPoolLittle = 3
)

// OdroidXU3 builds a big.LITTLE configuration. There are no
// accelerators, so the DMA model is unused; the distinguishing feature
// is the slow LITTLE overlay core, which inflates scheduling overhead
// as PE counts grow (Figure 11's 4B+3L inversion).
func OdroidXU3(nBig, nLittle int) (*Config, error) {
	if nBig < 0 || nBig > OdroidPoolBig {
		return nil, fmt.Errorf("platform: Odroid XU3 supports 0..%d big cores, got %d", OdroidPoolBig, nBig)
	}
	if nLittle < 0 || nLittle > OdroidPoolLittle {
		return nil, fmt.Errorf("platform: Odroid XU3 supports 0..%d LITTLE cores, got %d", OdroidPoolLittle, nLittle)
	}
	if nBig+nLittle == 0 {
		return nil, fmt.Errorf("platform: configuration needs at least one PE")
	}
	cfg := &Config{
		Name:     fmt.Sprintf("%dBIG+%dLTL", nBig, nLittle),
		Platform: "odroid-xu3",
		Overlay:  A7Little,
	}
	id := 0
	for i := 0; i < nBig; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A15Big, HostCore: i, Share: 1})
		id++
	}
	for i := 0; i < nLittle; i++ {
		cfg.PEs = append(cfg.PEs, &PE{ID: id, Type: A7Little, HostCore: OdroidPoolBig + i, Share: 1})
		id++
	}
	cfg.finalize()
	return cfg, nil
}

// CountByClass reports how many PEs of each class the config has.
func (c *Config) CountByClass() (cpus, accels int) {
	for _, pe := range c.PEs {
		if pe.Type.Class == CPU {
			cpus++
		} else {
			accels++
		}
	}
	return
}

// SupportsKey reports whether any PE in the configuration matches the
// given platform key; used to validate that a workload can run.
func (c *Config) SupportsKey(key string) bool {
	for _, pe := range c.PEs {
		if pe.Type.Key == key {
			return true
		}
	}
	return false
}

// configJSON is the on-disk form consumed by cmd/emulate: the paper's
// "input configuration file" naming the number and types of PEs.
type configJSON struct {
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	FFTs     int    `json:"ffts"`
	Big      int    `json:"big"`
	Little   int    `json:"little"`
}

// LoadConfigFile reads a hardware configuration JSON of the form
//
//	{"platform": "zcu102", "cores": 2, "ffts": 1}
//	{"platform": "odroid-xu3", "big": 3, "little": 2}
//	{"platform": "synthetic", "cores": 32, "ffts": 8}
//	{"platform": "synthetic-het", "big": 256, "little": 192, "ffts": 64}
//
// Degenerate documents (zero PEs, counts beyond the board's pool,
// unknown platform names) fail here with a descriptive error rather
// than surfacing later as a stuck or crashing emulation.
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: reading config: %w", err)
	}
	return ParseConfigJSON(data)
}

// ParseConfigJSON parses the configuration document format of
// LoadConfigFile.
func ParseConfigJSON(data []byte) (*Config, error) {
	var cj configJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("platform: decoding config: %w", err)
	}
	switch strings.ToLower(cj.Platform) {
	case "zcu102":
		return ZCU102(cj.Cores, cj.FFTs)
	case "odroid-xu3", "odroid", "xu3":
		return OdroidXU3(cj.Big, cj.Little)
	case "synthetic", "syn":
		return Synthetic(cj.Cores, cj.FFTs)
	case "synthetic-het", "syn-het", "het":
		return SyntheticHet(cj.Big, cj.Little, cj.FFTs)
	default:
		return nil, fmt.Errorf("platform: unknown platform %q", cj.Platform)
	}
}
