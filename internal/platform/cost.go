package platform

import "math"

// Calibrated kernel timing model. All baseline costs are for the
// ZCU102's Cortex-A53 reference core executing the unoptimised C
// kernels; other PE types scale by their SpeedFactor. The constants
// are calibration parameters, not microarchitectural truths: they are
// chosen so the paper's Table I application times and the qualitative
// relations of Figures 9-11 and Case Study 4 are reproduced (see
// ARCHITECTURE.md for the model, README.md for paper-vs-measured
// comparison via the bench harness).
const (
	// cFFT scales the n*log2(n) term of the iterative radix-2 FFT.
	cFFT = 28.0
	// cDFT scales the n^2 term of the naive for-loop DFT that Case
	// Study 4's toolchain detects (12 ns per complex MAC on the
	// in-order A53).
	cDFT = 12.0
	// cFFTOpt scales the n*log2(n) term of the hand-optimised FFT
	// library (the FFTW-for-ARM substitution of Case Study 4)...
	cFFTOpt = 5.0
	// ...and fftOptSetupNS is its per-call planning/allocation
	// overhead, which the paper explicitly includes in the measured
	// 102x speedup.
	fftOptSetupNS = 70_000.0
	// Accelerator FFT butterfly cost (pipelined IP, faster than the
	// CPU per point, but behind the DMA wall).
	cFFTAccel = 3.0

	cVec       = 6.0   // elementwise complex multiply, per point
	cConj      = 3.0   // conjugate, per point
	cMax       = 4.0   // magnitude compare, per point
	cLFM       = 18.0  // sin/cos chirp synthesis, per point
	cTranspose = 7.0   // strided copy, per point
	cShift     = 4.0   // fft-shift swap, per point
	cScramble  = 25.0  // LFSR step, per bit
	cConvEnc   = 60.0  // two parity windows, per input bit
	cViterbi   = 160.0 // add-compare-select, per state-step
	cInterlv   = 12.0  // per bit
	cQPSK      = 30.0  // per symbol
	cPilot     = 10.0  // per symbol
	cCRC       = 20.0  // per bit
	cMatchF    = 160.0 // complex MAC, per lag*reflen product point
	cExtract   = 4.0   // copy, per symbol
	cAWGN      = 80.0  // two Gaussian draws, per symbol
	cDefault   = 10.0  // fallback for unknown kernels, per point

	viterbiStates = 64
)

// Kernel name constants used by the cost model and the application
// builders. The names mirror the C kernel families of the paper's
// released applications.
const (
	KFFT          = "fft"
	KIFFT         = "ifft"
	KDFTNaive     = "dft_naive"
	KIDFTNaive    = "idft_naive"
	KFFTOpt       = "fft_opt" // optimised library FFT (Case Study 4)
	KVecMulConj   = "vec_mul_conj"
	KConj         = "conj"
	KMaxAbs       = "max_abs"
	KLFM          = "lfm_chirp"
	KTranspose    = "transpose"
	KFFTShift     = "fft_shift"
	KScramble     = "scramble"
	KConvEncode   = "conv_encode"
	KViterbi      = "viterbi"
	KInterleave   = "interleave"
	KDeinterleave = "deinterleave"
	KQPSKMod      = "qpsk_mod"
	KQPSKDemod    = "qpsk_demod"
	KPilotInsert  = "pilot_insert"
	KPilotRemove  = "pilot_remove"
	KCRC          = "crc32"
	KMatchFilter  = "match_filter"
	KExtract      = "payload_extract"
	KAWGN         = "awgn"
)

func log2(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// CPUBaseNS returns the baseline A53 execution time of one kernel
// invocation over n points (samples, bits, or MAC-product points
// depending on the kernel; the application builders document which).
func CPUBaseNS(kernel string, n int) int64 {
	if n <= 0 {
		return 0
	}
	fn := float64(n)
	var ns float64
	switch kernel {
	case KFFT, KIFFT:
		ns = cFFT * fn * log2(n)
	case KDFTNaive, KIDFTNaive:
		ns = cDFT * fn * fn
	case KFFTOpt:
		ns = cFFTOpt*fn*log2(n) + fftOptSetupNS
	case KVecMulConj:
		ns = cVec * fn
	case KConj:
		ns = cConj * fn
	case KMaxAbs:
		ns = cMax * fn
	case KLFM:
		ns = cLFM * fn
	case KTranspose:
		ns = cTranspose * fn
	case KFFTShift:
		ns = cShift * fn
	case KScramble:
		ns = cScramble * fn
	case KConvEncode:
		ns = cConvEnc * fn
	case KViterbi:
		ns = cViterbi * fn * viterbiStates
	case KInterleave, KDeinterleave:
		ns = cInterlv * fn
	case KQPSKMod, KQPSKDemod:
		ns = cQPSK * fn
	case KPilotInsert, KPilotRemove:
		ns = cPilot * fn
	case KCRC:
		ns = cCRC * fn
	case KMatchFilter:
		ns = cMatchF * fn
	case KExtract:
		ns = cExtract * fn
	case KAWGN:
		ns = cAWGN * fn
	default:
		ns = cDefault * fn
	}
	return int64(ns)
}

// CPUCostNS scales the baseline cost to a specific CPU PE type.
func CPUCostNS(kernel string, n int, t *PEType) int64 {
	return int64(float64(CPUBaseNS(kernel, n)) * t.SpeedFactor)
}

// AccelComputeNS returns the accelerator-side compute time of kernels
// the FFT IP supports, excluding DMA (the resource manager charges
// transfers separately, Figure 4). The boolean is false for kernels
// the accelerator cannot execute.
func AccelComputeNS(kernel string, n int) (int64, bool) {
	switch kernel {
	case KFFT, KIFFT, KDFTNaive, KIDFTNaive, KFFTOpt:
		// The IP always computes the fast transform regardless of how
		// the original software spelled it.
		return int64(cFFTAccel * float64(n) * log2(n)), true
	default:
		return 0, false
	}
}

// AccelCostNS is the full nominal accelerator-side cost of a node:
// compute plus both DMA directions with a dedicated manager core
// (share=1). This is the figure the application builders write into
// the JSON cost annotations for "fft" platform entries, and what EFT
// uses when estimating finish times on accelerators.
func AccelCostNS(kernel string, n int, transferBytes int, dma DMAModel) (int64, bool) {
	comp, ok := AccelComputeNS(kernel, n)
	if !ok {
		return 0, false
	}
	xfer := dma.TransferNS(transferBytes, 1) * 2 // DDR->BRAM and back
	return comp + int64(xfer), true
}
