package platform

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZCU102Shapes(t *testing.T) {
	cfg, err := ZCU102(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "2C+1F" {
		t.Fatalf("Name = %q", cfg.Name)
	}
	cpus, accels := cfg.CountByClass()
	if cpus != 2 || accels != 1 {
		t.Fatalf("counts = %d cpus, %d accels", cpus, accels)
	}
	if !cfg.SupportsKey("cpu") || !cfg.SupportsKey("fft") || cfg.SupportsKey("gpu") {
		t.Fatalf("SupportsKey wrong")
	}
	if cfg.Overlay != A53 {
		t.Fatalf("ZCU102 overlay must be an A53")
	}
	// IDs are unique and sequential.
	for i, pe := range cfg.PEs {
		if pe.ID != i {
			t.Fatalf("PE %d has ID %d", i, pe.ID)
		}
	}
}

func TestZCU102Limits(t *testing.T) {
	for _, bad := range [][2]int{{-1, 0}, {4, 0}, {0, 3}, {0, -1}, {0, 0}} {
		if _, err := ZCU102(bad[0], bad[1]); err == nil {
			t.Errorf("ZCU102(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if _, err := ZCU102(3, 2); err != nil {
		t.Fatalf("full pool rejected: %v", err)
	}
}

// TestManagerPlacement checks the Section II-D policy across the
// paper's Figure 9 configurations. The key case: 2C+2F leaves one
// unused pool core, so both FFT manager threads share it (Share=2),
// which is why that configuration gains nothing over 2C+1F.
func TestManagerPlacement(t *testing.T) {
	cases := []struct {
		cores, ffts int
		wantShares  []int
	}{
		{1, 1, []int{1}},
		{1, 2, []int{1, 1}}, // two unused cores, one manager each
		{2, 1, []int{1}},
		{2, 2, []int{2, 2}}, // one unused core, both managers on it
		{3, 1, []int{1}},    // no unused core, manager alone on core 0
		{3, 2, []int{1, 1}}, // managers on cores 0 and 1, one each
	}
	for _, c := range cases {
		cfg, err := ZCU102(c.cores, c.ffts)
		if err != nil {
			t.Fatal(err)
		}
		var shares []int
		for _, pe := range cfg.PEs {
			if pe.Type.Class == Accelerator {
				shares = append(shares, pe.Share)
			}
		}
		if len(shares) != len(c.wantShares) {
			t.Fatalf("%s: %d accel PEs", cfg.Name, len(shares))
		}
		for i := range shares {
			if shares[i] != c.wantShares[i] {
				t.Errorf("%s: accel %d share = %d, want %d", cfg.Name, i, shares[i], c.wantShares[i])
			}
		}
	}
}

func TestCPUPEsOwnTheirCores(t *testing.T) {
	cfg, _ := ZCU102(3, 2)
	seen := map[int]bool{}
	for _, pe := range cfg.PEs {
		if pe.Type.Class == CPU {
			if seen[pe.HostCore] {
				t.Fatalf("two CPU PEs on core %d", pe.HostCore)
			}
			seen[pe.HostCore] = true
			if pe.Share != 1 {
				t.Fatalf("CPU PE share = %d", pe.Share)
			}
		}
	}
}

func TestOdroidConfig(t *testing.T) {
	cfg, err := OdroidXU3(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "3BIG+2LTL" {
		t.Fatalf("Name = %q", cfg.Name)
	}
	if cfg.Overlay != A7Little {
		t.Fatalf("Odroid overlay must be a LITTLE core")
	}
	cpus, accels := cfg.CountByClass()
	if cpus != 5 || accels != 0 {
		t.Fatalf("counts = %d/%d", cpus, accels)
	}
	for _, bad := range [][2]int{{5, 0}, {0, 4}, {-1, 1}, {1, -1}, {0, 0}} {
		if _, err := OdroidXU3(bad[0], bad[1]); err == nil {
			t.Errorf("OdroidXU3(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestSyntheticConfig(t *testing.T) {
	cfg, err := Synthetic(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "32C+8F-syn" || cfg.Platform != "synthetic" {
		t.Fatalf("name/platform = %q/%q", cfg.Name, cfg.Platform)
	}
	cpus, accels := cfg.CountByClass()
	if cpus != 32 || accels != 8 {
		t.Fatalf("counts = %d cpus, %d accels", cpus, accels)
	}
	for i, pe := range cfg.PEs {
		if pe.ID != i {
			t.Fatalf("PE %d has ID %d", i, pe.ID)
		}
	}
	// Every core hosts an application PE, so accelerator managers
	// always share their host core with round-robin placement.
	for _, pe := range cfg.PEs {
		if pe.Type.Class == Accelerator && pe.HostCore >= 32 {
			t.Fatalf("accel manager on nonexistent core %d", pe.HostCore)
		}
	}
	for _, bad := range [][2]int{{0, 0}, {0, 4}, {-1, 1}, {1, -1}, {SyntheticMaxPEs + 1, 0}, {1, SyntheticMaxPEs + 1}} {
		if _, err := Synthetic(bad[0], bad[1]); err == nil {
			t.Errorf("Synthetic(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if _, err := Synthetic(64, 0); err != nil {
		t.Fatalf("accelerator-free synthetic rejected: %v", err)
	}
}

func TestTypeInterning(t *testing.T) {
	cfg, _ := ZCU102(3, 2)
	if got := cfg.NumTypes(); got != 2 {
		t.Fatalf("NumTypes = %d", got)
	}
	if cfg.TypeIndex("cpu") != 0 || cfg.TypeIndex("fft") != 1 || cfg.TypeIndex("gpu") != -1 {
		t.Fatalf("TypeIndex wrong: cpu=%d fft=%d gpu=%d",
			cfg.TypeIndex("cpu"), cfg.TypeIndex("fft"), cfg.TypeIndex("gpu"))
	}
	if keys := cfg.TypeKeys(); len(keys) != 2 || keys[0] != "cpu" || keys[1] != "fft" {
		t.Fatalf("TypeKeys = %v", keys)
	}
	// Odroid has two CPU type names but both use the "cpu" key: one
	// interned type.
	od, _ := OdroidXU3(2, 2)
	if od.NumTypes() != 1 || od.TypeIndex("cpu") != 0 {
		t.Fatalf("odroid interning wrong: %d types, cpu=%d", od.NumTypes(), od.TypeIndex("cpu"))
	}
	// A hand-built Config (no finalize) must agree via the scan
	// fallback.
	hand := &Config{PEs: []*PE{
		{ID: 0, Type: FFTAccel, Share: 1},
		{ID: 1, Type: A53, HostCore: 0, Share: 1},
	}}
	if hand.TypeIndex("fft") != 0 || hand.TypeIndex("cpu") != 1 || hand.TypeIndex("x") != -1 {
		t.Fatalf("fallback TypeIndex wrong: fft=%d cpu=%d",
			hand.TypeIndex("fft"), hand.TypeIndex("cpu"))
	}
	if hand.NumTypes() != 2 || len(hand.TypeKeys()) != 2 {
		t.Fatalf("fallback NumTypes/TypeKeys wrong")
	}
}

func TestParseConfigJSON(t *testing.T) {
	cfg, err := ParseConfigJSON([]byte(`{"platform":"zcu102","cores":2,"ffts":2}`))
	if err != nil || cfg.Name != "2C+2F" {
		t.Fatalf("zcu102 parse: %v %v", cfg, err)
	}
	cfg, err = ParseConfigJSON([]byte(`{"platform":"odroid-xu3","big":4,"little":1}`))
	if err != nil || cfg.Name != "4BIG+1LTL" {
		t.Fatalf("odroid parse: %v %v", cfg, err)
	}
	cfg, err = ParseConfigJSON([]byte(`{"platform":"synthetic","cores":32,"ffts":8}`))
	if err != nil || cfg.Name != "32C+8F-syn" {
		t.Fatalf("synthetic parse: %v %v", cfg, err)
	}
	if _, err := ParseConfigJSON([]byte(`{"platform":"riscv"}`)); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := ParseConfigJSON([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := LoadConfigFile("/nonexistent/config.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPELabels(t *testing.T) {
	cfg, _ := ZCU102(1, 1)
	if got := cfg.PEs[0].Label(); !strings.HasPrefix(got, "A53") {
		t.Fatalf("label %q", got)
	}
	if got := cfg.PEs[1].Label(); !strings.HasPrefix(got, "FFT") {
		t.Fatalf("label %q", got)
	}
}

func TestClassString(t *testing.T) {
	if CPU.String() != "cpu-core" || Accelerator.String() != "accelerator" {
		t.Fatal("Class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class string empty")
	}
}

// --- timing model ---------------------------------------------------------

// TestFFT128FasterOnCPU pins the paper's central Figure 9 observation:
// "an FFT of this size [128] has a faster turn-around time on a CPU
// core compared to the FFT accelerator" because of DMA overhead.
func TestFFT128FasterOnCPU(t *testing.T) {
	cfg, _ := ZCU102(1, 1)
	cpu := CPUCostNS(KFFT, 128, A53)
	accel, ok := AccelCostNS(KFFT, 128, 2*128*8, cfg.DMA) // in+out buffers counted via transferBytes
	if !ok {
		t.Fatal("accelerator does not support fft")
	}
	if cpu >= accel {
		t.Fatalf("FFT-128: CPU %dns must beat accel %dns", cpu, accel)
	}
}

// TestLargeFFTFasterOnAccel pins the crossover: at large sizes the
// accelerator wins despite DMA (Case Study 4 uses n=1024).
func TestLargeFFTFasterOnAccel(t *testing.T) {
	cfg, _ := ZCU102(1, 1)
	cpu := CPUCostNS(KFFT, 4096, A53)
	accel, _ := AccelCostNS(KFFT, 4096, 2*4096*8, cfg.DMA)
	if accel >= cpu {
		t.Fatalf("FFT-4096: accel %dns must beat CPU %dns", accel, cpu)
	}
}

func TestBigFasterThanLittle(t *testing.T) {
	for _, k := range []string{KFFT, KViterbi, KScramble} {
		big := CPUCostNS(k, 256, A15Big)
		little := CPUCostNS(k, 256, A7Little)
		a53 := CPUCostNS(k, 256, A53)
		if !(big < a53 && a53 < little) {
			t.Fatalf("%s: want big(%d) < A53(%d) < LITTLE(%d)", k, big, a53, little)
		}
	}
}

func TestCostMonotonicInN(t *testing.T) {
	kernels := []string{KFFT, KDFTNaive, KVecMulConj, KViterbi, KMatchFilter, "unknown_kernel"}
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw%4096)+1, int(bRaw%4096)+1
		if a > b {
			a, b = b, a
		}
		for _, k := range kernels {
			if CPUBaseNS(k, a) > CPUBaseNS(k, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostEdgeCases(t *testing.T) {
	if CPUBaseNS(KFFT, 0) != 0 || CPUBaseNS(KFFT, -5) != 0 {
		t.Fatal("non-positive n must cost 0")
	}
	if CPUBaseNS("totally_unknown", 100) != 100*10 {
		t.Fatalf("unknown kernel default cost wrong: %d", CPUBaseNS("totally_unknown", 100))
	}
	if _, ok := AccelComputeNS(KViterbi, 64); ok {
		t.Fatal("accelerator claimed to support viterbi")
	}
	if _, ok := AccelCostNS(KScramble, 64, 64, zcu102DMA); ok {
		t.Fatal("AccelCostNS accepted unsupported kernel")
	}
}

func TestNaiveDFTMuchSlowerThanOptimised(t *testing.T) {
	// Case Study 4 shape: naive DFT at n=1024 is roughly two orders
	// of magnitude slower than the optimised library FFT.
	naive := CPUBaseNS(KDFTNaive, 1024)
	opt := CPUBaseNS(KFFTOpt, 1024)
	ratio := float64(naive) / float64(opt)
	if ratio < 50 || ratio > 200 {
		t.Fatalf("DFT/FFTopt ratio = %.1f, want ~100", ratio)
	}
}

func TestDMASharingPenalty(t *testing.T) {
	d := zcu102DMA
	solo := d.TransferNS(2048, 1)
	shared := d.TransferNS(2048, 2)
	if shared <= 2*solo {
		t.Fatalf("sharing two managers must more than double transfer time: %v vs %v", shared, solo)
	}
	if d.TransferNS(2048, 0) != solo {
		t.Fatal("share<1 must clamp to 1")
	}
}

func TestViterbiDominatesWiFiRX(t *testing.T) {
	// Sanity on relative kernel weights: the Viterbi decoder and the
	// match filter dominate the WiFi RX budget (why RX is ~17x TX in
	// Table I).
	vit := CPUBaseNS(KViterbi, 70)
	scr := CPUBaseNS(KScramble, 64)
	if vit < 100*scr {
		t.Fatalf("viterbi (%d) should dwarf scrambler (%d)", vit, scr)
	}
}

func TestClassInterning(t *testing.T) {
	// ZCU102: speed and power are uniform per key, so classes coincide
	// with types.
	cfg, _ := ZCU102(3, 2)
	if got := cfg.NumClasses(); got != 2 {
		t.Fatalf("zcu NumClasses = %d, want 2", got)
	}
	classes := cfg.Classes()
	if classes[0].TypeIdx != cfg.TypeIndex("cpu") || classes[1].TypeIdx != cfg.TypeIndex("fft") {
		t.Fatalf("zcu class types wrong: %+v", classes)
	}
	// Odroid: one "cpu" type, but big and LITTLE split into two cost
	// classes — the configuration the indexed EFT family used to bail
	// on.
	od, _ := OdroidXU3(4, 3)
	if od.NumTypes() != 1 || od.NumClasses() != 2 {
		t.Fatalf("odroid interning: %d types, %d classes, want 1/2", od.NumTypes(), od.NumClasses())
	}
	oc := od.Classes()
	if oc[0].Speed != A15Big.SpeedFactor || oc[0].Power != A15Big.PowerW {
		t.Fatalf("odroid class 0 is not the big cores: %+v", oc[0])
	}
	if oc[1].Speed != A7Little.SpeedFactor || oc[1].Power != A7Little.PowerW {
		t.Fatalf("odroid class 1 is not the LITTLE cores: %+v", oc[1])
	}
	for i := range od.PEs {
		want := 0
		if od.PEs[i].Type == A7Little {
			want = 1
		}
		if od.ClassOf(i) != want {
			t.Fatalf("odroid PE %d classed %d, want %d", i, od.ClassOf(i), want)
		}
	}
	// First-appearance order: LITTLE-first configurations intern the
	// LITTLE class first.
	lf, _ := OdroidXU3(0, 3)
	if lf.NumClasses() != 1 || lf.Classes()[0].Speed != A7Little.SpeedFactor {
		t.Fatalf("LITTLE-only odroid classes wrong: %+v", lf.Classes())
	}
	// Hand-built Config (no finalize) agrees via the recompute
	// fallback.
	hand := &Config{PEs: []*PE{
		{ID: 0, Type: A15Big, Share: 1},
		{ID: 1, Type: A7Little, Share: 1},
		{ID: 2, Type: A15Big, Share: 1},
	}}
	if hand.NumClasses() != 2 || hand.ClassOf(0) != 0 || hand.ClassOf(1) != 1 || hand.ClassOf(2) != 0 {
		t.Fatalf("fallback class interning wrong: n=%d of=%d,%d,%d",
			hand.NumClasses(), hand.ClassOf(0), hand.ClassOf(1), hand.ClassOf(2))
	}
}

func TestSyntheticHetConfig(t *testing.T) {
	cfg, err := SyntheticHet(256, 192, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.PEs) != 512 {
		t.Fatalf("het config has %d PEs, want 512", len(cfg.PEs))
	}
	if cfg.Name != "256B+192L+64F-het" {
		t.Fatalf("het name %q", cfg.Name)
	}
	// "cpu" spans two cost classes, plus the accelerator class.
	if cfg.NumTypes() != 2 || cfg.NumClasses() != 3 {
		t.Fatalf("het interning: %d types, %d classes, want 2/3", cfg.NumTypes(), cfg.NumClasses())
	}
	// Manager threads share cores only once accelerators are placed
	// (448 cores for 64 managers: all dedicated).
	for _, pe := range cfg.PEs {
		if pe.Share != 1 {
			t.Fatalf("PE %d shares its manager core with %d threads", pe.ID, pe.Share)
		}
	}
	// Degenerate shapes fail at build.
	if _, err := SyntheticHet(0, 0, 0); err == nil {
		t.Fatal("zero-PE het config accepted")
	}
	if _, err := SyntheticHet(0, 0, 4); err == nil {
		t.Fatal("het config with managers but no host cores accepted")
	}
	if _, err := SyntheticHet(-1, 2, 0); err == nil {
		t.Fatal("negative big count accepted")
	}
	if _, err := SyntheticHet(2000, 0, 0); err == nil {
		t.Fatal("over-pool big count accepted")
	}
}

func TestParseConfigJSONDegenerate(t *testing.T) {
	// The documented cmd/emulate edge: JSON documents describing a
	// configuration with no PEs (or impossible counts) must fail at
	// parse with a descriptive error, never reach the emulator.
	cases := []struct {
		doc  string
		want string
	}{
		{`{"platform":"odroid-xu3"}`, "at least one PE"},
		{`{"platform":"zcu102","cores":0,"ffts":0}`, "at least one PE"},
		{`{"platform":"synthetic","cores":0,"ffts":4}`, "supports 1.."},
		{`{"platform":"synthetic-het"}`, "at least one PE"},
		{`{"platform":"synthetic-het","ffts":4}`, "at least one CPU core"},
		{`{"platform":"odroid-xu3","big":9,"little":1}`, "supports 0.."},
	}
	for _, c := range cases {
		_, err := ParseConfigJSON([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: want error containing %q, got %v", c.doc, c.want, err)
		}
	}
	// The het document round-trips.
	cfg, err := ParseConfigJSON([]byte(`{"platform":"synthetic-het","big":4,"little":4,"ffts":2}`))
	if err != nil || cfg.Name != "4B+4L+2F-het" {
		t.Fatalf("het parse: %v %v", cfg, err)
	}
}
