// Package platform models the emulation testbeds: the processing
// element (PE) types of the ZCU102 (ARM Cortex-A53 cores + FFT
// accelerators in programmable logic behind AXI DMA) and the Odroid
// XU3 (big.LITTLE A15/A7 clusters), the DSSoC configurations built
// from them, the resource-manager thread placement policy, and the
// calibrated kernel timing model.
//
// SUBSTITUTION NOTE (see ARCHITECTURE.md): the paper executes on real
// silicon; this reproduction replaces the hardware with calibrated
// analytic timing models over a virtual clock. Constants are chosen so
// the paper's qualitative relations hold (e.g. a 128-point FFT is
// faster on an A53 core than on the accelerator once DMA overhead is
// charged; big cores outrun LITTLE cores; the overlay core's speed
// sets the scheduling overhead).
package platform

import "fmt"

// Class distinguishes general-purpose cores from custom accelerators;
// the resource manager executes different flows for the two (Figure 4).
type Class int

const (
	// CPU PEs execute the task executable directly with no explicit
	// data transfer.
	CPU Class = iota
	// Accelerator PEs require DDR->local-memory DMA before compute
	// and the reverse transfer after.
	Accelerator
)

func (c Class) String() string {
	switch c {
	case CPU:
		return "cpu-core"
	case Accelerator:
		return "accelerator"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// PEType describes one kind of processing element.
type PEType struct {
	// Name is the human-readable type ("A53", "A15-big", ...).
	Name string
	// Key matches the "name" field of a DAG node's platform entry
	// ("cpu", "fft"): a node may run on a PE only if a platform entry
	// with this key exists.
	Key string
	// Class selects the resource-manager execution flow.
	Class Class
	// SpeedFactor scales baseline (A53) kernel times: a factor of 0.6
	// runs 40% faster than the A53 reference, 1.8 runs 80% slower.
	SpeedFactor float64
	// SchedOpNS is the cost of one abstract scheduler operation when
	// this PE type serves as the overlay (management) processor. The
	// paper charges all workload-manager work to the overlay core, so
	// a slow LITTLE overlay visibly inflates scheduling overhead
	// (Case Study 3).
	SchedOpNS float64
	// PowerW is the active power draw used by the power-aware
	// scheduling extension (the paper's future-work item).
	PowerW float64
}

// The PE types of the two evaluation platforms.
var (
	// A53 is the ZCU102's Cortex-A53 application core (1.2 GHz), the
	// baseline for every kernel cost in this package.
	A53 = &PEType{Name: "A53", Key: "cpu", Class: CPU, SpeedFactor: 1.0, SchedOpNS: 55, PowerW: 0.8}
	// FFTAccel is the FFT IP instantiated in the ZCU102 programmable
	// logic, reached through AXI DMA and udmabuf shared memory.
	FFTAccel = &PEType{Name: "FFT-PL", Key: "fft", Class: Accelerator, SpeedFactor: 1.0, SchedOpNS: 0, PowerW: 0.3}
	// A15Big is the Odroid XU3's performance core.
	A15Big = &PEType{Name: "A15-big", Key: "cpu", Class: CPU, SpeedFactor: 0.55, SchedOpNS: 40, PowerW: 1.6}
	// A7Little is the Odroid XU3's efficiency core; it also serves as
	// the Odroid overlay processor, whose lower clock makes the
	// scheduling overhead relatively larger (paper Section III-E).
	A7Little = &PEType{Name: "A7-LITTLE", Key: "cpu", Class: CPU, SpeedFactor: 1.9, SchedOpNS: 150, PowerW: 0.35}
)

// DMAModel captures the cost of moving data between the framework's
// DDR memory space and an accelerator's local memory (BRAM) through
// the DMA engine, per Figure 6, plus the OS-level context-switch
// penalty incurred when several accelerator manager threads share one
// host CPU core (the 2C+2F anomaly of Figure 9).
type DMAModel struct {
	// SetupNS is the fixed per-transfer driver/descriptor cost.
	SetupNS float64
	// NSPerByte is the streaming cost per byte per direction.
	NSPerByte float64
	// CtxSwitchNS is the penalty per preemption when manager threads
	// share a core.
	CtxSwitchNS float64
}

// TransferNS returns the host-driven time to move `bytes` bytes one
// way for a manager thread sharing its host core with `share` manager
// threads in total (share >= 1). Sharing serialises the copy loops and
// adds context switches, which is exactly why the paper's second FFT
// accelerator stopped paying off once its manager lost its own core.
func (d DMAModel) TransferNS(bytes int, share int) float64 {
	if share < 1 {
		share = 1
	}
	t := d.SetupNS + float64(bytes)*d.NSPerByte
	t *= float64(share)
	if share > 1 {
		t += d.CtxSwitchNS * float64(share)
	}
	return t
}

// PE is one processing element slot in a DSSoC configuration, together
// with its resource-manager thread placement.
type PE struct {
	// ID is the configuration-unique identifier (paper Figure 9 "PE IDs").
	ID int
	// Type is the hardware kind.
	Type *PEType
	// HostCore is the pool CPU core index running this PE's resource
	// manager thread. For CPU PEs it is the core itself.
	HostCore int
	// Share is the number of accelerator manager threads placed on
	// HostCore (>= 1 for accelerators; 1 means a dedicated core).
	Share int

	// label caches Label() — the emulator stamps it into every task
	// record, so rendering it per call would allocate on the hot path.
	// Config.finalize fills it; hand-built PEs render lazily.
	label string
}

// Label renders a short PE name such as "Core1" or "FFT2".
func (p *PE) Label() string {
	if p.label != "" {
		return p.label
	}
	return fmt.Sprintf("%s%d", p.Type.Name, p.ID+1)
}
