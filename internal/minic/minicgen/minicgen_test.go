package minicgen

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

// configFor derives a varied shape from the seed so the property sweep
// covers the width/depth/fan-in space instead of one default shape.
func configFor(seed int64) Config {
	return Config{
		Regions:      1 + int(seed%11),
		Kernels:      int(seed % 5),
		MaxLoopDepth: 1 + int(seed%3),
		Helpers:      int(seed % 6),
		MaxCallDepth: 1 + int(seed%4),
		MaxArrayLen:  8 << (seed % 4),
		FanIn:        1 + int(seed%4),
	}
}

// TestGeneratedProgramsConvert is the generator's core property: every
// generated program must survive the full pipeline — lex, parse,
// lower, trace, outline, DAG generation — and the result must carry
// the promised shape (a valid spec, and hot kernels whenever the
// config asked for any).
func TestGeneratedProgramsConvert(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		cfg := configFor(seed)
		p := Generate(seed, cfg)
		spec, res, err := p.Build(kernels.NewRegistry())
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, p.Source())
		}
		if spec.TaskCount() < 1 {
			t.Fatalf("seed %d: empty DAG", seed)
		}
		if _, err := spec.TopoOrder(); err != nil {
			t.Fatalf("seed %d: generated DAG not a DAG: %v", seed, err)
		}
		hot := 0
		for _, k := range res.Kernels {
			if k.Hot {
				hot++
			}
			if k.DynInstrs < 0 {
				t.Fatalf("seed %d: kernel %s has negative cost", seed, k.Name)
			}
		}
		if cfg.withDefaults().Kernels > 0 && hot == 0 {
			t.Fatalf("seed %d: config asked for %d kernels, conversion found none\nsource:\n%s",
				seed, cfg.withDefaults().Kernels, p.Source())
		}
	}
}

// TestGenerateDeterministic pins the seeding contract: the corpus the
// differential suites compile must be reproducible byte for byte.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Generate(seed, configFor(seed)).Source()
		b := Generate(seed, configFor(seed)).Source()
		if a != b {
			t.Fatalf("seed %d: two generations diverged", seed)
		}
	}
}

// TestShrinkProducesValidSmallerPrograms: every one-step shrink drops
// exactly one statement and still converts — shrinking a failing case
// can never get stuck on generator-invalid intermediates.
func TestShrinkProducesValidSmallerPrograms(t *testing.T) {
	p := Generate(7, Config{Regions: 6, Kernels: 2})
	vars := p.Shrink()
	if len(vars) != p.Statements() {
		t.Fatalf("expected %d shrink variants, got %d", p.Statements(), len(vars))
	}
	for i, v := range vars {
		if v.Statements() != p.Statements()-1 {
			t.Fatalf("variant %d did not shrink: %d statements", i, v.Statements())
		}
		if _, _, err := v.Build(kernels.NewRegistry()); err != nil {
			t.Fatalf("variant %d no longer converts: %v\nsource:\n%s", i, err, v.Source())
		}
	}
}

// TestShrinkConverges drives a shrink loop against a synthetic failure
// predicate (the program mentions a helper call) and checks it reaches
// a local minimum: a program that still fails while every child passes.
func TestShrinkConverges(t *testing.T) {
	fails := func(p *Program) bool {
		return strings.Contains(p.Source(), "h0(")
	}
	p := Generate(3, Config{Regions: 10, Kernels: 3, Helpers: 4})
	if !fails(p) {
		t.Skip("seed produced no helper call; predicate vacuous")
	}
	for steps := 0; ; steps++ {
		if steps > 200 {
			t.Fatal("shrink loop did not converge")
		}
		next := (*Program)(nil)
		for _, v := range p.Shrink() {
			if fails(v) {
				next = v
				break
			}
		}
		if next == nil {
			break
		}
		p = next
	}
	if !fails(p) {
		t.Fatal("minimal program lost the failure")
	}
	if p.Statements() > 2 {
		t.Fatalf("minimum kept %d statements; expected the predicate to pin very few", p.Statements())
	}
}
