package minic

// AST node definitions. The tree is deliberately small: everything is
// a float expression or one of six statement forms.

type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
}

type globalDecl struct {
	name  string
	elems int // 1 for scalars
	init  []float64
	line  int
}

type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

type stmt interface{ stmtNode() }

type declStmt struct {
	name string
	init expr // may be nil
	line int
}

type assignStmt struct {
	name  string
	index expr // nil for scalar assignment
	value expr
	line  int
}

type ifStmt struct {
	cond      expr
	then, els []stmt
	line      int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type forStmt struct {
	init *assignStmt // may be nil
	cond expr        // may be nil (infinite)
	post *assignStmt // may be nil
	body []stmt
	line int
}

type returnStmt struct {
	value expr // may be nil
	line  int
}

type exprStmt struct {
	value expr
	line  int
}

func (*declStmt) stmtNode()   {}
func (*assignStmt) stmtNode() {}
func (*ifStmt) stmtNode()     {}
func (*whileStmt) stmtNode()  {}
func (*forStmt) stmtNode()    {}
func (*returnStmt) stmtNode() {}
func (*exprStmt) stmtNode()   {}

type expr interface{ exprNode() }

type numberExpr struct{ val float64 }

type varExpr struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type binaryExpr struct {
	op   string
	l, r expr
	line int
}

type unaryExpr struct {
	op   string // "-" or "!"
	x    expr
	line int
}

type callExpr struct {
	name string
	args []expr
	line int
}

func (*numberExpr) exprNode() {}
func (*varExpr) exprNode()    {}
func (*indexExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}
func (*unaryExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
