package minic

import (
	"fmt"

	"repro/internal/ir"
)

// Compile translates MiniC source into an ir.Module. Locals of the
// entry function `main` are promoted to module globals (prefixed
// "main_"), which is this toolchain's version of the paper's memory
// analysis: the outliner's extracted kernels must reach main's state
// through memory, exactly as CodeExtractor captures variables.
func Compile(src, moduleName string) (*ir.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	prog, err := parse(toks)
	if err != nil {
		return nil, err
	}
	m := ir.NewModule(moduleName)
	// Globals first.
	for _, g := range prog.globals {
		if err := m.AddGlobal(&ir.Global{Name: g.name, Elems: g.elems, Init: g.init}); err != nil {
			return nil, fmt.Errorf("minic:%d: %w", g.line, err)
		}
	}
	// Collect signatures for forward references.
	arity := map[string]int{}
	for _, f := range prog.funcs {
		if _, dup := arity[f.name]; dup {
			return nil, fmt.Errorf("minic:%d: duplicate function %q", f.line, f.name)
		}
		arity[f.name] = len(f.params)
	}
	for _, f := range prog.funcs {
		fc := &fnCompiler{
			m:       m,
			prog:    prog,
			arity:   arity,
			promote: f.name == "main",
			decl:    f,
			locals:  map[string]localSlot{},
		}
		irf, err := fc.compile()
		if err != nil {
			return nil, err
		}
		if err := m.AddFunc(irf); err != nil {
			return nil, err
		}
	}
	if err := m.Finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// builtins maps MiniC intrinsic calls to unary opcodes.
var builtins = map[string]ir.Op{
	"sin": ir.OpSin, "cos": ir.OpCos, "sqrt": ir.OpSqrt,
	"abs": ir.OpAbs, "floor": ir.OpFloor,
}

// localSlot records where a local lives: a register, or a promoted
// module global.
type localSlot struct {
	reg      int
	global   string
	promoted bool
}

type fnCompiler struct {
	m       *ir.Module
	prog    *program
	arity   map[string]int
	decl    *funcDecl
	promote bool

	f       *ir.Func
	curIdx  int
	locals  map[string]localSlot
	nextReg int
	sealed  bool // current block already has a terminator
}

func (fc *fnCompiler) compile() (*ir.Func, error) {
	fc.f = &ir.Func{Name: fc.decl.name, NumParams: len(fc.decl.params)}
	for _, p := range fc.decl.params {
		fc.locals[p] = localSlot{reg: fc.nextReg}
		fc.nextReg++
	}
	fc.newBlock(fmt.Sprintf("%s.entry", fc.decl.name))

	if fc.promote {
		// Each top-level statement of main becomes an outlining
		// region, opened on a fresh block.
		for _, s := range fc.decl.body {
			start := fc.freshBlock(stmtHint(s))
			if err := fc.stmt(s); err != nil {
				return nil, err
			}
			fc.f.Regions = append(fc.f.Regions, ir.Region{Start: start, Hint: stmtHint(s)})
		}
		// Close the open regions at the following region's start.
		for i := range fc.f.Regions {
			if i+1 < len(fc.f.Regions) {
				fc.f.Regions[i].End = fc.f.Regions[i+1].Start
			}
		}
	} else {
		for _, s := range fc.decl.body {
			if err := fc.stmt(s); err != nil {
				return nil, err
			}
		}
	}
	// Fall-through return.
	if !fc.sealed {
		fc.setTerm(ir.Terminator{Kind: ir.TermRet, Cond: -1})
	}
	if fc.promote && len(fc.f.Regions) > 0 {
		fc.f.Regions[len(fc.f.Regions)-1].End = len(fc.f.Blocks)
	}
	fc.f.NumRegs = fc.nextReg
	if fc.f.NumRegs == 0 {
		fc.f.NumRegs = 1
	}
	return fc.f, nil
}

func stmtHint(s stmt) string {
	switch st := s.(type) {
	case *declStmt:
		return fmt.Sprintf("decl %s@%d", st.name, st.line)
	case *assignStmt:
		return fmt.Sprintf("assign %s@%d", st.name, st.line)
	case *ifStmt:
		return fmt.Sprintf("if@%d", st.line)
	case *whileStmt:
		return fmt.Sprintf("while@%d", st.line)
	case *forStmt:
		return fmt.Sprintf("for@%d", st.line)
	case *returnStmt:
		return fmt.Sprintf("return@%d", st.line)
	case *exprStmt:
		return fmt.Sprintf("expr@%d", st.line)
	default:
		return "stmt"
	}
}

// --- block plumbing -----------------------------------------------------------

func (fc *fnCompiler) cur() *ir.Block { return fc.f.Blocks[fc.curIdx] }

// newBlock appends a block and makes it current; returns its index.
func (fc *fnCompiler) newBlock(label string) int {
	fc.f.Blocks = append(fc.f.Blocks, &ir.Block{Label: label})
	fc.curIdx = len(fc.f.Blocks) - 1
	fc.sealed = false
	return fc.curIdx
}

// freshBlock seals the current block with a branch to a new block and
// returns the new block's index. Used at region boundaries so every
// top-level statement is single-entry.
func (fc *fnCompiler) freshBlock(label string) int {
	prev := fc.curIdx
	idx := len(fc.f.Blocks)
	if !fc.sealed {
		fc.f.Blocks[prev].Term = ir.Terminator{Kind: ir.TermBr, Then: idx}
	}
	fc.f.Blocks = append(fc.f.Blocks, &ir.Block{Label: label})
	fc.curIdx = idx
	fc.sealed = false
	return idx
}

func (fc *fnCompiler) setTerm(t ir.Terminator) {
	if !fc.sealed {
		fc.cur().Term = t
		fc.sealed = true
	}
}

func (fc *fnCompiler) emit(in ir.Instr) {
	if fc.sealed {
		// Unreachable code after return: drop it into a fresh block so
		// the IR stays well formed.
		fc.newBlock("dead")
	}
	b := fc.cur()
	b.Instrs = append(b.Instrs, in)
}

func (fc *fnCompiler) reg() int {
	r := fc.nextReg
	fc.nextReg++
	return r
}

// --- statements -----------------------------------------------------------

func (fc *fnCompiler) stmt(s stmt) error {
	switch st := s.(type) {
	case *declStmt:
		return fc.declStmt(st)
	case *assignStmt:
		return fc.assignStmt(st)
	case *ifStmt:
		return fc.ifStmt(st)
	case *whileStmt:
		return fc.whileStmt(st)
	case *forStmt:
		return fc.forStmt(st)
	case *returnStmt:
		if st.value == nil {
			fc.setTerm(ir.Terminator{Kind: ir.TermRet, Cond: -1})
			return nil
		}
		r, err := fc.expr(st.value)
		if err != nil {
			return err
		}
		fc.setTerm(ir.Terminator{Kind: ir.TermRet, Cond: r})
		return nil
	case *exprStmt:
		_, err := fc.expr(st.value)
		return err
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
}

func (fc *fnCompiler) declStmt(st *declStmt) error {
	if _, dup := fc.locals[st.name]; dup {
		return fmt.Errorf("minic:%d: duplicate local %q", st.line, st.name)
	}
	if _, isGlobal := fc.m.Globals[st.name]; isGlobal {
		return fmt.Errorf("minic:%d: local %q shadows a global", st.line, st.name)
	}
	var slot localSlot
	if fc.promote {
		gname := "main_" + st.name
		if err := fc.m.AddGlobal(&ir.Global{Name: gname, Elems: 1}); err != nil {
			return fmt.Errorf("minic:%d: %w", st.line, err)
		}
		slot = localSlot{global: gname, promoted: true}
	} else {
		slot = localSlot{reg: fc.reg()}
	}
	fc.locals[st.name] = slot
	if st.init != nil {
		v, err := fc.expr(st.init)
		if err != nil {
			return err
		}
		fc.storeLocal(slot, v)
	}
	return nil
}

func (fc *fnCompiler) storeLocal(slot localSlot, src int) {
	if slot.promoted {
		zero := fc.reg()
		fc.emit(ir.Instr{Op: ir.OpConst, Dst: zero, Imm: 0})
		fc.emit(ir.Instr{Op: ir.OpStore, Sym: slot.global, A: zero, B: src})
		return
	}
	fc.emit(ir.Instr{Op: ir.OpMov, Dst: slot.reg, A: src})
}

func (fc *fnCompiler) assignStmt(st *assignStmt) error {
	v, err := fc.expr(st.value)
	if err != nil {
		return err
	}
	if st.index != nil {
		if _, ok := fc.m.Globals[st.name]; !ok {
			return fmt.Errorf("minic:%d: indexed assignment to non-array %q", st.line, st.name)
		}
		idx, err := fc.expr(st.index)
		if err != nil {
			return err
		}
		fc.emit(ir.Instr{Op: ir.OpStore, Sym: st.name, A: idx, B: v})
		return nil
	}
	if slot, ok := fc.locals[st.name]; ok {
		fc.storeLocal(slot, v)
		return nil
	}
	if g, ok := fc.m.Globals[st.name]; ok {
		if g.Elems != 1 {
			return fmt.Errorf("minic:%d: assignment to array %q needs an index", st.line, st.name)
		}
		zero := fc.reg()
		fc.emit(ir.Instr{Op: ir.OpConst, Dst: zero, Imm: 0})
		fc.emit(ir.Instr{Op: ir.OpStore, Sym: st.name, A: zero, B: v})
		return nil
	}
	return fmt.Errorf("minic:%d: assignment to undeclared %q", st.line, st.name)
}

func (fc *fnCompiler) ifStmt(st *ifStmt) error {
	cond, err := fc.expr(st.cond)
	if err != nil {
		return err
	}
	condIdx := fc.curIdx
	thenIdx := fc.newBlock("then")
	if err := fc.body(st.then); err != nil {
		return err
	}
	thenEnd, thenSealed := fc.curIdx, fc.sealed

	elseIdx := -1
	elseEnd, elseSealed := -1, false
	if len(st.els) > 0 {
		elseIdx = fc.newBlock("else")
		if err := fc.body(st.els); err != nil {
			return err
		}
		elseEnd, elseSealed = fc.curIdx, fc.sealed
	}
	join := fc.newBlock("join")
	if !thenSealed {
		fc.f.Blocks[thenEnd].Term = ir.Terminator{Kind: ir.TermBr, Then: join}
	}
	if elseIdx >= 0 {
		if !elseSealed {
			fc.f.Blocks[elseEnd].Term = ir.Terminator{Kind: ir.TermBr, Then: join}
		}
		fc.f.Blocks[condIdx].Term = ir.Terminator{Kind: ir.TermCondBr, Cond: cond, Then: thenIdx, Else: elseIdx}
	} else {
		fc.f.Blocks[condIdx].Term = ir.Terminator{Kind: ir.TermCondBr, Cond: cond, Then: thenIdx, Else: join}
	}
	return nil
}

// body compiles nested statements without opening regions.
func (fc *fnCompiler) body(stmts []stmt) error {
	for _, s := range stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCompiler) whileStmt(st *whileStmt) error {
	condIdx := fc.freshBlock("while.cond")
	cond, err := fc.expr(st.cond)
	if err != nil {
		return err
	}
	condEnd := fc.curIdx
	bodyIdx := fc.newBlock("while.body")
	if err := fc.body(st.body); err != nil {
		return err
	}
	if !fc.sealed {
		fc.setTerm(ir.Terminator{Kind: ir.TermBr, Then: condIdx})
	}
	exit := fc.newBlock("while.exit")
	fc.f.Blocks[condEnd].Term = ir.Terminator{Kind: ir.TermCondBr, Cond: cond, Then: bodyIdx, Else: exit}
	return nil
}

func (fc *fnCompiler) forStmt(st *forStmt) error {
	if st.init != nil {
		if err := fc.assignStmt(st.init); err != nil {
			return err
		}
	}
	condIdx := fc.freshBlock("for.cond")
	var cond int
	if st.cond != nil {
		r, err := fc.expr(st.cond)
		if err != nil {
			return err
		}
		cond = r
	} else {
		cond = fc.reg()
		fc.emit(ir.Instr{Op: ir.OpConst, Dst: cond, Imm: 1})
	}
	condEnd := fc.curIdx
	bodyIdx := fc.newBlock("for.body")
	if err := fc.body(st.body); err != nil {
		return err
	}
	if st.post != nil {
		if err := fc.assignStmt(st.post); err != nil {
			return err
		}
	}
	if !fc.sealed {
		fc.setTerm(ir.Terminator{Kind: ir.TermBr, Then: condIdx})
	}
	exit := fc.newBlock("for.exit")
	fc.f.Blocks[condEnd].Term = ir.Terminator{Kind: ir.TermCondBr, Cond: cond, Then: bodyIdx, Else: exit}
	return nil
}

// --- expressions -----------------------------------------------------------

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpMod,
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe,
	">": ir.OpGt, ">=": ir.OpGe, "&&": ir.OpAnd, "||": ir.OpOr,
}

func (fc *fnCompiler) expr(e expr) (int, error) {
	switch ex := e.(type) {
	case *numberExpr:
		dst := fc.reg()
		fc.emit(ir.Instr{Op: ir.OpConst, Dst: dst, Imm: ex.val})
		return dst, nil

	case *varExpr:
		if slot, ok := fc.locals[ex.name]; ok {
			if !slot.promoted {
				return slot.reg, nil
			}
			zero := fc.reg()
			dst := fc.reg()
			fc.emit(ir.Instr{Op: ir.OpConst, Dst: zero, Imm: 0})
			fc.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Sym: slot.global, A: zero})
			return dst, nil
		}
		if g, ok := fc.m.Globals[ex.name]; ok {
			if g.Elems != 1 {
				return 0, fmt.Errorf("minic:%d: array %q used without index", ex.line, ex.name)
			}
			zero := fc.reg()
			dst := fc.reg()
			fc.emit(ir.Instr{Op: ir.OpConst, Dst: zero, Imm: 0})
			fc.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Sym: ex.name, A: zero})
			return dst, nil
		}
		return 0, fmt.Errorf("minic:%d: undeclared variable %q", ex.line, ex.name)

	case *indexExpr:
		if _, ok := fc.m.Globals[ex.name]; !ok {
			return 0, fmt.Errorf("minic:%d: indexing non-array %q", ex.line, ex.name)
		}
		idx, err := fc.expr(ex.index)
		if err != nil {
			return 0, err
		}
		dst := fc.reg()
		fc.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Sym: ex.name, A: idx})
		return dst, nil

	case *unaryExpr:
		x, err := fc.expr(ex.x)
		if err != nil {
			return 0, err
		}
		dst := fc.reg()
		op := ir.OpNeg
		if ex.op == "!" {
			op = ir.OpNot
		}
		fc.emit(ir.Instr{Op: op, Dst: dst, A: x})
		return dst, nil

	case *binaryExpr:
		op, ok := binOps[ex.op]
		if !ok {
			return 0, fmt.Errorf("minic:%d: unknown operator %q", ex.line, ex.op)
		}
		l, err := fc.expr(ex.l)
		if err != nil {
			return 0, err
		}
		r, err := fc.expr(ex.r)
		if err != nil {
			return 0, err
		}
		dst := fc.reg()
		fc.emit(ir.Instr{Op: op, Dst: dst, A: l, B: r})
		return dst, nil

	case *callExpr:
		if op, ok := builtins[ex.name]; ok {
			if len(ex.args) != 1 {
				return 0, fmt.Errorf("minic:%d: builtin %q takes one argument", ex.line, ex.name)
			}
			a, err := fc.expr(ex.args[0])
			if err != nil {
				return 0, err
			}
			dst := fc.reg()
			fc.emit(ir.Instr{Op: op, Dst: dst, A: a})
			return dst, nil
		}
		want, ok := fc.arity[ex.name]
		if !ok {
			return 0, fmt.Errorf("minic:%d: call to undeclared function %q", ex.line, ex.name)
		}
		if want != len(ex.args) {
			return 0, fmt.Errorf("minic:%d: %q expects %d arguments, got %d", ex.line, ex.name, want, len(ex.args))
		}
		var args []int
		for _, a := range ex.args {
			r, err := fc.expr(a)
			if err != nil {
				return 0, err
			}
			args = append(args, r)
		}
		dst := fc.reg()
		fc.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Sym: ex.name, Args: args})
		return dst, nil
	}
	return 0, fmt.Errorf("minic: unknown expression %T", e)
}
