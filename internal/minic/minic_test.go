package minic

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tracer"
)

// compileRun compiles src and executes fn, returning the result and
// final environment.
func compileRun(t *testing.T, src, fn string, args ...float64) (float64, *tracer.Env) {
	t.Helper()
	m, err := Compile(src, "test")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env, ret, err := tracer.Run(m, fn, nil, args...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ret, env
}

func TestArithmeticAndPrecedence(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  return 2 + 3 * 4 - 10 / 2;
}`, "main")
	if ret != 9 {
		t.Fatalf("got %v, want 9", ret)
	}
}

func TestUnaryAndComparison(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  float a = -3;
  float b = !0;
  if (a < 0 && b == 1) { return 1; }
  return 0;
}`, "main")
	if ret != 1 {
		t.Fatalf("got %v, want 1", ret)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
float classify(float x) {
  if (x > 10) { return 2; }
  else if (x > 0) { return 1; }
  else { return 0; }
}
float main() { return classify(5) * 10 + classify(20) + classify(-1); }`
	ret, _ := compileRun(t, src, "main")
	if ret != 12 {
		t.Fatalf("got %v, want 12", ret)
	}
}

func TestWhileLoop(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  float i = 0;
  float s = 0;
  while (i < 10) { s = s + i; i = i + 1; }
  return s;
}`, "main")
	if ret != 45 {
		t.Fatalf("got %v, want 45", ret)
	}
}

func TestForLoopAndArrays(t *testing.T) {
	ret, env := compileRun(t, `
float a[8];
float main() {
  float i;
  for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
  return a[7];
}`, "main")
	if ret != 49 {
		t.Fatalf("got %v, want 49", ret)
	}
	if env.Globals["a"][3] != 9 {
		t.Fatalf("a[3] = %v", env.Globals["a"][3])
	}
}

func TestForWithoutClauses(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  float i = 0;
  for (; i < 3;) { i = i + 1; }
  return i;
}`, "main")
	if ret != 3 {
		t.Fatalf("got %v, want 3", ret)
	}
}

func TestGlobalScalarInit(t *testing.T) {
	ret, _ := compileRun(t, `
float n = 41;
float neg = -5;
float main() { n = n + 1; return n + neg; }`, "main")
	if ret != 37 {
		t.Fatalf("got %v, want 37", ret)
	}
}

func TestFunctionCalls(t *testing.T) {
	ret, _ := compileRun(t, `
float add(float a, float b) { return a + b; }
float twice(float x) { return add(x, x); }
float main() { return twice(add(1, 2)); }`, "main")
	if ret != 6 {
		t.Fatalf("got %v, want 6", ret)
	}
}

func TestBuiltins(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  return sqrt(16) + abs(-2) + floor(3.7) + cos(0);
}`, "main")
	if ret != 4+2+3+1 {
		t.Fatalf("got %v, want 10", ret)
	}
	ret2, _ := compileRun(t, `float main() { return sin(1.5707963267948966); }`, "main")
	if math.Abs(ret2-1) > 1e-12 {
		t.Fatalf("sin(pi/2) = %v", ret2)
	}
}

func TestModuloAndLogicalOr(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  float x = 17 % 5;
  if (x == 2 || 0) { return 1; }
  return 0;
}`, "main")
	if ret != 1 {
		t.Fatalf("got %v, want 1", ret)
	}
}

func TestMainLocalsPromoted(t *testing.T) {
	m, err := Compile(`
float main() {
  float counter = 7;
  return counter;
}`, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Globals["main_counter"]; !ok {
		t.Fatal("main local not promoted to a module global")
	}
	// Non-main locals stay in registers.
	m2, err := Compile(`
float f() { float x = 1; return x; }
float main() { return f(); }`, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Globals["f_x"]; ok {
		t.Fatal("non-main local was promoted")
	}
}

func TestRegionsPerTopLevelStatement(t *testing.T) {
	m, err := Compile(`
float a[4];
float main() {
  float i;
  for (i = 0; i < 4; i = i + 1) { a[i] = i; }
  a[0] = 99;
  return a[0];
}`, "test")
	if err != nil {
		t.Fatal(err)
	}
	regions := m.Funcs["main"].Regions
	// decl, for, assign, return = 4 regions.
	if len(regions) != 4 {
		t.Fatalf("got %d regions: %+v", len(regions), regions)
	}
	for i, r := range regions {
		if r.Start >= r.End {
			t.Fatalf("region %d empty range: %+v", i, r)
		}
		if i > 0 && regions[i-1].End != r.Start {
			t.Fatalf("regions not contiguous: %+v", regions)
		}
	}
	if !strings.HasPrefix(regions[1].Hint, "for@") {
		t.Fatalf("region hints wrong: %+v", regions)
	}
}

func TestNestedControlFlow(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  float i; float j; float s = 0;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      if ((i + j) % 2 == 0) { s = s + 1; }
      else { s = s + 10; }
    }
  }
  return s;
}`, "main")
	// 8 even-parity cells + 8 odd: 8 + 80.
	if ret != 88 {
		t.Fatalf("got %v, want 88", ret)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared var", `float main() { return x; }`, "undeclared"},
		{"undeclared fn", `float main() { return f(1); }`, "undeclared function"},
		{"bad arity", `float f(float a) { return a; } float main() { return f(1,2); }`, "expects 1 arguments"},
		{"duplicate local", `float main() { float x; float x; return 0; }`, "duplicate local"},
		{"duplicate fn", `float f() { return 0; } float f() { return 1; } float main() { return 0; }`, "duplicate function"},
		{"index non-array", `float main() { float x; x[0] = 1; return 0; }`, "non-array"},
		{"array without index", `float a[4]; float main() { return a; }`, "without index"},
		{"array assign no index", `float a[4]; float main() { a = 1; return 0; }`, "needs an index"},
		{"local shadows global", `float g; float main() { float g; return 0; }`, "shadows"},
		{"bad array size", `float a[0]; float main() { return 0; }`, "positive integer"},
		{"builtin arity", `float main() { return sin(1, 2); }`, "one argument"},
		{"syntax: missing semicolon", `float main() { return 0 }`, "expected"},
		{"syntax: unclosed block", `float main() { return 0;`, "end of file"},
		{"syntax: stray token", `float main() { @ }`, "unexpected character"},
		{"global bad init", `float g = x; float main() { return 0; }`, "number literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, "t")
			if err == nil {
				t.Fatalf("compile accepted bad program")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	ret, _ := compileRun(t, `
// leading comment
float main() {
  // inner comment
  return 5; // trailing
}`, "main")
	if ret != 5 {
		t.Fatalf("got %v", ret)
	}
}

func TestScientificNotation(t *testing.T) {
	ret, _ := compileRun(t, `float main() { return 1.5e2 + 2E-1; }`, "main")
	if math.Abs(ret-150.2) > 1e-9 {
		t.Fatalf("got %v, want 150.2", ret)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	ret, _ := compileRun(t, `
float main() {
  return 1;
  return 2;
}`, "main")
	if ret != 1 {
		t.Fatalf("got %v, want 1", ret)
	}
}

func TestExpressionStatement(t *testing.T) {
	// A bare call as a statement.
	ret, _ := compileRun(t, `
float g;
float bump() { g = g + 1; return g; }
float main() { bump(); bump(); return g; }`, "main")
	if ret != 2 {
		t.Fatalf("got %v, want 2", ret)
	}
}

// TestDeepNestingRejected pins the fuzzer-found crasher: recursive
// descent with no depth budget turned deeply nested sources into a
// process-fatal stack overflow. All three recursion channels —
// parenthesis grouping, unary chains, nested control flow — must now
// come back as parse errors, while anything under the budget still
// compiles.
func TestDeepNestingRejected(t *testing.T) {
	deep := func(n int, open, close, body string) string {
		return "float main() { return " + strings.Repeat(open, n) + body + strings.Repeat(close, n) + "; }"
	}
	cases := map[string]string{
		"parens": deep(10_000, "(", ")", "1"),
		"unary":  deep(10_000, "-", "", "1"),
		"blocks": "float main() { " + strings.Repeat("if (1) { ", 10_000) + "return 0;" +
			strings.Repeat(" }", 10_000) + " }",
	}
	for name, src := range cases {
		if _, err := Compile(src, name); err == nil {
			t.Fatalf("%s: deeply nested source compiled instead of erroring", name)
		}
	}
	// Depth just inside the budget must keep working: the budget is a
	// crash guard, not a language restriction real programs can feel.
	if _, err := Compile(deep(200, "(", ")", "1"), "ok"); err != nil {
		t.Fatalf("200-deep grouping rejected: %v", err)
	}
}
