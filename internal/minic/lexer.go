// Package minic is the toolchain's front end: a small C subset
// (floats, fixed-size arrays, for/while/if, function calls, math
// builtins) compiled to the ir package. It stands in for Clang in the
// paper's automatic application conversion flow: "we utilize the Clang
// compiler to convert the application into LLVM IR".
package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

var keywords = map[string]bool{
	"float": true, "if": true, "else": true, "while": true,
	"for": true, "return": true,
}

// twoCharPuncts are the multi-character operators, checked before
// single characters.
var twoCharPuncts = []string{"==", "!=", "<=", ">=", "&&", "||"}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	var toks []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, line: lx.line}, nil
		}
		return token{kind: tokIdent, text: text, line: lx.line}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1]))):
		for lx.pos < len(lx.src) && (unicode.IsDigit(rune(lx.src[lx.pos])) || lx.src[lx.pos] == '.' ||
			lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E' ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && (lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, fmt.Errorf("minic:%d: bad number %q", lx.line, text)
		}
		return token{kind: tokNumber, text: text, num: v, line: lx.line}, nil
	default:
		for _, p := range twoCharPuncts {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				lx.pos += 2
				return token{kind: tokPunct, text: p, line: lx.line}, nil
			}
		}
		if strings.ContainsRune("()[]{};,=+-*/%<>!&|", rune(c)) {
			lx.pos++
			return token{kind: tokPunct, text: string(c), line: lx.line}, nil
		}
		return token{}, fmt.Errorf("minic:%d: unexpected character %q", lx.line, string(c))
	}
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}
