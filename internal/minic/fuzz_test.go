package minic

import (
	"testing"

	"repro/internal/tracer"
)

// FuzzCompile throws arbitrary bytes at the front end: lexer, parser,
// and codegen must either return an error or produce a module that
// passes the ir validator — never panic, hang, or emit invalid IR.
// When the module is small and carries a parameterless main, it is
// also executed under a tight step budget, so the interpreter's
// bounds and budget checks see adversarial programs too.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"float main() { return 0; }",
		"float x; float main() { x = 1.5; return x; }",
		"float a[8];\nfloat main() { float i = 0; for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; } return a[3]; }",
		"float h(float p) { return p * p; }\nfloat main() { float v = h(3); while (v > 1) { v = v / 2; } return v; }",
		"float main() { float v = 1; if (v < 2) { v = sin(v) + sqrt(v); } else { v = -v; } return v; }",
		"float a[4] ; float main( ) { a [ 3 ] = 1e2 ; return a[0] % 3 ; }",
		"// comment only\nfloat main() { return 0; }",
		"float main() { return ((((1)))); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile(src, "fuzz")
		if err != nil {
			return
		}
		if !m.Finalized() {
			t.Fatal("Compile returned an unfinalized module")
		}
		// Re-finalizing must agree with the validator: Compile may not
		// hand out IR that fails its own checks.
		if err := m.Finalize(); err != nil {
			t.Fatalf("compiled module fails validation: %v", err)
		}
		// Execute small programs: storage stays tiny and the step budget
		// bounds runaway loops, so this cannot hang or exhaust memory.
		total := 0
		for _, g := range m.Globals {
			total += g.Elems
		}
		main, ok := m.Funcs["main"]
		if !ok || main.NumParams != 0 || total > 1<<16 {
			return
		}
		env := tracer.NewEnv(m)
		ip, err := tracer.New(m, env, tracer.Options{MaxSteps: 100_000})
		if err != nil {
			t.Fatalf("interp rejected compiled module: %v", err)
		}
		// Runtime errors (budget, bounds) are fine; panics are not.
		_, _ = ip.Call("main")
	})
}
