package minic

import "fmt"

// maxNestDepth bounds the recursive-descent depth — expression
// grouping, unary chains, and nested control flow all recurse, so an
// adversarial source ("(((((..." a few million deep, found by
// FuzzCompile) would otherwise exhaust the goroutine stack, which is a
// process-fatal crash rather than a recoverable error. Real programs
// sit at single-digit depths; the codegen recursion over the produced
// AST is bounded by the same budget.
const maxNestDepth = 256

type parser struct {
	toks  []token
	pos   int
	depth int
}

// enter charges one level of the nesting budget; every recursive
// production calls it (paired with leave) before descending.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNestDepth {
		return fmt.Errorf("minic:%d: nesting deeper than %d levels", p.cur().line, maxNestDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind != kind || t.text != text {
		return t, fmt.Errorf("minic:%d: expected %q, found %q", t.line, text, t.text)
	}
	return p.advance(), nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, fmt.Errorf("minic:%d: expected identifier, found %q", t.line, t.text)
	}
	return p.advance(), nil
}

func parse(toks []token) (*program, error) {
	p := &parser{toks: toks}
	prog := &program{}
	for p.cur().kind != tokEOF {
		if _, err := p.expect(tokKeyword, "float"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch p.cur().text {
		case "(":
			fd, err := p.parseFuncRest(name)
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, fd)
		default:
			gd, err := p.parseGlobalRest(name)
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, gd)
		}
	}
	return prog, nil
}

// parseGlobalRest parses the remainder of `float name ...;` at module
// scope: optional [size] and optional scalar initialiser.
func (p *parser) parseGlobalRest(name token) (*globalDecl, error) {
	g := &globalDecl{name: name.text, elems: 1, line: name.line}
	if p.accept(tokPunct, "[") {
		sz := p.cur()
		if sz.kind != tokNumber || sz.num != float64(int(sz.num)) || sz.num <= 0 {
			return nil, fmt.Errorf("minic:%d: array size must be a positive integer literal", sz.line)
		}
		p.advance()
		g.elems = int(sz.num)
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		v := p.cur()
		neg := false
		if v.kind == tokPunct && v.text == "-" {
			neg = true
			p.advance()
			v = p.cur()
		}
		if v.kind != tokNumber {
			return nil, fmt.Errorf("minic:%d: global initialiser must be a number literal", v.line)
		}
		p.advance()
		x := v.num
		if neg {
			x = -x
		}
		g.init = []float64{x}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) parseFuncRest(name token) (*funcDecl, error) {
	f := &funcDecl{name: name.text, line: name.line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, ")") {
		if len(f.params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "float"); err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, pn.text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, fmt.Errorf("minic:%d: unexpected end of file in block", p.cur().line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// parseStmtOrBlock allows both `stmt;` and `{ ... }` as control-flow
// bodies.
func (p *parser) parseStmtOrBlock() ([]stmt, error) {
	if p.cur().kind == tokPunct && p.cur().text == "{" {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []stmt{s}, nil
}

func (p *parser) parseStmt() (stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.kind == tokKeyword && t.text == "float":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &declStmt{name: name.text, line: name.line}
		if p.accept(tokPunct, "=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil

	case t.kind == tokKeyword && t.text == "if":
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := &ifStmt{cond: cond, then: then, line: t.line}
		if p.cur().kind == tokKeyword && p.cur().text == "else" {
			p.advance()
			els, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.els = els
		}
		return st, nil

	case t.kind == tokKeyword && t.text == "while":
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil

	case t.kind == tokKeyword && t.text == "for":
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		st := &forStmt{line: t.line}
		if !p.accept(tokPunct, ";") {
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			st.init = a
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(tokPunct, ";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.cond = cond
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(tokPunct, ")") {
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			st.post = a
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		st.body = body
		return st, nil

	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		st := &returnStmt{line: t.line}
		if !p.accept(tokPunct, ";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.value = e
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		return st, nil

	case t.kind == tokIdent:
		// Assignment or expression statement (call).
		if nxt := p.peek(); nxt.kind == tokPunct && (nxt.text == "=" || nxt.text == "[") {
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return a, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{value: e, line: t.line}, nil
	}
	return nil, fmt.Errorf("minic:%d: unexpected token %q", t.line, t.text)
}

// parseAssign parses `name = expr` or `name[expr] = expr` without the
// trailing semicolon (shared by statements and for-clauses).
func (p *parser) parseAssign() (*assignStmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	a := &assignStmt{name: name.text, line: name.line}
	if p.accept(tokPunct, "[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a.index = idx
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a.value = v
	return a, nil
}

// Expression parsing: precedence climbing.

var precedence = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := precedence[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &numberExpr{val: t.num}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: idx, line: t.line}, nil
		case p.cur().kind == tokPunct && p.cur().text == "(":
			p.advance()
			call := &callExpr{name: t.text, line: t.line}
			for !p.accept(tokPunct, ")") {
				if len(call.args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
			}
			return call, nil
		default:
			return &varExpr{name: t.text, line: t.line}, nil
		}
	}
	return nil, fmt.Errorf("minic:%d: unexpected token %q in expression", t.line, t.text)
}
