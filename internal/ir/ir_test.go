package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds: func f(n) { s := 0; while (n > 0) { s = s + n;
// n = n - 1 } return s } with globals out[1].
func buildCountdown(t *testing.T) *Module {
	t.Helper()
	m := NewModule("test")
	if err := m.AddGlobal(&Global{Name: "out", Elems: 1}); err != nil {
		t.Fatal(err)
	}
	// registers: 0=n (param), 1=s, 2=tmp, 3=zero
	f := &Func{Name: "f", NumParams: 1, NumRegs: 4}
	f.Blocks = []*Block{
		{ // b0: s=0; zero=0
			Label: "entry",
			Instrs: []Instr{
				{Op: OpConst, Dst: 1, Imm: 0},
				{Op: OpConst, Dst: 3, Imm: 0},
			},
			Term: Terminator{Kind: TermBr, Then: 1},
		},
		{ // b1: cond = n > 0
			Label: "cond",
			Instrs: []Instr{
				{Op: OpGt, Dst: 2, A: 0, B: 3},
			},
			Term: Terminator{Kind: TermCondBr, Cond: 2, Then: 2, Else: 3},
		},
		{ // b2: s += n; n -= 1
			Label: "body",
			Instrs: []Instr{
				{Op: OpAdd, Dst: 1, A: 1, B: 0},
				{Op: OpConst, Dst: 2, Imm: 1},
				{Op: OpSub, Dst: 0, A: 0, B: 2},
			},
			Term: Terminator{Kind: TermBr, Then: 1},
		},
		{ // b3: out[0] = s; ret s
			Label: "exit",
			Instrs: []Instr{
				{Op: OpConst, Dst: 2, Imm: 0},
				{Op: OpStore, Sym: "out", A: 2, B: 1},
			},
			Term: Terminator{Kind: TermRet, Cond: 1},
		},
	}
	f.Regions = []Region{{Start: 0, End: 4, Hint: "all"}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModuleFinalizeAssignsIDs(t *testing.T) {
	m := buildCountdown(t)
	if !m.Finalized() {
		t.Fatal("not finalized")
	}
	if m.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", m.NumBlocks())
	}
	f := m.Funcs["f"]
	for i, b := range f.Blocks {
		if b.GlobalID != i {
			t.Fatalf("block %d has id %d", i, b.GlobalID)
		}
	}
}

func TestModuleValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Module)
		want string
	}{
		{"unknown global", func(m *Module) {
			m.Funcs["f"].Blocks[3].Instrs[1].Sym = "ghost"
		}, "unknown global"},
		{"register out of range", func(m *Module) {
			m.Funcs["f"].Blocks[0].Instrs[0].Dst = 99
		}, "register 99"},
		{"branch out of range", func(m *Module) {
			m.Funcs["f"].Blocks[0].Term.Then = 9
		}, "branch target"},
		{"cond out of range", func(m *Module) {
			m.Funcs["f"].Blocks[1].Term.Cond = 77
		}, "register 77"},
		{"bad region", func(m *Module) {
			m.Funcs["f"].Regions = []Region{{Start: 2, End: 1}}
		}, "bad region"},
		{"unknown callee", func(m *Module) {
			b := m.Funcs["f"].Blocks[0]
			b.Instrs = append(b.Instrs, Instr{Op: OpCall, Dst: 1, Sym: "missing"})
		}, "unknown function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := buildCountdown(t)
			c.mut(m)
			err := m.Finalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestModuleDuplicates(t *testing.T) {
	m := NewModule("d")
	if err := m.AddGlobal(&Global{Name: "g", Elems: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddGlobal(&Global{Name: "g", Elems: 2}); err == nil {
		t.Fatal("duplicate global accepted")
	}
	if err := m.AddGlobal(&Global{Name: "z", Elems: 0}); err == nil {
		t.Fatal("zero-size global accepted")
	}
	f := &Func{Name: "f", NumRegs: 1, Blocks: []*Block{{Term: Terminator{Kind: TermRet, Cond: -1}}}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFunc(&Func{Name: "f"}); err == nil {
		t.Fatal("duplicate function accepted")
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Empty function rejected.
	m2 := NewModule("e")
	_ = m2.AddFunc(&Func{Name: "empty"})
	if err := m2.Finalize(); err == nil {
		t.Fatal("empty function accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpStore.String() != "store" {
		t.Fatal("op names wrong")
	}
	if Op(999).String() == "" {
		t.Fatal("unknown op name empty")
	}
}

func TestModuleString(t *testing.T) {
	s := buildCountdown(t).String()
	for _, want := range []string{"module test", "global out[1]", "func f/1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("listing missing %q:\n%s", want, s)
		}
	}
}
