// Package ir defines the compiler toolchain's intermediate
// representation: the stand-in for LLVM IR in the paper's automatic
// application conversion flow (Section II-E). Functions are lists of
// basic blocks holding three-address instructions over virtual
// registers; arrays and cross-function data live in module globals,
// mirroring how the paper's CodeExtractor-based outliner communicates
// through memory.
//
// All values are float64 (MiniC's numeric type); indices truncate.
package ir

import "fmt"

// Op is an instruction opcode.
type Op int

// Instruction opcodes.
const (
	OpConst Op = iota // dst = Imm
	OpMov             // dst = a
	OpAdd             // dst = a + b
	OpSub             // dst = a - b
	OpMul             // dst = a * b
	OpDiv             // dst = a / b
	OpMod             // dst = fmod(a, b)
	OpNeg             // dst = -a
	OpEq              // dst = a == b (0/1)
	OpNe              // dst = a != b
	OpLt              // dst = a < b
	OpLe              // dst = a <= b
	OpGt              // dst = a > b
	OpGe              // dst = a >= b
	OpAnd             // dst = (a != 0) && (b != 0)
	OpOr              // dst = (a != 0) || (b != 0)
	OpNot             // dst = a == 0
	OpSin             // dst = sin(a)
	OpCos             // dst = cos(a)
	OpSqrt            // dst = sqrt(a)
	OpAbs             // dst = |a|
	OpFloor           // dst = floor(a)
	OpLoad            // dst = global[Sym][int(a)]
	OpStore           // global[Sym][int(a)] = b
	OpCall            // dst = call Sym(Args...)
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpMod: "mod", OpNeg: "neg", OpEq: "eq", OpNe: "ne",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpAnd: "and", OpOr: "or",
	OpNot: "not", OpSin: "sin", OpCos: "cos", OpSqrt: "sqrt", OpAbs: "abs",
	OpFloor: "floor", OpLoad: "load", OpStore: "store", OpCall: "call",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one three-address instruction. Register operands are
// indices into the executing function's register file.
type Instr struct {
	Op   Op
	Dst  int
	A, B int
	Imm  float64
	Sym  string // global name (load/store) or callee (call)
	Args []int  // call arguments (registers)
}

// TermKind classifies block terminators.
type TermKind int

// Terminator kinds.
const (
	TermBr     TermKind = iota // unconditional jump to Then
	TermCondBr                 // if reg Cond != 0 jump Then else Else
	TermRet                    // return reg Cond (or 0 if Cond < 0)
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	Cond int // condition or return register; -1 for void return
	Then int // target block index within the function
	Else int
}

// Block is a basic block: straight-line instructions plus one
// terminator. GlobalID is assigned by Module.Finalize and identifies
// the block module-wide in dynamic traces.
type Block struct {
	Label    string
	Instrs   []Instr
	Term     Terminator
	GlobalID int
}

// Region marks a contiguous top-level source region of a function as
// [Start, End) block indices; the front end emits one region per
// top-level statement so the outliner can cut at single-entry/
// single-exit boundaries, like the paper's kernel/non-kernel grouping.
type Region struct {
	Start, End int
	// Hint carries the front end's name for the region (source
	// comment or statement kind), for diagnostics only.
	Hint string
}

// Func is an IR function.
type Func struct {
	Name string
	// NumParams registers are bound to call arguments; the register
	// file has NumRegs slots total.
	NumParams int
	NumRegs   int
	Blocks    []*Block
	Regions   []Region
}

// Global is a module-level array (scalars are length-1 arrays).
type Global struct {
	Name  string
	Elems int
	Init  []float64
}

// Module is a compilation unit.
type Module struct {
	Name    string
	Funcs   map[string]*Func
	Globals map[string]*Global
	// order preserves declaration order for deterministic output.
	FuncOrder   []string
	GlobalOrder []string

	finalized bool
	numBlocks int
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		Funcs:   map[string]*Func{},
		Globals: map[string]*Global{},
	}
}

// AddGlobal declares a global array.
func (m *Module) AddGlobal(g *Global) error {
	if g.Elems <= 0 {
		return fmt.Errorf("ir: global %q has %d elements", g.Name, g.Elems)
	}
	if _, dup := m.Globals[g.Name]; dup {
		return fmt.Errorf("ir: duplicate global %q", g.Name)
	}
	m.Globals[g.Name] = g
	m.GlobalOrder = append(m.GlobalOrder, g.Name)
	m.finalized = false
	return nil
}

// AddFunc installs a function.
func (m *Module) AddFunc(f *Func) error {
	if _, dup := m.Funcs[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	m.Funcs[f.Name] = f
	m.FuncOrder = append(m.FuncOrder, f.Name)
	m.finalized = false
	return nil
}

// Finalize assigns module-wide block IDs and validates structure. It
// must be called before execution or tracing and after any mutation.
func (m *Module) Finalize() error {
	id := 0
	for _, name := range m.FuncOrder {
		f := m.Funcs[name]
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %q has no blocks", name)
		}
		for bi, b := range f.Blocks {
			b.GlobalID = id
			id++
			if err := m.checkBlock(f, bi, b); err != nil {
				return err
			}
		}
		for _, r := range f.Regions {
			if r.Start < 0 || r.End > len(f.Blocks) || r.Start >= r.End {
				return fmt.Errorf("ir: %s: bad region [%d,%d)", name, r.Start, r.End)
			}
		}
	}
	m.numBlocks = id
	m.finalized = true
	return nil
}

func (m *Module) checkBlock(f *Func, bi int, b *Block) error {
	where := fmt.Sprintf("ir: %s block %d (%s)", f.Name, bi, b.Label)
	checkReg := func(r int) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("%s: register %d outside file of %d", where, r, f.NumRegs)
		}
		return nil
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case OpLoad, OpStore:
			if _, ok := m.Globals[in.Sym]; !ok {
				return fmt.Errorf("%s: unknown global %q", where, in.Sym)
			}
		case OpCall:
			if _, ok := m.Funcs[in.Sym]; !ok {
				return fmt.Errorf("%s: call to unknown function %q", where, in.Sym)
			}
			for _, a := range in.Args {
				if err := checkReg(a); err != nil {
					return err
				}
			}
		}
		if in.Op != OpStore {
			if err := checkReg(in.Dst); err != nil {
				return err
			}
		}
	}
	switch b.Term.Kind {
	case TermBr:
		if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) {
			return fmt.Errorf("%s: branch target %d out of range", where, b.Term.Then)
		}
	case TermCondBr:
		if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) ||
			b.Term.Else < 0 || b.Term.Else >= len(f.Blocks) {
			return fmt.Errorf("%s: conditional targets %d/%d out of range", where, b.Term.Then, b.Term.Else)
		}
		if err := checkReg(b.Term.Cond); err != nil {
			return err
		}
	case TermRet:
		if b.Term.Cond >= 0 {
			if err := checkReg(b.Term.Cond); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%s: unknown terminator", where)
	}
	return nil
}

// Finalized reports whether Finalize has run since the last mutation.
func (m *Module) Finalized() bool { return m.finalized }

// NumBlocks is the module-wide block count after Finalize.
func (m *Module) NumBlocks() int { return m.numBlocks }

// String renders a readable listing, useful in tests and tooling.
func (m *Module) String() string {
	s := fmt.Sprintf("module %s\n", m.Name)
	for _, gn := range m.GlobalOrder {
		g := m.Globals[gn]
		s += fmt.Sprintf("  global %s[%d]\n", g.Name, g.Elems)
	}
	for _, fn := range m.FuncOrder {
		f := m.Funcs[fn]
		s += fmt.Sprintf("  func %s/%d (%d regs, %d blocks)\n", f.Name, f.NumParams, f.NumRegs, len(f.Blocks))
		for bi, b := range f.Blocks {
			s += fmt.Sprintf("    b%d %s: %d instrs, term %v->%d/%d\n",
				bi, b.Label, len(b.Instrs), b.Term.Kind, b.Term.Then, b.Term.Else)
		}
	}
	return s
}
