// Open-loop arrival processes: Poisson and bursty (on-off, MMPP-style)
// generators that model sustained external traffic instead of the
// paper's fixed periodic injection. Each generator exists in two
// forms: a streaming core.ArrivalSource, which pairs with
// core.Emulator.RunStream so arbitrarily long horizons never
// materialise a trace in memory, and a frame-bounded slice builder for
// the classic batch Run path.
//
// Determinism: every application's stream draws from its own generator
// seeded by seedFor(Seed, app), so a trace is independent of the order
// the processes are listed in; the merged output follows the package
// ordering contract (time, then application name).
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// AppPoisson describes one application's open-loop Poisson process:
// independent exponential inter-arrival gaps at the given mean rate.
type AppPoisson struct {
	App       string
	JobsPerMS float64
}

// PoissonSpec is an open-loop Poisson workload description.
type PoissonSpec struct {
	// Frame bounds the horizon: arrivals land in [0, Frame). Zero
	// means unbounded — valid only for the streaming source.
	Frame vtime.Duration
	// Rates lists the per-application processes.
	Rates []AppPoisson
	// Seed drives the arrival draws (per-app sub-seeded).
	Seed int64
}

// AppBursty describes one application's on-off modulated Poisson
// (MMPP-style) process: the process alternates between an "on" state,
// during which arrivals follow a Poisson process at OnJobsPerMS, and a
// silent "off" state; both dwell times are exponentially distributed.
// Each on-window's arrival stream starts fresh at the window opening.
type AppBursty struct {
	App string
	// OnJobsPerMS is the arrival rate while bursting.
	OnJobsPerMS float64
	// MeanOnMS / MeanOffMS are the mean dwell times of the two states
	// in milliseconds. Every process starts in the on state at t=0.
	MeanOnMS  float64
	MeanOffMS float64
}

// BurstySpec is an open-loop bursty workload description.
type BurstySpec struct {
	// Frame bounds the horizon: arrivals land in [0, Frame). Zero
	// means unbounded — valid only for the streaming source.
	Frame vtime.Duration
	// Bursts lists the per-application processes.
	Bursts []AppBursty
	// Seed drives the state and arrival draws (per-app sub-seeded).
	Seed int64
}

// seedFor derives a per-application sub-seed, making each
// application's stream independent of the process-list order.
func seedFor(base int64, app string) int64 {
	h := fnv.New64a()
	h.Write([]byte(app))
	return base ^ int64(h.Sum64())
}

// appStream is one application's arrival stream inside an OpenLoop
// merge: the current head instant plus a draw function for the next.
type appStream struct {
	spec *appmodel.AppSpec
	draw func() (vtime.Time, bool)
	head vtime.Time
	ok   bool
}

func (s *appStream) advance() { s.head, s.ok = s.draw() }

// OpenLoop merges per-application arrival streams into one
// time-ordered source implementing core.ArrivalSource. Ties between
// applications resolve by name (the package ordering contract); a
// source must not be shared between concurrent runs and is exhausted
// after one pass.
type OpenLoop struct {
	streams []*appStream
}

// Next implements core.ArrivalSource.
func (o *OpenLoop) Next() (core.Arrival, bool) {
	best := -1
	for i, s := range o.streams {
		if !s.ok {
			continue
		}
		if best < 0 || s.head < o.streams[best].head ||
			(s.head == o.streams[best].head && s.spec.AppName < o.streams[best].spec.AppName) {
			best = i
		}
	}
	if best < 0 {
		return core.Arrival{}, false
	}
	s := o.streams[best]
	a := core.Arrival{Spec: s.spec, At: s.head}
	s.advance()
	return a, true
}

// expGap draws one exponential gap with the given mean (in
// nanoseconds), floored at 1ns so virtual time always advances.
func expGap(rng *rand.Rand, meanNS float64) vtime.Duration {
	g := vtime.Duration(rng.ExpFloat64() * meanNS)
	if g < 1 {
		g = 1
	}
	return g
}

// NewPoissonSource builds the streaming form of the Poisson workload.
func NewPoissonSource(specs map[string]*appmodel.AppSpec, ps PoissonSpec) (*OpenLoop, error) {
	if ps.Frame < 0 {
		return nil, fmt.Errorf("workload: negative time frame %v", ps.Frame)
	}
	if len(ps.Rates) == 0 {
		return nil, fmt.Errorf("workload: poisson spec lists no applications")
	}
	o := &OpenLoop{}
	for _, r := range ps.Rates {
		spec, ok := specs[r.App]
		if !ok {
			return nil, fmt.Errorf("workload: application %q not found in parsed library", r.App)
		}
		if r.JobsPerMS <= 0 {
			return nil, fmt.Errorf("workload: %s: non-positive rate %v jobs/ms", r.App, r.JobsPerMS)
		}
		rng := rand.New(rand.NewSource(seedFor(ps.Seed, r.App)))
		meanGapNS := float64(vtime.Millisecond) / r.JobsPerMS
		frame := ps.Frame
		t := vtime.Time(0)
		s := &appStream{spec: spec}
		s.draw = func() (vtime.Time, bool) {
			t = t.Add(expGap(rng, meanGapNS))
			if frame > 0 && t >= vtime.Time(frame) {
				return 0, false
			}
			return t, true
		}
		s.advance()
		o.streams = append(o.streams, s)
	}
	return o, nil
}

// Poisson builds a frame-bounded Poisson trace as a slice, for the
// batch Run path. The spec must carry a positive Frame.
func Poisson(specs map[string]*appmodel.AppSpec, ps PoissonSpec) ([]core.Arrival, error) {
	if ps.Frame <= 0 {
		return nil, fmt.Errorf("workload: non-positive time frame %v", ps.Frame)
	}
	src, err := NewPoissonSource(specs, ps)
	if err != nil {
		return nil, err
	}
	return drain(src), nil
}

// NewBurstySource builds the streaming form of the bursty workload.
func NewBurstySource(specs map[string]*appmodel.AppSpec, bs BurstySpec) (*OpenLoop, error) {
	if bs.Frame < 0 {
		return nil, fmt.Errorf("workload: negative time frame %v", bs.Frame)
	}
	if len(bs.Bursts) == 0 {
		return nil, fmt.Errorf("workload: bursty spec lists no applications")
	}
	o := &OpenLoop{}
	for _, b := range bs.Bursts {
		spec, ok := specs[b.App]
		if !ok {
			return nil, fmt.Errorf("workload: application %q not found in parsed library", b.App)
		}
		if b.OnJobsPerMS <= 0 {
			return nil, fmt.Errorf("workload: %s: non-positive burst rate %v jobs/ms", b.App, b.OnJobsPerMS)
		}
		if b.MeanOnMS <= 0 || b.MeanOffMS < 0 {
			return nil, fmt.Errorf("workload: %s: bad dwell means on=%vms off=%vms", b.App, b.MeanOnMS, b.MeanOffMS)
		}
		rng := rand.New(rand.NewSource(seedFor(bs.Seed, b.App)))
		meanGapNS := float64(vtime.Millisecond) / b.OnJobsPerMS
		meanOnNS := b.MeanOnMS * float64(vtime.Millisecond)
		meanOffNS := b.MeanOffMS * float64(vtime.Millisecond)
		frame := bs.Frame
		cur := vtime.Time(0)
		onEnd := cur.Add(expGap(rng, meanOnNS))
		s := &appStream{spec: spec}
		s.draw = func() (vtime.Time, bool) {
			for {
				if frame > 0 && cur >= vtime.Time(frame) {
					return 0, false
				}
				if cand := cur.Add(expGap(rng, meanGapNS)); cand < onEnd {
					cur = cand
					if frame > 0 && cur >= vtime.Time(frame) {
						return 0, false
					}
					return cur, true
				}
				// On-window exhausted: dwell off, open the next window.
				cur = onEnd.Add(expGap(rng, meanOffNS))
				onEnd = cur.Add(expGap(rng, meanOnNS))
			}
		}
		s.advance()
		o.streams = append(o.streams, s)
	}
	return o, nil
}

// Bursty builds a frame-bounded bursty trace as a slice, for the batch
// Run path. The spec must carry a positive Frame.
func Bursty(specs map[string]*appmodel.AppSpec, bs BurstySpec) ([]core.Arrival, error) {
	if bs.Frame <= 0 {
		return nil, fmt.Errorf("workload: non-positive time frame %v", bs.Frame)
	}
	src, err := NewBurstySource(specs, bs)
	if err != nil {
		return nil, err
	}
	return drain(src), nil
}

// drain materialises a bounded source. The merge already emits the
// package ordering contract, so no re-sort is needed.
func drain(src *OpenLoop) []core.Arrival {
	var out []core.Arrival
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// RatePoisson builds a PoissonSpec at the given aggregate rate using
// the paper's application mix (the open-loop analogue of RateTrace).
func RatePoisson(rateJobsPerMS float64, frame vtime.Duration, seed int64) (PoissonSpec, error) {
	if rateJobsPerMS <= 0 {
		return PoissonSpec{}, fmt.Errorf("workload: non-positive rate %v", rateJobsPerMS)
	}
	ps := PoissonSpec{Frame: frame, Seed: seed}
	for _, app := range mixApps() {
		ps.Rates = append(ps.Rates, AppPoisson{App: app, JobsPerMS: rateJobsPerMS * mixFractions[app]})
	}
	return ps, nil
}

// RateBursty builds a BurstySpec whose long-run average matches the
// given aggregate rate under the paper's application mix: every
// application bursts with the given mean on/off dwells, and the
// on-state rate is scaled up by the inverse duty cycle so the average
// over on and off periods lands on the requested rate.
func RateBursty(rateJobsPerMS float64, frame vtime.Duration, seed int64, meanOnMS, meanOffMS float64) (BurstySpec, error) {
	if rateJobsPerMS <= 0 {
		return BurstySpec{}, fmt.Errorf("workload: non-positive rate %v", rateJobsPerMS)
	}
	if meanOnMS <= 0 || meanOffMS < 0 {
		return BurstySpec{}, fmt.Errorf("workload: bad dwell means on=%vms off=%vms", meanOnMS, meanOffMS)
	}
	duty := meanOnMS / (meanOnMS + meanOffMS)
	bs := BurstySpec{Frame: frame, Seed: seed}
	for _, app := range mixApps() {
		bs.Bursts = append(bs.Bursts, AppBursty{
			App:         app,
			OnJobsPerMS: rateJobsPerMS * mixFractions[app] / duty,
			MeanOnMS:    meanOnMS,
			MeanOffMS:   meanOffMS,
		})
	}
	return bs, nil
}
