// Package workload implements the application handler's workload
// generation: validation mode (every instance injected at t=0) and
// performance mode (periodic injection with a probability over a test
// time frame), plus the specific injection-rate traces of the paper's
// Table II and the Odroid sweep of Figure 11.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// Validation builds a validation-mode workload: count instances of
// each named application, all injected at t=0, with the emulation
// finishing once all applications complete. Instance order is
// deterministic (sorted by application name).
func Validation(specs map[string]*appmodel.AppSpec, counts map[string]int) ([]core.Arrival, error) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []core.Arrival
	for _, name := range names {
		spec, ok := specs[name]
		if !ok {
			// The paper: "it will output an error if ... it has not
			// detected [the app] as referenced by its AppName".
			return nil, fmt.Errorf("workload: application %q not found in parsed library", name)
		}
		n := counts[name]
		if n < 0 {
			return nil, fmt.Errorf("workload: negative instance count %d for %q", n, name)
		}
		for i := 0; i < n; i++ {
			out = append(out, core.Arrival{Spec: spec, At: 0})
		}
	}
	return out, nil
}

// NeverInject is the explicit "no injection" probability sentinel: an
// AppInjection carrying it contributes zero arrivals (the application
// is still validated against the library). It exists so that "never"
// is distinguishable from an unset probability — a plain 0 is rejected
// as ambiguous, see AppInjection.Prob.
const NeverInject = -1

// AppInjection describes one application's performance-mode injection
// process: an instance is offered every Period with probability Prob.
type AppInjection struct {
	App    string
	Period vtime.Duration
	// Prob is the injection probability per period and must be set
	// explicitly: in (0, 1] to inject (the paper's case studies use
	// 1.0, deterministic periodic injection), or NeverInject for zero
	// arrivals. A zero value is rejected: historically it was silently
	// coerced to 1, so a trace requesting "never" injected every
	// period — now the caller must say which of the two it means.
	Prob float64
}

// PerfSpec is a performance-mode workload description.
type PerfSpec struct {
	// Frame is the injection time frame t_end; applications are
	// injected in [0, Frame).
	Frame vtime.Duration
	// Injections lists the per-application processes.
	Injections []AppInjection
	// Seed drives probabilistic injection when any Prob < 1.
	Seed int64
}

// Performance builds a performance-mode workload trace.
//
// Ordering contract: arrivals are sorted by time, with same-timestamp
// arrivals ordered by application name, so a trace is stable under
// reordering of the injection list. Same-app ties (duplicate injection
// entries) keep injection-list order. Probabilistic draws consume the
// seeded generator in injection-list order, so for Prob < 1 the
// realised arrival *set* still depends on the list order — only the
// ordering of whatever arrivals exist is list-order independent.
func Performance(specs map[string]*appmodel.AppSpec, ps PerfSpec) ([]core.Arrival, error) {
	if ps.Frame <= 0 {
		return nil, fmt.Errorf("workload: non-positive time frame %v", ps.Frame)
	}
	rng := rand.New(rand.NewSource(ps.Seed))
	var out []core.Arrival
	for _, inj := range ps.Injections {
		spec, ok := specs[inj.App]
		if !ok {
			return nil, fmt.Errorf("workload: application %q not found in parsed library", inj.App)
		}
		if inj.Period <= 0 {
			return nil, fmt.Errorf("workload: %s: non-positive period %v", inj.App, inj.Period)
		}
		prob := inj.Prob
		switch {
		case prob == NeverInject:
			continue
		case prob == 0:
			return nil, fmt.Errorf("workload: %s: injection probability unset; use a value in (0,1] or NeverInject", inj.App)
		case prob < 0 || prob > 1:
			return nil, fmt.Errorf("workload: %s: probability %v outside (0,1]", inj.App, prob)
		}
		for t := vtime.Time(0); t < vtime.Time(ps.Frame); t = t.Add(inj.Period) {
			if prob >= 1 || rng.Float64() < prob {
				out = append(out, core.Arrival{Spec: spec, At: t})
			}
		}
	}
	sortArrivals(out)
	return out, nil
}

// sortArrivals pins the trace ordering contract: by arrival time,
// ties broken by application name, same-app ties stable.
func sortArrivals(out []core.Arrival) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Spec.AppName < out[j].Spec.AppName
	})
}

// PeriodForCount returns the injection period that yields exactly
// `count` deterministic injections within the frame.
func PeriodForCount(frame vtime.Duration, count int) vtime.Duration {
	if count <= 0 {
		return frame + 1 // never fires within the frame
	}
	// Round the period up: a floored period would squeeze one extra
	// injection into the frame whenever frame/count is fractional.
	return vtime.Duration((int64(frame) + int64(count) - 1) / int64(count))
}

// Counts tallies a trace by application name.
func Counts(arrivals []core.Arrival) map[string]int {
	out := map[string]int{}
	for _, a := range arrivals {
		out[a.Spec.AppName]++
	}
	return out
}

// RateJobsPerMS computes the realised average injection rate of a
// trace over the frame, in jobs per millisecond (the x-axis of
// Figures 10 and 11).
func RateJobsPerMS(arrivals []core.Arrival, frame vtime.Duration) float64 {
	if frame <= 0 {
		return 0
	}
	return float64(len(arrivals)) / frame.Milliseconds()
}
