package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/vtime"
)

// TableIIFrame is the paper's performance-mode injection time frame
// (100 milliseconds).
const TableIIFrame = 100 * vtime.Millisecond

// TableIIRow is one row of the paper's Table II: an average injection
// rate and the per-application instance counts it produces.
type TableIIRow struct {
	RateJobsPerMS float64
	PulseDoppler  int
	RangeDetect   int
	WiFiTX        int
	WiFiRX        int
}

// Total is the row's total instance count.
func (r TableIIRow) Total() int {
	return r.PulseDoppler + r.RangeDetect + r.WiFiTX + r.WiFiRX
}

// TableII reproduces the paper's Table II rows exactly: the instance
// counts per application for each injection rate, driven by periodic
// injection with probability one. "Compared to Pulse Doppler, we
// choose higher injection frequencies for the range detection and
// WiFi applications because of their shorter execution time and
// smaller DAG."
var TableII = []TableIIRow{
	{1.71, 8, 123, 20, 20},
	{2.28, 10, 164, 27, 27},
	{3.42, 15, 245, 41, 41},
	{4.57, 18, 329, 55, 55},
	{6.92, 32, 495, 82, 83},
}

// TableIITrace builds the performance-mode trace for one Table II row.
func TableIITrace(specs map[string]*appmodel.AppSpec, row TableIIRow) ([]core.Arrival, error) {
	ps := PerfSpec{
		Frame: TableIIFrame,
		Injections: []AppInjection{
			{App: apps.NamePulseDoppler, Period: PeriodForCount(TableIIFrame, row.PulseDoppler), Prob: 1},
			{App: apps.NameRangeDetection, Period: PeriodForCount(TableIIFrame, row.RangeDetect), Prob: 1},
			{App: apps.NameWiFiTX, Period: PeriodForCount(TableIIFrame, row.WiFiTX), Prob: 1},
			{App: apps.NameWiFiRX, Period: PeriodForCount(TableIIFrame, row.WiFiRX), Prob: 1},
		},
	}
	trace, err := Performance(specs, ps)
	if err != nil {
		return nil, err
	}
	if got := Counts(trace); got[apps.NamePulseDoppler] != row.PulseDoppler ||
		got[apps.NameRangeDetection] != row.RangeDetect ||
		got[apps.NameWiFiTX] != row.WiFiTX || got[apps.NameWiFiRX] != row.WiFiRX {
		return nil, fmt.Errorf("workload: trace counts %v do not reproduce Table II row %+v", got, row)
	}
	return trace, nil
}

// Application mix fractions of the paper's workloads, derived from the
// densest Table II row; used to synthesise traces at arbitrary rates
// for the Odroid sweep (Figure 11 spans 4-18 jobs/ms).
var mixFractions = map[string]float64{
	apps.NamePulseDoppler:   32.0 / 692.0,
	apps.NameRangeDetection: 495.0 / 692.0,
	apps.NameWiFiTX:         82.0 / 692.0,
	apps.NameWiFiRX:         83.0 / 692.0,
}

// mixApps returns the mix's application names in deterministic
// (sorted) order.
func mixApps() []string {
	names := make([]string, 0, len(mixFractions))
	for app := range mixFractions {
		names = append(names, app)
	}
	sort.Strings(names)
	return names
}

// RateTrace builds a performance-mode trace at approximately the given
// average rate (jobs/ms) over the frame, using the paper's application
// mix.
func RateTrace(specs map[string]*appmodel.AppSpec, rateJobsPerMS float64, frame vtime.Duration) ([]core.Arrival, error) {
	if rateJobsPerMS <= 0 {
		return nil, fmt.Errorf("workload: non-positive rate %v", rateJobsPerMS)
	}
	totalJobs := rateJobsPerMS * frame.Milliseconds()
	var injections []AppInjection
	for _, app := range mixApps() {
		count := int(math.Round(totalJobs * mixFractions[app]))
		if count <= 0 {
			continue
		}
		injections = append(injections, AppInjection{
			App:    app,
			Period: PeriodForCount(frame, count),
			Prob:   1,
		})
	}
	return Performance(specs, PerfSpec{Frame: frame, Injections: injections})
}
