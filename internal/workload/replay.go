// Trace replay: a recorded arrival trace (internal/tracer.Record)
// played back as a core.ArrivalSource. Replay refuses to guess — any
// mismatch between the trace and the application library it is being
// replayed against (unknown application, fingerprint drift,
// out-of-order entries) panics at construction instead of silently
// truncating or reordering the workload.
package workload

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/tracer"
)

// ReplaySource plays a recorded trace back as a streaming arrival
// source. Like the open-loop sources it is exhausted after one pass
// and must not be shared between concurrent runs.
type ReplaySource struct {
	rec  *tracer.Record
	spec map[string]*appmodel.AppSpec
	pos  int
}

// NewReplaySource validates a recorded trace against an application
// library and the fingerprints of the modules the specs were converted
// from, then wraps it as a core.ArrivalSource.
//
// Validation is strict and panics on the first inconsistency: an entry
// naming an application the library doesn't carry, an entry whose
// module fingerprint disagrees with the library's (the trace was
// recorded against a different build), or arrival times that go
// backwards (a corrupt or hand-edited trace). A replayed experiment
// that silently dropped or reordered arrivals would still produce a
// plausible-looking report, which is exactly the failure mode this
// guards against.
//
// fingerprints maps application name to the expected module
// fingerprint; applications absent from the map skip the hash check
// (for traces of apps whose module is no longer at hand).
func NewReplaySource(rec *tracer.Record, specs map[string]*appmodel.AppSpec, fingerprints map[string]uint64) *ReplaySource {
	if rec == nil {
		panic("workload: replay of a nil trace record")
	}
	for i, e := range rec.Entries {
		spec, ok := specs[e.App]
		if !ok || spec == nil {
			panic(fmt.Sprintf("workload: trace entry %d names application %q, not in the replay library", i, e.App))
		}
		if want, ok := fingerprints[e.App]; ok && want != e.Hash {
			panic(fmt.Sprintf("workload: trace entry %d: %s recorded from module %016x, library carries %016x",
				i, e.App, e.Hash, want))
		}
		if i > 0 && e.At < rec.Entries[i-1].At {
			panic(fmt.Sprintf("workload: trace entry %d arrives at %v, before entry %d at %v",
				i, e.At, i-1, rec.Entries[i-1].At))
		}
	}
	return &ReplaySource{rec: rec, spec: specs}
}

// Next implements core.ArrivalSource.
func (r *ReplaySource) Next() (core.Arrival, bool) {
	if r.pos >= len(r.rec.Entries) {
		return core.Arrival{}, false
	}
	e := r.rec.Entries[r.pos]
	r.pos++
	return core.Arrival{Spec: r.spec[e.App], At: e.At}, true
}

// Len reports the total number of arrivals in the trace.
func (r *ReplaySource) Len() int { return len(r.rec.Entries) }
