package workload

import (
	"testing"

	"repro/internal/appmodel"
	"repro/internal/tracer"
)

func replayFixture() (*tracer.Record, map[string]*appmodel.AppSpec, map[string]uint64) {
	rec := &tracer.Record{
		PerInstrNS: 0.5,
		Entries: []tracer.Entry{
			{App: "alpha", Hash: 0xa1, Steps: 10, At: 0},
			{App: "beta", Hash: 0xb2, Steps: 20, At: 100},
			{App: "alpha", Hash: 0xa1, Steps: 10, At: 100},
			{App: "beta", Hash: 0xb2, Steps: 20, At: 350},
		},
	}
	specs := map[string]*appmodel.AppSpec{
		"alpha": {AppName: "alpha"},
		"beta":  {AppName: "beta"},
	}
	prints := map[string]uint64{"alpha": 0xa1, "beta": 0xb2}
	return rec, specs, prints
}

func TestReplayDeliversTraceInOrder(t *testing.T) {
	rec, specs, prints := replayFixture()
	src := NewReplaySource(rec, specs, prints)
	if src.Len() != len(rec.Entries) {
		t.Fatalf("Len %d, want %d", src.Len(), len(rec.Entries))
	}
	for i, e := range rec.Entries {
		a, ok := src.Next()
		if !ok {
			t.Fatalf("source dried up at entry %d", i)
		}
		if a.Spec != specs[e.App] || a.At != e.At {
			t.Fatalf("entry %d replayed as %s@%v, want %s@%v", i, a.Spec.AppName, a.At, e.App, e.At)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source yields past the end of the trace")
	}
}

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: replay constructed instead of panicking", what)
		}
	}()
	f()
}

// TestReplayPanicsOnMismatch pins the hard-failure contract: a trace
// that disagrees with the replay library must refuse to construct, not
// silently truncate or reorder the workload.
func TestReplayPanicsOnMismatch(t *testing.T) {
	rec, specs, prints := replayFixture()

	mustPanic(t, "nil record", func() { NewReplaySource(nil, specs, prints) })

	missing := map[string]*appmodel.AppSpec{"alpha": specs["alpha"]}
	mustPanic(t, "unknown application", func() { NewReplaySource(rec, missing, prints) })

	drifted := map[string]uint64{"alpha": 0xa1, "beta": 0xdead}
	mustPanic(t, "fingerprint drift", func() { NewReplaySource(rec, specs, drifted) })

	backwards, _, _ := replayFixture()
	backwards.Entries[2].At = 50 // before entry 1's 100
	mustPanic(t, "non-monotonic trace", func() { NewReplaySource(backwards, specs, prints) })
}

// TestReplaySkipsHashCheckWhenUnpinned: apps absent from the
// fingerprint map replay without a hash check (module not at hand).
func TestReplaySkipsHashCheckWhenUnpinned(t *testing.T) {
	rec, specs, _ := replayFixture()
	src := NewReplaySource(rec, specs, map[string]uint64{})
	if src.Len() != len(rec.Entries) {
		t.Fatal("unpinned replay dropped entries")
	}
}
