package workload

import (
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/vtime"
)

func TestPoissonTraceShape(t *testing.T) {
	specs := apps.Specs()
	ps := PoissonSpec{
		Frame: 100 * vtime.Millisecond,
		Rates: []AppPoisson{
			{App: apps.NameWiFiTX, JobsPerMS: 2},
			{App: apps.NameWiFiRX, JobsPerMS: 1},
		},
		Seed: 17,
	}
	trace, err := Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~300 arrivals over 100ms; allow a generous Poisson band.
	if len(trace) < 220 || len(trace) > 380 {
		t.Fatalf("poisson trace has %d arrivals, expected ~300", len(trace))
	}
	counts := Counts(trace)
	if counts[apps.NameWiFiTX] <= counts[apps.NameWiFiRX] {
		t.Fatalf("rate 2 app (%d) not denser than rate 1 app (%d)",
			counts[apps.NameWiFiTX], counts[apps.NameWiFiRX])
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Fatal("trace not time-sorted")
	}
	for _, a := range trace {
		if a.At < 0 || a.At >= vtime.Time(ps.Frame) {
			t.Fatalf("arrival %v outside [0, frame)", a.At)
		}
	}
}

func TestPoissonDeterministicAndOrderIndependent(t *testing.T) {
	specs := apps.Specs()
	ps := PoissonSpec{
		Frame: 50 * vtime.Millisecond,
		Rates: []AppPoisson{
			{App: apps.NameWiFiTX, JobsPerMS: 1.5},
			{App: apps.NameRangeDetection, JobsPerMS: 3},
		},
		Seed: 5,
	}
	a, err := Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Same spec again: identical trace.
	b, _ := Poisson(specs, ps)
	// Reversed process list: per-app sub-seeding must make the trace
	// independent of the listing order.
	ps.Rates = []AppPoisson{ps.Rates[1], ps.Rates[0]}
	c, err := Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string][]core.Arrival{"same spec": b, "reordered list": c} {
		if len(a) != len(other) {
			t.Fatalf("%s: %d vs %d arrivals", name, len(a), len(other))
		}
		for i := range a {
			if a[i].At != other[i].At || a[i].Spec != other[i].Spec {
				t.Fatalf("%s: arrival %d diverged", name, i)
			}
		}
	}
}

func TestPoissonSourceMatchesSlice(t *testing.T) {
	specs := apps.Specs()
	ps := PoissonSpec{
		Frame: 20 * vtime.Millisecond,
		Rates: []AppPoisson{{App: apps.NameWiFiTX, JobsPerMS: 4}},
		Seed:  9,
	}
	slice, err := Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		a, ok := src.Next()
		if !ok {
			if i != len(slice) {
				t.Fatalf("source ended after %d of %d arrivals", i, len(slice))
			}
			break
		}
		if i >= len(slice) || a != slice[i] {
			t.Fatalf("source arrival %d diverged from slice", i)
		}
	}
}

func TestPoissonUnboundedSource(t *testing.T) {
	specs := apps.Specs()
	src, err := NewPoissonSource(specs, PoissonSpec{
		Rates: []AppPoisson{{App: apps.NameWiFiTX, JobsPerMS: 1}},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An unbounded source just keeps going; pull well past any frame.
	var last vtime.Time
	for i := 0; i < 10_000; i++ {
		a, ok := src.Next()
		if !ok {
			t.Fatalf("unbounded source ended at %d", i)
		}
		if a.At < last {
			t.Fatalf("arrival %d went backwards: %v after %v", i, a.At, last)
		}
		last = a.At
	}
	if last < vtime.Time(5000*vtime.Millisecond) {
		t.Fatalf("10k arrivals at 1 job/ms only reached %v", last)
	}
}

func TestPoissonErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := Poisson(specs, PoissonSpec{Frame: 0, Rates: []AppPoisson{{App: apps.NameWiFiTX, JobsPerMS: 1}}}); err == nil {
		t.Fatal("zero frame accepted by slice builder")
	}
	if _, err := NewPoissonSource(specs, PoissonSpec{Rates: []AppPoisson{{App: "ghost", JobsPerMS: 1}}}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NewPoissonSource(specs, PoissonSpec{Rates: []AppPoisson{{App: apps.NameWiFiTX, JobsPerMS: 0}}}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewPoissonSource(specs, PoissonSpec{}); err == nil {
		t.Fatal("empty process list accepted")
	}
}

func TestBurstyTraceShape(t *testing.T) {
	specs := apps.Specs()
	bs := BurstySpec{
		Frame: 200 * vtime.Millisecond,
		Bursts: []AppBursty{{
			App:         apps.NameWiFiTX,
			OnJobsPerMS: 10,
			MeanOnMS:    2,
			MeanOffMS:   8,
		}},
		Seed: 23,
	}
	trace, err := Bursty(specs, bs)
	if err != nil {
		t.Fatal(err)
	}
	// Duty cycle 20% at 10 jobs/ms over 200ms → ~400 arrivals; wide
	// band because both dwell and arrival processes are random.
	if len(trace) < 150 || len(trace) > 750 {
		t.Fatalf("bursty trace has %d arrivals, expected ~400", len(trace))
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Fatal("trace not time-sorted")
	}
	for _, a := range trace {
		if a.At < 0 || a.At >= vtime.Time(bs.Frame) {
			t.Fatalf("arrival %v outside [0, frame)", a.At)
		}
	}
	// Burstiness: the trace's inter-arrival gaps must be far more
	// variable than a Poisson stream of the same average rate (index
	// of dispersion >> 1 for the gaps).
	gaps := make([]float64, 0, len(trace)-1)
	var mean float64
	for i := 1; i < len(trace); i++ {
		g := float64(trace[i].At - trace[i-1].At)
		gaps = append(gaps, g)
		mean += g
	}
	mean /= float64(len(gaps))
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv2 := varsum / float64(len(gaps)) / (mean * mean)
	if cv2 < 2 {
		t.Fatalf("squared coefficient of variation %.2f; on-off trace should be much burstier than Poisson (cv2=1)", cv2)
	}
}

func TestBurstyDeterministic(t *testing.T) {
	specs := apps.Specs()
	bs := BurstySpec{
		Frame: 50 * vtime.Millisecond,
		Bursts: []AppBursty{
			{App: apps.NameWiFiTX, OnJobsPerMS: 5, MeanOnMS: 1, MeanOffMS: 3},
			{App: apps.NameWiFiRX, OnJobsPerMS: 2, MeanOnMS: 2, MeanOffMS: 2},
		},
		Seed: 3,
	}
	a, err := Bursty(specs, bs)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Bursty(specs, bs)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d then %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
}

func TestBurstyErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := NewBurstySource(specs, BurstySpec{Bursts: []AppBursty{{App: "ghost", OnJobsPerMS: 1, MeanOnMS: 1}}}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NewBurstySource(specs, BurstySpec{Bursts: []AppBursty{{App: apps.NameWiFiTX, OnJobsPerMS: 0, MeanOnMS: 1}}}); err == nil {
		t.Fatal("zero burst rate accepted")
	}
	if _, err := NewBurstySource(specs, BurstySpec{Bursts: []AppBursty{{App: apps.NameWiFiTX, OnJobsPerMS: 1, MeanOnMS: 0}}}); err == nil {
		t.Fatal("zero on-dwell accepted")
	}
	if _, err := NewBurstySource(specs, BurstySpec{}); err == nil {
		t.Fatal("empty process list accepted")
	}
}

func TestRatePoissonMix(t *testing.T) {
	specs := apps.Specs()
	ps, err := RatePoisson(10, 100*vtime.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	got := RateJobsPerMS(trace, 100*vtime.Millisecond)
	if got < 8 || got > 12 {
		t.Fatalf("realised rate %.2f not ~10", got)
	}
	counts := Counts(trace)
	if counts[apps.NameRangeDetection] <= counts[apps.NamePulseDoppler] {
		t.Fatalf("mix inverted: %v", counts)
	}
	if _, err := RatePoisson(0, 100*vtime.Millisecond, 7); err == nil {
		t.Fatal("zero rate accepted")
	}
}
