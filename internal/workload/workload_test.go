package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/vtime"
)

func TestValidationWorkload(t *testing.T) {
	specs := apps.Specs()
	trace, err := Validation(specs, map[string]int{
		apps.NameRangeDetection: 3,
		apps.NameWiFiTX:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("trace length %d, want 4", len(trace))
	}
	for _, a := range trace {
		if a.At != 0 {
			t.Fatalf("validation arrival at %v, want 0", a.At)
		}
	}
	counts := Counts(trace)
	if counts[apps.NameRangeDetection] != 3 || counts[apps.NameWiFiTX] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValidationErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := Validation(specs, map[string]int{"ghost_app": 1}); err == nil {
		t.Fatal("unknown application accepted (paper requires a parse error)")
	}
	if _, err := Validation(specs, map[string]int{apps.NameWiFiTX: -1}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestPerformanceDeterministicPeriodic(t *testing.T) {
	specs := apps.Specs()
	trace, err := Performance(specs, PerfSpec{
		Frame: 10 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 1 * vtime.Millisecond, Prob: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 10 {
		t.Fatalf("got %d injections, want 10", len(trace))
	}
	for i, a := range trace {
		if a.At != vtime.Time(i)*vtime.Time(vtime.Millisecond) {
			t.Fatalf("injection %d at %v", i, a.At)
		}
	}
}

func TestPerformanceProbabilistic(t *testing.T) {
	specs := apps.Specs()
	ps := PerfSpec{
		Frame: 100 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 100 * vtime.Microsecond, Prob: 0.5},
		},
		Seed: 11,
	}
	trace, err := Performance(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	// ~1000 slots at p=0.5: expect roughly half.
	if len(trace) < 380 || len(trace) > 620 {
		t.Fatalf("probabilistic injection produced %d of ~500", len(trace))
	}
	// Determinism for a fixed seed.
	trace2, _ := Performance(specs, ps)
	if len(trace) != len(trace2) {
		t.Fatal("same seed produced different traces")
	}
	for i := range trace {
		if trace[i].At != trace2[i].At {
			t.Fatal("same seed produced different arrival times")
		}
	}
}

func TestPerformanceErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := Performance(specs, PerfSpec{Frame: 0}); err == nil {
		t.Fatal("zero frame accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: "ghost", Period: 1, Prob: 1}},
	}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 0}},
	}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 1, Prob: 2}},
	}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestArrivalsSorted(t *testing.T) {
	specs := apps.Specs()
	trace, err := Performance(specs, PerfSpec{
		Frame: 50 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 700 * vtime.Microsecond, Prob: 1},
			{App: apps.NameWiFiRX, Period: 1100 * vtime.Microsecond, Prob: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Fatal("trace not sorted by arrival")
	}
}

// Property: PeriodForCount yields exactly `count` periodic injections
// within the frame.
func TestPeriodForCountProperty(t *testing.T) {
	specs := apps.Specs()
	f := func(raw uint16) bool {
		count := int(raw%500) + 1
		frame := 100 * vtime.Millisecond
		trace, err := Performance(specs, PerfSpec{
			Frame: frame,
			Injections: []AppInjection{
				{App: apps.NameWiFiTX, Period: PeriodForCount(frame, count), Prob: 1},
			},
		})
		return err == nil && len(trace) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTableIIReproduced(t *testing.T) {
	specs := apps.Specs()
	for _, row := range TableII {
		trace, err := TableIITrace(specs, row)
		if err != nil {
			t.Fatalf("rate %.2f: %v", row.RateJobsPerMS, err)
		}
		counts := Counts(trace)
		if counts[apps.NamePulseDoppler] != row.PulseDoppler ||
			counts[apps.NameRangeDetection] != row.RangeDetect ||
			counts[apps.NameWiFiTX] != row.WiFiTX ||
			counts[apps.NameWiFiRX] != row.WiFiRX {
			t.Errorf("rate %.2f: counts %v != row %+v", row.RateJobsPerMS, counts, row)
		}
		// The realised rate matches the paper's column within rounding.
		rate := RateJobsPerMS(trace, TableIIFrame)
		if diff := rate - row.RateJobsPerMS; diff > 0.01 || diff < -0.01 {
			t.Errorf("realised rate %.3f != %.2f", rate, row.RateJobsPerMS)
		}
	}
}

func TestRateTrace(t *testing.T) {
	specs := apps.Specs()
	for _, rate := range []float64{4, 10, 18} {
		trace, err := RateTrace(specs, rate, TableIIFrame)
		if err != nil {
			t.Fatal(err)
		}
		got := RateJobsPerMS(trace, TableIIFrame)
		if got < rate*0.95 || got > rate*1.05 {
			t.Errorf("rate %v: realised %.2f", rate, got)
		}
		counts := Counts(trace)
		// The paper's mix: range detection dominates instance counts.
		if counts[apps.NameRangeDetection] <= counts[apps.NamePulseDoppler] {
			t.Errorf("rate %v: mix inverted: %v", rate, counts)
		}
	}
	if _, err := RateTrace(specs, 0, TableIIFrame); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestRateJobsPerMSDegenerate(t *testing.T) {
	if RateJobsPerMS(nil, 0) != 0 {
		t.Fatal("zero frame should give rate 0")
	}
}
