package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/vtime"
)

func TestValidationWorkload(t *testing.T) {
	specs := apps.Specs()
	trace, err := Validation(specs, map[string]int{
		apps.NameRangeDetection: 3,
		apps.NameWiFiTX:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("trace length %d, want 4", len(trace))
	}
	for _, a := range trace {
		if a.At != 0 {
			t.Fatalf("validation arrival at %v, want 0", a.At)
		}
	}
	counts := Counts(trace)
	if counts[apps.NameRangeDetection] != 3 || counts[apps.NameWiFiTX] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValidationErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := Validation(specs, map[string]int{"ghost_app": 1}); err == nil {
		t.Fatal("unknown application accepted (paper requires a parse error)")
	}
	if _, err := Validation(specs, map[string]int{apps.NameWiFiTX: -1}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestPerformanceDeterministicPeriodic(t *testing.T) {
	specs := apps.Specs()
	trace, err := Performance(specs, PerfSpec{
		Frame: 10 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 1 * vtime.Millisecond, Prob: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 10 {
		t.Fatalf("got %d injections, want 10", len(trace))
	}
	for i, a := range trace {
		if a.At != vtime.Time(i)*vtime.Time(vtime.Millisecond) {
			t.Fatalf("injection %d at %v", i, a.At)
		}
	}
}

func TestPerformanceProbabilistic(t *testing.T) {
	specs := apps.Specs()
	ps := PerfSpec{
		Frame: 100 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 100 * vtime.Microsecond, Prob: 0.5},
		},
		Seed: 11,
	}
	trace, err := Performance(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	// ~1000 slots at p=0.5: expect roughly half.
	if len(trace) < 380 || len(trace) > 620 {
		t.Fatalf("probabilistic injection produced %d of ~500", len(trace))
	}
	// Determinism for a fixed seed.
	trace2, _ := Performance(specs, ps)
	if len(trace) != len(trace2) {
		t.Fatal("same seed produced different traces")
	}
	for i := range trace {
		if trace[i].At != trace2[i].At {
			t.Fatal("same seed produced different arrival times")
		}
	}
}

func TestPerformanceErrors(t *testing.T) {
	specs := apps.Specs()
	if _, err := Performance(specs, PerfSpec{Frame: 0}); err == nil {
		t.Fatal("zero frame accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: "ghost", Period: 1, Prob: 1}},
	}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 0}},
	}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 1, Prob: 2}},
	}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

// TestPerformanceZeroProbRejected pins the Prob==0 fix: an unset (or
// explicit-zero) probability used to be silently coerced to 1, so a
// trace requesting "never" injected every period. Zero now errors and
// NeverInject is the explicit way to say "never".
func TestPerformanceZeroProbRejected(t *testing.T) {
	specs := apps.Specs()
	if _, err := Performance(specs, PerfSpec{
		Frame:      10 * vtime.Millisecond,
		Injections: []AppInjection{{App: apps.NameWiFiTX, Period: vtime.Millisecond}},
	}); err == nil {
		t.Fatal("unset probability accepted (historically coerced to 1)")
	}
}

func TestPerformanceNeverInject(t *testing.T) {
	specs := apps.Specs()
	trace, err := Performance(specs, PerfSpec{
		Frame: 10 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: vtime.Millisecond, Prob: NeverInject},
			{App: apps.NameWiFiRX, Period: 2 * vtime.Millisecond, Prob: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(trace)
	if counts[apps.NameWiFiTX] != 0 {
		t.Fatalf("NeverInject still injected %d instances", counts[apps.NameWiFiTX])
	}
	if counts[apps.NameWiFiRX] != 5 {
		t.Fatalf("co-listed app injected %d of 5", counts[apps.NameWiFiRX])
	}
	// The sentinel still validates its application name.
	if _, err := Performance(specs, PerfSpec{
		Frame:      vtime.Millisecond,
		Injections: []AppInjection{{App: "ghost", Period: 1, Prob: NeverInject}},
	}); err == nil {
		t.Fatal("NeverInject skipped app validation")
	}
}

// TestPerformanceTieOrdering pins the arrival ordering contract:
// same-timestamp arrivals are ordered by application name, so the
// trace is invariant under injection-list reordering.
func TestPerformanceTieOrdering(t *testing.T) {
	specs := apps.Specs()
	// Both apps fire at t=0, 2ms, 4ms, ... — every arrival is a tie.
	mk := func(first, second string) []core.Arrival {
		trace, err := Performance(specs, PerfSpec{
			Frame: 10 * vtime.Millisecond,
			Injections: []AppInjection{
				{App: first, Period: 2 * vtime.Millisecond, Prob: 1},
				{App: second, Period: 2 * vtime.Millisecond, Prob: 1},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a := mk(apps.NameWiFiTX, apps.NameWiFiRX)
	b := mk(apps.NameWiFiRX, apps.NameWiFiTX)
	if len(a) != len(b) {
		t.Fatalf("reordering changed the trace length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d depends on injection-list order: %s@%v vs %s@%v",
				i, a[i].Spec.AppName, a[i].At, b[i].Spec.AppName, b[i].At)
		}
		// Within a tie, names ascend.
		if i > 0 && a[i].At == a[i-1].At && a[i].Spec.AppName < a[i-1].Spec.AppName {
			t.Fatalf("tie at %v not name-ordered: %s before %s",
				a[i].At, a[i-1].Spec.AppName, a[i].Spec.AppName)
		}
	}
}

func TestArrivalsSorted(t *testing.T) {
	specs := apps.Specs()
	trace, err := Performance(specs, PerfSpec{
		Frame: 50 * vtime.Millisecond,
		Injections: []AppInjection{
			{App: apps.NameWiFiTX, Period: 700 * vtime.Microsecond, Prob: 1},
			{App: apps.NameWiFiRX, Period: 1100 * vtime.Microsecond, Prob: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		t.Fatal("trace not sorted by arrival")
	}
}

// Property: PeriodForCount yields exactly `count` periodic injections
// within the frame.
func TestPeriodForCountProperty(t *testing.T) {
	specs := apps.Specs()
	f := func(raw uint16) bool {
		count := int(raw%500) + 1
		frame := 100 * vtime.Millisecond
		trace, err := Performance(specs, PerfSpec{
			Frame: frame,
			Injections: []AppInjection{
				{App: apps.NameWiFiTX, Period: PeriodForCount(frame, count), Prob: 1},
			},
		})
		return err == nil && len(trace) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadBoundaries pins the frame-edge behaviour: a requested
// count beyond the frame's nanosecond capacity clamps the period at
// 1ns (yielding one arrival per nanosecond, not `count`), a period
// that divides the frame never lands an arrival exactly at Frame (the
// frame is half-open), and the realised rate stays meaningful on
// sub-millisecond frames.
func TestWorkloadBoundaries(t *testing.T) {
	specs := apps.Specs()

	t.Run("count beyond frame capacity", func(t *testing.T) {
		frame := vtime.Duration(10) // 10ns
		p := PeriodForCount(frame, 25)
		if p != 1 {
			t.Fatalf("period for count>frame = %v, want the 1ns floor", p)
		}
		trace, err := Performance(specs, PerfSpec{
			Frame:      frame,
			Injections: []AppInjection{{App: apps.NameWiFiTX, Period: p, Prob: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) != 10 {
			t.Fatalf("10ns frame at 1ns period injected %d (capacity is 10)", len(trace))
		}
	})

	t.Run("no arrival exactly at Frame", func(t *testing.T) {
		frame := 10 * vtime.Millisecond
		trace, err := Performance(specs, PerfSpec{
			Frame:      frame,
			Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 5 * vtime.Millisecond, Prob: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) != 2 {
			t.Fatalf("dividing period injected %d of 2", len(trace))
		}
		for _, a := range trace {
			if a.At >= vtime.Time(frame) {
				t.Fatalf("arrival at %v >= frame %v; the frame is half-open", a.At, frame)
			}
		}
		// Period == frame: exactly the t=0 arrival.
		one, err := Performance(specs, PerfSpec{
			Frame:      frame,
			Injections: []AppInjection{{App: apps.NameWiFiTX, Period: frame, Prob: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != 1 || one[0].At != 0 {
			t.Fatalf("period==frame trace: %v", one)
		}
	})

	t.Run("rate on sub-millisecond frame", func(t *testing.T) {
		frame := 500 * vtime.Microsecond
		trace, err := Performance(specs, PerfSpec{
			Frame:      frame,
			Injections: []AppInjection{{App: apps.NameWiFiTX, Period: 100 * vtime.Microsecond, Prob: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) != 5 {
			t.Fatalf("sub-ms frame injected %d of 5", len(trace))
		}
		got := RateJobsPerMS(trace, frame)
		if got != 10 {
			t.Fatalf("RateJobsPerMS on 0.5ms frame = %v, want 10", got)
		}
	})
}

func TestTableIIReproduced(t *testing.T) {
	specs := apps.Specs()
	for _, row := range TableII {
		trace, err := TableIITrace(specs, row)
		if err != nil {
			t.Fatalf("rate %.2f: %v", row.RateJobsPerMS, err)
		}
		counts := Counts(trace)
		if counts[apps.NamePulseDoppler] != row.PulseDoppler ||
			counts[apps.NameRangeDetection] != row.RangeDetect ||
			counts[apps.NameWiFiTX] != row.WiFiTX ||
			counts[apps.NameWiFiRX] != row.WiFiRX {
			t.Errorf("rate %.2f: counts %v != row %+v", row.RateJobsPerMS, counts, row)
		}
		// The realised rate matches the paper's column within rounding.
		rate := RateJobsPerMS(trace, TableIIFrame)
		if diff := rate - row.RateJobsPerMS; diff > 0.01 || diff < -0.01 {
			t.Errorf("realised rate %.3f != %.2f", rate, row.RateJobsPerMS)
		}
	}
}

func TestRateTrace(t *testing.T) {
	specs := apps.Specs()
	for _, rate := range []float64{4, 10, 18} {
		trace, err := RateTrace(specs, rate, TableIIFrame)
		if err != nil {
			t.Fatal(err)
		}
		got := RateJobsPerMS(trace, TableIIFrame)
		if got < rate*0.95 || got > rate*1.05 {
			t.Errorf("rate %v: realised %.2f", rate, got)
		}
		counts := Counts(trace)
		// The paper's mix: range detection dominates instance counts.
		if counts[apps.NameRangeDetection] <= counts[apps.NamePulseDoppler] {
			t.Errorf("rate %v: mix inverted: %v", rate, counts)
		}
	}
	if _, err := RateTrace(specs, 0, TableIIFrame); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestRateJobsPerMSDegenerate(t *testing.T) {
	if RateJobsPerMS(nil, 0) != 0 {
		t.Fatal("zero frame should give rate 0")
	}
}
