package kernels

import "fmt"

// Generic runfunc wrappers. Application-specific shared objects
// (range_detection.so, wifi_tx.so, ...) live in package apps; the
// symbols here form the framework's common DSP library ("dsp.so") and
// the accelerator interface library ("fft_accel.so") that nodes
// reference through per-platform shared_object overrides, as the
// FFT_0 node of Listing 1 does.
//
// Argument conventions for the generic symbols:
//
//	arg0: n_samples (scalar int32) — number of complex samples
//	arg1: primary buffer (complex64 heap)
//	arg2: secondary buffer where applicable (operand or destination)
const (
	// SharedObjectDSP is the common DSP library namespace.
	SharedObjectDSP = "dsp.so"
	// SharedObjectFFTAccel is the accelerator interface namespace the
	// paper demonstrates with its ZCU102 FFT IP.
	SharedObjectFFTAccel = "fft_accel.so"
)

func argComplexN(ctx *Context, idx int, n int) ([]complex64, error) {
	v, err := ctx.Arg(idx)
	if err != nil {
		return nil, err
	}
	cs := v.Complex64s()
	if len(cs) < n {
		return nil, fmt.Errorf("kernels: %s: argument %d holds %d complex samples, need %d",
			ctx.Node, idx, len(cs), n)
	}
	return cs[:n], nil
}

func argN(ctx *Context) (int, error) {
	v, err := ctx.Arg(0)
	if err != nil {
		return 0, err
	}
	n := int(v.Int32())
	if n <= 0 {
		return 0, fmt.Errorf("kernels: %s: n_samples = %d", ctx.Node, n)
	}
	return n, nil
}

// fftForward is the in-place FFT over arg1[0:n].
func fftForward(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	return FFTInPlace(buf)
}

func fftInverse(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	return IFFTInPlace(buf)
}

func dftNaive(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	src, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	dst, err := argComplexN(ctx, 2, n)
	if err != nil {
		return err
	}
	return DFTNaive(dst, src)
}

func idftNaive(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	src, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	dst, err := argComplexN(ctx, 2, n)
	if err != nil {
		return err
	}
	return IDFTNaive(dst, src)
}

func conj(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	ConjInPlace(buf)
	return nil
}

func vecMulConj(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	a, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	b, err := argComplexN(ctx, 2, n)
	if err != nil {
		return err
	}
	dst, err := argComplexN(ctx, 3, n)
	if err != nil {
		return err
	}
	return VecMulConj(dst, a, b)
}

func fftShift(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	FFTShift(buf)
	return nil
}

// maxAbs writes the argmax index into arg2 (int32 scalar) and the
// magnitude into arg3 (float64 scalar).
func maxAbs(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	idxV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	magV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	idx, mag := MaxAbsIndex(buf)
	idxV.SetInt32(int32(idx))
	magV.SetFloat64(mag)
	return nil
}

func lfmChirp(ctx *Context) error {
	n, err := argN(ctx)
	if err != nil {
		return err
	}
	buf, err := argComplexN(ctx, 1, n)
	if err != nil {
		return err
	}
	LFMChirp(buf, 0.5)
	return nil
}

// registerSDRKernels populates a registry with the generic library.
// The accelerator namespace registers functionally identical
// transforms — on real silicon the accelerator computes the same FFT;
// only the timing model (DMA + accelerator clock) differs, which the
// resource manager owns.
func registerSDRKernels(r *Registry) {
	type entry struct {
		so, name string
		f        Func
	}
	for _, e := range []entry{
		{SharedObjectDSP, "fft", fftForward},
		{SharedObjectDSP, "ifft", fftInverse},
		{SharedObjectDSP, "dft_naive", dftNaive},
		{SharedObjectDSP, "idft_naive", idftNaive},
		{SharedObjectDSP, "conj", conj},
		{SharedObjectDSP, "vec_mul_conj", vecMulConj},
		{SharedObjectDSP, "fft_shift", fftShift},
		{SharedObjectDSP, "max_abs", maxAbs},
		{SharedObjectDSP, "lfm_chirp", lfmChirp},
		{SharedObjectFFTAccel, "fft_forward_accel", fftForward},
		{SharedObjectFFTAccel, "fft_inverse_accel", fftInverse},
	} {
		r.MustRegister(e.so, e.name, e.f)
	}
}
