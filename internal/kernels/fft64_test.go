package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex128(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFT64RejectsNonPow2(t *testing.T) {
	if err := FFT64InPlace(make([]complex128, 5)); err == nil {
		t.Fatal("accepted length 5")
	}
	if err := IFFT64InPlace(nil); err == nil {
		t.Fatal("accepted empty input")
	}
	if err := FFT64InPlace(make([]complex128, 1)); err != nil {
		t.Fatalf("length 1 should be identity: %v", err)
	}
}

func TestFFT64MatchesComplex64Path(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 128
	d64 := randComplex128(rng, n)
	d32 := make([]complex64, n)
	for i, c := range d64 {
		d32[i] = complex64(c)
	}
	if err := FFT64InPlace(d64); err != nil {
		t.Fatal(err)
	}
	if err := FFTInPlace(d32); err != nil {
		t.Fatal(err)
	}
	for i := range d64 {
		if cmplx.Abs(d64[i]-complex128(d32[i])) > 1e-2 {
			t.Fatalf("bin %d: %v vs %v", i, d64[i], d32[i])
		}
	}
}

// Property: the complex128 round trip is the identity to float64
// precision.
func TestFFT64RoundTripProperty(t *testing.T) {
	f := func(seed int64, szExp uint8) bool {
		n := 1 << (szExp%9 + 1) // 2..512
		rng := rand.New(rand.NewSource(seed))
		orig := randComplex128(rng, n)
		x := append([]complex128(nil), orig...)
		if FFT64InPlace(x) != nil {
			return false
		}
		if IFFT64InPlace(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT64ImpulseAndTone(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT64InPlace(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", i, v)
		}
	}
	n := 32
	tone := make([]complex128, n)
	k := 5
	for i := range tone {
		ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
		tone[i] = cmplx.Exp(complex(0, ang))
	}
	if err := FFT64InPlace(tone); err != nil {
		t.Fatal(err)
	}
	for i := range tone {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(tone[i])-want) > 1e-9 {
			t.Fatalf("tone bin %d magnitude %v, want %v", i, cmplx.Abs(tone[i]), want)
		}
	}
}
