package kernels

import (
	"fmt"
	"math"
	"math/bits"
)

// complex128 variants of the spectral kernels, used by the automatic
// conversion toolchain whose interpreter state is float64 (Case Study
// 4's optimised substitutions operate on the outlined program's
// re/im arrays).

// FFT64InPlace is the radix-2 in-place FFT over complex128 data.
func FFT64InPlace(x []complex128) error { return fft64InPlace(x, false) }

// IFFT64InPlace is the normalised inverse transform.
func IFFT64InPlace(x []complex128) error { return fft64InPlace(x, true) }

func fft64InPlace(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("kernels: FFT64 length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				angle := step * float64(k)
				w := complex(math.Cos(angle), math.Sin(angle))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}
