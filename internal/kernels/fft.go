package kernels

import (
	"fmt"
	"math"
	"math/bits"
)

// This file holds the spectral kernels: radix-2 FFT/IFFT, the naive
// DFT/IDFT the compilation toolchain detects and replaces (Case Study
// 4), and FFT-shift. Data is interleaved complex64, the wire format
// the applications exchange through instance memory; arithmetic runs
// in float64 internally for accuracy.

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFTInPlace computes the in-place radix-2 decimation-in-time FFT of
// x. len(x) must be a power of two.
func FFTInPlace(x []complex64) error { return fftInPlace(x, false) }

// IFFTInPlace computes the inverse FFT, normalised by 1/n, so that
// IFFT(FFT(x)) == x up to rounding.
func IFFTInPlace(x []complex64) error { return fftInPlace(x, true) }

func fftInPlace(x []complex64, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("kernels: FFT length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				angle := step * float64(k)
				wr, wi := math.Cos(angle), math.Sin(angle)
				a := x[start+k]
				b := x[start+k+half]
				br := float64(real(b))*wr - float64(imag(b))*wi
				bi := float64(real(b))*wi + float64(imag(b))*wr
				x[start+k] = complex(float32(float64(real(a))+br), float32(float64(imag(a))+bi))
				x[start+k+half] = complex(float32(float64(real(a))-br), float32(float64(imag(a))-bi))
			}
		}
	}
	if inverse {
		inv := float32(1.0 / float64(n))
		for i := range x {
			x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
		}
	}
	return nil
}

// DFTNaive computes dst[k] = sum_j src[j]*exp(-2*pi*i*j*k/n) with the
// O(n^2) textbook double loop. It is the reference the FFT is tested
// against, and the "naive for loop-based DFT" that Case Study 4's
// toolchain recognises and replaces with the FFT.
func DFTNaive(dst, src []complex64) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("kernels: DFT dst length %d != src length %d", len(dst), n)
	}
	for k := 0; k < n; k++ {
		var sr, si float64
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			wr, wi := math.Cos(angle), math.Sin(angle)
			xr, xi := float64(real(src[j])), float64(imag(src[j]))
			sr += xr*wr - xi*wi
			si += xr*wi + xi*wr
		}
		dst[k] = complex(float32(sr), float32(si))
	}
	return nil
}

// IDFTNaive is the O(n^2) inverse transform with 1/n normalisation.
func IDFTNaive(dst, src []complex64) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("kernels: IDFT dst length %d != src length %d", len(dst), n)
	}
	for k := 0; k < n; k++ {
		var sr, si float64
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			wr, wi := math.Cos(angle), math.Sin(angle)
			xr, xi := float64(real(src[j])), float64(imag(src[j]))
			sr += xr*wr - xi*wi
			si += xr*wi + xi*wr
		}
		dst[k] = complex(float32(sr/float64(n)), float32(si/float64(n)))
	}
	return nil
}

// FFTShift rotates the spectrum by n/2 in place, moving the zero
// frequency bin to the centre (the pulse Doppler post-processing step
// in Figure 8).
func FFTShift(x []complex64) {
	n := len(x)
	if n < 2 {
		return
	}
	h := n / 2
	if n%2 == 0 {
		for i := 0; i < h; i++ {
			x[i], x[i+h] = x[i+h], x[i]
		}
		return
	}
	// Odd length: rotate left by h+... use a simple rotation.
	rotate(x, h+1)
}

func rotate(x []complex64, k int) {
	n := len(x)
	k %= n
	if k == 0 {
		return
	}
	reverse(x[:k])
	reverse(x[k:])
	reverse(x)
}

func reverse(x []complex64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}
