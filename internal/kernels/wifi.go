package kernels

import (
	"fmt"
	"math"
)

// WiFi baseband kernels (Figure 7): scrambler, convolutional encoder
// and Viterbi decoder, block interleaver, QPSK modulation, pilot
// handling, CRC, the AWGN channel connecting transmitter to receiver,
// and the receiver's matched filter / payload extraction.
//
// Bits travel as []byte with values 0/1 (one bit per byte), the
// representation the original C kernels use for clarity; symbols are
// interleaved complex64.

// --- scrambler ------------------------------------------------------------

// ScramblerSeed is the default initial LFSR state (non-zero).
const ScramblerSeed byte = 0x5D

// Scramble XORs src with the output of the 802.11 frame-synchronous
// scrambler LFSR (x^7 + x^4 + 1) seeded with seed, writing to dst.
// Applying it twice with the same seed restores the input, so the
// receiver's descrambler is the same kernel.
func Scramble(dst, src []byte, seed byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("kernels: Scramble length mismatch %d/%d", len(dst), len(src))
	}
	state := seed & 0x7F
	if state == 0 {
		state = ScramblerSeed
	}
	for i, b := range src {
		if b > 1 {
			return fmt.Errorf("kernels: Scramble input %d at index %d is not a bit", b, i)
		}
		fb := ((state >> 6) ^ (state >> 3)) & 1
		state = ((state << 1) | fb) & 0x7F
		dst[i] = b ^ fb
	}
	return nil
}

// --- convolutional code ---------------------------------------------------

// Industry-standard K=7 rate-1/2 generators (octal 133, 171).
const (
	convG0 = 0x5B // 133 octal = 1011011b
	convG1 = 0x79 // 171 octal = 1111001b
	// ConvK is the constraint length.
	ConvK = 7
	// ConvTail is the number of zero tail bits that flush the encoder
	// back to state zero.
	ConvTail = ConvK - 1
)

func parity7(x int) byte {
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// ConvEncode encodes src (bits) at rate 1/2 into dst, which must be
// exactly twice as long. Callers append ConvTail zero bits to src to
// terminate the trellis.
func ConvEncode(dst, src []byte) error {
	if len(dst) != 2*len(src) {
		return fmt.Errorf("kernels: ConvEncode dst length %d != 2*%d", len(dst), len(src))
	}
	window := 0 // 7-bit window, newest bit at LSB
	for i, b := range src {
		if b > 1 {
			return fmt.Errorf("kernels: ConvEncode input %d at index %d is not a bit", b, i)
		}
		window = ((window << 1) | int(b)) & 0x7F
		dst[2*i] = parity7(window & convG0)
		dst[2*i+1] = parity7(window & convG1)
	}
	return nil
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of
// a rate-1/2 K=7 stream. src holds 2n coded bits; dst receives n
// decoded bits. The decoder assumes the encoder was flushed with tail
// zeros (trellis terminates in state 0) and falls back to the best
// surviving state when it was not.
func ViterbiDecode(dst, src []byte) error {
	if len(src)%2 != 0 {
		return fmt.Errorf("kernels: ViterbiDecode: odd coded length %d", len(src))
	}
	n := len(src) / 2
	if len(dst) != n {
		return fmt.Errorf("kernels: ViterbiDecode dst length %d != %d", len(dst), n)
	}
	if n == 0 {
		return nil
	}
	// State = the encoder's last 6 input bits, newest at LSB. A step
	// with input b moves state s to ns = ((s<<1)|b) & 63 emitting the
	// parities of the 7-bit window (s<<1)|b. Consequently the low bit
	// of ns IS the input bit, and the two branches into ns come from
	// predecessors (ns>>1) and (ns>>1)|32 — they differ only in the
	// oldest window bit. The decision array therefore records which
	// predecessor's top bit survived.
	const nStates = 1 << (ConvK - 1)
	const inf = math.MaxInt32 / 2
	metric := make([]int32, nStates)
	next := make([]int32, nStates)
	for s := 1; s < nStates; s++ {
		metric[s] = inf
	}
	decisions := make([][]byte, n)
	for t := 0; t < n; t++ {
		r0, r1 := src[2*t], src[2*t+1]
		if r0 > 1 || r1 > 1 {
			return fmt.Errorf("kernels: ViterbiDecode input at step %d is not a bit", t)
		}
		dec := make([]byte, nStates)
		for ns := 0; ns < nStates; ns++ {
			b := ns & 1
			base := ns >> 1
			bestM := int32(inf)
			var bestTop byte
			for top := 0; top < 2; top++ {
				s := base | (top << 5)
				if metric[s] >= inf {
					continue
				}
				window := (s << 1) | b
				bm := int32(0)
				if parity7(window&convG0) != r0 {
					bm++
				}
				if parity7(window&convG1) != r1 {
					bm++
				}
				if m := metric[s] + bm; m < bestM {
					bestM = m
					bestTop = byte(top)
				}
			}
			next[ns] = bestM
			dec[ns] = bestTop
		}
		metric, next = next, metric
		decisions[t] = dec
	}
	// Terminated trellis ends in state 0; otherwise take the best
	// surviving state.
	state := 0
	if metric[0] >= inf {
		best := int32(inf)
		for s := 0; s < nStates; s++ {
			if metric[s] < best {
				best, state = metric[s], s
			}
		}
	}
	for t := n - 1; t >= 0; t-- {
		dst[t] = byte(state & 1)
		state = (state >> 1) | int(decisions[t][state])<<5
	}
	return nil
}
