package kernels

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

// --- scrambler -----------------------------------------------------------

func TestScrambleInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := randBits(rng, 200)
	mid := make([]byte, len(src))
	out := make([]byte, len(src))
	if err := Scramble(mid, src, ScramblerSeed); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mid, src) {
		t.Fatal("scrambler left the data unchanged")
	}
	if err := Scramble(out, mid, ScramblerSeed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("descramble(scramble(x)) != x")
	}
}

func TestScrambleProperty(t *testing.T) {
	f := func(data []byte, seed byte) bool {
		src := make([]byte, len(data))
		for i := range data {
			src[i] = data[i] & 1
		}
		mid := make([]byte, len(src))
		out := make([]byte, len(src))
		if Scramble(mid, src, seed) != nil {
			return false
		}
		if Scramble(out, mid, seed) != nil {
			return false
		}
		return bytes.Equal(out, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleErrors(t *testing.T) {
	if err := Scramble(make([]byte, 2), make([]byte, 3), 1); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if err := Scramble(make([]byte, 1), []byte{2}, 1); err == nil {
		t.Fatal("accepted non-bit input")
	}
	// A zero seed falls back to the default rather than emitting the
	// all-zero keystream (which would make scrambling a no-op).
	src := make([]byte, 64)
	out := make([]byte, 64)
	if err := Scramble(out, src, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, src) {
		t.Fatal("zero seed produced the identity keystream")
	}
}

// --- convolutional code -----------------------------------------------------

func encodeWithTail(t *testing.T, payload []byte) []byte {
	t.Helper()
	src := append(append([]byte(nil), payload...), make([]byte, ConvTail)...)
	dst := make([]byte, 2*len(src))
	if err := ConvEncode(dst, src); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestViterbiRecoversCleanStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 8, 64, 200} {
		payload := randBits(rng, n)
		coded := encodeWithTail(t, payload)
		decoded := make([]byte, n+ConvTail)
		if err := ViterbiDecode(decoded, coded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(decoded[:n], payload) {
			t.Fatalf("n=%d: clean decode mismatch", n)
		}
		for _, b := range decoded[n:] {
			if b != 0 {
				t.Fatalf("n=%d: tail bits not zero: %v", n, decoded[n:])
			}
		}
	}
}

func TestViterbiCorrectsBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	payload := randBits(rng, 64)
	coded := encodeWithTail(t, payload)
	// Flip three well-separated coded bits; a K=7 code corrects them.
	for _, pos := range []int{10, 60, 120} {
		coded[pos] ^= 1
	}
	decoded := make([]byte, 64+ConvTail)
	if err := ViterbiDecode(decoded, coded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded[:64], payload) {
		t.Fatal("Viterbi failed to correct 3 separated bit errors")
	}
}

// Property: decode(encode(x)) == x for random payloads (clean channel).
func TestViterbiRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 96 {
			data = data[:96]
		}
		payload := make([]byte, len(data))
		for i := range data {
			payload[i] = data[i] & 1
		}
		src := append(append([]byte(nil), payload...), make([]byte, ConvTail)...)
		coded := make([]byte, 2*len(src))
		if ConvEncode(coded, src) != nil {
			return false
		}
		decoded := make([]byte, len(src))
		if ViterbiDecode(decoded, coded) != nil {
			return false
		}
		return bytes.Equal(decoded[:len(payload)], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiUnterminated(t *testing.T) {
	// Without tail flush the decoder falls back to the best surviving
	// state; early bits still decode correctly.
	payload := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1}
	coded := make([]byte, 2*len(payload))
	if err := ConvEncode(coded, payload); err != nil {
		t.Fatal(err)
	}
	decoded := make([]byte, len(payload))
	if err := ViterbiDecode(decoded, coded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded[:8], payload[:8]) {
		t.Fatalf("unterminated decode lost early bits: %v vs %v", decoded[:8], payload[:8])
	}
}

func TestConvCodeErrors(t *testing.T) {
	if err := ConvEncode(make([]byte, 3), make([]byte, 2)); err == nil {
		t.Fatal("ConvEncode accepted bad dst length")
	}
	if err := ConvEncode(make([]byte, 2), []byte{5}); err == nil {
		t.Fatal("ConvEncode accepted non-bit")
	}
	if err := ViterbiDecode(make([]byte, 1), make([]byte, 3)); err == nil {
		t.Fatal("ViterbiDecode accepted odd coded length")
	}
	if err := ViterbiDecode(make([]byte, 2), make([]byte, 2)); err == nil {
		t.Fatal("ViterbiDecode accepted bad dst length")
	}
	if err := ViterbiDecode(make([]byte, 1), []byte{3, 0}); err == nil {
		t.Fatal("ViterbiDecode accepted non-bit input")
	}
	if err := ViterbiDecode([]byte{}, []byte{}); err != nil {
		t.Fatalf("empty decode should be a no-op: %v", err)
	}
}

// --- interleaver ----------------------------------------------------------

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := randBits(rng, 140)
	il := make([]byte, 140)
	out := make([]byte, 140)
	if err := Interleave(il, src, 10); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(il, src) {
		t.Fatal("interleaver was the identity on random data")
	}
	if err := Deinterleave(out, il, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("deinterleave(interleave(x)) != x")
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// The whole point of the interleaver: a burst of adjacent coded
	// bits must land far apart. Check a 4-burst maps to pairwise
	// distances >= rows.
	n, rows := 40, 8
	src := make([]byte, n)
	il := make([]byte, n)
	for i := 12; i < 16; i++ {
		src[i] = 1
	}
	if err := Interleave(il, src, rows); err != nil {
		t.Fatal(err)
	}
	var positions []int
	for i, b := range il {
		if b == 1 {
			positions = append(positions, i)
		}
	}
	if len(positions) != 4 {
		t.Fatalf("lost bits: %v", positions)
	}
	for i := 1; i < len(positions); i++ {
		if positions[i]-positions[i-1] < rows {
			t.Fatalf("burst not spread: positions %v", positions)
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if err := Interleave(make([]byte, 9), make([]byte, 10), 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if err := Interleave(make([]byte, 10), make([]byte, 10), 3); err == nil {
		t.Fatal("accepted indivisible rows")
	}
	if err := Deinterleave(make([]byte, 9), make([]byte, 10), 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if err := Deinterleave(make([]byte, 10), make([]byte, 10), 0); err == nil {
		t.Fatal("accepted zero rows")
	}
}

// --- QPSK -----------------------------------------------------------------

func TestQPSKRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bits := randBits(rng, 128)
	syms := make([]complex64, 64)
	back := make([]byte, 128)
	if err := QPSKMod(syms, bits); err != nil {
		t.Fatal(err)
	}
	for i, s := range syms {
		e := float64(real(s))*float64(real(s)) + float64(imag(s))*float64(imag(s))
		if e < 0.99 || e > 1.01 {
			t.Fatalf("symbol %d energy %v, want 1", i, e)
		}
	}
	if err := QPSKDemod(back, syms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, bits) {
		t.Fatal("QPSK round trip mismatch")
	}
}

func TestQPSKRobustToModerateNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bits := randBits(rng, 512)
	syms := make([]complex64, 256)
	noisy := make([]complex64, 256)
	back := make([]byte, 512)
	if err := QPSKMod(syms, bits); err != nil {
		t.Fatal(err)
	}
	if err := AWGN(noisy, syms, 15, rng); err != nil {
		t.Fatal(err)
	}
	if err := QPSKDemod(back, noisy); err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if back[i] != bits[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("QPSK at 15 dB: %d bit errors in 512", errs)
	}
}

func TestQPSKErrors(t *testing.T) {
	if err := QPSKMod(make([]complex64, 1), []byte{1}); err == nil {
		t.Fatal("accepted odd bit count")
	}
	if err := QPSKMod(make([]complex64, 3), []byte{1, 0, 1, 1}); err == nil {
		t.Fatal("accepted bad dst length")
	}
	if err := QPSKMod(make([]complex64, 1), []byte{2, 0}); err == nil {
		t.Fatal("accepted non-bit")
	}
	if err := QPSKDemod(make([]byte, 3), make([]complex64, 2)); err == nil {
		t.Fatal("accepted bad demod dst length")
	}
}

// --- pilots ----------------------------------------------------------------

func TestPilotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randComplex(rng, 70)
	framed := make([]complex64, 80)
	back := make([]complex64, 70)
	if err := PilotInsert(framed, data, 7); err != nil {
		t.Fatal(err)
	}
	// Every 8th slot is the pilot.
	for i := 7; i < 80; i += 8 {
		if framed[i] != PilotSymbol {
			t.Fatalf("slot %d = %v, want pilot", i, framed[i])
		}
	}
	if err := PilotRemove(back, framed, 7); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("pilot round trip mismatch at %d", i)
		}
	}
}

func TestPilotErrors(t *testing.T) {
	if err := PilotInsert(make([]complex64, 8), make([]complex64, 6), 7); err == nil {
		t.Fatal("accepted indivisible data length")
	}
	if err := PilotInsert(make([]complex64, 9), make([]complex64, 7), 7); err == nil {
		t.Fatal("accepted bad dst length")
	}
	if err := PilotRemove(make([]complex64, 7), make([]complex64, 9), 7); err == nil {
		t.Fatal("accepted indivisible frame length")
	}
	if err := PilotRemove(make([]complex64, 6), make([]complex64, 8), 7); err == nil {
		t.Fatal("accepted bad dst length")
	}
}

// --- CRC ------------------------------------------------------------------

func TestCRC32MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 7, 64, 1000} {
		data := make([]byte, n)
		rng.Read(data)
		if got, want := CRC32(data), crc32.ChecksumIEEE(data); got != want {
			t.Fatalf("n=%d: CRC32 = %#x, stdlib = %#x", n, got, want)
		}
	}
}

// Property: flipping any single bit changes the CRC.
func TestCRC32DetectsSingleBitErrors(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC32(data)
		i := int(idx) % (len(data) * 8)
		data[i/8] ^= 1 << (i % 8)
		return CRC32(data) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32Bits(t *testing.T) {
	// 0x80 packed MSB-first from a single 1 bit.
	if got, want := CRC32Bits([]byte{1}), CRC32([]byte{0x80}); got != want {
		t.Fatalf("CRC32Bits single bit = %#x, want %#x", got, want)
	}
	bits := []byte{1, 0, 1, 0, 1, 0, 1, 0}
	if got, want := CRC32Bits(bits), CRC32([]byte{0xAA}); got != want {
		t.Fatalf("CRC32Bits byte = %#x, want %#x", got, want)
	}
}

// --- channel / sync ---------------------------------------------------------

func TestAWGNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 4096
	src := make([]complex64, n)
	for i := range src {
		src[i] = 1 // unit power
	}
	dst := make([]complex64, n)
	if err := AWGN(dst, src, 10, rng); err != nil { // SNR 10 dB => noise power 0.1
		t.Fatal(err)
	}
	var noise float64
	for i := range dst {
		dr := float64(real(dst[i]) - real(src[i]))
		di := float64(imag(dst[i]) - imag(src[i]))
		noise += dr*dr + di*di
	}
	noise /= float64(n)
	if noise < 0.08 || noise > 0.12 {
		t.Fatalf("noise power %v, want ~0.1", noise)
	}
	if err := AWGN(make([]complex64, 1), make([]complex64, 2), 10, rng); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if err := AWGN(nil, nil, 10, rng); err != nil {
		t.Fatalf("empty AWGN: %v", err)
	}
}

func TestPreambleStable(t *testing.T) {
	a, b := Preamble(), Preamble()
	if len(a) != PreambleLen {
		t.Fatalf("preamble length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("preamble not deterministic")
		}
	}
}

func TestMatchFilterFindsFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pre := Preamble()
	payload := randComplex(rng, 64)
	frame := append(append([]complex64(nil), pre...), payload...)
	// Embed at offset 37 in a noisy buffer.
	buf := make([]complex64, 200)
	if err := AWGN(buf, buf, 0, rng); err != nil {
		t.Fatal(err)
	}
	// AWGN of a zero signal is zero noise (power measured from src);
	// fill with small noise manually instead.
	for i := range buf {
		buf[i] = complex(float32(0.05*rng.NormFloat64()), float32(0.05*rng.NormFloat64()))
	}
	const offset = 37
	for i, s := range frame {
		buf[offset+i] += s
	}
	lag, mag := MatchFilter(buf, pre)
	if lag != offset {
		t.Fatalf("MatchFilter lag = %d, want %d", lag, offset)
	}
	if mag <= 0 {
		t.Fatalf("MatchFilter magnitude %v", mag)
	}
	got := make([]complex64, 64)
	if err := PayloadExtract(got, buf, lag, PreambleLen); err != nil {
		t.Fatal(err)
	}
	// Extracted payload should be close to what was embedded.
	var errSum float64
	for i := range got {
		dr := float64(real(got[i]) - real(payload[i]))
		di := float64(imag(got[i]) - imag(payload[i]))
		errSum += dr*dr + di*di
	}
	if errSum/64 > 0.02 {
		t.Fatalf("extracted payload error %v", errSum/64)
	}
}

func TestMatchFilterDegenerate(t *testing.T) {
	if lag, _ := MatchFilter(nil, Preamble()); lag != -1 {
		t.Fatalf("short rx should give lag -1, got %d", lag)
	}
	if lag, _ := MatchFilter(make([]complex64, 4), nil); lag != -1 {
		t.Fatalf("empty ref should give lag -1, got %d", lag)
	}
}

func TestPayloadExtractBounds(t *testing.T) {
	rx := make([]complex64, 10)
	if err := PayloadExtract(make([]complex64, 8), rx, 0, 4); err == nil {
		t.Fatal("accepted out-of-range payload")
	}
	if err := PayloadExtract(make([]complex64, 2), rx, -9, 4); err == nil {
		t.Fatal("accepted negative start")
	}
}
