package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// --- block interleaver ------------------------------------------------------

// Interleave writes src row-wise into a rows x cols matrix and reads
// it column-wise into dst. len(src) must be a multiple of rows.
func Interleave(dst, src []byte, rows int) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("kernels: Interleave length mismatch %d/%d", len(dst), n)
	}
	if rows <= 0 || n%rows != 0 {
		return fmt.Errorf("kernels: Interleave: length %d not divisible by %d rows", n, rows)
	}
	cols := n / rows
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
	return nil
}

// Deinterleave inverts Interleave with the same row count.
func Deinterleave(dst, src []byte, rows int) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("kernels: Deinterleave length mismatch %d/%d", len(dst), n)
	}
	if rows <= 0 || n%rows != 0 {
		return fmt.Errorf("kernels: Deinterleave: length %d not divisible by %d rows", n, rows)
	}
	cols := n / rows
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[r*cols+c] = src[c*rows+r]
		}
	}
	return nil
}

// --- QPSK ---------------------------------------------------------------

var qpskScale = float32(1 / math.Sqrt2)

// QPSKMod Gray-maps bit pairs to unit-energy QPSK symbols:
// (b0,b1)=(0,0) -> (+1+1i)/sqrt2, a 1 bit flips the corresponding axis
// sign. len(bits) must be even and len(dst) = len(bits)/2.
func QPSKMod(dst []complex64, bits []byte) error {
	if len(bits)%2 != 0 {
		return fmt.Errorf("kernels: QPSKMod: odd bit count %d", len(bits))
	}
	if len(dst) != len(bits)/2 {
		return fmt.Errorf("kernels: QPSKMod dst length %d != %d", len(dst), len(bits)/2)
	}
	for i := 0; i < len(dst); i++ {
		b0, b1 := bits[2*i], bits[2*i+1]
		if b0 > 1 || b1 > 1 {
			return fmt.Errorf("kernels: QPSKMod input at %d is not a bit", i)
		}
		re := qpskScale
		if b0 == 1 {
			re = -re
		}
		im := qpskScale
		if b1 == 1 {
			im = -im
		}
		dst[i] = complex(re, im)
	}
	return nil
}

// QPSKDemod hard-decides symbols back to bit pairs.
func QPSKDemod(dst []byte, syms []complex64) error {
	if len(dst) != 2*len(syms) {
		return fmt.Errorf("kernels: QPSKDemod dst length %d != %d", len(dst), 2*len(syms))
	}
	for i, s := range syms {
		if real(s) < 0 {
			dst[2*i] = 1
		} else {
			dst[2*i] = 0
		}
		if imag(s) < 0 {
			dst[2*i+1] = 1
		} else {
			dst[2*i+1] = 0
		}
	}
	return nil
}

// --- pilots ----------------------------------------------------------------

// PilotSymbol is the known reference symbol inserted between data
// symbols for channel tracking.
var PilotSymbol = complex(float32(1), float32(0))

// PilotInsert interleaves one pilot after every `spacing` data
// symbols. len(src) must be a multiple of spacing and len(dst) must be
// len(src) + len(src)/spacing.
func PilotInsert(dst, src []complex64, spacing int) error {
	if spacing <= 0 || len(src)%spacing != 0 {
		return fmt.Errorf("kernels: PilotInsert: %d symbols not divisible by spacing %d", len(src), spacing)
	}
	want := len(src) + len(src)/spacing
	if len(dst) != want {
		return fmt.Errorf("kernels: PilotInsert dst length %d != %d", len(dst), want)
	}
	di := 0
	for i, s := range src {
		dst[di] = s
		di++
		if (i+1)%spacing == 0 {
			dst[di] = PilotSymbol
			di++
		}
	}
	return nil
}

// PilotRemove strips the pilots inserted by PilotInsert with the same
// spacing. len(src) must be a multiple of spacing+1.
func PilotRemove(dst, src []complex64, spacing int) error {
	if spacing <= 0 || len(src)%(spacing+1) != 0 {
		return fmt.Errorf("kernels: PilotRemove: %d symbols not divisible by %d", len(src), spacing+1)
	}
	want := len(src) - len(src)/(spacing+1)
	if len(dst) != want {
		return fmt.Errorf("kernels: PilotRemove dst length %d != %d", len(dst), want)
	}
	di := 0
	for i, s := range src {
		if (i+1)%(spacing+1) == 0 {
			continue // pilot slot
		}
		dst[di] = s
		di++
	}
	return nil
}

// --- CRC ---------------------------------------------------------------

// crcTable is the reflected CRC-32 (IEEE 802.3, poly 0xEDB88320)
// lookup table, built once at package init. The kernel is implemented
// from scratch rather than via hash/crc32 because it is one of the
// application tasks the framework schedules; tests cross-check it
// against the standard library.
var crcTable [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crcTable {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ poly
			} else {
				c >>= 1
			}
		}
		crcTable[i] = c
	}
}

// CRC32 computes the IEEE CRC-32 of data.
func CRC32(data []byte) uint32 {
	c := ^uint32(0)
	for _, b := range data {
		c = crcTable[byte(c)^b] ^ (c >> 8)
	}
	return ^c
}

// CRC32Bits computes the CRC over a bit slice (values 0/1) by packing
// bits MSB-first into bytes, zero-padding the tail.
func CRC32Bits(bits []byte) uint32 {
	packed := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			packed[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return CRC32(packed)
}

// --- channel ----------------------------------------------------------------

// AWGN adds white Gaussian noise to src at the given per-symbol SNR in
// dB, measuring signal power from src itself. The rng parameter keeps
// the channel deterministic per emulation run.
func AWGN(dst, src []complex64, snrDB float64, rng *rand.Rand) error {
	if len(dst) != len(src) {
		return fmt.Errorf("kernels: AWGN length mismatch %d/%d", len(dst), len(src))
	}
	if len(src) == 0 {
		return nil
	}
	var power float64
	for _, s := range src {
		power += float64(real(s))*float64(real(s)) + float64(imag(s))*float64(imag(s))
	}
	power /= float64(len(src))
	noisePower := power / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noisePower / 2)
	for i, s := range src {
		dst[i] = complex(
			real(s)+float32(sigma*rng.NormFloat64()),
			imag(s)+float32(sigma*rng.NormFloat64()),
		)
	}
	return nil
}

// --- frame synchronisation -------------------------------------------------

// PreambleLen is the length of the known synchronisation preamble.
const PreambleLen = 32

// Preamble returns the fixed pseudo-random QPSK preamble prepended to
// every frame. It is generated from the scrambler LFSR so transmitter
// and receiver agree without shared state.
func Preamble() []complex64 {
	bits := make([]byte, 2*PreambleLen)
	_ = Scramble(bits, bits, 0x2A) // scrambling zeros yields the LFSR stream
	p := make([]complex64, PreambleLen)
	_ = QPSKMod(p, bits)
	return p
}

// MatchFilter cross-correlates rx against the reference sequence and
// returns the lag with the largest correlation magnitude — the frame
// start estimate (the receiver's "match filter" block).
func MatchFilter(rx, ref []complex64) (int, float64) {
	if len(ref) == 0 || len(rx) < len(ref) {
		return -1, 0
	}
	bestLag, bestMag := -1, 0.0
	for lag := 0; lag+len(ref) <= len(rx); lag++ {
		var cr, ci float64
		for j, r := range ref {
			x := rx[lag+j]
			// x * conj(r)
			cr += float64(real(x))*float64(real(r)) + float64(imag(x))*float64(imag(r))
			ci += float64(imag(x))*float64(real(r)) - float64(real(x))*float64(imag(r))
		}
		m := cr*cr + ci*ci
		if bestLag == -1 || m > bestMag {
			bestLag, bestMag = lag, m
		}
	}
	return bestLag, math.Sqrt(bestMag)
}

// PayloadExtract copies len(dst) symbols of rx starting just after the
// preamble at the given frame offset.
func PayloadExtract(dst, rx []complex64, frameStart, preambleLen int) error {
	begin := frameStart + preambleLen
	if begin < 0 || begin+len(dst) > len(rx) {
		return fmt.Errorf("kernels: PayloadExtract: payload [%d,%d) outside rx of %d symbols",
			begin, begin+len(dst), len(rx))
	}
	copy(dst, rx[begin:begin+len(dst)])
	return nil
}
