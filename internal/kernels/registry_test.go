package kernels

import (
	"math"
	"strings"
	"testing"

	"repro/internal/appmodel"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	f := func(ctx *Context) error { return nil }
	if err := r.Register("a.so", "f", f); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := r.Lookup("a.so", "f"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if _, err := r.Lookup("a.so", "g"); err == nil {
		t.Fatal("Lookup found undefined symbol")
	}
	if _, err := r.Lookup("b.so", "f"); err == nil {
		t.Fatal("Lookup crossed shared-object namespaces")
	}
	if err := r.Register("a.so", "f", f); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register("a.so", "", f); err == nil {
		t.Fatal("empty runfunc accepted")
	}
	if err := r.Register("a.so", "g", nil); err == nil {
		t.Fatal("nil function accepted")
	}
	syms := r.Symbols()
	if len(syms) != 1 || syms[0] != "a.so/f" {
		t.Fatalf("Symbols = %v", syms)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("x.so", "f", func(*Context) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister("x.so", "f", func(*Context) error { return nil })
}

func TestDefaultRegistryComplete(t *testing.T) {
	r := Default()
	for _, sym := range []struct{ so, name string }{
		{SharedObjectDSP, "fft"},
		{SharedObjectDSP, "ifft"},
		{SharedObjectDSP, "dft_naive"},
		{SharedObjectDSP, "idft_naive"},
		{SharedObjectDSP, "conj"},
		{SharedObjectDSP, "vec_mul_conj"},
		{SharedObjectDSP, "fft_shift"},
		{SharedObjectDSP, "max_abs"},
		{SharedObjectDSP, "lfm_chirp"},
		{SharedObjectFFTAccel, "fft_forward_accel"},
		{SharedObjectFFTAccel, "fft_inverse_accel"},
	} {
		if _, err := r.Lookup(sym.so, sym.name); err != nil {
			t.Errorf("default registry missing %s/%s", sym.so, sym.name)
		}
	}
	if r != Default() {
		t.Fatal("Default is not a singleton")
	}
}

// genericMem builds an instance memory matching the generic runfunc
// argument conventions.
func genericMem(t *testing.T, n int) *appmodel.Memory {
	t.Helper()
	nBytes := make([]byte, 4)
	nBytes[0] = byte(n)
	nBytes[1] = byte(n >> 8)
	spec := &appmodel.AppSpec{
		AppName: "generic",
		Variables: map[string]appmodel.VariableSpec{
			"n":   {Bytes: 4, Val: nBytes},
			"buf": {Bytes: 8, IsPtr: true, PtrAllocBytes: 8 * n},
			"aux": {Bytes: 8, IsPtr: true, PtrAllocBytes: 8 * n},
			"dst": {Bytes: 8, IsPtr: true, PtrAllocBytes: 8 * n},
			"idx": {Bytes: 4},
			"mag": {Bytes: 8},
		},
		DAG: map[string]appmodel.NodeSpec{
			"x": {Platforms: []appmodel.PlatformSpec{{Name: "cpu", RunFunc: "f"}}},
		},
	}
	m, err := appmodel.NewMemory(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenericFFTRunFuncs(t *testing.T) {
	r := Default()
	m := genericMem(t, 16)
	buf := m.MustLookup("buf").Complex64s()
	buf[0] = 1 // impulse
	fft, err := r.Lookup(SharedObjectDSP, "fft")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Mem: m, Args: []string{"n", "buf"}, Node: "t"}
	if err := fft(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if math.Abs(float64(real(buf[i]))-1) > 1e-5 || math.Abs(float64(imag(buf[i]))) > 1e-5 {
			t.Fatalf("fft(impulse)[%d] = %v", i, buf[i])
		}
	}
	ifft, _ := r.Lookup(SharedObjectDSP, "ifft")
	if err := ifft(ctx); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(real(buf[0]))-1) > 1e-4 {
		t.Fatalf("ifft did not restore impulse: %v", buf[0])
	}
	// The accelerator namespace computes the same transform.
	accel, _ := r.Lookup(SharedObjectFFTAccel, "fft_forward_accel")
	if err := accel(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if math.Abs(float64(real(buf[i]))-1) > 1e-4 {
			t.Fatalf("accel fft mismatch at %d: %v", i, buf[i])
		}
	}
}

func TestGenericMaxAbsRunFunc(t *testing.T) {
	r := Default()
	m := genericMem(t, 8)
	buf := m.MustLookup("buf").Complex64s()
	buf[5] = complex(0, 9)
	maxf, _ := r.Lookup(SharedObjectDSP, "max_abs")
	ctx := &Context{Mem: m, Args: []string{"n", "buf", "idx", "mag"}, Node: "t"}
	if err := maxf(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.MustLookup("idx").Int32(); got != 5 {
		t.Fatalf("idx = %d, want 5", got)
	}
	if got := m.MustLookup("mag").Float64(); math.Abs(got-9) > 1e-6 {
		t.Fatalf("mag = %v, want 9", got)
	}
}

func TestGenericVecMulConjRunFunc(t *testing.T) {
	r := Default()
	m := genericMem(t, 4)
	a := m.MustLookup("buf").Complex64s()
	b := m.MustLookup("aux").Complex64s()
	for i := range a[:4] {
		a[i] = complex(1, 2)
		b[i] = complex(1, 2)
	}
	f, _ := r.Lookup(SharedObjectDSP, "vec_mul_conj")
	ctx := &Context{Mem: m, Args: []string{"n", "buf", "aux", "dst"}, Node: "t"}
	if err := f(ctx); err != nil {
		t.Fatal(err)
	}
	dst := m.MustLookup("dst").Complex64s()
	if real(dst[0]) != 5 || imag(dst[0]) != 0 {
		t.Fatalf("vec_mul_conj self = %v, want 5+0i", dst[0])
	}
}

func TestGenericRunFuncErrors(t *testing.T) {
	r := Default()
	m := genericMem(t, 16)
	fft, _ := r.Lookup(SharedObjectDSP, "fft")
	// Missing argument.
	if err := fft(&Context{Mem: m, Args: []string{"n"}, Node: "t"}); err == nil {
		t.Fatal("fft accepted missing buffer argument")
	}
	// Unknown variable.
	if err := fft(&Context{Mem: m, Args: []string{"n", "ghost"}, Node: "t"}); err == nil {
		t.Fatal("fft accepted unknown variable")
	}
	// Zero n.
	m.MustLookup("n").SetInt32(0)
	if err := fft(&Context{Mem: m, Args: []string{"n", "buf"}, Node: "t"}); err == nil {
		t.Fatal("fft accepted n=0")
	}
	// Buffer shorter than n.
	m.MustLookup("n").SetInt32(1024)
	err := fft(&Context{Mem: m, Args: []string{"n", "buf"}, Node: "t"})
	if err == nil || !strings.Contains(err.Error(), "need 1024") {
		t.Fatalf("short buffer error = %v", err)
	}
}

func TestContextArgBounds(t *testing.T) {
	m := genericMem(t, 4)
	ctx := &Context{Mem: m, Args: []string{"n"}, Node: "t"}
	if _, err := ctx.Arg(-1); err == nil {
		t.Fatal("Arg(-1) succeeded")
	}
	if _, err := ctx.Arg(1); err == nil {
		t.Fatal("Arg out of range succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustArg did not panic")
		}
	}()
	ctx.MustArg(5)
}
