// Package kernels is the framework's kernel library: the signal
// processing routines (FFT, Viterbi, QPSK, correlators, ...) that the
// paper's applications ship inside shared-object files, plus the
// registry that stands in for dlopen/dlsym.
//
// A DAG node's platform entry names a `runfunc` and optionally a
// `shared_object`; the application handler looks the symbol up at
// parse time and attaches the resolved function to the node. Here the
// lookup key is (shared object name, runfunc name) and the value is a
// Go function operating on the instance's variable memory.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/appmodel"
)

// Context is what a kernel invocation receives: the application
// instance's memory and the node's argument list, in declaration
// order, exactly as the framework dispatches tasks in the paper.
type Context struct {
	// Mem is the instance's variable store (shared memory between the
	// instance's tasks).
	Mem *appmodel.Memory
	// Args holds the node's argument variable names in order.
	Args []string
	// Node is the DAG node name, for diagnostics.
	Node string
}

// Arg resolves the i-th argument variable.
func (c *Context) Arg(i int) (*appmodel.Value, error) {
	if i < 0 || i >= len(c.Args) {
		return nil, fmt.Errorf("kernels: %s: argument index %d out of range (%d args)", c.Node, i, len(c.Args))
	}
	return c.Mem.Lookup(c.Args[i])
}

// MustArg resolves the i-th argument or panics; kernels use it after
// the spec has been validated.
func (c *Context) MustArg(i int) *appmodel.Value {
	v, err := c.Arg(i)
	if err != nil {
		panic(err)
	}
	return v
}

// Func is a kernel entry point. It runs the node's computation against
// the instance memory and returns an error only for framework-level
// failures (bad argument shapes); numeric results flow through memory.
type Func func(ctx *Context) error

// Registry maps (shared object, runfunc) pairs to kernel functions.
// It replaces the paper's dlopen/dlsym lookup while preserving the
// late-binding failure mode: an unknown symbol is detected at
// application parse time, not at dispatch.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Func)}
}

func key(sharedObject, runFunc string) string { return sharedObject + "\x00" + runFunc }

// Register adds a kernel under a shared object namespace. Duplicate
// registrations are rejected, mirroring symbol-collision errors.
func (r *Registry) Register(sharedObject, runFunc string, f Func) error {
	if runFunc == "" {
		return fmt.Errorf("kernels: empty runfunc name")
	}
	if f == nil {
		return fmt.Errorf("kernels: nil function for %s/%s", sharedObject, runFunc)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(sharedObject, runFunc)
	if _, dup := r.funcs[k]; dup {
		return fmt.Errorf("kernels: duplicate symbol %s in %s", runFunc, sharedObject)
	}
	r.funcs[k] = f
	return nil
}

// MustRegister is Register that panics on error; used by the package's
// own init-time registrations.
func (r *Registry) MustRegister(sharedObject, runFunc string, f Func) {
	if err := r.Register(sharedObject, runFunc, f); err != nil {
		panic(err)
	}
}

// Lookup resolves a runfunc within a shared object.
func (r *Registry) Lookup(sharedObject, runFunc string) (Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f, ok := r.funcs[key(sharedObject, runFunc)]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("kernels: undefined symbol %q in %q", runFunc, sharedObject)
}

// Symbols lists the registered (sharedObject, runFunc) pairs, sorted;
// used by tooling and tests.
func (r *Registry) Symbols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	for i, k := range out {
		for j := 0; j < len(k); j++ {
			if k[j] == 0 {
				out[i] = k[:j] + "/" + k[j+1:]
				break
			}
		}
	}
	return out
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the registry pre-populated with every SDR kernel
// this repository ships (the framework's default signal-processing
// application library).
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		registerSDRKernels(defaultReg)
	})
	return defaultReg
}
