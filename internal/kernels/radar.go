package kernels

import (
	"fmt"
	"math"
)

// Radar kernels: LFM chirp generation, complex conjugation, the
// frequency-domain correlator building blocks (vector multiply by
// conjugate), peak search, and the matrix realignment used by pulse
// Doppler (Figures 2 and 8).

// LFMChirp fills dst with a unit-amplitude linear frequency modulated
// chirp spanning normalised bandwidth bw in [0,1] (fraction of the
// sampling rate). This is the reference waveform of the range
// detection application.
func LFMChirp(dst []complex64, bw float64) {
	n := len(dst)
	if n == 0 {
		return
	}
	// Instantaneous frequency sweeps -bw/2 .. +bw/2 over n samples:
	// phase(t) = pi*bw*(t^2/n - t), t in samples.
	for t := 0; t < n; t++ {
		ft := float64(t)
		phase := math.Pi * bw * (ft*ft/float64(n) - ft)
		dst[t] = complex(float32(math.Cos(phase)), float32(math.Sin(phase)))
	}
}

// ConjInPlace conjugates every element of x.
func ConjInPlace(x []complex64) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
}

// VecMul computes dst = a .* b elementwise.
func VecMul(dst, a, b []complex64) error {
	if len(a) != len(b) || len(dst) != len(a) {
		return fmt.Errorf("kernels: VecMul length mismatch %d/%d/%d", len(dst), len(a), len(b))
	}
	for i := range a {
		ar, ai := float64(real(a[i])), float64(imag(a[i]))
		br, bi := float64(real(b[i])), float64(imag(b[i]))
		dst[i] = complex(float32(ar*br-ai*bi), float32(ar*bi+ai*br))
	}
	return nil
}

// VecMulConj computes dst = a .* conj(b), the frequency-domain
// cross-correlation product at the heart of both radar pipelines.
func VecMulConj(dst, a, b []complex64) error {
	if len(a) != len(b) || len(dst) != len(a) {
		return fmt.Errorf("kernels: VecMulConj length mismatch %d/%d/%d", len(dst), len(a), len(b))
	}
	for i := range a {
		ar, ai := float64(real(a[i])), float64(imag(a[i]))
		br, bi := float64(real(b[i])), -float64(imag(b[i]))
		dst[i] = complex(float32(ar*br-ai*bi), float32(ar*bi+ai*br))
	}
	return nil
}

// MaxAbsIndex returns the index and magnitude of the largest-magnitude
// element (the "find maximum" / "determine maximum index" kernels).
// The index of the first maximum wins ties; an empty slice returns
// (-1, 0).
func MaxAbsIndex(x []complex64) (int, float64) {
	best, bestMag := -1, 0.0
	for i, v := range x {
		m := float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
		if best == -1 || m > bestMag {
			best, bestMag = i, m
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, math.Sqrt(bestMag)
}

// Transpose writes the rows-by-cols matrix src (row major) into dst as
// its cols-by-rows transpose: the pulse Doppler "realign matrix" step
// that turns per-pulse range profiles into per-range-gate slow-time
// series.
func Transpose(dst, src []complex64, rows, cols int) error {
	if rows <= 0 || cols <= 0 || len(src) != rows*cols || len(dst) != rows*cols {
		return fmt.Errorf("kernels: Transpose shape mismatch: %dx%d with len(src)=%d len(dst)=%d",
			rows, cols, len(src), len(dst))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
	return nil
}

// Delay returns a copy of x delayed by lag samples with zero fill, a
// test helper for building synthetic radar returns.
func Delay(x []complex64, lag int) []complex64 {
	out := make([]complex64, len(x))
	for i := lag; i < len(x); i++ {
		if i-lag >= 0 && i-lag < len(x) {
			out[i] = x[i-lag]
		}
	}
	return out
}
