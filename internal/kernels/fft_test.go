package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(rng *rand.Rand, n int) []complex64 {
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return x
}

func maxErr(a, b []complex64) float64 {
	var worst float64
	for i := range a {
		d := cmplx.Abs(complex128(a[i]) - complex128(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFTInPlace(make([]complex64, 3)); err == nil {
		t.Fatalf("FFT accepted length 3")
	}
	if err := IFFTInPlace(make([]complex64, 0)); err == nil {
		t.Fatalf("IFFT accepted length 0")
	}
}

func TestFFTKnownValues(t *testing.T) {
	// Impulse transforms to all-ones.
	x := make([]complex64, 8)
	x[0] = 1
	if err := FFTInPlace(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(complex128(v)-1) > 1e-5 {
			t.Fatalf("FFT(impulse)[%d] = %v, want 1", i, v)
		}
	}
	// Constant transforms to a scaled impulse.
	y := make([]complex64, 8)
	for i := range y {
		y[i] = 1
	}
	if err := FFTInPlace(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(complex128(y[0])-8) > 1e-5 {
		t.Fatalf("FFT(ones)[0] = %v, want 8", y[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(complex128(y[i])) > 1e-5 {
			t.Fatalf("FFT(ones)[%d] = %v, want 0", i, y[i])
		}
	}
	// A pure tone lands in exactly one bin.
	n := 16
	tone := make([]complex64, n)
	k := 3
	for i := range tone {
		ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
		tone[i] = complex(float32(math.Cos(ang)), float32(math.Sin(ang)))
	}
	if err := FFTInPlace(tone); err != nil {
		t.Fatal(err)
	}
	for i := range tone {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(complex128(tone[i]))-want) > 1e-3 {
			t.Fatalf("tone bin %d = %v, want magnitude %v", i, tone[i], want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		src := randComplex(rng, n)
		want := make([]complex64, n)
		if err := DFTNaive(want, src); err != nil {
			t.Fatal(err)
		}
		got := append([]complex64(nil), src...)
		if err := FFTInPlace(got); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("n=%d: FFT vs naive DFT max error %v", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128, 1024} {
		orig := randComplex(rng, n)
		x := append([]complex64(nil), orig...)
		if err := FFTInPlace(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFTInPlace(x); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(x, orig); e > 1e-3 {
			t.Fatalf("n=%d: IFFT(FFT(x)) error %v", n, e)
		}
	}
}

// Property: the FFT round trip is the identity (within float32
// tolerance) and Parseval's energy relation holds.
func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, szExp uint8) bool {
		n := 1 << (szExp%8 + 1) // 2..256
		r := rand.New(rand.NewSource(seed))
		_ = rng
		orig := randComplex(r, n)
		x := append([]complex64(nil), orig...)
		if FFTInPlace(x) != nil {
			return false
		}
		var eTime, eFreq float64
		for i := range orig {
			eTime += float64(real(orig[i]))*float64(real(orig[i])) + float64(imag(orig[i]))*float64(imag(orig[i]))
			eFreq += float64(real(x[i]))*float64(real(x[i])) + float64(imag(x[i]))*float64(imag(x[i]))
		}
		if eTime > 0 && math.Abs(eFreq/float64(n)-eTime)/eTime > 1e-3 {
			return false
		}
		if IFFTInPlace(x) != nil {
			return false
		}
		return maxErr(x, orig) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIDFTInvertsDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 32
	src := randComplex(rng, n)
	freq := make([]complex64, n)
	back := make([]complex64, n)
	if err := DFTNaive(freq, src); err != nil {
		t.Fatal(err)
	}
	if err := IDFTNaive(back, freq); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(back, src); e > 1e-3 {
		t.Fatalf("IDFT(DFT(x)) error %v", e)
	}
}

func TestDFTShapeErrors(t *testing.T) {
	if err := DFTNaive(make([]complex64, 3), make([]complex64, 4)); err == nil {
		t.Fatal("DFTNaive accepted mismatched lengths")
	}
	if err := IDFTNaive(make([]complex64, 3), make([]complex64, 4)); err == nil {
		t.Fatal("IDFTNaive accepted mismatched lengths")
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex64{0, 1, 2, 3}
	FFTShift(x)
	want := []complex64{2, 3, 0, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", x, want)
		}
	}
	// Applying the shift twice on even lengths is the identity.
	y := []complex64{5, 6, 7, 8, 9, 10, 11, 12}
	orig := append([]complex64(nil), y...)
	FFTShift(y)
	FFTShift(y)
	for i := range orig {
		if y[i] != orig[i] {
			t.Fatalf("double FFTShift not identity: %v", y)
		}
	}
	// Odd length: rotation by (n+1)/2.
	z := []complex64{1, 2, 3}
	FFTShift(z)
	wantOdd := []complex64{3, 1, 2}
	for i := range wantOdd {
		if z[i] != wantOdd[i] {
			t.Fatalf("odd FFTShift = %v, want %v", z, wantOdd)
		}
	}
	// Degenerate sizes must not panic.
	FFTShift(nil)
	FFTShift([]complex64{42})
}

func TestLFMChirpProperties(t *testing.T) {
	n := 256
	chirp := make([]complex64, n)
	LFMChirp(chirp, 0.5)
	for i, c := range chirp {
		mag := math.Hypot(float64(real(c)), float64(imag(c)))
		if math.Abs(mag-1) > 1e-5 {
			t.Fatalf("chirp sample %d magnitude %v, want 1", i, mag)
		}
	}
	// Autocorrelation peaks at zero lag: matched filtering the chirp
	// against itself must find lag 0 decisively.
	lag, _ := MatchFilter(chirp, chirp)
	if lag != 0 {
		t.Fatalf("chirp autocorrelation peak at lag %d, want 0", lag)
	}
	LFMChirp(nil, 0.5) // must not panic
}

func TestConjVecMul(t *testing.T) {
	a := []complex64{complex(1, 2), complex(3, -4)}
	b := []complex64{complex(5, 6), complex(-7, 8)}
	dst := make([]complex64, 2)
	if err := VecMul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	// (1+2i)(5+6i) = 5+6i+10i-12 = -7+16i
	if dst[0] != complex(-7, 16) {
		t.Fatalf("VecMul[0] = %v", dst[0])
	}
	if err := VecMulConj(dst, a, b); err != nil {
		t.Fatal(err)
	}
	// (1+2i)(5-6i) = 5-6i+10i+12 = 17+4i
	if dst[0] != complex(17, 4) {
		t.Fatalf("VecMulConj[0] = %v", dst[0])
	}
	x := []complex64{complex(1, 2)}
	ConjInPlace(x)
	if x[0] != complex(1, -2) {
		t.Fatalf("ConjInPlace = %v", x[0])
	}
	if err := VecMul(dst, a, b[:1]); err == nil {
		t.Fatal("VecMul accepted mismatched lengths")
	}
	if err := VecMulConj(dst[:1], a, b); err == nil {
		t.Fatal("VecMulConj accepted mismatched lengths")
	}
}

// Property: VecMulConj(x, x) is real non-negative (|x|^2).
func TestVecMulConjSelfProperty(t *testing.T) {
	f := func(re, im float32) bool {
		a := []complex64{complex(re, im)}
		dst := make([]complex64, 1)
		if VecMulConj(dst, a, a) != nil {
			return false
		}
		return real(dst[0]) >= 0 && imag(dst[0]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	idx, mag := MaxAbsIndex(nil)
	if idx != -1 || mag != 0 {
		t.Fatalf("empty MaxAbsIndex = %d,%v", idx, mag)
	}
	x := []complex64{1, complex(0, -5), 3}
	idx, mag = MaxAbsIndex(x)
	if idx != 1 || math.Abs(mag-5) > 1e-6 {
		t.Fatalf("MaxAbsIndex = %d,%v, want 1,5", idx, mag)
	}
	// First maximum wins ties.
	y := []complex64{2, complex(0, 2)}
	if idx, _ := MaxAbsIndex(y); idx != 0 {
		t.Fatalf("tie break index %d, want 0", idx)
	}
}

func TestTranspose(t *testing.T) {
	// 2x3 matrix.
	src := []complex64{1, 2, 3, 4, 5, 6}
	dst := make([]complex64, 6)
	if err := Transpose(dst, src, 2, 3); err != nil {
		t.Fatal(err)
	}
	want := []complex64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Transpose = %v, want %v", dst, want)
		}
	}
	if err := Transpose(dst, src, 3, 3); err == nil {
		t.Fatal("Transpose accepted bad shape")
	}
	// Double transpose is the identity.
	back := make([]complex64, 6)
	if err := Transpose(back, dst, 3, 2); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("transpose involution broken: %v", back)
		}
	}
}

func TestDelay(t *testing.T) {
	x := []complex64{1, 2, 3, 4}
	d := Delay(x, 2)
	want := []complex64{0, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Delay = %v, want %v", d, want)
		}
	}
}

func BenchmarkFFT256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFTInPlace(x)
	}
}

func BenchmarkDFTNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randComplex(rng, 256)
	dst := make([]complex64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DFTNaive(dst, src)
	}
}
