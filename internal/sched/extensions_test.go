package sched

import (
	"testing"
)

func TestEFTQCommitsToBusyPEs(t *testing.T) {
	// One fast busy PE freeing soon vs one slow idle PE: EFTQ should
	// queue behind the fast PE when that still finishes earlier.
	busyFast := idleCPU(0)
	busyFast.idle = false
	busyFast.avail = 100 // frees at t=100, cost 100 -> finish 200
	slowIdle := idleCPU(1)
	slowIdle.speed = 10 // cost 100 -> finish 1000
	pes := asPEs(busyFast, slowIdle)
	res := EFTQ{Depth: 2}.Schedule(0, asTasks(cpuTask("t", 100)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 0 {
		t.Fatalf("EFTQ did not queue behind the faster busy PE: %+v", res.Assignments)
	}
}

func TestEFTQRespectsDepth(t *testing.T) {
	pe := idleCPU(0)
	pe.idle = false
	pe.queued = 1 // load 2 of depth 2: full
	res := EFTQ{Depth: 2}.Schedule(0, asTasks(cpuTask("a", 10), cpuTask("b", 10)), asPEs(pe))
	if len(res.Assignments) != 0 {
		t.Fatalf("EFTQ overfilled the queue: %+v", res.Assignments)
	}
	pe.queued = 0 // load 1: one slot
	res = EFTQ{Depth: 2}.Schedule(0, asTasks(cpuTask("a", 10), cpuTask("b", 10)), asPEs(pe))
	if len(res.Assignments) != 1 {
		t.Fatalf("EFTQ should fill exactly one slot: %+v", res.Assignments)
	}
	// Zero depth falls back to the default.
	res = EFTQ{}.Schedule(0, asTasks(cpuTask("a", 10)), asPEs(idleCPU(0)))
	if len(res.Assignments) != 1 {
		t.Fatalf("default-depth EFTQ assigned %d", len(res.Assignments))
	}
}

func TestEFTQAccountsForItsOwnPlacements(t *testing.T) {
	// Two equal PEs, three equal tasks: the third must go behind one of
	// the first two rather than stacking everything on PE 0.
	pes := asPEs(idleCPU(0), idleCPU(1))
	res := EFTQ{Depth: 4}.Schedule(0, asTasks(cpuTask("a", 100), cpuTask("b", 100), cpuTask("c", 100)), pes)
	if len(res.Assignments) != 3 {
		t.Fatalf("assigned %d of 3", len(res.Assignments))
	}
	perPE := map[int]int{}
	for _, a := range res.Assignments {
		perPE[a.PEIndex]++
	}
	if perPE[0] == 3 || perPE[1] == 3 {
		t.Fatalf("EFTQ stacked all tasks on one PE: %v", perPE)
	}
}

func TestEFTQSkipsUnsupported(t *testing.T) {
	res := EFTQ{Depth: 2}.Schedule(0, asTasks(cpuTask("a", 10)), asPEs(idleFFT(0)))
	if len(res.Assignments) != 0 {
		t.Fatalf("EFTQ placed a cpu task on an fft PE")
	}
}

func TestFRFSQAndEFTQBoundedOps(t *testing.T) {
	// Queue policies must not scan the whole ready list once capacity
	// is exhausted: ops stay bounded as the backlog grows.
	pes := asPEs(idleCPU(0), idleCPU(1))
	mk := func(n int) []Task {
		var ts []Task
		for i := 0; i < n; i++ {
			ts = append(ts, cpuTask("t", 5))
		}
		return ts
	}
	for _, pol := range []Policy{FRFSQ{Depth: 3}, EFTQ{Depth: 3}} {
		small := pol.Schedule(0, mk(10), pes)
		large := pol.Schedule(0, mk(5000), pes)
		if large.Ops > small.Ops*3 {
			t.Fatalf("%s: ops grew with backlog: %d -> %d", pol.Name(), small.Ops, large.Ops)
		}
	}
}

func TestPowerEFTSlackClamp(t *testing.T) {
	// Slack below 1 clamps to plain earliest-finish behaviour.
	fast := idleCPU(0)
	fast.power = 5
	slowCheap := idleCPU(1)
	slowCheap.speed = 4
	slowCheap.power = 0.1
	res := PowerEFT{Slack: 0}.Schedule(0, asTasks(cpuTask("t", 100)), asPEs(fast, slowCheap))
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 0 {
		t.Fatalf("clamped PowerEFT should pick the fastest PE: %+v", res.Assignments)
	}
}
