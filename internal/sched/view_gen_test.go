package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// Generated ReadyMeta shapes: a scenario generator that steers the
// compiled-metadata space the corpus differential can only sample —
// class-mask corners (single bit, all bits, top bit of a 64-class
// table), single-choice nodes, choices on absent platforms, and
// multi-class single-type pools — plugged into the same 400-trial
// Schedule-vs-ScheduleIndexed parity harness as the random scenarios.

// genPE is a fake PE whose type identity is fully generator-chosen:
// key "t<N>" always interns as TypeID N, so pools with any number of
// distinct types (not just the cpu/fft pair) can be built.
type genPE struct {
	fakePE
	typ int
}

func (p *genPE) TypeKey() string { return fmt.Sprintf("t%d", p.typ) }
func (p *genPE) TypeID() int     { return p.typ }

// genMetaScenario draws one emulator-consistent state from the shape
// space. nTypes controls the interned type count; classed=true gives
// every PE its own speed, splitting each type into per-PE cost classes
// (the big.LITTLE shape); the task mix hits the mask corners.
func genMetaScenario(rng *rand.Rand, now vtime.Time, nTypes int, classed bool) ([]PE, []Task) {
	nPE := nTypes + rng.Intn(2*nTypes)
	pes := make([]PE, nPE)
	for i := range pes {
		pe := &genPE{typ: i % nTypes} // every type represented
		pe.id = i
		pe.speed = 1
		pe.power = 0.5 + float64(pe.typ%5)/10
		if classed {
			pe.speed = 1 + float64(i)/64
		}
		// Emulator invariants: idle PEs have drained queues and
		// availability at or below now; busy PEs complete after now.
		if rng.Intn(3) == 0 {
			pe.idle = false
			pe.queued = rng.Intn(3)
			pe.avail = now + 1 + vtime.Time(rng.Intn(2000))
		} else {
			pe.idle = true
			pe.avail = now - vtime.Time(rng.Intn(500))
		}
		pes[i] = pe
	}
	choice := func(typ int) PlatformChoice {
		return PlatformChoice{
			Key:    fmt.Sprintf("t%d", typ),
			TypeID: typ,
			CostNS: int64(rng.Intn(1000) + 1),
		}
	}
	nTasks := 1 + rng.Intn(10)
	tasks := make([]Task, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		tk := &fakeTask{label: fmt.Sprintf("g%d", i)}
		switch rng.Intn(5) {
		case 0:
			// Single-choice node on the LAST type: at a 64-type pool
			// this is the top mask bit, the sign-bit corner of the
			// uint64 representation.
			tk.choices = []PlatformChoice{choice(nTypes - 1)}
		case 1:
			// Single-choice node on a random type: one-hot mask.
			tk.choices = []PlatformChoice{choice(rng.Intn(nTypes))}
		case 2:
			// Full-width node supporting every type: all mask bits set.
			for typ := 0; typ < nTypes; typ++ {
				tk.choices = append(tk.choices, choice(typ))
			}
		case 3:
			// Absent-platform choice first (TypeID -1): MET may elect
			// the missing minimum and hold the task; everyone else must
			// skip the dead entry.
			tk.choices = []PlatformChoice{
				{Key: "ghost", TypeID: -1, CostNS: int64(rng.Intn(50) + 1)},
				choice(rng.Intn(nTypes)),
			}
		default:
			// Random subset, ascending types, no duplicates.
			for typ := 0; typ < nTypes; typ++ {
				if rng.Intn(3) == 0 {
					tk.choices = append(tk.choices, choice(typ))
				}
			}
			if len(tk.choices) == 0 {
				tk.choices = []PlatformChoice{choice(0)}
			}
		}
		tasks = append(tasks, tk)
	}
	return pes, tasks
}

// genViewFor mirrors viewFor for generator-built []PE pools.
func genViewFor(t *testing.T, pes []PE, tasks []Task) *View {
	t.Helper()
	v := NewView(pes)
	if v == nil {
		t.Fatal("NewView failed for an eligible generated pool")
	}
	for i, pe := range pes {
		if !pe.Idle() {
			v.MarkBusy(i)
			v.AddLoad(i, 1)
		}
		v.SetAvail(i, pe.AvailableAt())
		v.AddLoad(i, pe.QueueLen())
	}
	for _, tk := range tasks {
		m := v.MetaFor(tk.Choices())
		v.PushReady(tk, &m)
	}
	return v
}

// TestIndexedMatchesSliceGeneratedMeta runs the 400-trial parity check
// over the generated shape space: type counts from 1 through the
// 64-class boundary, both the uniform (class==type) and the per-PE
// speed-classed interning. Every policy must byte-match its slice path
// on every drawn state.
func TestIndexedMatchesSliceGeneratedMeta(t *testing.T) {
	now := vtime.Time(10_000)
	// classed pools intern one class per PE; nPE < 2*3*nTypes keeps the
	// worst case (nTypes=21, classed) within the 64-class budget.
	shapes := []struct {
		nTypes  int
		classed bool
	}{
		{1, false}, {2, false}, {3, true}, {5, false}, {8, true},
		{16, false}, {21, true}, {63, false}, {64, false},
	}
	for _, name := range Names() {
		rng := rand.New(rand.NewSource(29))
		for trial := 0; trial < 400; trial++ {
			shape := shapes[trial%len(shapes)]
			pes, tasks := genMetaScenario(rng, now, shape.nTypes, shape.classed)
			pSlice, err := New(name, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			pIdx, err := New(name, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			ip, ok := pIdx.(IndexedPolicy)
			if !ok {
				t.Fatalf("built-in policy %s lacks an indexed fast path", name)
			}
			want := pSlice.Schedule(now, tasks, pes)
			v := genViewFor(t, pes, tasks)
			got := ip.ScheduleIndexed(now, v)
			if want.Ops != got.Ops {
				t.Fatalf("%s trial %d (types %d classed %v): ops diverged: slice %d, indexed %d",
					name, trial, shape.nTypes, shape.classed, want.Ops, got.Ops)
			}
			if len(want.Assignments) != len(got.Assignments) {
				t.Fatalf("%s trial %d (types %d classed %v): batch size diverged: slice %v, indexed %v",
					name, trial, shape.nTypes, shape.classed, want.Assignments, got.Assignments)
			}
			for i := range want.Assignments {
				if want.Assignments[i] != got.Assignments[i] {
					t.Fatalf("%s trial %d (types %d classed %v): assignment %d diverged: slice %+v, indexed %+v",
						name, trial, shape.nTypes, shape.classed, i, want.Assignments[i], got.Assignments[i])
				}
			}
		}
	}
}

// TestMetaForCorners pins MetaFor's lowering on the exact corner
// shapes the generator steers toward, against hand-computed masks.
func TestMetaForCorners(t *testing.T) {
	// 64 single-PE types: class c == type c, top bit representable.
	pes := make([]PE, 64)
	for i := range pes {
		pe := &genPE{typ: i}
		pe.id = i
		pe.speed = 1
		pe.idle = true
		pes[i] = pe
	}
	v := NewView(pes)
	if v == nil || v.NumClasses() != 64 {
		t.Fatal("64 one-PE types must intern 64 classes")
	}

	top := v.MetaFor([]PlatformChoice{{Key: "t63", TypeID: 63, CostNS: 7}})
	if top.ClassMask != 1<<63 {
		t.Fatalf("top-type mask = %b, want bit 63", top.ClassMask)
	}
	if top.METMask != 1<<63 || top.NumChoices != 1 {
		t.Fatalf("top-type meta = %+v", top)
	}
	if top.Costs[63] != 7 {
		t.Fatalf("top-type cost = %d, want 7", top.Costs[63])
	}

	var full []PlatformChoice
	for i := 0; i < 64; i++ {
		full = append(full, PlatformChoice{Key: fmt.Sprintf("t%d", i), TypeID: i, CostNS: int64(64 - i)})
	}
	all := v.MetaFor(full)
	if all.ClassMask != ^uint64(0) {
		t.Fatalf("full-width mask = %b, want all ones", all.ClassMask)
	}
	// Cheapest choice is the last (cost 1): MET elects exactly it.
	if all.METMask != 1<<63 {
		t.Fatalf("full-width MET mask = %b, want bit 63", all.METMask)
	}

	// A choice on an absent platform contributes nothing; a task with
	// ONLY absent choices has an empty mask (waits forever), but its
	// choice count is still visible to ops accounting.
	ghost := v.MetaFor([]PlatformChoice{{Key: "ghost", TypeID: -1, CostNS: 1}})
	if ghost.ClassMask != 0 || ghost.METMask != 0 || ghost.NumChoices != 1 {
		t.Fatalf("ghost-only meta = %+v", ghost)
	}
}
