// Package sched implements the workload manager's scheduling library:
// the paper's four built-in policies (FRFS, MET, EFT, RANDOM), the
// plug-in point for user-defined policies, and two extensions the
// paper lists as future work (per-PE reservation queues and a
// power-aware heuristic), used here for ablation studies.
//
// A policy receives the ready task list and views of every resource
// handler, returns task-to-PE assignments, and reports the number of
// abstract operations it performed. The emulator charges that count,
// times the overlay core's per-operation cost, as scheduling overhead
// — the paper's Figure 10b quantity. Operation counts model the
// reference implementation's complexity (FRFS linear in the PE count,
// MET linear in the ready-list length, EFT quadratic due to its
// insertion scan); the Go implementations themselves are efficient so
// that large sweeps remain fast, but they charge what the C runtime
// would have spent.
package sched

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/vtime"
)

// PlatformChoice is one supported execution platform of a ready task,
// carrying the JSON cost annotation the schedulers consult.
type PlatformChoice struct {
	// Key matches PE type keys ("cpu", "fft"); kept for diagnostics
	// and rendering.
	Key string
	// TypeID is the dense per-configuration index of Key
	// (platform.Config.TypeIndex), or -1 when the emulated
	// configuration has no PE of this type. The emulation core compiles
	// choices once per (application, configuration), so the policies'
	// inner loops match tasks to PEs by integer comparison instead of
	// string comparison.
	TypeID int
	// CostNS is the annotated execution time on that platform.
	CostNS int64
}

// Task is the scheduler's view of one ready DAG node.
type Task interface {
	// Label identifies the task for diagnostics ("appname#3/FFT_0").
	Label() string
	// Choices lists the supported platforms with cost annotations.
	Choices() []PlatformChoice
	// ReadyAt is the instant the task entered the ready list; FRFS
	// preserves this order.
	ReadyAt() vtime.Time
}

// PE is the scheduler's view of one resource handler.
type PE interface {
	// ID is the configuration-unique PE id.
	ID() int
	// TypeKey is the platform key this PE matches ("cpu", "fft").
	TypeKey() string
	// TypeID is the dense per-configuration index of TypeKey, matching
	// PlatformChoice.TypeID. Always >= 0 for a PE that is part of the
	// configuration.
	TypeID() int
	// SpeedFactor scales annotated costs for this specific PE.
	SpeedFactor() float64
	// PowerW is the active power draw (power-aware extension).
	PowerW() float64
	// Idle reports whether the PE can accept a task immediately.
	Idle() bool
	// AvailableAt estimates when the PE finishes everything it
	// currently holds (run + reservation queue).
	AvailableAt() vtime.Time
	// QueueLen is the current reservation-queue depth.
	QueueLen() int
}

// Assignment maps ready[TaskIndex] onto pes[PEIndex].
type Assignment struct {
	TaskIndex int
	PEIndex   int
}

// Result is a scheduling decision batch plus its charged cost.
type Result struct {
	// Assignments is the decision batch. The built-in policies draw
	// the backing array from a recycling pool: a caller that has fully
	// consumed the batch may hand it back with ReleaseResult, making
	// steady-state scheduling allocation-free. Callers that don't
	// (custom harnesses) simply leave it to the garbage collector.
	Assignments []Assignment
	// Ops is the abstract operation count converted to overhead by
	// the emulator (ops x overlay SchedOpNS).
	Ops int
}

// assignmentPool recycles assignment batch buffers (and their slice
// headers) between newAssignments and ReleaseResult.
var assignmentPool = sync.Pool{New: func() any { return new([]Assignment) }}

// newAssignments checks a zero-length assignment buffer out of the
// pool; the emptied holder goes straight back so holders themselves
// recycle.
func newAssignments() []Assignment {
	p := assignmentPool.Get().(*[]Assignment)
	s := *p
	*p = nil
	assignmentPool.Put(p)
	return s[:0]
}

// ReleaseResult returns a Result's assignment buffer to the policy
// buffer pool. Only call it once the batch has been fully consumed;
// the buffer will be overwritten by a later Schedule invocation of any
// policy. Safe on an empty Result.
func ReleaseResult(r *Result) {
	if cap(r.Assignments) == 0 {
		return
	}
	p := assignmentPool.Get().(*[]Assignment)
	*p = r.Assignments[:0]
	assignmentPool.Put(p)
	r.Assignments = nil
}

// Policy is the pluggable scheduling algorithm interface — the
// paper's scheduler.cpp extension point.
type Policy interface {
	// Name is the policy identifier used on the command line.
	Name() string
	// Schedule picks assignments from the ready list. Implementations
	// must not assign two tasks to the same idle slot: the emulator
	// trusts the batch. The ready and pes slices are scratch views
	// valid only for the duration of the call — implementations must
	// not retain them (the emulator reuses the backing arrays across
	// invocations).
	Schedule(now vtime.Time, ready []Task, pes []PE) Result
	// UsesQueues reports whether the policy targets per-PE
	// reservation queues (may assign to busy PEs).
	UsesQueues() bool
}

// costOn returns the annotated cost of running t on pe, scaled by the
// PE's speed factor; ok is false when the task does not support the
// PE's platform. The match compares compiled type indices, not key
// strings — the emulation core guarantees choice TypeIDs and PE
// TypeIDs come from the same configuration.
func costOn(t Task, pe PE) (int64, bool) {
	id := pe.TypeID()
	for _, c := range t.Choices() {
		if c.TypeID == id {
			return int64(float64(c.CostNS) * pe.SpeedFactor()), true
		}
	}
	return 0, false
}

// supports reports whether t can run on pe at all.
func supports(t Task, pe PE) bool {
	id := pe.TypeID()
	for _, c := range t.Choices() {
		if c.TypeID == id {
			return true
		}
	}
	return false
}

// buffers is the per-invocation working storage of the built-in
// policies (idle masks, tentative finish times, queue loads, candidate
// lists). Policies check one out per Schedule call and return it on
// exit, so steady-state scheduling allocates nothing beyond the
// assignment batch it hands back — the buffers only grow to the
// largest (PE count, ready length) seen and are recycled through a
// sync.Pool across invocations, emulators and sweep workers.
type buffers struct {
	busy  []bool
	fault []bool
	load  []int
	times []vtime.Time
	cand  []int
	pcand []powerCand
}

var bufferPool = sync.Pool{New: func() any { return new(buffers) }}

func getBuffers() *buffers { return bufferPool.Get().(*buffers) }

func (b *buffers) put() { bufferPool.Put(b) }

// boolSlice returns a cleared []bool of length n.
func (b *buffers) boolSlice(n int) []bool {
	if cap(b.busy) < n {
		b.busy = make([]bool, n)
	}
	b.busy = b.busy[:n]
	clear(b.busy)
	return b.busy
}

// faultSlice returns a cleared []bool of length n, distinct from
// boolSlice's backing (policies that track busy and faulted separately
// need both live at once).
func (b *buffers) faultSlice(n int) []bool {
	if cap(b.fault) < n {
		b.fault = make([]bool, n)
	}
	b.fault = b.fault[:n]
	clear(b.fault)
	return b.fault
}

// intSlice returns a zeroed []int of length n.
func (b *buffers) intSlice(n int) []int {
	if cap(b.load) < n {
		b.load = make([]int, n)
	}
	b.load = b.load[:n]
	clear(b.load)
	return b.load
}

// timeSlice returns a zeroed []vtime.Time of length n.
func (b *buffers) timeSlice(n int) []vtime.Time {
	if cap(b.times) < n {
		b.times = make([]vtime.Time, n)
	}
	b.times = b.times[:n]
	clear(b.times)
	return b.times
}

// New constructs a policy by name; the plug-in dispatch of the paper's
// performScheduling. Seed feeds the RANDOM policy.
func New(name string, seed int64) (Policy, error) {
	switch name {
	case "frfs", "FRFS":
		return FRFS{}, nil
	case "met", "MET":
		return MET{}, nil
	case "eft", "EFT":
		return EFT{}, nil
	case "random", "RANDOM":
		return NewRandom(seed), nil
	case "frfs-rq", "FRFS-RQ":
		return FRFSQ{Depth: DefaultQueueDepth}, nil
	case "eft-rq", "EFT-RQ":
		return EFTQ{Depth: DefaultQueueDepth}, nil
	case "eft-power", "EFT-POWER":
		// Pointer so power-cap events (PowerCapped) can reach it.
		return &PowerEFT{Slack: 1.25}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
	}
}

// Names lists the built-in policy names.
func Names() []string {
	return []string{"frfs", "met", "eft", "random", "frfs-rq", "eft-rq", "eft-power"}
}

// --- FRFS -------------------------------------------------------------

// FRFS is first ready-first start: walk the ready list in arrival
// order and hand each task to the first idle PE that supports it. Its
// operation count is proportional to the PE count (the paper measures
// a flat ~2.5 us on the A53 overlay), because the scan stops as soon
// as the idle pool is exhausted.
type FRFS struct{}

// Name implements Policy.
func (FRFS) Name() string { return "frfs" }

// UsesQueues implements Policy.
func (FRFS) UsesQueues() bool { return false }

// Schedule implements Policy.
func (FRFS) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	busy := b.boolSlice(len(pes))
	idle := 0
	for i, pe := range pes {
		res.Ops++ // availability check per resource handler
		if pe.Idle() {
			idle++
		} else {
			busy[i] = true
		}
	}
	for ti := 0; ti < len(ready) && idle > 0; ti++ {
		for pi, pe := range pes {
			if busy[pi] {
				continue
			}
			res.Ops++ // platform-match probe
			if supports(ready[ti], pe) {
				res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pi})
				busy[pi] = true
				idle--
				break
			}
		}
	}
	return res
}

// --- MET ---------------------------------------------------------------

// MET is minimum execution time: each ready task goes to the PE type
// on which its annotated cost is smallest, if a PE of that type is
// idle; otherwise the task waits for one. The full ready list is
// scanned every invocation, so the charged operation count is linear
// in the ready-list length — the O(n) the paper cites.
type MET struct{}

// Name implements Policy.
func (MET) Name() string { return "met" }

// UsesQueues implements Policy.
func (MET) UsesQueues() bool { return false }

// Schedule implements Policy.
func (MET) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	busy := b.boolSlice(len(pes))
	for i, pe := range pes {
		res.Ops++
		busy[i] = !pe.Idle()
	}
	for ti, t := range ready {
		// Find the minimum-cost platform type. The charged cost is the
		// per-entry comparison; the reference implementation keeps
		// per-type idle lists, so locating an idle PE of the chosen
		// type is O(1) and the overall charge stays linear in the
		// ready-list length (the paper's O(n)). A best type that is
		// absent from the configuration (TypeID -1) matches no PE: the
		// task waits, exactly as with the old key-string match.
		bestType := -1
		var bestCost int64 = -1
		for _, c := range t.Choices() {
			res.Ops++ // cost comparison per platform entry
			if bestCost < 0 || c.CostNS < bestCost {
				bestCost = c.CostNS
				bestType = c.TypeID
			}
		}
		for pi, pe := range pes {
			if busy[pi] || pe.TypeID() != bestType {
				continue
			}
			res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pi})
			busy[pi] = true
			break
		}
		// Unassigned tasks simply wait for a PE of their MET type.
	}
	return res
}

// --- EFT ---------------------------------------------------------------

// EFT is earliest finish time: for each ready task, estimate the
// finish time on every PE (start = max(now, PE availability, already
// tentatively placed work) plus the scaled cost) and commit the task
// to the minimizing PE if it is idle. The reference implementation
// re-scans its tentative placements for every (task, PE) pair, which
// is the O(n^2) complexity the paper measures; the charged operation
// count reproduces that even though this implementation tracks
// tentative finishes incrementally.
type EFT struct{}

// Name implements Policy.
func (EFT) Name() string { return "eft" }

// UsesQueues implements Policy.
func (EFT) UsesQueues() bool { return false }

// eftPairWeight is the abstract op cost of one (task, PE) finish-time
// evaluation: availability read, cost scale, max, compare.
const eftPairWeight = 4

// Schedule implements Policy.
func (EFT) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	busy := b.boolSlice(len(pes))
	faulted := b.faultSlice(len(pes))
	tentative := b.timeSlice(len(pes))
	for i, pe := range pes {
		res.Ops++
		busy[i] = !pe.Idle()
		faulted[i] = isFaulted(pe)
		tentative[i] = pe.AvailableAt()
		if tentative[i] < now {
			tentative[i] = now
		}
	}
	placed := 0
	for ti, t := range ready {
		bestPE := -1
		var bestFinish vtime.Time
		// Charge the reference implementation's rescan of its
		// tentative placements (the quadratic term the paper
		// measures); the divisor reflects that the rescan touches one
		// field per placement rather than a full pair evaluation.
		res.Ops += placed / 32
		for pi, pe := range pes {
			res.Ops += eftPairWeight
			// A faulted PE is no candidate, not even as a tentative-wait
			// target: its in-flight work was requeued and it never
			// frees. The pair charge above still counts it, like the
			// reference scan that discovers the dead status.
			if faulted[pi] {
				continue
			}
			cost, ok := costOn(t, pe)
			if !ok {
				continue
			}
			start := tentative[pi]
			finish := start.Add(vtime.Duration(cost))
			if bestPE == -1 || finish < bestFinish {
				bestPE, bestFinish = pi, finish
			}
		}
		if bestPE < 0 {
			continue
		}
		placed++
		if busy[bestPE] {
			// Without reservation queues the task cannot be handed to
			// a busy PE; it waits, but its tentative placement still
			// influences later decisions (and later rescans), exactly
			// like the reference implementation.
			tentative[bestPE] = bestFinish
			continue
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: bestPE})
		busy[bestPE] = true
		tentative[bestPE] = bestFinish
	}
	return res
}

// --- RANDOM ------------------------------------------------------------

// Random assigns each ready task to a uniformly random idle supporting
// PE. It exists as the paper's baseline sanity policy.
type Random struct {
	rng  *rand.Rand
	seed int64
}

// NewRandom builds the RANDOM policy with a deterministic seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Reset restores the policy to its freshly-seeded state. The emulator
// calls it (through the Resettable interface) at the start of every
// Run, so repeated Runs of one emulator draw identical random
// placements.
func (r *Random) Reset() { r.rng.Seed(r.seed) }

// Resettable is implemented by stateful policies that can restore
// their initial state; the emulator resets such policies per Run to
// keep emulator reuse deterministic.
type Resettable interface {
	Reset()
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// UsesQueues implements Policy.
func (*Random) UsesQueues() bool { return false }

// Schedule implements Policy.
func (r *Random) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	busy := b.boolSlice(len(pes))
	for i, pe := range pes {
		res.Ops++
		busy[i] = !pe.Idle()
	}
	// One candidate buffer reused across the ready loop (and, through
	// the pool, across invocations).
	candidates := b.cand
	defer func() { b.cand = candidates }()
	for ti, t := range ready {
		candidates = candidates[:0]
		for pi, pe := range pes {
			res.Ops++
			if !busy[pi] && supports(t, pe) {
				candidates = append(candidates, pi)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		pick := candidates[r.rng.Intn(len(candidates))]
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pick})
		busy[pick] = true
	}
	return res
}
