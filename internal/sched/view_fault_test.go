package sched

import (
	"math/rand"
	"testing"
)

// Dynamic-platform coverage of the View maintenance API: fault and
// restore transitions, DVFS re-classing, class interning at the
// representation ceiling, and the ready-deque compaction patterns a PE
// death produces (requeues interleaved with completions, and the
// dead-prefix slide once requeue churn pushes the head past the live
// window).

// TestViewFaultRestore pins the fault transition's full effect: the PE
// leaves the idle index and its class-membership bitmap atomically
// (so class enumerations skip it), its counters are zeroed, and the
// restore returns it idle with a clean slate. Both directions are
// idempotent.
func TestViewFaultRestore(t *testing.T) {
	v := NewView(asPEs(idleCPU(0), idleCPU(1), idleFFT(2)))
	v.SetAvail(1, 500)
	v.AddLoad(1, 2)
	v.MarkBusy(1)

	v.FaultPE(1)
	v.FaultPE(1)
	if !v.Faulted(1) || v.Faulted(0) {
		t.Fatalf("fault status wrong: pe1=%v pe0=%v", v.Faulted(1), v.Faulted(0))
	}
	if v.IdleCount() != 2 {
		t.Fatalf("idle count after faulting a busy PE: %d, want 2", v.IdleCount())
	}
	if v.avail[1] != 0 || v.load[1] != 0 {
		t.Fatalf("faulted PE kept counters: avail=%v load=%d", v.avail[1], v.load[1])
	}
	// Membership withdrawal: the idle scan over pe1's class must not
	// surface it even though pe0 of the same class is idle.
	v.beginIdleScratch()
	if pi := v.minIdleOfClass(v.ClassOf(1)); pi != 0 {
		t.Fatalf("idle scan of the faulted PE's class found %d, want 0", pi)
	}
	// Faulting an idle PE shrinks the idle pool; double restore is a
	// no-op on healthy PEs.
	v.FaultPE(2)
	if v.IdleCount() != 1 {
		t.Fatalf("idle count after faulting an idle PE: %d, want 1", v.IdleCount())
	}
	v.RestorePE(2)
	v.RestorePE(2)
	v.RestorePE(0) // healthy: no-op
	if v.IdleCount() != 2 || v.Faulted(2) {
		t.Fatalf("restore wrong: idle=%d faulted2=%v", v.IdleCount(), v.Faulted(2))
	}
	v.RestorePE(1)
	if v.IdleCount() != 3 {
		t.Fatalf("restored busy-faulted PE not idle: %d", v.IdleCount())
	}
	v.beginIdleScratch()
	if pi := v.minIdleOfClass(v.ClassOf(1)); pi != 0 {
		t.Fatalf("post-restore idle scan found %d, want 0", pi)
	}
}

// TestViewSetClassOnFaultedPE pins the DVFS-during-fault interaction:
// re-classing a faulted PE moves its class index without resurrecting
// a membership bit, and the restore files it under the new class.
func TestViewSetClassOnFaultedPE(t *testing.T) {
	v := NewView(asPEs(idleCPU(0), idleCPU(1)))
	ci := v.InternClass(int32(typeID("cpu")), 0.5, 1)
	if ci < 0 {
		t.Fatal("interning a DVFS signature failed")
	}
	v.FaultPE(1)
	v.SetClass(1, ci)
	if v.ClassOf(1) != ci {
		t.Fatalf("faulted PE not re-classed: %d", v.ClassOf(1))
	}
	v.beginIdleScratch()
	if pi := v.minIdleOfClass(ci); pi != -1 {
		t.Fatalf("faulted PE visible in its new class: %d", pi)
	}
	v.RestorePE(1)
	v.beginIdleScratch()
	if pi := v.minIdleOfClass(ci); pi != 1 {
		t.Fatalf("restored PE not filed under the new class: %d", pi)
	}
	// Idle-count bookkeeping moved with it.
	if v.idleCnt[ci] != 1 || v.idleCnt[v.ClassOf(0)] != 1 {
		t.Fatalf("idle counts wrong after re-class: %v", v.idleCnt)
	}
}

// TestInternClassCeiling pins the 63/64 boundary of runtime interning:
// a 63-class view accepts exactly one more signature and then refuses,
// interned classes are deduplicated, and Reset keeps them while
// restoring construction-time membership and clearing faults.
func TestInternClassCeiling(t *testing.T) {
	v := NewView(speedClassedPEs(63))
	if v == nil || v.NumClasses() != 63 {
		t.Fatal("63-class construction failed")
	}
	c64 := v.InternClass(int32(typeID("cpu")), 99, 99)
	if c64 != 63 {
		t.Fatalf("64th class interned as %d, want 63", c64)
	}
	if again := v.InternClass(int32(typeID("cpu")), 99, 99); again != c64 {
		t.Fatalf("re-interning the same signature gave %d, want %d", again, c64)
	}
	if v.InternClass(int32(typeID("cpu")), 100, 100) != -1 {
		t.Fatal("65th class accepted past the representation ceiling")
	}
	// Migrate a PE into the interned class, fault another, then Reset:
	// membership and health return to construction state, the interned
	// class table survives.
	v.SetClass(0, c64)
	v.FaultPE(1)
	v.Reset()
	if v.NumClasses() != 64 {
		t.Fatalf("Reset dropped interned classes: %d", v.NumClasses())
	}
	if v.ClassOf(0) != 0 || v.Faulted(1) || v.IdleCount() != 63 {
		t.Fatalf("Reset did not restore construction state: class0=%d faulted1=%v idle=%d",
			v.ClassOf(0), v.Faulted(1), v.IdleCount())
	}
	if v.idleCnt[c64] != 0 {
		t.Fatalf("empty interned class has idle members after Reset: %d", v.idleCnt[c64])
	}
}

// TestCompactReadyFaultRequeuePattern drives the deque through the
// exact shape a PE fault produces: scheduling batches consume
// scattered window entries (completions) while the fault requeues
// orphaned tasks at the tail, repeatedly, against a reference deque.
// Every mixture must preserve order with requeued tasks last.
func TestCompactReadyFaultRequeuePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	v := NewView(asPEs(idleCPU(0), idleFFT(1)))
	metaFor := func(tk Task) *ReadyMeta {
		m := v.MetaFor(tk.Choices())
		return &m
	}
	var ref []Task
	next := 0
	for round := 0; round < 300; round++ {
		for n := rng.Intn(5); n > 0; n-- {
			tk := dualTask("t", int64(next+1), int64(next+2))
			next++
			v.PushReady(tk, metaFor(tk))
			ref = append(ref, tk)
		}
		if len(ref) == 0 {
			continue
		}
		// A dispatch batch: scattered removals across the window.
		remove := make([]bool, len(ref))
		nRemoved := 0
		var dispatched []Task
		for i := range remove {
			if rng.Intn(3) == 0 {
				remove[i] = true
				nRemoved++
				dispatched = append(dispatched, ref[i])
			}
		}
		v.CompactReady(remove, nRemoved)
		kept := ref[:0]
		for i, tk := range ref {
			if !remove[i] {
				kept = append(kept, tk)
			}
		}
		ref = append([]Task(nil), kept...)
		// The fault: a subset of the dispatched tasks come back as
		// requeues at the tail, in dispatch order.
		for _, tk := range dispatched {
			if rng.Intn(2) == 0 {
				v.PushReady(tk, metaFor(tk))
				ref = append(ref, tk)
			}
		}
		win := v.Ready()
		if len(win) != len(ref) {
			t.Fatalf("round %d: window %d, want %d", round, len(win), len(ref))
		}
		for i := range ref {
			if win[i] != ref[i] {
				t.Fatalf("round %d: window[%d] diverged after requeue churn", round, i)
			}
			if v.metas()[i] == nil {
				t.Fatalf("round %d: meta lost at %d", round, i)
			}
		}
	}
}

// TestCompactReadyDeadPrefixSlide forces the backing-slide branch
// (head >= 64 and dead prefix outweighing the live window) that heavy
// requeue churn reaches: the storage must slide down to head zero with
// the window intact and no stale pointers pinned beyond it.
func TestCompactReadyDeadPrefixSlide(t *testing.T) {
	v := NewView(asPEs(idleCPU(0)))
	var ref []Task
	for i := 0; i < 100; i++ {
		tk := cpuTask("t", int64(i+1))
		m := v.MetaFor(tk.Choices())
		v.PushReady(tk, &m)
		ref = append(ref, tk)
	}
	// Consume a 70-entry prefix: head lands at 70 >= 64 with 30 live,
	// so the same call must slide the backing array down.
	remove := make([]bool, 100)
	for i := 0; i < 70; i++ {
		remove[i] = true
	}
	v.CompactReady(remove, 70)
	if v.head != 0 {
		t.Fatalf("dead prefix not slid down: head=%d", v.head)
	}
	if len(v.ready) != 30 || v.ReadyLen() != 30 {
		t.Fatalf("window length wrong after slide: %d/%d", len(v.ready), v.ReadyLen())
	}
	for i, tk := range v.Ready() {
		if tk != ref[70+i] {
			t.Fatalf("window[%d] diverged after slide", i)
		}
	}
	// Nothing beyond the live window pins a task.
	for i := len(v.ready); i < cap(v.ready); i++ {
		if v.ready[:cap(v.ready)][i] != nil {
			t.Fatalf("stale task pointer pinned at backing slot %d", i)
		}
	}
	// A shorter dead prefix (below the 64 threshold) must NOT slide.
	v.Reset()
	for i := 0; i < 100; i++ {
		tk := cpuTask("t", int64(i+1))
		m := v.MetaFor(tk.Choices())
		v.PushReady(tk, &m)
	}
	remove = make([]bool, 100)
	for i := 0; i < 40; i++ {
		remove[i] = true
	}
	v.CompactReady(remove, 40)
	if v.head != 40 || v.ReadyLen() != 60 {
		t.Fatalf("sub-threshold prefix slid: head=%d live=%d", v.head, v.ReadyLen())
	}
}
