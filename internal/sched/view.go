package sched

// The indexed scheduler state. A View is the incrementally maintained
// counterpart of the (ready []Task, pes []PE) slice pair: the owner
// (the emulation core) keeps per-cost-class idle-PE bitmaps, per-PE
// availability and load counters, and the ready list with compiled
// per-task metadata up to date as events happen — dispatch, completion
// collection, reservation enqueue, ready push — instead of rebuilding
// full views on every scheduler invocation. Policies that implement
// IndexedPolicy consume the View through bitmap queries that only
// touch idle PEs and compatible tasks, so the host-side cost of one
// invocation no longer scales with ready-length x PE-count.
//
// The charged operation counts (Result.Ops) are part of the modelled
// behaviour — the paper's Figure 10b quantity — and must therefore be
// IDENTICAL between the two paths: ScheduleIndexed computes the same
// ops the slice scan would have charged (idle ranks, probe counts,
// pair weights) from the index structures. The byte-determinism
// contract is pinned by TestIndexedMatchesSlicePolicies (package
// sched) and TestIndexedMatchesSlicePath (package core).

import (
	"math/bits"

	"repro/internal/vtime"
)

// ReadyMeta is the compiled per-task metadata the indexed fast paths
// consume. The emulation core derives it once per DAG node at program
// compile time (it depends only on the node's platform choices and
// the configuration's cost-class interning) and pushes it alongside
// every ready task.
//
// Everything here is expressed over *cost classes*, not type keys: a
// class is a maximal group of PEs sharing (type, speed factor, power),
// interned in first-appearance order over the PE table — the same
// partition View derives for itself, and the same one
// platform.Config.Classes computes, so the two numberings agree by
// construction. Cost is uniform within a class by definition, which is
// what lets the EFT-family fast paths decompose per class on any
// configuration, the Odroid's split "cpu" type included.
type ReadyMeta struct {
	// ClassMask has bit c set when the task carries a platform choice
	// matching class c's type, i.e. the configuration can run it on a
	// PE of class c.
	ClassMask uint64
	// METMask has bit c set for every class whose type is the task's
	// minimum-cost platform entry, resolved with MET's exact scan
	// (first strict minimum over the choice list in order); zero when
	// that entry's platform is absent from the configuration, in which
	// case the task waits, as on the slice path.
	METMask uint64
	// NumChoices is the length of the task's choice list — the
	// per-task operation count MET charges for its cost scan.
	NumChoices int32
	// Costs[c] is the task's execution cost on class c — the annotated
	// cost of its first choice matching c's type, scaled by the class
	// speed factor, exactly costOn's arithmetic. Entries outside
	// ClassMask are zero and must not be read. The slice is shared
	// compiled data: per DAG node, immutable, aliased by every ready
	// push of that node.
	Costs []int64
}

// IndexedPolicy is the optional fast-path side of Policy. A policy
// implementing it is handed the incrementally maintained View instead
// of freshly built slices. ScheduleIndexed MUST return a Result that
// is byte-identical — same assignments in the same order, same Ops —
// to what Schedule would return for the equivalent slice state;
// emulation reports are pinned on this. Third-party policies that
// don't implement the interface keep receiving the slice views.
type IndexedPolicy interface {
	Policy
	ScheduleIndexed(now vtime.Time, v *View) Result
}

// SliceOnly wraps a policy so that any indexed fast path it implements
// is hidden, forcing the emulator onto the legacy slice path. It
// exists for differential tests and path-ablation benchmarks; the
// wrapper forwards Reset to stateful policies so seeded runs stay
// comparable.
func SliceOnly(p Policy) Policy { return sliceOnly{p} }

type sliceOnly struct{ p Policy }

func (w sliceOnly) Name() string     { return w.p.Name() }
func (w sliceOnly) UsesQueues() bool { return w.p.UsesQueues() }
func (w sliceOnly) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	return w.p.Schedule(now, ready, pes)
}
func (w sliceOnly) Reset() {
	if r, ok := w.p.(Resettable); ok {
		r.Reset()
	}
}

// SetPowerCap forwards an active power cap to the wrapped policy, so
// cap events reach power-aware policies on the forced slice path too.
func (w sliceOnly) SetPowerCap(watts float64) {
	if pc, ok := w.p.(PowerCapped); ok {
		pc.SetPowerCap(watts)
	}
}

// PowerCapped is implemented by policies that honour a platform power
// cap: with a cap active (watts > 0) the policy must not place work on
// PEs drawing more than the cap. The emulation core pushes cap events
// (platevent.PowerCap) through this interface; 0 lifts the cap.
type PowerCapped interface {
	SetPowerCap(watts float64)
}

// Faulty is the optional fault-status side of PE. A faulted PE is
// offline: policies must not consider it a placement candidate at all —
// not even as EFT's tentative-wait target or a reservation-queue slot —
// though P-proportional charged scans still count it (the reference
// manager's status scan reads a dead handler's status word like any
// other). PEs that don't implement the interface are never faulted.
type Faulty interface {
	Faulted() bool
}

// isFaulted reports a PE's fault status through the optional interface.
func isFaulted(pe PE) bool {
	f, ok := pe.(Faulty)
	return ok && f.Faulted()
}

// availEntry is one (instant, PE index) pair in the per-class min-heaps
// the EFT-family fast paths use; ordering is lexicographic (at, idx),
// matching the slice scan's first-strict-minimum-in-index-order
// tie-break.
type availEntry struct {
	at  vtime.Time
	idx int32
}

func entryLess(a, b availEntry) bool {
	return a.at < b.at || (a.at == b.at && a.idx < b.idx)
}

func pushEntry(h []availEntry, e availEntry) []availEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if entryLess(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popEntry(h []availEntry) []availEntry {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && entryLess(h[l], h[min]) {
			min = l
		}
		if r < n && entryLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return h
}

// viewScratch is the per-Schedule working state of the fast paths.
// Everything here is rebuilt (cheaply) or copied at the start of a
// ScheduleIndexed call and never escapes it, so a policy's tentative
// decisions cannot leak into the View's live state — the emulator
// applies the returned batch itself.
type viewScratch struct {
	idle    []uint64
	idleCnt []int32
	idleTot int

	tent  []vtime.Time
	avail []vtime.Time
	load  []int32
	heaps [][]availEntry

	buckets []uint64
}

// View is the indexed scheduler state; see the package comment above.
// A View belongs to exactly one emulator and is not safe for
// concurrent use.
type View struct {
	pes []PE
	// peClass is each PE's cost-class index. Classes — distinct
	// (TypeID, speed, power) signatures in first-appearance order over
	// pes — refine the type interning, so the Odroid's big and LITTLE
	// cores land in two classes even though both intern under the one
	// "cpu" type. Membership is time-varying under DVFS re-classing
	// (SetClass); peClass0 snapshots the construction-time membership
	// Reset restores.
	peClass    []int32
	peClass0   []int32
	numClasses int
	// allClasses masks off ClassMask bits beyond the interned classes:
	// a task may carry a mask for classes no PE of this view belongs to
	// (fake scenarios, foreign masks); such bits mean "no candidate
	// PEs" and are dropped before any per-class table is indexed.
	allClasses uint64
	words      int // uint64 words per PE bitmap

	// classBits[c*words:(c+1)*words] is the static membership bitmap of
	// class c over PE indices.
	classBits []uint64
	// classType/speed/power are the per-class signature: the TypeID the
	// class's PEs intern under, and their (uniform, by construction)
	// cost parameters.
	classType []int32
	speed     []float64
	power     []float64

	// Live state, maintained by the owner.
	idleBits []uint64
	idleCnt  []int32
	idleTot  int
	avail    []vtime.Time
	load     []int32
	// faultBits marks offline PEs (FaultPE/RestorePE). A faulted PE is
	// withdrawn from its class-membership bitmap — so every per-class
	// enumeration (idle lookups, busy heaps, load buckets) skips it
	// without a per-query check — and from the idle index.
	faultBits []uint64

	// ready/meta hold the ready window as a head-offset deque: slots
	// below head are consumed, the live window is ready[head:]. Batch
	// removals are overwhelmingly a prefix of the FIFO window (FRFS
	// assigns oldest-first), so consuming them by advancing head makes
	// the per-batch cost proportional to the batch, not the window —
	// the O(ready-length) compaction the slice path paid on every
	// invocation was the dominant host cost of saturated runs. The
	// metadata rides as pointers to the (immutable, shared) compiled
	// per-node records, so deque pushes and compaction shifts move 8
	// bytes per entry, not the whole class-cost table.
	ready []Task
	meta  []*ReadyMeta
	head  int

	scr viewScratch
}

// classSig is one interned cost class during view construction.
type classSig struct {
	typeID int32
	speed  float64
	power  float64
}

// NewView builds the indexed state over a fixed PE table, interning
// the table's cost classes — distinct (TypeID, speed, power)
// signatures in first-appearance order, the identical partition
// platform.Config.Classes computes for the same PE sequence. It
// returns nil when the configuration is outside the index's
// representation (more than 64 interned classes, or a PE without a
// valid TypeID); the caller then stays on the slice path entirely. The
// pes slice is retained and must stay valid and immutable for the
// View's lifetime.
func NewView(pes []PE) *View {
	if len(pes) == 0 {
		return nil
	}
	classes := make([]classSig, 0, 4)
	peClass := make([]int32, len(pes))
	for i, pe := range pes {
		if pe.TypeID() < 0 {
			return nil
		}
		sig := classSig{typeID: int32(pe.TypeID()), speed: pe.SpeedFactor(), power: pe.PowerW()}
		ci := -1
		for j, s := range classes {
			if s == sig {
				ci = j
				break
			}
		}
		if ci < 0 {
			if len(classes) == 64 {
				return nil
			}
			ci = len(classes)
			classes = append(classes, sig)
		}
		peClass[i] = int32(ci)
	}
	numClasses := len(classes)
	words := (len(pes) + 63) / 64
	v := &View{
		pes:        pes,
		peClass:    peClass,
		numClasses: numClasses,
		words:      words,
		classBits:  make([]uint64, numClasses*words),
		classType:  make([]int32, numClasses),
		speed:      make([]float64, numClasses),
		power:      make([]float64, numClasses),
		idleBits:   make([]uint64, words),
		idleCnt:    make([]int32, numClasses),
		avail:      make([]vtime.Time, len(pes)),
		load:       make([]int32, len(pes)),
		faultBits:  make([]uint64, words),
	}
	v.peClass0 = append([]int32(nil), peClass...)
	v.allClasses = uint64(1)<<uint(numClasses) - 1
	for c, sig := range classes {
		v.classType[c] = sig.typeID
		v.speed[c] = sig.speed
		v.power[c] = sig.power
	}
	v.Reset()
	return v
}

// NumClasses reports how many cost classes the view interned.
func (v *View) NumClasses() int { return v.numClasses }

// MetaFor derives the compiled metadata of a choice list against this
// view's class interning — the same lowering core.Compile performs
// against platform.Config.Classes. It allocates (the Costs table), so
// it serves tests, tooling and custom harnesses; the emulation core
// pushes pre-compiled per-node metadata instead.
func (v *View) MetaFor(choices []PlatformChoice) ReadyMeta {
	m := ReadyMeta{NumChoices: int32(len(choices)), Costs: make([]int64, v.numClasses)}
	for c := 0; c < v.numClasses; c++ {
		for _, ch := range choices {
			// First entry wins, matching costOn's scan order.
			if int32(ch.TypeID) == v.classType[c] {
				m.ClassMask |= 1 << uint(c)
				m.Costs[c] = int64(float64(ch.CostNS) * v.speed[c])
				break
			}
		}
	}
	bestType := int32(-1)
	var bestCost int64 = -1
	for _, ch := range choices {
		if bestCost < 0 || ch.CostNS < bestCost {
			bestCost = ch.CostNS
			bestType = int32(ch.TypeID)
		}
	}
	if bestType >= 0 {
		for c := 0; c < v.numClasses; c++ {
			if v.classType[c] == bestType {
				m.METMask |= 1 << uint(c)
			}
		}
	}
	return m
}

// Reset restores the start-of-run state: every PE idle with zero
// availability and load, all faults cleared, original class membership
// (DVFS re-classing undone — though classes interned after construction
// survive, so repeated runs of one dynamic emulator see one stable
// class table), and an empty ready list (backing arrays are kept,
// pointers cleared).
func (v *View) Reset() {
	copy(v.peClass, v.peClass0)
	clear(v.faultBits)
	clear(v.classBits)
	clear(v.idleBits)
	clear(v.idleCnt)
	for i := range v.pes {
		v.classBits[int(v.peClass[i])*v.words+i/64] |= 1 << uint(i%64)
		v.idleBits[i/64] |= 1 << uint(i%64)
		v.idleCnt[v.peClass[i]]++
	}
	v.idleTot = len(v.pes)
	clear(v.avail)
	clear(v.load)
	clear(v.ready[:cap(v.ready)])
	clear(v.meta[:cap(v.meta)])
	v.ready = v.ready[:0]
	v.meta = v.meta[:0]
	v.head = 0
}

// MarkBusy removes a PE from the idle index; idempotent.
func (v *View) MarkBusy(pi int) {
	w, b := pi/64, uint64(1)<<uint(pi%64)
	if v.idleBits[w]&b != 0 {
		v.idleBits[w] &^= b
		v.idleCnt[v.peClass[pi]]--
		v.idleTot--
	}
}

// MarkIdle returns a PE to the idle index; idempotent.
func (v *View) MarkIdle(pi int) {
	w, b := pi/64, uint64(1)<<uint(pi%64)
	if v.idleBits[w]&b == 0 {
		v.idleBits[w] |= b
		v.idleCnt[v.peClass[pi]]++
		v.idleTot++
	}
}

// FaultPE withdraws a PE from the schedulable pool atomically: out of
// the idle index, out of its class-membership bitmap (so busy-PE
// enumerations — EFT's tentative heaps, EFTQ's availability heaps —
// skip it too), load and availability zeroed. The owner requeues the
// PE's in-flight and reserved tasks itself (PushReady), since the View
// doesn't hold them. Idempotent.
func (v *View) FaultPE(pi int) {
	w, b := pi/64, uint64(1)<<uint(pi%64)
	if v.faultBits[w]&b != 0 {
		return
	}
	v.MarkBusy(pi)
	v.faultBits[w] |= b
	v.classBits[int(v.peClass[pi])*v.words+w] &^= b
	v.avail[pi] = 0
	v.load[pi] = 0
}

// RestorePE returns a faulted PE to the pool, idle with a clean slate,
// under its current class. Idempotent (a no-op on healthy PEs).
func (v *View) RestorePE(pi int) {
	w, b := pi/64, uint64(1)<<uint(pi%64)
	if v.faultBits[w]&b == 0 {
		return
	}
	v.faultBits[w] &^= b
	v.classBits[int(v.peClass[pi])*v.words+w] |= b
	v.avail[pi] = 0
	v.load[pi] = 0
	v.MarkIdle(pi)
}

// Faulted reports whether the PE is currently withdrawn by FaultPE.
func (v *View) Faulted(pi int) bool {
	return v.faultBits[pi/64]&(1<<uint(pi%64)) != 0
}

// SetClass migrates a PE to another interned cost class — the DVFS
// re-classing path: membership bitmap, idle count, and class index all
// move together, so every per-class structure built afterwards sees the
// PE under its new signature. Works on faulted PEs too (the membership
// bit is withdrawn either way; RestorePE re-files under the new class).
func (v *View) SetClass(pi, ci int) {
	old := int(v.peClass[pi])
	if old == ci {
		return
	}
	w, b := pi/64, uint64(1)<<uint(pi%64)
	if v.faultBits[w]&b == 0 {
		v.classBits[old*v.words+w] &^= b
		v.classBits[ci*v.words+w] |= b
	}
	if v.idleBits[w]&b != 0 {
		v.idleCnt[old]--
		v.idleCnt[ci]++
	}
	v.peClass[pi] = int32(ci)
}

// ClassOf reports the PE's current cost class.
func (v *View) ClassOf(pi int) int { return int(v.peClass[pi]) }

// InternClass finds or adds the cost class of signature (typeID, speed,
// power), returning its index, or -1 when adding it would exceed the
// 64-class representation ceiling — the caller must then abandon the
// indexed path (slice-rebuild). New classes start with no members; PEs
// migrate in through SetClass. Interned classes are permanent: they
// survive Reset, so an emulator that pre-interns its DVFS steps sees
// one stable class numbering across runs.
func (v *View) InternClass(typeID int32, speed, power float64) int {
	for c := 0; c < v.numClasses; c++ {
		if v.classType[c] == typeID && v.speed[c] == speed && v.power[c] == power {
			return c
		}
	}
	if v.numClasses == 64 {
		return -1
	}
	c := v.numClasses
	v.numClasses++
	v.allClasses = uint64(1)<<uint(v.numClasses) - 1
	v.classType = append(v.classType, typeID)
	v.speed = append(v.speed, speed)
	v.power = append(v.power, power)
	v.idleCnt = append(v.idleCnt, 0)
	v.classBits = append(v.classBits, make([]uint64, v.words)...)
	return c
}

// SetAvail records the instant the PE's current dispatch completes —
// the AvailableAt the slice path would read back from the handler.
func (v *View) SetAvail(pi int, at vtime.Time) { v.avail[pi] = at }

// AddLoad adjusts the PE's held-task count (running or reserved): +1
// per task handed to the handler by a scheduling batch, -1 per
// completion collected. Mirrors QueueLen() plus the running slot.
func (v *View) AddLoad(pi, delta int) { v.load[pi] += int32(delta) }

// PushReady appends a task (with its compiled metadata) to the ready
// list; order is the arrival order FRFS preserves. The metadata is
// retained by pointer: it must stay valid and immutable while the task
// is in the window (the emulation core passes per-node records that
// live as long as the compiled Program).
func (v *View) PushReady(t Task, m *ReadyMeta) {
	v.ready = append(v.ready, t)
	v.meta = append(v.meta, m)
}

// CompactReady drops every window entry whose index is marked in
// remove (indices are window-relative), preserving order; nRemoved is
// the mark count, letting the all-prefix case — FRFS assigns
// oldest-first, so batches overwhelmingly consume a prefix — return
// without scanning the rest of the window for holes. The removed
// prefix is consumed by advancing the head; only removals scattered
// beyond it cost a tail compaction. Once the dead prefix outweighs the
// live window the backing array slides down, so storage stays
// proportional to the peak window.
func (v *View) CompactReady(remove []bool, nRemoved int) {
	base := v.head
	i := 0
	for ; i < len(remove) && remove[i]; i++ {
		v.ready[base+i] = nil // consumed slots must not pin tasks
		v.meta[base+i] = nil
	}
	v.head = base + i
	// Scattered removals beyond the prefix: everything before the first
	// hole is already in place, so compaction shifts only the tail from
	// there, moving the kept runs between holes with bulk copies. When
	// the prefix accounted for every mark there is no hole to find and
	// the window scan is skipped entirely.
	f := -1
	if i < nRemoved {
		for j := i; j < len(remove); j++ {
			if remove[j] {
				f = j
				break
			}
		}
	}
	if f >= 0 {
		dst := base + f
		j := f
		for j < len(remove) {
			if remove[j] {
				j++
				continue
			}
			k := j
			for k < len(remove) && !remove[k] {
				k++
			}
			copy(v.meta[dst:], v.meta[base+j:base+k])
			dst += copy(v.ready[dst:], v.ready[base+j:base+k])
			j = k
		}
		for i := dst; i < len(v.ready); i++ {
			v.ready[i] = nil
			v.meta[i] = nil
		}
		v.ready = v.ready[:dst]
		v.meta = v.meta[:dst]
	}
	if v.head == len(v.ready) {
		v.ready = v.ready[:0]
		v.meta = v.meta[:0]
		v.head = 0
	} else if v.head >= 64 && v.head > len(v.ready)-v.head {
		n := copy(v.ready, v.ready[v.head:])
		copy(v.meta, v.meta[v.head:])
		for i := n; i < len(v.ready); i++ {
			v.ready[i] = nil
			v.meta[i] = nil
		}
		v.ready = v.ready[:n]
		v.meta = v.meta[:n]
		v.head = 0
	}
}

// ReadyLen is the live ready window length.
func (v *View) ReadyLen() int { return len(v.ready) - v.head }

// Ready exposes the live ready window. The slice aliases the View's
// backing storage: policies may read it during a Schedule call but
// must not retain it, the same contract as the scratch-built slices.
func (v *View) Ready() []Task { return v.ready[v.head:] }

// metas is the ready window's compiled metadata, index-aligned with
// Ready().
func (v *View) metas() []*ReadyMeta { return v.meta[v.head:] }

// PEs exposes the fixed PE table (index-aligned with assignment
// PEIndex values).
func (v *View) PEs() []PE { return v.pes }

// IdleCount reports the number of currently idle PEs.
func (v *View) IdleCount() int { return v.idleTot }

// numPEs is the P every policy charges for its per-handler status
// scan.
func (v *View) numPEs() int { return len(v.pes) }

// --- per-call scratch queries (fast paths only) -----------------------------

// beginIdleScratch snapshots the idle index for one Schedule call;
// tentative assignments then consume the snapshot via takeIdle without
// touching live state.
func (v *View) beginIdleScratch() {
	v.scr.idle = append(v.scr.idle[:0], v.idleBits...)
	v.scr.idleCnt = append(v.scr.idleCnt[:0], v.idleCnt...)
	v.scr.idleTot = v.idleTot
}

// takeIdle consumes one idle PE from the call snapshot.
func (v *View) takeIdle(pi int) {
	v.scr.idle[pi/64] &^= 1 << uint(pi%64)
	v.scr.idleCnt[v.peClass[pi]]--
	v.scr.idleTot--
}

// minIdleOfClass returns the lowest-index idle PE of one class, or -1.
func (v *View) minIdleOfClass(t int) int {
	if v.scr.idleCnt[t] == 0 {
		return -1
	}
	tb := v.classBits[t*v.words:]
	for w, m := range v.scr.idle {
		if x := m & tb[w]; x != 0 {
			return w*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// maskWord ORs the membership bitmaps of every class in mask for one
// bitmap word.
func (v *View) maskWord(mask uint64, w int) uint64 {
	var u uint64
	for mm := mask; mm != 0; mm &= mm - 1 {
		u |= v.classBits[bits.TrailingZeros64(mm)*v.words+w]
	}
	return u
}

// minIdleOfMask returns the lowest-index idle PE over every class in
// mask — the first idle supporting PE the FRFS probe order finds — or
// -1 when no compatible class has an idle PE.
func (v *View) minIdleOfMask(mask uint64) int {
	mask &= v.allClasses
	for w, m := range v.scr.idle {
		if x := m & v.maskWord(mask, w); x != 0 {
			return w*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// idleRankBelow counts idle PEs (of any type) with index strictly
// below pi — the failed probes FRFS charges before its match.
func (v *View) idleRankBelow(pi int) int {
	w := pi / 64
	n := 0
	for i := 0; i < w; i++ {
		n += bits.OnesCount64(v.scr.idle[i])
	}
	if r := uint(pi % 64); r > 0 {
		n += bits.OnesCount64(v.scr.idle[w] & (1<<r - 1))
	}
	return n
}

// idleCountOfMask sums the idle counts of every class in mask.
func (v *View) idleCountOfMask(mask uint64) int {
	n := 0
	for mm := mask & v.allClasses; mm != 0; mm &= mm - 1 {
		n += int(v.scr.idleCnt[bits.TrailingZeros64(mm)])
	}
	return n
}

// kthIdleOfMask returns the (k+1)-th lowest-index idle PE over the
// mask's classes — the candidates[k] of RANDOM's index-ordered
// candidate list. k must be < idleCountOfMask(mask).
func (v *View) kthIdleOfMask(mask uint64, k int) int {
	mask &= v.allClasses
	for w, m := range v.scr.idle {
		x := m & v.maskWord(mask, w)
		c := bits.OnesCount64(x)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			x &= x - 1
		}
		return w*64 + bits.TrailingZeros64(x)
	}
	return -1
}

// ensureHeaps sizes the per-class heap table.
func (v *View) ensureHeaps() {
	for len(v.scr.heaps) < v.numClasses {
		v.scr.heaps = append(v.scr.heaps, nil)
	}
}

// beginTentative builds EFT's call state: per-class min-heaps over the
// busy PEs keyed by (max(AvailableAt, now), index), plus the tentative
// table the heap entries validate against. Must run before any
// takeIdle on the same call.
func (v *View) beginTentative(now vtime.Time) {
	v.ensureHeaps()
	if cap(v.scr.tent) < len(v.pes) {
		v.scr.tent = make([]vtime.Time, len(v.pes))
	}
	v.scr.tent = v.scr.tent[:len(v.pes)]
	for t := 0; t < v.numClasses; t++ {
		h := v.scr.heaps[t][:0]
		tb := v.classBits[t*v.words:]
		for w := 0; w < v.words; w++ {
			busy := tb[w] &^ v.idleBits[w]
			for ; busy != 0; busy &= busy - 1 {
				pi := w*64 + bits.TrailingZeros64(busy)
				a := v.pes[pi].AvailableAt()
				if a < now {
					a = now
				}
				v.scr.tent[pi] = a
				h = pushEntry(h, availEntry{a, int32(pi)})
			}
		}
		v.scr.heaps[t] = h
	}
}

// peekBusyMin returns the busy PE of class t with the lexicographically
// smallest (tentative, index), discarding entries invalidated by
// setTentative.
func (v *View) peekBusyMin(t int) (vtime.Time, int, bool) {
	h := v.scr.heaps[t]
	for len(h) > 0 {
		top := h[0]
		if v.scr.tent[top.idx] == top.at {
			v.scr.heaps[t] = h
			return top.at, int(top.idx), true
		}
		h = popEntry(h)
	}
	v.scr.heaps[t] = h
	return 0, -1, false
}

// setTentative updates a PE's tentative completion (EFT's placement
// bookkeeping) and enters it into its class's busy heap.
func (v *View) setTentative(pi int, at vtime.Time) {
	v.scr.tent[pi] = at
	t := v.peClass[pi]
	v.scr.heaps[t] = pushEntry(v.scr.heaps[t], availEntry{at, int32(pi)})
}

// beginAvailHeaps builds EFTQ's call state: scratch copies of the
// per-PE load and availability (clamped to now), per-class min-heaps
// keyed (avail, index) over PEs with spare queue capacity, and the
// total free slot count the outer loop drains.
func (v *View) beginAvailHeaps(now vtime.Time, depth int32) int {
	v.ensureHeaps()
	v.scr.load = append(v.scr.load[:0], v.load...)
	if cap(v.scr.avail) < len(v.pes) {
		v.scr.avail = make([]vtime.Time, len(v.pes))
	}
	v.scr.avail = v.scr.avail[:len(v.pes)]
	free := 0
	for t := 0; t < v.numClasses; t++ {
		h := v.scr.heaps[t][:0]
		tb := v.classBits[t*v.words:]
		for w := 0; w < v.words; w++ {
			for x := tb[w]; x != 0; x &= x - 1 {
				pi := w*64 + bits.TrailingZeros64(x)
				a := v.avail[pi]
				if a < now {
					a = now
				}
				v.scr.avail[pi] = a
				if l := v.scr.load[pi]; l < depth {
					free += int(depth - l)
					h = pushEntry(h, availEntry{a, int32(pi)})
				}
			}
		}
		v.scr.heaps[t] = h
	}
	return free
}

// peekAvailMin returns the spare-capacity PE of class t with the
// lexicographically smallest (avail, index), discarding entries
// invalidated by queue growth or availability pushes.
func (v *View) peekAvailMin(t int, depth int32) (vtime.Time, int, bool) {
	h := v.scr.heaps[t]
	for len(h) > 0 {
		top := h[0]
		if v.scr.load[top.idx] < depth && v.scr.avail[top.idx] == top.at {
			v.scr.heaps[t] = h
			return top.at, int(top.idx), true
		}
		h = popEntry(h)
	}
	v.scr.heaps[t] = h
	return 0, -1, false
}

// commitAvail applies one EFTQ placement: the PE's queue grows and its
// availability advances by the committed cost.
func (v *View) commitAvail(pi int, at vtime.Time, depth int32) {
	v.scr.load[pi]++
	v.scr.avail[pi] = at
	if v.scr.load[pi] < depth {
		t := v.peClass[pi]
		v.scr.heaps[t] = pushEntry(v.scr.heaps[t], availEntry{at, int32(pi)})
	}
}

// beginLoadBuckets builds FRFSQ's call state: a scratch load copy and
// per-(class, load) membership bitmaps for loads below depth, plus the
// total free slot count.
func (v *View) beginLoadBuckets(depth int32) int {
	v.scr.load = append(v.scr.load[:0], v.load...)
	n := v.numClasses * int(depth) * v.words
	if cap(v.scr.buckets) < n {
		v.scr.buckets = make([]uint64, n)
	}
	v.scr.buckets = v.scr.buckets[:n]
	clear(v.scr.buckets)
	free := 0
	for pi := range v.pes {
		if v.faultBits[pi/64]&(1<<uint(pi%64)) != 0 {
			continue
		}
		l := v.scr.load[pi]
		if d := depth - l; d > 0 {
			free += int(d)
		}
		if l < depth {
			t := int(v.peClass[pi])
			v.scr.buckets[(t*int(depth)+int(l))*v.words+pi/64] |= 1 << uint(pi%64)
		}
	}
	return free
}

// minLoadOfMask returns the compatible PE with the smallest load below
// depth, ties broken by lowest index — FRFSQ's shortest-queue pick —
// or -1.
func (v *View) minLoadOfMask(mask uint64, depth int32) int {
	mask &= v.allClasses
	for l := int32(0); l < depth; l++ {
		best := -1
		for mm := mask; mm != 0; mm &= mm - 1 {
			t := bits.TrailingZeros64(mm)
			row := v.scr.buckets[(t*int(depth)+int(l))*v.words:][:v.words]
			for w, x := range row {
				if x != 0 {
					if pi := w*64 + bits.TrailingZeros64(x); best == -1 || pi < best {
						best = pi
					}
					break
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// bumpLoadBucket applies one FRFSQ placement: the PE moves from its
// load bucket to the next (dropping out once full).
func (v *View) bumpLoadBucket(pi int, depth int32) {
	t := int(v.peClass[pi])
	l := v.scr.load[pi]
	w, b := pi/64, uint64(1)<<uint(pi%64)
	v.scr.buckets[(t*int(depth)+int(l))*v.words+w] &^= b
	v.scr.load[pi] = l + 1
	if l+1 < depth {
		v.scr.buckets[(t*int(depth)+int(l+1))*v.words+w] |= b
	}
}
