package sched

import (
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// viewFor builds a View in the state the emulator would maintain for
// the given fakes: busy PEs marked, availability and load mirrored,
// ready tasks pushed with their compiled metadata (View.MetaFor is the
// in-package equivalent of core.Compile's class-based lowering).
func viewFor(t *testing.T, fakes []*fakePE, tasks []Task) *View {
	t.Helper()
	pes := make([]PE, len(fakes))
	for i, f := range fakes {
		pes[i] = f
	}
	v := NewView(pes)
	if v == nil {
		t.Fatal("NewView failed for an eligible configuration")
	}
	for i, f := range fakes {
		if !f.idle {
			v.MarkBusy(i)
			v.AddLoad(i, 1)
		}
		v.SetAvail(i, f.avail)
		v.AddLoad(i, f.queued)
	}
	for _, tk := range tasks {
		m := v.MetaFor(tk.Choices())
		v.PushReady(tk, &m)
	}
	return v
}

// randomScenario draws an emulator-consistent scheduling state: idle
// PEs have empty queues and availability at or below now (a collected
// completion), busy PEs complete strictly after now — the invariants
// the workload-manager loop guarantees at every Schedule invocation.
// With uniform=true, PEs of one type share speed and power, so type
// and cost class coincide (the ZCU102/Synthetic shape); otherwise
// per-PE values diverge and the view interns up to one cost class per
// PE — the big.LITTLE shape taken to its extreme, exercising the
// EFT-family class decomposition with no fallback to hide behind.
func randomScenario(rng *rand.Rand, now vtime.Time, uniform bool) ([]*fakePE, []Task) {
	nPE := 1 + rng.Intn(12)
	fakes := make([]*fakePE, nPE)
	speeds := map[string]float64{"cpu": 1 + rng.Float64(), "fft": 0.5 + rng.Float64()}
	powers := map[string]float64{"cpu": 0.8, "fft": 0.3}
	for i := range fakes {
		var pe *fakePE
		if rng.Intn(3) == 0 {
			pe = idleFFT(i)
		} else {
			pe = idleCPU(i)
		}
		pe.speed = speeds[pe.key]
		pe.power = powers[pe.key]
		if !uniform {
			pe.speed = 0.5 + rng.Float64()
			pe.power = rng.Float64()
		}
		if rng.Intn(3) == 0 {
			pe.idle = true
			pe.queued = 0
			pe.avail = now - vtime.Time(rng.Intn(500))
		} else {
			pe.idle = false
			pe.queued = rng.Intn(3)
			pe.avail = now + 1 + vtime.Time(rng.Intn(2000))
		}
		fakes[i] = pe
	}
	nTasks := rng.Intn(10)
	tasks := make([]Task, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		switch rng.Intn(4) {
		case 0:
			tasks = append(tasks, cpuTask("t", int64(rng.Intn(1000)+1)))
		case 1:
			tasks = append(tasks, &fakeTask{label: "f", choices: []PlatformChoice{
				{Key: "fft", TypeID: typeID("fft"), CostNS: int64(rng.Intn(1000) + 1)},
			}})
		case 2:
			// A choice on a platform absent from the configuration
			// (TypeID -1): MET may elect it and wait forever, FRFS must
			// skip it.
			tasks = append(tasks, &fakeTask{label: "g", choices: []PlatformChoice{
				{Key: "gpu", TypeID: -1, CostNS: int64(rng.Intn(100) + 1)},
				{Key: "cpu", TypeID: typeID("cpu"), CostNS: int64(rng.Intn(1000) + 1)},
			}})
		default:
			tasks = append(tasks, dualTask("d", int64(rng.Intn(1000)+1), int64(rng.Intn(1000)+1)))
		}
	}
	return fakes, tasks
}

// TestIndexedMatchesSlicePolicies is the policy-level half of the
// byte-determinism contract: for every built-in policy over random
// emulator-consistent states, ScheduleIndexed must return the same
// assignments in the same order and charge the same Ops as Schedule.
func TestIndexedMatchesSlicePolicies(t *testing.T) {
	now := vtime.Time(10_000)
	for _, name := range Names() {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 400; trial++ {
			fakes, tasks := randomScenario(rng, now, trial%4 != 0)
			seed := int64(trial)
			pSlice, err := New(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			pIdx, err := New(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			ip, ok := pIdx.(IndexedPolicy)
			if !ok {
				t.Fatalf("built-in policy %s lacks an indexed fast path", name)
			}
			pes := make([]PE, len(fakes))
			for i, f := range fakes {
				pes[i] = f
			}
			want := pSlice.Schedule(now, tasks, pes)
			v := viewFor(t, fakes, tasks)
			got := ip.ScheduleIndexed(now, v)
			if want.Ops != got.Ops {
				t.Fatalf("%s trial %d: ops diverged: slice %d, indexed %d", name, trial, want.Ops, got.Ops)
			}
			if len(want.Assignments) != len(got.Assignments) {
				t.Fatalf("%s trial %d: batch size diverged: slice %v, indexed %v",
					name, trial, want.Assignments, got.Assignments)
			}
			for i := range want.Assignments {
				if want.Assignments[i] != got.Assignments[i] {
					t.Fatalf("%s trial %d: assignment %d diverged: slice %+v, indexed %+v",
						name, trial, i, want.Assignments[i], got.Assignments[i])
				}
			}
		}
	}
}

// TestSliceOnlyHidesFastPath pins the differential-test lever: the
// wrapper must not satisfy IndexedPolicy, must delegate scheduling,
// and must forward Reset to stateful policies.
func TestSliceOnlyHidesFastPath(t *testing.T) {
	w := SliceOnly(FRFS{})
	if _, ok := w.(IndexedPolicy); ok {
		t.Fatal("SliceOnly still exposes ScheduleIndexed")
	}
	if w.Name() != "frfs" || w.UsesQueues() {
		t.Fatal("SliceOnly changed the policy surface")
	}
	r := NewRandom(3)
	wr := SliceOnly(r)
	pes := asPEs(idleCPU(0), idleCPU(1), idleCPU(2))
	tasks := asTasks(dualTask("a", 1, 1), dualTask("b", 1, 1))
	first := wr.Schedule(0, tasks, pes)
	wr.(Resettable).Reset()
	second := wr.Schedule(0, tasks, pes)
	for i := range first.Assignments {
		if first.Assignments[i] != second.Assignments[i] {
			t.Fatal("SliceOnly did not forward Reset to the seeded policy")
		}
	}
}

// TestViewCompactReadySemantics drives the head-offset deque through
// random push/consume batches and checks the surviving window against
// a naive filtered slice — prefix consumption, scattered holes, the
// slide-down reclamation and full drains all included.
func TestViewCompactReadySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pes := asPEs(idleCPU(0), idleFFT(1))
	v := NewView(pes)
	var ref []Task
	next := 0
	for round := 0; round < 500; round++ {
		for n := rng.Intn(6); n > 0; n-- {
			var tk *fakeTask
			if next%2 == 0 {
				tk = cpuTask("t", int64(next+1))
			} else {
				tk = dualTask("t", int64(next+1), int64(next+2))
			}
			next++
			m := v.MetaFor(tk.Choices())
			v.PushReady(tk, &m)
			ref = append(ref, tk)
		}
		remove := make([]bool, len(ref))
		mode := rng.Intn(3)
		for i := range remove {
			switch mode {
			case 0: // prefix
				remove[i] = i < rng.Intn(len(remove)+1)
			default: // scattered
				remove[i] = rng.Intn(4) == 0
			}
		}
		nRemoved := 0
		for _, r := range remove {
			if r {
				nRemoved++
			}
		}
		v.CompactReady(remove, nRemoved)
		kept := ref[:0]
		for i, tk := range ref {
			if !remove[i] {
				kept = append(kept, tk)
			}
		}
		ref = kept
		win := v.Ready()
		if len(win) != len(ref) {
			t.Fatalf("round %d: window length %d, want %d", round, len(win), len(ref))
		}
		for i := range ref {
			if win[i] != ref[i] {
				t.Fatalf("round %d: window[%d] diverged", round, i)
			}
			if int(v.metas()[i].NumChoices) != len(win[i].Choices()) {
				t.Fatalf("round %d: meta misaligned with task at %d", round, i)
			}
		}
	}
}

// settableTypePE is a fake whose TypeID can be set directly.
type settableTypePE struct {
	fakePE
	typeID int
}

func (p *settableTypePE) TypeID() int { return p.typeID }

// speedClassedPEs builds n same-type "cpu" PEs with n distinct speeds —
// n cost classes under one interned type, the big.LITTLE shape pushed
// to the representation boundary.
func speedClassedPEs(n int) []PE {
	pes := make([]PE, n)
	for i := range pes {
		pe := idleCPU(i)
		pe.speed = 1 + float64(i)/100
		pes[i] = pe
	}
	return pes
}

// TestNewViewClassBoundary pins the fallback trigger at its exact
// boundary: 64 interned cost classes are representable (even under a
// single type key), the 65th is not and must yield no view, sending
// the emulator down the slice-rebuild path. A negative TypeID and an
// empty table reject as before; a TypeID beyond 63 is fine as long as
// the class count fits — masks are per class, not per type.
func TestNewViewClassBoundary(t *testing.T) {
	v := NewView(speedClassedPEs(64))
	if v == nil {
		t.Fatal("NewView rejected 64 cost classes")
	}
	if v.NumClasses() != 64 {
		t.Fatalf("interned %d classes, want 64", v.NumClasses())
	}
	if NewView(speedClassedPEs(65)) != nil {
		t.Fatal("NewView accepted a 65th cost class")
	}
	neg := &settableTypePE{fakePE: *idleCPU(0), typeID: -1}
	if NewView([]PE{neg}) != nil {
		t.Fatal("NewView accepted a negative TypeID")
	}
	if NewView(nil) != nil {
		t.Fatal("NewView accepted an empty PE table")
	}
	high := &settableTypePE{fakePE: *idleCPU(0), typeID: 64}
	hv := NewView([]PE{high})
	if hv == nil || hv.NumClasses() != 1 {
		t.Fatal("NewView rejected a high TypeID that interns into one class")
	}
}

// TestIndexedParityAtClassBoundary runs the policy parity check on a
// 64-class single-type pool — every mask word boundary in play — so
// the exactly-representable edge is covered by the same byte-level
// contract as the everyday shapes.
func TestIndexedParityAtClassBoundary(t *testing.T) {
	now := vtime.Time(5_000)
	rng := rand.New(rand.NewSource(7))
	fakes := make([]*fakePE, 64)
	for i := range fakes {
		pe := idleCPU(i)
		pe.speed = 1 + float64(i)/100
		pe.power = 0.5 + float64(i%7)/10
		if rng.Intn(3) == 0 {
			pe.idle = false
			pe.queued = rng.Intn(3)
			pe.avail = now + 1 + vtime.Time(rng.Intn(2000))
		}
		fakes[i] = pe
	}
	var tasks []Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, cpuTask("t", int64(rng.Intn(1000)+1)))
	}
	for _, name := range Names() {
		pSlice, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		pIdx, _ := New(name, 3)
		pes := make([]PE, len(fakes))
		for i, f := range fakes {
			pes[i] = f
		}
		want := pSlice.Schedule(now, tasks, pes)
		v := viewFor(t, fakes, tasks)
		if v.NumClasses() != 64 {
			t.Fatalf("boundary scenario interned %d classes, want 64", v.NumClasses())
		}
		got := pIdx.(IndexedPolicy).ScheduleIndexed(now, v)
		if want.Ops != got.Ops || len(want.Assignments) != len(got.Assignments) {
			t.Fatalf("%s: diverged at the 64-class boundary: slice ops %d/%d assignments, indexed %d/%d",
				name, want.Ops, len(want.Assignments), got.Ops, len(got.Assignments))
		}
		for i := range want.Assignments {
			if want.Assignments[i] != got.Assignments[i] {
				t.Fatalf("%s: assignment %d diverged: %+v vs %+v", name, i, want.Assignments[i], got.Assignments[i])
			}
		}
	}
}

// TestViewMarksAreIdempotent guards the maintenance API against double
// transitions (dispatch-from-queue marks an already busy PE busy).
func TestViewMarksAreIdempotent(t *testing.T) {
	pes := asPEs(idleCPU(0), idleFFT(1))
	v := NewView(pes)
	if v.IdleCount() != 2 {
		t.Fatalf("fresh view has %d idle", v.IdleCount())
	}
	v.MarkBusy(0)
	v.MarkBusy(0)
	if v.IdleCount() != 1 {
		t.Fatalf("idempotent MarkBusy broke the count: %d", v.IdleCount())
	}
	v.MarkIdle(0)
	v.MarkIdle(0)
	if v.IdleCount() != 2 {
		t.Fatalf("idempotent MarkIdle broke the count: %d", v.IdleCount())
	}
	v.Reset()
	if v.IdleCount() != 2 || v.ReadyLen() != 0 {
		t.Fatal("Reset did not restore the all-idle empty state")
	}
}
