package sched

// Indexed fast paths for the built-in policies. Each ScheduleIndexed
// reproduces its policy's slice-path Schedule byte for byte — same
// assignment batch in the same order, same charged Ops — while only
// examining idle PEs and compatible tasks through the View's bitmap
// and heap queries. The slice implementations in sched.go and
// extensions.go remain the semantic definition; the differential tests
// (TestIndexedMatchesSlicePolicies here, TestIndexedMatchesSlicePath
// in internal/core) pin the equivalence for every policy across the
// synthetic platform grid and the Odroid's big.LITTLE pools.
//
// Everything is indexed by cost class (see ReadyMeta): within a class,
// speed and power are uniform by construction, so a task's cost on
// every member PE is one compiled number (meta.Costs[c]) and the
// EFT-family per-class decompositions are exact on any configuration —
// there is no cost-non-uniform fallback left to fall back to.
//
// Charged-ops recipes (derived from the slice scans):
//
//	FRFS:     P + per task: failed idle probes below the match + 1,
//	          or the whole idle pool when nothing supports it.
//	MET:      P + per task: its choice-list length.
//	EFT:      P + per task: placed/32 + eftPairWeight*P.
//	RANDOM:   P + P per task.
//	FRFS-RQ:  P + P per task while spare queue capacity remains.
//	EFT-RQ:   P + eftPairWeight*P per task while capacity remains.
//	EFT-PWR:  P + per task: eftPairWeight*P + its idle candidate count.

import (
	"math/bits"

	"repro/internal/vtime"
)

// ScheduleIndexed implements IndexedPolicy: the FRFS probe order is
// "lowest-index idle supporting PE", so each ready task resolves to
// one bitmap scan plus a popcount for the charged failed probes.
func (FRFS) ScheduleIndexed(now vtime.Time, v *View) Result {
	res := Result{Assignments: newAssignments()}
	res.Ops += v.numPEs() // availability check per resource handler
	v.beginIdleScratch()
	ready := v.Ready()
	meta := v.metas()
	for ti := 0; ti < len(ready) && v.scr.idleTot > 0; ti++ {
		pi := v.minIdleOfMask(meta[ti].ClassMask)
		if pi < 0 {
			// Every idle PE is probed and none supports the task.
			res.Ops += v.scr.idleTot
			continue
		}
		res.Ops += v.idleRankBelow(pi) + 1
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pi})
		v.takeIdle(pi)
	}
	return res
}

// ScheduleIndexed implements IndexedPolicy: the minimum-cost classes
// are compiled into the ready metadata (every class of MET's chosen
// type), so each task is one min-idle mask lookup.
func (MET) ScheduleIndexed(now vtime.Time, v *View) Result {
	res := Result{Assignments: newAssignments()}
	res.Ops += v.numPEs()
	v.beginIdleScratch()
	meta := v.metas()
	for ti := range meta {
		m := meta[ti]
		res.Ops += int(m.NumChoices) // cost comparison per platform entry
		// An empty METMask is a minimum-cost platform with no PEs in
		// this configuration: the task waits, as on the slice path.
		if pi := v.minIdleOfMask(m.METMask); pi >= 0 {
			res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pi})
			v.takeIdle(pi)
		}
		// Unassigned tasks simply wait for a PE of their MET type.
	}
	return res
}

// ScheduleIndexed implements IndexedPolicy. EFT's candidate set per
// task decomposes by cost class: the best idle PE of a class is its
// lowest-index one (all share the finish now+cost), and the best
// busy/tentatively-placed PE is the per-class heap minimum over
// (tentative, index); the global winner is the lexicographic minimum
// (finish, index) across both kinds — exactly the slice scan's
// first-strict-minimum in PE order. Tentative placements re-enter the
// heaps, so later tasks observe them just like the slice path's
// tentative table. Class costs come compiled (meta.Costs), so the
// Odroid's split "cpu" type costs nothing extra.
func (EFT) ScheduleIndexed(now vtime.Time, v *View) Result {
	res := Result{Assignments: newAssignments()}
	P := v.numPEs()
	res.Ops += P
	v.beginIdleScratch()
	v.beginTentative(now)
	ready := v.Ready()
	meta := v.metas()
	placed := 0
	for ti := range ready {
		// The reference implementation's tentative-placement rescan
		// (see EFT.Schedule) plus one pair evaluation per PE.
		res.Ops += placed / 32
		res.Ops += eftPairWeight * P
		costs := meta[ti].Costs
		bestPE := -1
		var bestFinish vtime.Time
		bestIdle := false
		for m := meta[ti].ClassMask & v.allClasses; m != 0; m &= m - 1 {
			cc := bits.TrailingZeros64(m)
			cost := vtime.Duration(costs[cc])
			if pi := v.minIdleOfClass(cc); pi >= 0 {
				f := now.Add(cost)
				if bestPE == -1 || f < bestFinish || (f == bestFinish && pi < bestPE) {
					bestPE, bestFinish, bestIdle = pi, f, true
				}
			}
			if at, pi, ok := v.peekBusyMin(cc); ok {
				f := at.Add(cost)
				if bestPE == -1 || f < bestFinish || (f == bestFinish && pi < bestPE) {
					bestPE, bestFinish, bestIdle = pi, f, false
				}
			}
		}
		if bestPE < 0 {
			continue
		}
		placed++
		if bestIdle {
			res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: bestPE})
			v.takeIdle(bestPE)
		}
		// Busy best: the task waits but its tentative placement
		// influences later decisions. Assigned best: the PE joins the
		// busy set with its committed finish. Either way the PE's
		// tentative advances to bestFinish.
		v.setTentative(bestPE, bestFinish)
	}
	return res
}

// ScheduleIndexed implements IndexedPolicy: RANDOM's candidate list is
// the index-ordered idle supporting PEs, so the draw resolves to a
// k-th-set-bit select. The generator is consumed exactly as the slice
// path does (one Intn per task with candidates), keeping seeded runs
// identical.
func (r *Random) ScheduleIndexed(now vtime.Time, v *View) Result {
	res := Result{Assignments: newAssignments()}
	P := v.numPEs()
	res.Ops += P
	v.beginIdleScratch()
	meta := v.metas()
	for ti := range meta {
		res.Ops += P
		mask := meta[ti].ClassMask
		n := v.idleCountOfMask(mask)
		if n == 0 {
			continue
		}
		pi := v.kthIdleOfMask(mask, r.rng.Intn(n))
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pi})
		v.takeIdle(pi)
	}
	return res
}

// ScheduleIndexed implements IndexedPolicy: FRFSQ's shortest-queue
// pick is a (load, index) minimum over per-(class, load) buckets.
func (q FRFSQ) ScheduleIndexed(now vtime.Time, v *View) Result {
	depth := int32(q.Depth)
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	if depth > maxBucketDepth {
		return q.Schedule(now, v.Ready(), v.pes)
	}
	res := Result{Assignments: newAssignments()}
	P := v.numPEs()
	res.Ops += P
	free := v.beginLoadBuckets(depth)
	ready := v.Ready()
	meta := v.metas()
	for ti := 0; ti < len(ready) && free > 0; ti++ {
		res.Ops += P
		best := v.minLoadOfMask(meta[ti].ClassMask, depth)
		if best < 0 {
			continue
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: best})
		v.bumpLoadBucket(best, depth)
		free--
	}
	return res
}

// maxBucketDepth bounds the per-(class, load) bucket table; deeper
// reservation queues (never the DefaultQueueDepth) take the slice
// path.
const maxBucketDepth = 64

// ScheduleIndexed implements IndexedPolicy: EFTQ's per-class best is
// the heap minimum over (availability, index) of PEs with spare
// capacity (uniform class cost makes that the (finish, index) argmin);
// committed placements advance availability and re-enter the heap.
func (q EFTQ) ScheduleIndexed(now vtime.Time, v *View) Result {
	depth := int32(q.Depth)
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	res := Result{Assignments: newAssignments()}
	P := v.numPEs()
	res.Ops += P
	free := v.beginAvailHeaps(now, depth)
	ready := v.Ready()
	meta := v.metas()
	for ti := 0; ti < len(ready) && free > 0; ti++ {
		res.Ops += eftPairWeight * P
		costs := meta[ti].Costs
		best := -1
		var bestFinish vtime.Time
		var bestCost vtime.Duration
		for m := meta[ti].ClassMask & v.allClasses; m != 0; m &= m - 1 {
			cc := bits.TrailingZeros64(m)
			cost := vtime.Duration(costs[cc])
			if a, pi, ok := v.peekAvailMin(cc, depth); ok {
				f := a.Add(cost)
				if best == -1 || f < bestFinish || (f == bestFinish && pi < best) {
					best, bestFinish, bestCost = pi, f, cost
				}
			}
		}
		if best < 0 {
			continue
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: best})
		free--
		v.commitAvail(best, v.scr.avail[best].Add(bestCost), depth)
	}
	return res
}

// ScheduleIndexed implements IndexedPolicy: PowerEFT's candidates are
// idle supporting PEs only, all of a class sharing one (finish,
// energy) pair, so the slack window and energy minimum resolve per
// class; ties fall to the class whose lowest-index idle PE comes
// first, matching the slice scan's candidate order. On big.LITTLE the
// split "cpu" classes are exactly what makes the energy comparison
// meaningful — big and LITTLE carry different (cost, power) pairs.
func (p PowerEFT) ScheduleIndexed(now vtime.Time, v *View) Result {
	slack := p.Slack
	if slack < 1 {
		slack = 1
	}
	res := Result{Assignments: newAssignments()}
	P := v.numPEs()
	res.Ops += P
	v.beginIdleScratch()
	// An active power cap masks over-budget classes out of candidacy
	// (power is uniform within a class, so the cap resolves per class);
	// the per-pair charge below still covers every PE, matching the
	// slice scan that reads a PE's power before rejecting it.
	capMask := v.allClasses
	if p.cap > 0 {
		capMask = 0
		for c := 0; c < v.numClasses; c++ {
			if v.power[c] <= p.cap {
				capMask |= 1 << uint(c)
			}
		}
	}
	ready := v.Ready()
	meta := v.metas()
	for ti := range ready {
		res.Ops += eftPairWeight * P
		mask := meta[ti].ClassMask & v.allClasses & capMask
		costs := meta[ti].Costs
		var bestFinish vtime.Time = -1
		nCands := 0
		for m := mask; m != 0; m &= m - 1 {
			cc := bits.TrailingZeros64(m)
			c := int(v.scr.idleCnt[cc])
			if c == 0 {
				continue
			}
			nCands += c
			f := now.Add(vtime.Duration(costs[cc]))
			if bestFinish < 0 || f < bestFinish {
				bestFinish = f
			}
		}
		if nCands == 0 {
			continue
		}
		res.Ops += nCands // slack-window scan over the candidate list
		limit := vtime.Time(float64(bestFinish-vtime.Time(0)) * slack)
		pick := -1
		bestE := 0.0
		for m := mask; m != 0; m &= m - 1 {
			cc := bits.TrailingZeros64(m)
			if v.scr.idleCnt[cc] == 0 {
				continue
			}
			cost := costs[cc]
			if now.Add(vtime.Duration(cost)) > limit {
				continue
			}
			e := float64(cost) * v.power[cc] * 1e-9
			pi := v.minIdleOfClass(cc)
			if pick == -1 || e < bestE || (e == bestE && pi < pick) {
				pick, bestE = pi, e
			}
		}
		if pick == -1 {
			pick = v.minIdleOfMask(mask)
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pick})
		v.takeIdle(pick)
	}
	return res
}
