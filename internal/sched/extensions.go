package sched

import "repro/internal/vtime"

// Extensions beyond the paper's shipped library, implementing its
// stated future work ("abstractions like PE-level work queues to
// enable lower-overhead task dispatch" and "power aware heuristics").
// They exist to quantify those design choices in ablation benches.

// DefaultQueueDepth bounds per-PE reservation queues.
const DefaultQueueDepth = 4

// FRFSQ is FRFS with per-PE reservation queues: ready tasks are
// dispatched into the shortest supporting queue even when the PE is
// busy, so PEs pull their next task without waiting for a scheduler
// invocation. This amortises scheduling overhead — the effect the
// paper predicts queues will have.
type FRFSQ struct {
	// Depth is the maximum reservation-queue length per PE (current
	// task included).
	Depth int
}

// Name implements Policy.
func (FRFSQ) Name() string { return "frfs-rq" }

// UsesQueues implements Policy.
func (FRFSQ) UsesQueues() bool { return true }

// Schedule implements Policy.
func (q FRFSQ) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	depth := q.Depth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	load := b.intSlice(len(pes))
	free := 0
	for i, pe := range pes {
		res.Ops++
		load[i] = pe.QueueLen()
		if !pe.Idle() {
			load[i]++ // count the running task
		}
		if isFaulted(pe) {
			// A dead PE offers no queue capacity: saturate its load so
			// it contributes nothing to free and never wins a pick.
			load[i] = depth
		}
		if d := depth - load[i]; d > 0 {
			free += d
		}
	}
	// The scan stops as soon as every reservation queue is full, so
	// the per-invocation cost is bounded by the total queue capacity
	// rather than the ready-list length — the overhead reduction
	// reservation queues exist to deliver.
	for ti := 0; ti < len(ready) && free > 0; ti++ {
		t := ready[ti]
		best := -1
		for pi, pe := range pes {
			res.Ops++
			if load[pi] >= depth || !supports(t, pe) {
				continue
			}
			if best == -1 || load[pi] < load[best] {
				best = pi
			}
		}
		if best == -1 {
			continue
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: best})
		load[best]++
		free--
	}
	return res
}

// EFTQ is EFT over reservation queues: tasks are committed to the PE
// with the earliest estimated finish time even when it is busy, up to
// the queue depth. This is the "richer scheduling algorithms" the
// paper expects PE-level work queues to enable: EFT's placement
// quality without stalling ready tasks behind a single in-flight task
// per PE.
type EFTQ struct {
	// Depth bounds each PE's reservation queue (running task
	// included).
	Depth int
}

// Name implements Policy.
func (EFTQ) Name() string { return "eft-rq" }

// UsesQueues implements Policy.
func (EFTQ) UsesQueues() bool { return true }

// Schedule implements Policy.
func (q EFTQ) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	depth := q.Depth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	load := b.intSlice(len(pes))
	avail := b.timeSlice(len(pes))
	free := 0
	for i, pe := range pes {
		res.Ops++
		load[i] = pe.QueueLen()
		if !pe.Idle() {
			load[i]++
		}
		if isFaulted(pe) {
			load[i] = depth // dead PE: no capacity, never a candidate
		}
		avail[i] = pe.AvailableAt()
		if avail[i] < now {
			avail[i] = now
		}
		if d := depth - load[i]; d > 0 {
			free += d
		}
	}
	for ti := 0; ti < len(ready) && free > 0; ti++ {
		t := ready[ti]
		best := -1
		var bestFinish vtime.Time
		var bestCost int64
		for pi, pe := range pes {
			res.Ops += eftPairWeight
			if load[pi] >= depth {
				continue
			}
			cost, ok := costOn(t, pe)
			if !ok {
				continue
			}
			finish := avail[pi].Add(vtime.Duration(cost))
			if best == -1 || finish < bestFinish {
				best, bestFinish, bestCost = pi, finish, cost
			}
		}
		if best == -1 {
			continue
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: best})
		load[best]++
		free--
		avail[best] = avail[best].Add(vtime.Duration(bestCost))
	}
	return res
}

// powerCand is PowerEFT's per-task candidate record (PE index,
// estimated finish, estimated energy); the slice lives in the pooled
// scheduling buffers.
type powerCand struct {
	pi     int
	finish vtime.Time
	energy float64
}

// PowerEFT is an energy-aware EFT variant: among PEs whose estimated
// finish time is within Slack of the best finish time, it picks the
// one with the lowest estimated energy (cost x active power). On
// big.LITTLE platforms this steers short tasks to LITTLE cores when
// the makespan penalty is tolerable.
type PowerEFT struct {
	// Slack is the tolerated finish-time ratio (>= 1). 1.0 degenerates
	// to plain EFT tie-broken by energy.
	Slack float64
	// cap is the active platform power cap in watts (0 = uncapped),
	// set through SetPowerCap: PEs drawing more than the cap are
	// excluded from candidacy entirely. Dynamic runtime state, not
	// configuration — which is why sched.New hands the policy out as a
	// pointer.
	cap float64
}

// Name implements Policy.
func (PowerEFT) Name() string { return "eft-power" }

// UsesQueues implements Policy.
func (PowerEFT) UsesQueues() bool { return false }

// SetPowerCap implements PowerCapped: an active cap (watts > 0) masks
// every PE whose power draw exceeds it; 0 lifts the cap.
func (p *PowerEFT) SetPowerCap(watts float64) {
	if watts < 0 {
		watts = 0
	}
	p.cap = watts
}

// Reset implements Resettable: a fresh run starts uncapped (the
// emulator replays its cap events from the top).
func (p *PowerEFT) Reset() { p.cap = 0 }

// Schedule implements Policy.
func (p PowerEFT) Schedule(now vtime.Time, ready []Task, pes []PE) Result {
	slack := p.Slack
	if slack < 1 {
		slack = 1
	}
	res := Result{Assignments: newAssignments()}
	b := getBuffers()
	defer b.put()
	busy := b.boolSlice(len(pes))
	avail := b.timeSlice(len(pes))
	for i, pe := range pes {
		res.Ops++
		busy[i] = !pe.Idle()
		avail[i] = pe.AvailableAt()
		if avail[i] < now {
			avail[i] = now
		}
	}
	cands := b.pcand
	defer func() { b.pcand = cands }()
	for ti, t := range ready {
		cands = cands[:0]
		var bestFinish vtime.Time = -1
		for pi, pe := range pes {
			res.Ops += eftPairWeight
			cost, ok := costOn(t, pe)
			if !ok || busy[pi] {
				continue
			}
			if p.cap > 0 && pe.PowerW() > p.cap {
				// Over the active power cap: not a candidate (the pair
				// evaluation above is still charged — the scan reads the
				// PE's power before rejecting it).
				continue
			}
			finish := avail[pi].Add(vtime.Duration(cost))
			energy := float64(cost) * pe.PowerW() * 1e-9
			cands = append(cands, powerCand{pi, finish, energy})
			if bestFinish < 0 || finish < bestFinish {
				bestFinish = finish
			}
		}
		if len(cands) == 0 {
			continue
		}
		limit := vtime.Time(float64(bestFinish-vtime.Time(0)) * slack)
		pick := -1
		bestE := 0.0
		for _, c := range cands {
			res.Ops++
			if c.finish > limit {
				continue
			}
			if pick == -1 || c.energy < bestE {
				pick, bestE = c.pi, c.energy
			}
		}
		if pick == -1 {
			pick = cands[0].pi
		}
		res.Assignments = append(res.Assignments, Assignment{TaskIndex: ti, PEIndex: pick})
		busy[pick] = true
		avail[pick] = avail[pick].Add(1) // occupied marker
	}
	return res
}
