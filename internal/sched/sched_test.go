package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

// fakeTask and fakePE are lightweight stand-ins for the emulator's
// resource handler and DAG node types.
type fakeTask struct {
	label   string
	choices []PlatformChoice
	readyAt vtime.Time
}

func (t *fakeTask) Label() string             { return t.label }
func (t *fakeTask) Choices() []PlatformChoice { return t.choices }
func (t *fakeTask) ReadyAt() vtime.Time       { return t.readyAt }

type fakePE struct {
	id     int
	key    string
	speed  float64
	power  float64
	idle   bool
	avail  vtime.Time
	queued int
}

func (p *fakePE) ID() int                 { return p.id }
func (p *fakePE) TypeKey() string         { return p.key }
func (p *fakePE) TypeID() int             { return typeID(p.key) }
func (p *fakePE) SpeedFactor() float64    { return p.speed }
func (p *fakePE) PowerW() float64         { return p.power }
func (p *fakePE) Idle() bool              { return p.idle }
func (p *fakePE) AvailableAt() vtime.Time { return p.avail }
func (p *fakePE) QueueLen() int           { return p.queued }

// typeID mirrors the emulator's per-configuration interning for the
// two platform keys the fakes use.
func typeID(key string) int {
	switch key {
	case "cpu":
		return 0
	case "fft":
		return 1
	default:
		return -1
	}
}

func cpuTask(label string, cost int64) *fakeTask {
	return &fakeTask{label: label, choices: []PlatformChoice{
		{Key: "cpu", TypeID: typeID("cpu"), CostNS: cost},
	}}
}

func dualTask(label string, cpuCost, fftCost int64) *fakeTask {
	return &fakeTask{label: label, choices: []PlatformChoice{
		{Key: "cpu", TypeID: typeID("cpu"), CostNS: cpuCost},
		{Key: "fft", TypeID: typeID("fft"), CostNS: fftCost},
	}}
}

func idleCPU(id int) *fakePE { return &fakePE{id: id, key: "cpu", speed: 1, power: 1, idle: true} }
func idleFFT(id int) *fakePE { return &fakePE{id: id, key: "fft", speed: 1, power: 0.3, idle: true} }

func asTasks(ts ...*fakeTask) []Task {
	out := make([]Task, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

func asPEs(ps ...*fakePE) []PE {
	out := make([]PE, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func TestNewDispatch(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("heft", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// Upper-case aliases.
	if p, err := New("FRFS", 1); err != nil || p.Name() != "frfs" {
		t.Fatalf("FRFS alias: %v", err)
	}
}

// checkNoDoubleBooking verifies the core invariant every policy must
// uphold: within one batch no PE receives two tasks, no task is
// assigned twice, only idle PEs are used (unless the policy queues),
// and every assignment respects platform support.
func checkNoDoubleBooking(t *testing.T, p Policy, ready []Task, pes []PE) {
	t.Helper()
	res := p.Schedule(0, ready, pes)
	seenPE := map[int]int{}
	seenTask := map[int]bool{}
	for _, a := range res.Assignments {
		if a.TaskIndex < 0 || a.TaskIndex >= len(ready) || a.PEIndex < 0 || a.PEIndex >= len(pes) {
			t.Fatalf("%s: out-of-range assignment %+v", p.Name(), a)
		}
		if seenTask[a.TaskIndex] {
			t.Fatalf("%s: task %d assigned twice", p.Name(), a.TaskIndex)
		}
		seenTask[a.TaskIndex] = true
		seenPE[a.PEIndex]++
		if !p.UsesQueues() {
			if seenPE[a.PEIndex] > 1 {
				t.Fatalf("%s: PE %d double-booked", p.Name(), a.PEIndex)
			}
			if !pes[a.PEIndex].Idle() {
				t.Fatalf("%s: busy PE %d assigned", p.Name(), a.PEIndex)
			}
		}
		if !supports(ready[a.TaskIndex], pes[a.PEIndex]) {
			t.Fatalf("%s: unsupported platform assignment %+v", p.Name(), a)
		}
	}
}

func TestAllPoliciesRespectInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, name := range Names() {
		p, _ := New(name, 7)
		for trial := 0; trial < 200; trial++ {
			nTasks := rng.Intn(8)
			nPEs := rng.Intn(5) + 1
			var tasks []Task
			for i := 0; i < nTasks; i++ {
				if rng.Intn(2) == 0 {
					tasks = append(tasks, cpuTask("t", int64(rng.Intn(1000)+1)))
				} else {
					tasks = append(tasks, dualTask("t", int64(rng.Intn(1000)+1), int64(rng.Intn(1000)+1)))
				}
			}
			var pes []PE
			for i := 0; i < nPEs; i++ {
				var pe *fakePE
				if rng.Intn(3) == 0 {
					pe = idleFFT(i)
				} else {
					pe = idleCPU(i)
				}
				pe.idle = rng.Intn(3) != 0
				pe.avail = vtime.Time(rng.Intn(1000))
				pe.queued = rng.Intn(3)
				pes = append(pes, pe)
			}
			checkNoDoubleBooking(t, p, tasks, pes)
		}
	}
}

func TestFRFSOrderAndSaturation(t *testing.T) {
	tasks := asTasks(cpuTask("a", 10), cpuTask("b", 10), cpuTask("c", 10))
	pes := asPEs(idleCPU(0), idleCPU(1))
	res := FRFS{}.Schedule(0, tasks, pes)
	if len(res.Assignments) != 2 {
		t.Fatalf("assigned %d, want 2 (PE-bound)", len(res.Assignments))
	}
	// First ready first start: tasks 0 and 1 go, task 2 waits.
	if res.Assignments[0].TaskIndex != 0 || res.Assignments[1].TaskIndex != 1 {
		t.Fatalf("FRFS violated ready order: %+v", res.Assignments)
	}
}

func TestFRFSSkipsUnsupported(t *testing.T) {
	// A cpu-only task must not land on the FFT accelerator even when
	// the accelerator is the only idle PE.
	tasks := asTasks(cpuTask("a", 10))
	busy := idleCPU(0)
	busy.idle = false
	pes := asPEs(busy, idleFFT(1))
	res := FRFS{}.Schedule(0, tasks, pes)
	if len(res.Assignments) != 0 {
		t.Fatalf("FRFS assigned cpu task to fft PE: %+v", res.Assignments)
	}
	// A dual-platform task may use it.
	res = FRFS{}.Schedule(0, asTasks(dualTask("d", 10, 20)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 1 {
		t.Fatalf("FRFS missed the idle fft PE: %+v", res.Assignments)
	}
}

func TestFRFSOpsScaleWithPEsNotReady(t *testing.T) {
	pes := asPEs(idleCPU(0), idleCPU(1), idleCPU(2))
	small := FRFS{}.Schedule(0, asTasks(cpuTask("a", 1)), pes)
	var many []Task
	for i := 0; i < 500; i++ {
		many = append(many, cpuTask("t", 1))
	}
	large := FRFS{}.Schedule(0, many, pes)
	// Once the 3 PEs saturate the scan stops: ops stay within a small
	// constant of the PE count regardless of 500 waiting tasks.
	if large.Ops > small.Ops*4 {
		t.Fatalf("FRFS ops grew with ready length: %d -> %d", small.Ops, large.Ops)
	}
}

func TestMETPicksMinimumExecutionTime(t *testing.T) {
	// fft cost lower: MET must wait for the fft PE even though a cpu
	// PE idles.
	tasks := asTasks(dualTask("t", 100, 10))
	fft := idleFFT(1)
	fft.idle = false
	pes := asPEs(idleCPU(0), fft)
	res := MET{}.Schedule(0, tasks, pes)
	if len(res.Assignments) != 0 {
		t.Fatalf("MET assigned off its minimum type: %+v", res.Assignments)
	}
	fft.idle = true
	res = MET{}.Schedule(0, tasks, pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 1 {
		t.Fatalf("MET missed its minimum type: %+v", res.Assignments)
	}
}

func TestMETOpsLinearInReady(t *testing.T) {
	pes := asPEs(idleCPU(0), idleFFT(1))
	mk := func(n int) []Task {
		var ts []Task
		for i := 0; i < n; i++ {
			ts = append(ts, dualTask("t", 5, 9))
		}
		return ts
	}
	a := MET{}.Schedule(0, mk(10), pes)
	b := MET{}.Schedule(0, mk(1000), pes)
	ratio := float64(b.Ops) / float64(a.Ops)
	if ratio < 50 || ratio > 150 {
		t.Fatalf("MET ops not ~linear: %d -> %d (ratio %.1f, want ~100)", a.Ops, b.Ops, ratio)
	}
}

func TestEFTPicksEarliestFinish(t *testing.T) {
	// PE0 idle but slow (speed 3x); PE1 idle and fast. EFT must pick
	// the one that finishes first.
	slow := idleCPU(0)
	slow.speed = 3
	fast := idleCPU(1)
	pes := asPEs(slow, fast)
	res := EFT{}.Schedule(0, asTasks(cpuTask("t", 100)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 1 {
		t.Fatalf("EFT picked PE %+v, want fast PE 1", res.Assignments)
	}
	// With the fast PE available far in the future, the slow idle PE
	// finishes earlier.
	fast.avail = 10_000
	fast.idle = false
	res = EFT{}.Schedule(0, asTasks(cpuTask("t", 100)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 0 {
		t.Fatalf("EFT ignored availability: %+v", res.Assignments)
	}
}

func TestEFTOpsQuadraticInReady(t *testing.T) {
	pes := asPEs(idleCPU(0), idleCPU(1))
	mk := func(n int) []Task {
		var ts []Task
		for i := 0; i < n; i++ {
			ts = append(ts, cpuTask("t", 5))
		}
		return ts
	}
	a := EFT{}.Schedule(0, mk(100), pes)
	b := EFT{}.Schedule(0, mk(2000), pes)
	ratio := float64(b.Ops) / float64(a.Ops)
	// Quadratic charging: 20x the tasks must cost far more than 20x
	// the ops (the paper's O(n^2)). The rescan constant is small, so
	// the quadratic term shows at ready-list lengths the congested
	// Figure 10 sweeps actually reach.
	if ratio < 35 {
		t.Fatalf("EFT ops not superlinear: %d -> %d (ratio %.1f)", a.Ops, b.Ops, ratio)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	mk := func() ([]Task, []PE) {
		return asTasks(dualTask("a", 1, 1), dualTask("b", 1, 1)),
			asPEs(idleCPU(0), idleCPU(1), idleFFT(2))
	}
	t1, p1 := mk()
	t2, p2 := mk()
	r1 := NewRandom(99).Schedule(0, t1, p1)
	r2 := NewRandom(99).Schedule(0, t2, p2)
	if len(r1.Assignments) != len(r2.Assignments) {
		t.Fatal("seeded RANDOM diverged")
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("seeded RANDOM diverged")
		}
	}
}

func TestFRFSQUsesQueuesAndDepth(t *testing.T) {
	q := FRFSQ{Depth: 2}
	busy := idleCPU(0)
	busy.idle = false // running one task, queue empty: load 1
	pes := asPEs(busy)
	tasks := asTasks(cpuTask("a", 1), cpuTask("b", 1), cpuTask("c", 1))
	res := q.Schedule(0, tasks, pes)
	// Depth 2 means running + 1 queued: exactly one assignment.
	if len(res.Assignments) != 1 {
		t.Fatalf("FRFSQ assigned %d tasks into depth-2 queue, want 1", len(res.Assignments))
	}
	// Zero depth falls back to the default.
	res = FRFSQ{}.Schedule(0, tasks, pes)
	if len(res.Assignments) != 3 {
		t.Fatalf("default-depth FRFSQ assigned %d, want 3", len(res.Assignments))
	}
}

func TestFRFSQBalancesQueues(t *testing.T) {
	a := idleCPU(0)
	a.idle = false
	a.queued = 2 // load 3
	b := idleCPU(1)
	b.idle = false // load 1
	pes := asPEs(a, b)
	res := FRFSQ{Depth: 8}.Schedule(0, asTasks(cpuTask("t", 1)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 1 {
		t.Fatalf("FRFSQ did not pick shortest queue: %+v", res.Assignments)
	}
}

func TestPowerEFTPrefersLowEnergyWithinSlack(t *testing.T) {
	big := idleCPU(0)
	big.speed = 0.5
	big.power = 1.6
	little := idleCPU(1)
	little.speed = 0.55 // nearly as fast
	little.power = 0.35
	pes := asPEs(big, little)
	res := PowerEFT{Slack: 1.25}.Schedule(0, asTasks(cpuTask("t", 1000)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 1 {
		t.Fatalf("PowerEFT ignored the low-power core: %+v", res.Assignments)
	}
	// With tight slack (and the LITTLE now much slower) it must fall
	// back to the fast core.
	little.speed = 3.0
	res = PowerEFT{Slack: 1.05}.Schedule(0, asTasks(cpuTask("t", 1000)), pes)
	if len(res.Assignments) != 1 || res.Assignments[0].PEIndex != 0 {
		t.Fatalf("PowerEFT overshot its slack: %+v", res.Assignments)
	}
}

// Property: for random scenarios, FRFS never leaves an idle
// supporting PE unused while a compatible task waits.
func TestFRFSWorkConservingProperty(t *testing.T) {
	f := func(nTasksRaw, nPEsRaw uint8) bool {
		nTasks := int(nTasksRaw%6) + 1
		nPEs := int(nPEsRaw%4) + 1
		var tasks []Task
		for i := 0; i < nTasks; i++ {
			tasks = append(tasks, cpuTask("t", 10))
		}
		var pes []PE
		for i := 0; i < nPEs; i++ {
			pes = append(pes, idleCPU(i))
		}
		res := FRFS{}.Schedule(0, tasks, pes)
		want := nTasks
		if nPEs < want {
			want = nPEs
		}
		return len(res.Assignments) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFRFS(b *testing.B) {
	var tasks []Task
	for i := 0; i < 64; i++ {
		tasks = append(tasks, dualTask("t", 100, 200))
	}
	pes := asPEs(idleCPU(0), idleCPU(1), idleCPU(2), idleFFT(3), idleFFT(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FRFS{}.Schedule(0, tasks, pes)
	}
}

func BenchmarkEFT(b *testing.B) {
	var tasks []Task
	for i := 0; i < 64; i++ {
		tasks = append(tasks, dualTask("t", 100, 200))
	}
	pes := asPEs(idleCPU(0), idleCPU(1), idleCPU(2), idleFFT(3), idleFFT(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EFT{}.Schedule(0, tasks, pes)
	}
}
