package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestDistBasics(t *testing.T) {
	d := newDist(DefaultQuantiles)
	for _, x := range []float64{4, 2, 8, 6, 10} {
		d.Add(x)
	}
	if d.Count() != 5 || d.Min() != 2 || d.Max() != 10 || d.Mean() != 6 {
		t.Fatalf("count=%d min=%v max=%v mean=%v", d.Count(), d.Min(), d.Max(), d.Mean())
	}
	// With exactly five observations the P² markers hold the sorted
	// sample, so the median is exact.
	if got := d.Quantile(0.50); got != 6 {
		t.Fatalf("median = %v", got)
	}
}

func TestDistSmallCountsExact(t *testing.T) {
	d := newDist(DefaultQuantiles)
	if !math.IsNaN(d.Quantile(0.50)) {
		t.Fatal("empty Dist should answer NaN")
	}
	d.Add(7)
	if got := d.Quantile(0.50); got != 7 {
		t.Fatalf("single-sample median = %v", got)
	}
	d.Add(1)
	if got := d.Quantile(0.50); got != 4 {
		t.Fatalf("two-sample median = %v (want interpolated 4)", got)
	}
}

func TestDistNaNGuard(t *testing.T) {
	d := newDist(DefaultQuantiles)
	d.Add(math.NaN())
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
		if i%10 == 0 {
			d.Add(math.NaN())
		}
	}
	if d.Count() != 100 || d.NaNs() != 11 {
		t.Fatalf("count=%d nans=%d", d.Count(), d.NaNs())
	}
	if got := d.Quantile(0.50); math.IsNaN(got) || got < 40 || got > 60 {
		t.Fatalf("median %v poisoned by NaN inputs", got)
	}
	if math.IsNaN(d.Mean()) || math.IsNaN(d.Min()) || math.IsNaN(d.Max()) {
		t.Fatal("moments poisoned by NaN inputs")
	}
}

func TestDistUntrackedQuantile(t *testing.T) {
	d := newDist([]float64{0.5})
	for i := 0; i < 10; i++ {
		d.Add(float64(i))
		// NaN for untracked probabilities at every count, including
		// the exact (<5 observation) regime.
		if !math.IsNaN(d.Quantile(0.25)) {
			t.Fatalf("untracked probability answered a value at count %d", i+1)
		}
	}
}

// TestP2AgainstExact drives the estimator with known distributions and
// checks the estimates against exact sorted quantiles.
func TestP2AgainstExact(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
		tol  float64 // relative tolerance on the exact quantile spread
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }, 0.05},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }, 0.15},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return r.NormFloat64()
			}
			return 100 + r.NormFloat64()
		}, 0.15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			d := newDist(DefaultQuantiles)
			var all []float64
			for i := 0; i < 20000; i++ {
				x := tc.gen(r)
				d.Add(x)
				all = append(all, x)
			}
			sort.Float64s(all)
			span := all[len(all)-1] - all[0]
			for _, p := range DefaultQuantiles {
				exact := quantile(all, p)
				got := d.Quantile(p)
				if diff := math.Abs(got - exact); diff > tc.tol*span {
					t.Errorf("p%.0f: estimate %v vs exact %v (diff %v, tol %v)",
						p*100, got, exact, diff, tc.tol*span)
				}
			}
		})
	}
}

// TestP2Deterministic: the estimator is a pure function of the input
// sequence, the property the workers=1 vs workers=8 parity rests on.
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		r := rand.New(rand.NewSource(3))
		d := newDist(DefaultQuantiles)
		for i := 0; i < 5000; i++ {
			d.Add(r.ExpFloat64())
		}
		return d.Quantile(0.99)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same input sequence produced %v then %v", a, b)
	}
}

func TestDistDuplicateValues(t *testing.T) {
	d := newDist(DefaultQuantiles)
	for i := 0; i < 1000; i++ {
		d.Add(42)
	}
	for _, p := range DefaultQuantiles {
		if got := d.Quantile(p); got != 42 {
			t.Fatalf("p%.0f of constant stream = %v", p*100, got)
		}
	}
}

func TestNewOnlineRejectsBadProbs(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewOnline accepted probability %v", p)
				}
			}()
			NewOnline(0, p)
		}()
	}
}

func TestOnlineSinkAggregation(t *testing.T) {
	o := NewOnline(0)
	o.RecordTask(TaskRecord{PEID: 0, Ready: 0, Start: 10, End: 110})
	o.RecordTask(TaskRecord{PEID: 1, Ready: 5, Start: 35, End: 85})
	o.RecordApp(AppRecord{Arrival: 0, Done: 500})
	if o.Wait.Count() != 2 || o.Wait.Mean() != 20 {
		t.Fatalf("wait: count=%d mean=%v", o.Wait.Count(), o.Wait.Mean())
	}
	if o.Response.Count() != 1 || o.Response.Max() != 500 {
		t.Fatalf("response: count=%d max=%v", o.Response.Count(), o.Response.Max())
	}
	if pe := o.PEBusy(0); pe == nil || pe.Mean() != 100 {
		t.Fatalf("PE0 busy = %+v", pe)
	}
	if pe := o.PEBusy(1); pe == nil || pe.Mean() != 50 {
		t.Fatalf("PE1 busy = %+v", pe)
	}
	if o.PEBusy(7) != nil {
		t.Fatal("untouched PE should report nil")
	}
	if s := o.String(); !strings.Contains(s, "2 tasks") {
		t.Fatalf("String() = %q", s)
	}
}

func TestOnlineWarmupTrim(t *testing.T) {
	o := NewOnline(vtime.Time(100))
	o.RecordTask(TaskRecord{PEID: 0, Ready: 99, Start: 120, End: 130}) // pre-warmup
	o.RecordTask(TaskRecord{PEID: 0, Ready: 100, Start: 120, End: 130})
	o.RecordApp(AppRecord{Arrival: 0, Done: 400}) // pre-warmup
	o.RecordApp(AppRecord{Arrival: 150, Done: 400})
	if o.Wait.Count() != 1 {
		t.Fatalf("warmup trim kept %d tasks", o.Wait.Count())
	}
	if o.Response.Count() != 1 {
		t.Fatalf("warmup trim kept %d apps", o.Response.Count())
	}
}

func TestFullReportSink(t *testing.T) {
	var f FullReport
	f.RecordTask(TaskRecord{App: "a"})
	f.RecordApp(AppRecord{App: "a"})
	f.RecordTask(TaskRecord{App: "b"})
	if len(f.Tasks) != 2 || len(f.Apps) != 1 {
		t.Fatalf("FullReport kept %d/%d records", len(f.Tasks), len(f.Apps))
	}
	Discard{}.RecordTask(TaskRecord{})
	Discard{}.RecordApp(AppRecord{})
}

// TestOnlineAddAllocs pins the hot-path property the emulator's
// steady-state allocation bound depends on: once every PE has been
// seen, RecordTask/RecordApp allocate nothing.
func TestOnlineAddAllocs(t *testing.T) {
	o := NewOnline(0)
	for pe := 0; pe < 8; pe++ {
		o.RecordTask(TaskRecord{PEID: pe, Ready: 0, Start: 1, End: 2})
	}
	var i int64
	avg := testing.AllocsPerRun(1000, func() {
		i++
		o.RecordTask(TaskRecord{PEID: int(i % 8), Ready: vtime.Time(i), Start: vtime.Time(i + 1), End: vtime.Time(i + 3)})
		o.RecordApp(AppRecord{Arrival: vtime.Time(i), Done: vtime.Time(i + 10)})
	})
	if avg != 0 {
		t.Fatalf("steady-state RecordTask/RecordApp allocate %.1f objects", avg)
	}
}
