package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

func recordN(o *Online, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		o.RecordTask(TaskRecord{
			PEID:  i % 3,
			Ready: vtime.Time(i * 1000),
			Start: vtime.Time(i*1000 + rng.Intn(500)),
			End:   vtime.Time(i*1000 + 900),
		})
		o.RecordApp(AppRecord{
			Arrival: vtime.Time(i * 1000),
			Done:    vtime.Time(i*1000 + 700 + rng.Intn(300)),
		})
	}
}

// TestSnapshotMatchesLive: immediately after Snapshot, every statistic
// the sink exposes reads identically from the copy and the original —
// counts, means, min/max, and the P² quantile estimates.
func TestSnapshotMatchesLive(t *testing.T) {
	o := NewOnline(0)
	recordN(o, 500, rand.New(rand.NewSource(1)))
	snap := o.Snapshot()

	if snap.TasksSeen != o.TasksSeen || snap.AppsSeen != o.AppsSeen {
		t.Fatalf("seen counters diverge: snap %d/%d live %d/%d",
			snap.TasksSeen, snap.AppsSeen, o.TasksSeen, o.AppsSeen)
	}
	pairs := []struct {
		name       string
		live, copy *Dist
	}{
		{"wait", &o.Wait, &snap.Wait},
		{"response", &o.Response, &snap.Response},
		{"pe0", o.PEBusy(0), snap.PEBusy(0)},
		{"pe2", o.PEBusy(2), snap.PEBusy(2)},
	}
	for _, p := range pairs {
		if p.live == nil || p.copy == nil {
			t.Fatalf("%s: nil distribution (live=%v copy=%v)", p.name, p.live, p.copy)
		}
		if p.copy.Count() != p.live.Count() || p.copy.Mean() != p.live.Mean() ||
			p.copy.Min() != p.live.Min() || p.copy.Max() != p.live.Max() {
			t.Fatalf("%s: summary diverges", p.name)
		}
		for _, q := range DefaultQuantiles {
			if p.copy.Quantile(q) != p.live.Quantile(q) {
				t.Fatalf("%s: q%.2f diverges: %v vs %v",
					p.name, q, p.copy.Quantile(q), p.live.Quantile(q))
			}
		}
	}
}

// TestSnapshotIsIndependent pins the deep-copy property on the P²
// marker state: recording thousands of further observations into the
// live sink (including new PEs) must not move a single statistic of an
// earlier snapshot, and the snapshot itself must keep answering.
func TestSnapshotIsIndependent(t *testing.T) {
	o := NewOnline(0)
	rng := rand.New(rand.NewSource(2))
	recordN(o, 200, rng)
	snap := o.Snapshot()

	type frozen struct {
		count    int64
		mean     float64
		p50, p99 float64
	}
	freeze := func(d *Dist) frozen {
		return frozen{d.Count(), d.Mean(), d.Quantile(0.50), d.Quantile(0.99)}
	}
	wantWait := freeze(&snap.Wait)
	wantResp := freeze(&snap.Response)
	wantPE := freeze(snap.PEBusy(1))

	// Hammer the live sink; the distribution shifts hard (10x larger
	// observations), which must drag live quantiles but not the copy's.
	for i := 0; i < 5000; i++ {
		o.RecordTask(TaskRecord{
			PEID:  i % 7, // PEs 3..6 are new: live perPE grows, snapshot's must not
			Ready: vtime.Time(i * 1000),
			Start: vtime.Time(i*1000 + 5000 + rng.Intn(5000)),
			End:   vtime.Time(i*1000 + 20000),
		})
		o.RecordApp(AppRecord{Arrival: vtime.Time(i * 1000), Done: vtime.Time(i*1000 + 15000)})
	}

	if got := freeze(&snap.Wait); got != wantWait {
		t.Fatalf("snapshot Wait moved: %+v -> %+v", wantWait, got)
	}
	if got := freeze(&snap.Response); got != wantResp {
		t.Fatalf("snapshot Response moved: %+v -> %+v", wantResp, got)
	}
	if got := freeze(snap.PEBusy(1)); got != wantPE {
		t.Fatalf("snapshot PEBusy(1) moved: %+v -> %+v", wantPE, got)
	}
	if snap.PEBusy(5) != nil {
		t.Fatal("snapshot grew a PE recorded only after the copy")
	}
	if o.Wait.Quantile(0.50) == wantWait.p50 {
		t.Fatal("live p50 did not move — the independence check proved nothing")
	}

	// The converse too: writing into the snapshot must not leak back.
	liveP50 := o.Wait.Quantile(0.50)
	for i := 0; i < 1000; i++ {
		snap.RecordTask(TaskRecord{PEID: 0, Ready: 0, Start: 1, End: 2})
	}
	if o.Wait.Quantile(0.50) != liveP50 || o.TasksSeen != 5200 {
		t.Fatal("writes into the snapshot leaked into the live sink")
	}
}

// TestSnapshotBootstrapPhase covers the pre-P² regime: with fewer than
// five observations quantiles are answered exactly from the boot
// buffer, and a snapshot taken there stays exact while the live sink
// crosses into P² marker mode.
func TestSnapshotBootstrapPhase(t *testing.T) {
	o := NewOnline(0)
	for _, w := range []int64{40, 10, 30} {
		o.RecordTask(TaskRecord{PEID: 0, Ready: 0, Start: vtime.Time(w), End: vtime.Time(w + 1)})
	}
	snap := o.Snapshot()
	if got := snap.Wait.Quantile(0.50); got != 30 {
		t.Fatalf("bootstrap snapshot p50 = %v, want exact 30", got)
	}
	// Push the live sink past five observations: its markers
	// initialise; the snapshot must still answer from its own boot copy.
	for _, w := range []int64{100, 200, 300, 400} {
		o.RecordTask(TaskRecord{PEID: 0, Ready: 0, Start: vtime.Time(w), End: vtime.Time(w + 1)})
	}
	if got := snap.Wait.Quantile(0.50); got != 30 {
		t.Fatalf("snapshot p50 moved to %v after live sink crossed into P² mode", got)
	}
	if snap.Wait.Count() != 3 {
		t.Fatalf("snapshot count = %d, want 3", snap.Wait.Count())
	}
}

// TestSnapshotEmpty: a zero-observation snapshot is valid and answers
// like a fresh sink.
func TestSnapshotEmpty(t *testing.T) {
	o := NewOnline(50, 0.5, 0.9)
	snap := o.Snapshot()
	if snap.Warmup != 50 || snap.Wait.Count() != 0 {
		t.Fatalf("empty snapshot malformed: warmup=%v count=%d", snap.Warmup, snap.Wait.Count())
	}
	if !math.IsNaN(snap.Wait.Quantile(0.5)) {
		t.Fatal("empty snapshot quantile should be NaN")
	}
	// And it keeps the warm-up trim: a pre-warmup record is dropped.
	snap.RecordTask(TaskRecord{Ready: 10, Start: 20, End: 30})
	if snap.Wait.Count() != 0 || snap.TasksSeen != 1 {
		t.Fatalf("warm-up trim lost in snapshot: count=%d seen=%d", snap.Wait.Count(), snap.TasksSeen)
	}
}
