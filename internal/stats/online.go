package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// DefaultQuantiles are the steady-state percentiles the performance
// studies report (p50/p95/p99).
var DefaultQuantiles = []float64{0.50, 0.95, 0.99}

// Online is the streaming statistics sink: constant-memory aggregation
// of task wait times, application response times, and per-PE busy
// (task occupancy) distributions — count, mean, min/max, and P²
// streaming quantile estimates. It is what makes saturation and
// long-horizon runs feasible: memory is O(PEs + tracked quantiles),
// independent of how many million tasks flow through.
//
// Warmup implements warm-up trimming: tasks that became ready, and
// applications that arrived, before the warm-up instant are excluded,
// so steady-state percentiles are not polluted by the cold start.
//
// The zero value is not ready for use; construct with NewOnline. An
// Online must not be shared by concurrent runs.
//
//repolint:contract single-writer
type Online struct {
	// Warmup is the trim instant; records originating before it are
	// dropped (0 keeps everything).
	Warmup vtime.Time

	// TasksSeen / AppsSeen count every record offered, including the
	// ones the warm-up trim drops, so totals stay available alongside
	// the trimmed steady-state statistics.
	TasksSeen int64
	AppsSeen  int64

	// Wait aggregates task wait times (ready → start) in nanoseconds.
	Wait Dist
	// Response aggregates application response times (arrival → done)
	// in nanoseconds.
	Response Dist

	probs []float64
	// perPE aggregates per-PE busy time — the occupancy (start → end)
	// of tasks the PE executed — indexed by PE ID.
	perPE []Dist
}

// NewOnline builds an online sink trimming records before warmup and
// tracking the given quantiles (DefaultQuantiles when none given).
// Probabilities must lie strictly inside (0, 1) — the P² markers are
// meaningless outside it; p=0/p=1 callers want Dist.Min/Max — so an
// out-of-range probability is a programming error and panics.
func NewOnline(warmup vtime.Time, probs ...float64) *Online {
	if len(probs) == 0 {
		probs = DefaultQuantiles
	}
	for _, p := range probs {
		if !(p > 0 && p < 1) {
			panic(fmt.Sprintf("stats: quantile probability %v outside (0,1)", p))
		}
	}
	ps := append([]float64(nil), probs...)
	return &Online{
		Warmup:   warmup,
		Wait:     newDist(ps),
		Response: newDist(ps),
		probs:    ps,
	}
}

// RecordTask implements Sink.
func (o *Online) RecordTask(r TaskRecord) {
	o.TasksSeen++
	if r.Ready < o.Warmup {
		return
	}
	o.Wait.Add(float64(r.WaitTime()))
	o.pe(r.PEID).Add(float64(r.Duration()))
}

// RecordApp implements Sink.
func (o *Online) RecordApp(r AppRecord) {
	o.AppsSeen++
	if r.Arrival < o.Warmup {
		return
	}
	o.Response.Add(float64(r.ResponseTime()))
}

// pe returns the busy distribution of one PE, growing the table on
// first contact (the only allocation after warm-up).
func (o *Online) pe(id int) *Dist {
	if id < 0 {
		return &Dist{}
	}
	for id >= len(o.perPE) {
		o.perPE = append(o.perPE, Dist{})
	}
	d := &o.perPE[id]
	if d.probs == nil {
		*d = newDist(o.probs)
	}
	return d
}

// Snapshot returns a consistent point-in-time deep copy of the sink:
// counts, means, min/max, and the full P² marker state of every
// tracked distribution (Wait, Response, per-PE busy). The copy is
// independent — observations recorded after the call never move the
// snapshot's quantiles — so a server can hand snapshots to encoding
// goroutines while the run continues.
//
// Concurrency contract (single writer / snapshot reader): an Online is
// written by exactly one emulation run. Snapshot does not synchronize
// with that writer, so it must be called from the writing goroutine,
// or with writer and snapshotter serialized under one external lock
// (internal/serve wraps Online in a mutex-guarded sink for exactly
// this). Calling Snapshot concurrently with RecordTask/RecordApp and
// no lock is a data race.
func (o *Online) Snapshot() *Online {
	c := *o
	c.Wait = o.Wait.clone()
	c.Response = o.Response.clone()
	c.perPE = make([]Dist, len(o.perPE))
	for i := range o.perPE {
		c.perPE[i] = o.perPE[i].clone()
	}
	// probs is immutable after NewOnline and deliberately shared.
	return &c
}

// PEBusy returns the busy (occupancy) distribution recorded for a PE
// ID, or nil if the PE never completed a post-warmup task.
func (o *Online) PEBusy(id int) *Dist {
	if id < 0 || id >= len(o.perPE) || o.perPE[id].Count() == 0 {
		return nil
	}
	return &o.perPE[id]
}

// String renders a compact digest for logs and error messages.
func (o *Online) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online: %d tasks, %d apps", o.Wait.Count(), o.Response.Count())
	if o.Response.Count() > 0 {
		fmt.Fprintf(&b, "; response p50=%v p99=%v",
			vtime.Duration(o.Response.Quantile(0.50)), vtime.Duration(o.Response.Quantile(0.99)))
	}
	return b.String()
}

// --- online univariate distribution ------------------------------------------

// Dist is a constant-memory summary of one metric: count, mean,
// min/max, and P² quantile estimates for a fixed probability set. NaN
// observations are counted and otherwise ignored, so a single bad
// sample cannot poison the summary (compare BoxOf). The zero value
// accepts observations but tracks no quantiles.
type Dist struct {
	count int64
	nans  int64
	sum   float64
	min   float64
	max   float64

	probs []float64
	// boot holds the first five observations (sorted lazily) used to
	// seed the P² markers and to answer exact quantiles while count<5.
	boot  [5]float64
	marks []p2
}

// newDist builds a distribution tracking the given quantile set; the
// probs slice is shared, not copied.
func newDist(probs []float64) Dist {
	return Dist{probs: probs, marks: make([]p2, len(probs))}
}

// clone returns an independent copy of the distribution: scalar state
// by value, the P² marker slice duplicated (markers are mutated per
// observation), the immutable probs slice shared.
func (d Dist) clone() Dist {
	d.marks = append([]p2(nil), d.marks...)
	return d
}

// Add accepts one observation. NaN inputs are tallied in NaNs and
// otherwise ignored.
func (d *Dist) Add(x float64) {
	if math.IsNaN(x) {
		d.nans++
		return
	}
	if d.count == 0 || x < d.min {
		d.min = x
	}
	if d.count == 0 || x > d.max {
		d.max = x
	}
	d.sum += x
	d.count++
	if d.marks == nil {
		return
	}
	if d.count <= 5 {
		d.boot[d.count-1] = x
		if d.count == 5 {
			sort.Float64s(d.boot[:])
			for i := range d.marks {
				d.marks[i].init(d.probs[i], d.boot)
			}
		}
		return
	}
	for i := range d.marks {
		d.marks[i].add(x)
	}
}

// Count is the number of accepted (non-NaN) observations.
func (d *Dist) Count() int64 { return d.count }

// NaNs is the number of rejected NaN observations.
func (d *Dist) NaNs() int64 { return d.nans }

// Mean is the arithmetic mean of accepted observations (0 when empty).
func (d *Dist) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Min returns the smallest accepted observation (0 when empty).
func (d *Dist) Min() float64 { return d.min }

// Max returns the largest accepted observation (0 when empty).
func (d *Dist) Max() float64 { return d.max }

// Quantile returns the P² estimate for one of the tracked
// probabilities. While fewer than five observations have arrived the
// answer is exact. Untracked probabilities (and an empty distribution)
// return NaN.
func (d *Dist) Quantile(p float64) float64 {
	if d.count == 0 || d.marks == nil {
		return math.NaN()
	}
	tracked := -1
	for i, dp := range d.probs {
		if dp == p {
			tracked = i
			break
		}
	}
	if tracked < 0 {
		return math.NaN()
	}
	if d.count < 5 {
		v := append([]float64(nil), d.boot[:d.count]...)
		sort.Float64s(v)
		return quantile(v, p)
	}
	return d.marks[tracked].value()
}

// --- P² single-quantile estimator --------------------------------------------

// p2 is the Jain & Chlamtac P² streaming estimator for one quantile:
// five markers whose heights approximate the quantile curve, adjusted
// by a parabolic (fallback linear) update per observation. Memory is
// five positions and five heights; the estimate error on stationary
// inputs is comparable to histogram methods with far larger state.
type p2 struct {
	q  [5]float64 // marker heights
	n  [5]int64   // actual marker positions (1-based observation ranks)
	np [5]float64 // desired marker positions
	dn [5]float64 // desired-position increments per observation
}

// init seeds the markers from the first five sorted observations.
func (m *p2) init(p float64, sorted [5]float64) {
	m.q = sorted
	m.n = [5]int64{1, 2, 3, 4, 5}
	m.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	m.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// add folds one observation into the marker state.
func (m *p2) add(x float64) {
	var k int
	switch {
	case x < m.q[0]:
		m.q[0] = x
		k = 0
	case x >= m.q[4]:
		m.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < m.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		m.n[i]++
	}
	for i := 1; i < 5; i++ {
		m.np[i] += m.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := m.np[i] - float64(m.n[i])
		if (d >= 1 && m.n[i+1]-m.n[i] > 1) || (d <= -1 && m.n[i-1]-m.n[i] < -1) {
			s := int64(1)
			if d < 0 {
				s = -1
			}
			if q := m.parabolic(i, s); m.q[i-1] < q && q < m.q[i+1] {
				m.q[i] = q
			} else {
				m.q[i] = m.linear(i, s)
			}
			m.n[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic height adjustment.
func (m *p2) parabolic(i int, s int64) float64 {
	d := float64(s)
	return m.q[i] + d/float64(m.n[i+1]-m.n[i-1])*
		((float64(m.n[i]-m.n[i-1])+d)*(m.q[i+1]-m.q[i])/float64(m.n[i+1]-m.n[i])+
			(float64(m.n[i+1]-m.n[i])-d)*(m.q[i]-m.q[i-1])/float64(m.n[i]-m.n[i-1]))
}

// linear is the fallback adjustment when the parabola overshoots a
// neighbouring marker.
func (m *p2) linear(i int, s int64) float64 {
	return m.q[i] + float64(s)*(m.q[i+int(s)]-m.q[i])/float64(m.n[i+int(s)]-m.n[i])
}

// value is the current quantile estimate: the centre marker's height.
func (m *p2) value() float64 { return m.q[2] }
