package stats

// Sink receives per-task and per-application measurement records as
// the emulator produces them, instead of (or in addition to) the full
// Report.Tasks / Report.Apps slices. A sink makes long-horizon and
// saturation runs feasible: an online aggregator keeps memory constant
// where the full record log grows with the task count.
//
// Ownership contract: records are passed by value during Run and the
// strings they carry (app, node, PE labels) are interned per compiled
// template, so retaining records is cheap and safe — but a sink must
// never retain pointers into the emulator's live state (it is only
// ever handed values, so this falls out of the interface). A sink is
// used by at most one emulation run at a time; sweep cells must not
// share one sink instance.
type Sink interface {
	// RecordTask is called exactly once per completed task, at its
	// virtual completion instant, in completion order.
	RecordTask(TaskRecord)
	// RecordApp is called exactly once per completed application
	// instance, when its last task finishes.
	RecordApp(AppRecord)
}

// FullReport is the sink reproducing the classic behaviour: it keeps
// every record. The emulator uses it implicitly when Options.Sink is
// nil, landing the slices in Report.Tasks / Report.Apps; passing one
// explicitly keeps the records while leaving the report lean.
type FullReport struct {
	Tasks []TaskRecord
	Apps  []AppRecord
}

// RecordTask implements Sink.
func (f *FullReport) RecordTask(r TaskRecord) { f.Tasks = append(f.Tasks, r) }

// RecordApp implements Sink.
func (f *FullReport) RecordApp(r AppRecord) { f.Apps = append(f.Apps, r) }

// Discard drops every record. Sweeps that only read the aggregate
// report fields (makespan, PE busy totals, scheduler counters) use it
// to skip record collection entirely.
type Discard struct{}

// RecordTask implements Sink.
func (Discard) RecordTask(TaskRecord) {}

// RecordApp implements Sink.
func (Discard) RecordApp(AppRecord) {}
