// Package stats collects and summarises the scheduling statistics the
// framework gathers before termination: per-task timing records,
// per-PE utilisation, scheduling overhead, application response times,
// and the aggregate descriptive statistics (box plots, means) the
// paper's figures are built from.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// TaskRecord is the measurement of a single executed task.
type TaskRecord struct {
	App      string
	Instance int
	Node     string
	PEID     int
	PELabel  string
	Platform string // platform key the task ran on ("cpu", "fft")
	Ready    vtime.Time
	Start    vtime.Time
	End      vtime.Time
}

// Duration is the task's execution span.
func (r TaskRecord) Duration() vtime.Duration { return r.End.Sub(r.Start) }

// WaitTime is how long the task sat in the ready list.
func (r TaskRecord) WaitTime() vtime.Duration { return r.Start.Sub(r.Ready) }

// AppRecord tracks one application instance end to end.
type AppRecord struct {
	App      string
	Instance int
	Arrival  vtime.Time
	Injected vtime.Time
	Done     vtime.Time
	Tasks    int
}

// ResponseTime is the arrival-to-completion latency.
func (r AppRecord) ResponseTime() vtime.Duration { return r.Done.Sub(r.Arrival) }

// SchedStats aggregates workload-manager overhead: the time spent
// monitoring completion status, updating the ready queue, running the
// scheduling algorithm, and communicating tasks to resource managers
// (the paper's Figure 10b definition).
type SchedStats struct {
	Invocations  int
	TotalOps     int64
	OverheadNS   int64
	MaxReadyLen  int
	TotalReadyLn int64 // summed ready-list lengths, for the mean
}

// AvgOverheadNS is the mean overhead per scheduler invocation.
func (s SchedStats) AvgOverheadNS() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.OverheadNS) / float64(s.Invocations)
}

// AvgReadyLen is the mean ready-list length per invocation.
func (s SchedStats) AvgReadyLen() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.TotalReadyLn) / float64(s.Invocations)
}

// PEStats accumulates per-PE usage.
type PEStats struct {
	PEID    int
	Label   string
	BusyNS  int64
	Tasks   int
	EnergyJ float64
}

// Report is the full statistics bundle one emulation run produces.
type Report struct {
	ConfigName string
	PolicyName string
	// SchedulerPath names the scheduling machinery the run used
	// ("indexed", "slice", "slice-rebuild" — the core package's
	// SchedulerPath* constants). It is host-side provenance, not
	// modelled behaviour: the emulated results are byte-identical
	// across paths, so parity comparisons ignore it. omitempty keeps
	// pre-existing fixture documents (which predate the field) valid.
	SchedulerPath string `json:",omitempty"`
	Makespan      vtime.Duration
	// PlatEvents counts dynamic-platform events (faults, restores, DVFS
	// steps, power caps) applied during the run; Requeues counts tasks
	// returned to the ready list by PE faults (in-flight and reserved).
	// Both are zero — and absent from JSON, keeping pre-existing fixture
	// documents byte-identical — on static runs.
	PlatEvents int64 `json:",omitempty"`
	Requeues   int64 `json:",omitempty"`
	Tasks      []TaskRecord
	Apps       []AppRecord
	PEs        []PEStats
	Sched      SchedStats
}

// Utilization returns the busy fraction of a PE over the makespan, the
// quantity of Figure 9b.
func (r *Report) Utilization(peID int) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	for _, pe := range r.PEs {
		if pe.PEID == peID {
			return float64(pe.BusyNS) / float64(r.Makespan)
		}
	}
	return 0
}

// TotalEnergyJ sums PE energy over the run.
func (r *Report) TotalEnergyJ() float64 {
	var e float64
	for _, pe := range r.PEs {
		e += pe.EnergyJ
	}
	return e
}

// AppResponse returns mean response time per application name.
func (r *Report) AppResponse() map[string]vtime.Duration {
	sums := map[string]int64{}
	counts := map[string]int64{}
	for _, a := range r.Apps {
		sums[a.App] += int64(a.ResponseTime())
		counts[a.App]++
	}
	out := make(map[string]vtime.Duration, len(sums))
	for k, s := range sums {
		out[k] = vtime.Duration(s / counts[k])
	}
	return out
}

// Summary renders a human-readable digest, the framework's
// end-of-emulation statistics dump.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config=%s policy=%s makespan=%v tasks=%d apps=%d\n",
		r.ConfigName, r.PolicyName, r.Makespan, len(r.Tasks), len(r.Apps))
	fmt.Fprintf(&b, "scheduler: %d invocations, avg overhead %.3gus, max ready %d\n",
		r.Sched.Invocations, r.Sched.AvgOverheadNS()/1e3, r.Sched.MaxReadyLen)
	for _, pe := range r.PEs {
		util := 0.0
		if r.Makespan > 0 {
			util = float64(pe.BusyNS) / float64(r.Makespan) * 100
		}
		fmt.Fprintf(&b, "  %-12s %4d tasks  busy %-10v util %5.1f%%  energy %.4gJ\n",
			pe.Label, pe.Tasks, vtime.Duration(pe.BusyNS), util, pe.EnergyJ)
	}
	return b.String()
}

// --- descriptive statistics -------------------------------------------------

// Box holds the five-number summary used for the paper's Figure 9a
// box plots.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// BoxOf computes the five-number summary of values (which it sorts in
// a copy). NaN inputs are dropped — a single NaN would otherwise
// poison the sorted quantile lookup — and an input that is empty (or
// all-NaN) yields a zero Box.
func BoxOf(values []float64) Box {
	v := make([]float64, 0, len(values))
	for _, x := range values {
		if !math.IsNaN(x) {
			v = append(v, x)
		}
	}
	if len(v) == 0 {
		return Box{}
	}
	sort.Float64s(v)
	return Box{
		Min:    v[0],
		Q1:     quantile(v, 0.25),
		Median: quantile(v, 0.5),
		Q3:     quantile(v, 0.75),
		Max:    v[len(v)-1],
	}
}

// quantile interpolates the q-th quantile of sorted, NaN-free v.
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	if len(v) == 1 {
		return v[0]
	}
	pos := q * float64(len(v)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(v) {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, x := range values {
		s += x
	}
	return s / float64(len(values))
}

// String renders the box compactly.
func (b Box) String() string {
	return fmt.Sprintf("[%.4g | %.4g %.4g %.4g | %.4g]", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
