package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestTaskRecordDerived(t *testing.T) {
	r := TaskRecord{Ready: 10, Start: 25, End: 100}
	if r.Duration() != 75 {
		t.Fatalf("Duration = %d", int64(r.Duration()))
	}
	if r.WaitTime() != 15 {
		t.Fatalf("WaitTime = %d", int64(r.WaitTime()))
	}
}

func TestAppRecordResponse(t *testing.T) {
	a := AppRecord{Arrival: 100, Done: 350}
	if a.ResponseTime() != 250 {
		t.Fatalf("ResponseTime = %d", int64(a.ResponseTime()))
	}
}

func TestSchedStatsAverages(t *testing.T) {
	var s SchedStats
	if s.AvgOverheadNS() != 0 || s.AvgReadyLen() != 0 {
		t.Fatal("empty stats should average to 0")
	}
	s = SchedStats{Invocations: 4, OverheadNS: 10_000, TotalReadyLn: 20}
	if s.AvgOverheadNS() != 2500 {
		t.Fatalf("AvgOverheadNS = %v", s.AvgOverheadNS())
	}
	if s.AvgReadyLen() != 5 {
		t.Fatalf("AvgReadyLen = %v", s.AvgReadyLen())
	}
}

func TestReportUtilizationAndEnergy(t *testing.T) {
	r := &Report{
		Makespan: vtime.Duration(1000),
		PEs: []PEStats{
			{PEID: 0, Label: "A", BusyNS: 500, EnergyJ: 1.5},
			{PEID: 1, Label: "B", BusyNS: 250, EnergyJ: 0.5},
		},
	}
	if got := r.Utilization(0); got != 0.5 {
		t.Fatalf("Utilization(0) = %v", got)
	}
	if got := r.Utilization(1); got != 0.25 {
		t.Fatalf("Utilization(1) = %v", got)
	}
	if got := r.Utilization(7); got != 0 {
		t.Fatalf("unknown PE utilization = %v", got)
	}
	if got := r.TotalEnergyJ(); got != 2.0 {
		t.Fatalf("TotalEnergyJ = %v", got)
	}
	zero := &Report{}
	if zero.Utilization(0) != 0 {
		t.Fatal("zero-makespan utilization must be 0")
	}
}

func TestAppResponseGrouping(t *testing.T) {
	r := &Report{Apps: []AppRecord{
		{App: "a", Arrival: 0, Done: 100},
		{App: "a", Arrival: 0, Done: 300},
		{App: "b", Arrival: 50, Done: 100},
	}}
	m := r.AppResponse()
	if m["a"] != 200 {
		t.Fatalf("mean response a = %v", m["a"])
	}
	if m["b"] != 50 {
		t.Fatalf("mean response b = %v", m["b"])
	}
}

func TestSummaryRenders(t *testing.T) {
	r := &Report{
		ConfigName: "2C+1F",
		PolicyName: "frfs",
		Makespan:   vtime.Duration(5 * vtime.Millisecond),
		PEs:        []PEStats{{PEID: 0, Label: "A531", BusyNS: 100, Tasks: 3}},
		Sched:      SchedStats{Invocations: 10, OverheadNS: 25_000},
	}
	s := r.Summary()
	for _, want := range []string{"2C+1F", "frfs", "A531", "invocations"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestBoxOfKnown(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("box = %+v", b)
	}
	if BoxOf(nil) != (Box{}) {
		t.Fatal("empty box not zero")
	}
	single := BoxOf([]float64{7})
	if single.Min != 7 || single.Median != 7 || single.Max != 7 {
		t.Fatalf("single box = %+v", single)
	}
}

func TestBoxDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	BoxOf(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("BoxOf sorted the caller's slice")
	}
}

// Property: the box summary is ordered and bounded by the data.
func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, x := range raw {
			if x == x && x < 1e300 && x > -1e300 { // drop NaN/Inf
				vals = append(vals, x)
			}
		}
		if len(vals) == 0 {
			return true
		}
		b := BoxOf(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return b.Min == sorted[0] && b.Max == sorted[len(sorted)-1] &&
			b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean wrong")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1001)
	for i := range v {
		v[i] = rng.Float64()
	}
	b := BoxOf(v)
	// With 1001 uniform samples the quartiles approach 0.25/0.5/0.75.
	if b.Q1 < 0.2 || b.Q1 > 0.3 || b.Median < 0.45 || b.Median > 0.55 || b.Q3 < 0.7 || b.Q3 > 0.8 {
		t.Fatalf("quartiles off: %+v", b)
	}
}

// TestBoxOfEdgeCases drives BoxOf through the degenerate inputs the
// online pipeline can produce: empty, single, NaN-polluted, and
// duplicate-heavy samples.
func TestBoxOfEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		in   []float64
		want Box
	}{
		{"empty", nil, Box{}},
		{"single", []float64{7}, Box{Min: 7, Q1: 7, Median: 7, Q3: 7, Max: 7}},
		{"all-NaN", []float64{nan, nan}, Box{}},
		{"NaN-dropped", []float64{nan, 1, 2, 3, 4, 5, nan}, Box{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}},
		{"duplicates", []float64{2, 2, 2, 2}, Box{Min: 2, Q1: 2, Median: 2, Q3: 2, Max: 2}},
		{"two", []float64{1, 3}, Box{Min: 1, Q1: 1.5, Median: 2, Q3: 2.5, Max: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := BoxOf(tc.in)
			if got != tc.want {
				t.Fatalf("BoxOf(%v) = %+v, want %+v", tc.in, got, tc.want)
			}
			// No field may ever be NaN: NaN inputs are dropped, not
			// propagated.
			for _, f := range []float64{got.Min, got.Q1, got.Median, got.Q3, got.Max} {
				if math.IsNaN(f) {
					t.Fatalf("BoxOf(%v) produced NaN field: %+v", tc.in, got)
				}
			}
		})
	}
}

func TestBoxString(t *testing.T) {
	if s := BoxOf([]float64{1, 2, 3}).String(); !strings.Contains(s, "2") {
		t.Fatalf("Box.String = %q", s)
	}
}
