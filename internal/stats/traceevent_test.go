package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func sampleReport() *Report {
	return &Report{
		ConfigName: "2C+1F",
		PolicyName: "frfs",
		Makespan:   vtime.Duration(10_000),
		PEs: []PEStats{
			{PEID: 0, Label: "A531", BusyNS: 5000},
			{PEID: 1, Label: "FFT-PL2", BusyNS: 2000},
		},
		Tasks: []TaskRecord{
			{App: "wifi_tx", Instance: 0, Node: "SCRAMBLE", PEID: 0, Platform: "cpu",
				Ready: 0, Start: 100, End: 1100},
			{App: "wifi_tx", Instance: 0, Node: "IFFT", PEID: 1, Platform: "fft",
				Ready: 1100, Start: 1200, End: 3200},
		},
	}
}

func TestWriteTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 thread-name metadata events + 2 task events.
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(decoded.TraceEvents))
	}
	if decoded.Metadata["configuration"] != "2C+1F" {
		t.Fatalf("metadata: %v", decoded.Metadata)
	}
	var taskEvents int
	for _, e := range decoded.TraceEvents {
		if e["ph"] == "X" {
			taskEvents++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("non-positive duration: %v", e)
			}
		}
	}
	if taskEvents != 2 {
		t.Fatalf("%d task events", taskEvents)
	}
	if !strings.Contains(buf.String(), "SCRAMBLE") {
		t.Fatal("task names missing")
	}
}
