package stats

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the per-task records of a report rendered
// as a trace viewable in chrome://tracing or Perfetto, one timeline
// row per PE. This is the visual counterpart of the paper's scheduling
// statistics — a designer can see exactly how a workload packed onto a
// hypothetical configuration.

// traceEvent is the Trace Event Format's "complete event" (ph=X).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
	Metadata    traceMeta    `json:"metadata"`
}

type traceMeta struct {
	Config string `json:"configuration"`
	Policy string `json:"policy"`
}

// WriteTraceEvents renders the report's task records as a Chrome
// trace. Each PE becomes a thread row; each task a complete event with
// its application, instance and platform in the args.
func (r *Report) WriteTraceEvents(w io.Writer) error {
	tf := traceFile{
		DisplayUnit: "ms",
		Metadata:    traceMeta{Config: r.ConfigName, Policy: r.PolicyName},
	}
	// Thread name metadata per PE.
	for _, pe := range r.PEs {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  pe.PEID,
			Args: map[string]string{"name": pe.Label},
		})
	}
	for _, t := range r.Tasks {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: fmt.Sprintf("%s/%s", t.App, t.Node),
			Cat:  t.Platform,
			Ph:   "X",
			TS:   float64(t.Start) / 1e3,
			Dur:  float64(t.Duration()) / 1e3,
			PID:  1,
			TID:  t.PEID,
			Args: map[string]string{
				"instance": fmt.Sprintf("%d", t.Instance),
				"wait":     t.WaitTime().String(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
