// Package outliner implements the back half of the paper's automatic
// application conversion flow (Section II-E): dynamic-trace-based
// kernel detection (the TraceAtlas substitute), refactoring of the
// monolithic entry function into a sequence of outlined functions (the
// LLVM CodeExtractor substitute), memory analysis, generation of a
// framework-compatible JSON DAG, and hash-based kernel recognition
// that redirects recognised kernels to optimised or accelerator
// implementations.
package outliner

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/ir"
	"repro/internal/tracer"
)

// Options tunes the conversion.
type Options struct {
	// MainFn is the monolithic entry function; default "main".
	MainFn string
	// HotCount is the dynamic execution count above which a block is
	// "hot": regions containing hot blocks become kernels. Default 16.
	HotCount int64
	// MaxSteps bounds the tracing run.
	MaxSteps int64
}

func (o *Options) fill() {
	if o.MainFn == "" {
		o.MainFn = "main"
	}
	if o.HotCount <= 0 {
		o.HotCount = 16
	}
}

// Kernel describes one outlined code group.
type Kernel struct {
	// Name is the outlined function name (auto_k0, auto_nk1, ...).
	Name string
	// Hot marks kernel groups ("hot" sections); cold groups are the
	// paper's "non-kernel" glue code.
	Hot bool
	// Hints lists the source hints of the merged regions.
	Hints []string
	// DynInstrs is the dynamic instruction count the tracing run
	// attributed to the group — the profile the generated DAG's cost
	// annotations come from.
	DynInstrs int64
	// Globals lists every module global the group touches, in order of
	// first static appearance (the operand order recognition relies
	// on). Reads and Writes classify them.
	Globals []string
	Reads   []string
	Writes  []string
	// Hash is the canonical structural hash used for recognition.
	Hash uint64
}

// Result is the conversion output.
type Result struct {
	// Module is the refactored program: the entry function reduced to
	// a sequence of calls to the outlined functions.
	Module *ir.Module
	// Kernels lists the outlined groups in execution order.
	Kernels []Kernel
	// TotalDynInstrs is the whole tracing run's instruction count.
	TotalDynInstrs int64
}

// Convert traces the module's entry function (with the given
// arguments), detects kernels, and outlines them. The input module is
// not modified.
func Convert(m *ir.Module, opts Options, args ...float64) (*Result, error) {
	opts.fill()
	main, ok := m.Funcs[opts.MainFn]
	if !ok {
		return nil, fmt.Errorf("outliner: module has no %q function", opts.MainFn)
	}
	if len(main.Regions) == 0 {
		return nil, fmt.Errorf("outliner: %q carries no region annotations (compile with the MiniC front end)", opts.MainFn)
	}

	// 1. Trace instrumentation + collection (Figure 5, first stages).
	env := tracer.NewEnv(m)
	counts := tracer.NewCountTrace(m)
	ip, err := tracer.New(m, env, tracer.Options{Listener: counts, MaxSteps: opts.MaxSteps})
	if err != nil {
		return nil, err
	}
	if _, err := ip.Call(opts.MainFn, args...); err != nil {
		return nil, fmt.Errorf("outliner: tracing run failed: %w", err)
	}

	// 2. Kernel detection: a region is hot when any of its blocks
	// executed at least HotCount times, then adjacent same-class
	// regions merge into kernel / non-kernel groups.
	type group struct {
		start, end int
		hot        bool
		hints      []string
	}
	var groups []group
	for _, r := range main.Regions {
		hot := false
		var dyn int64
		for bi := r.Start; bi < r.End; bi++ {
			id := main.Blocks[bi].GlobalID
			if counts.Counts[id] >= opts.HotCount {
				hot = true
			}
			dyn += ip.InstrCount[id]
		}
		_ = dyn
		// Adjacent cold regions merge into one non-kernel group; hot
		// regions each stand alone — every hot loop nest is its own
		// kernel, as TraceAtlas separates kernels by their correlated
		// block sets even when they abut in the layout.
		if !hot && len(groups) > 0 && !groups[len(groups)-1].hot {
			g := &groups[len(groups)-1]
			g.end = r.End
			g.hints = append(g.hints, r.Hint)
			continue
		}
		groups = append(groups, group{start: r.Start, end: r.End, hot: hot, hints: []string{r.Hint}})
	}

	// 3. Outline each group into a standalone function and rebuild the
	// module with the entry function as a call sequence.
	out := ir.NewModule(m.Name + ".outlined")
	for _, gn := range m.GlobalOrder {
		g := m.Globals[gn]
		if err := out.AddGlobal(&ir.Global{Name: g.Name, Elems: g.Elems, Init: append([]float64(nil), g.Init...)}); err != nil {
			return nil, err
		}
	}
	for _, fn := range m.FuncOrder {
		if fn == opts.MainFn {
			continue
		}
		if err := out.AddFunc(cloneFunc(m.Funcs[fn])); err != nil {
			return nil, err
		}
	}

	res := &Result{Module: out, TotalDynInstrs: ip.Steps()}
	newMain := &ir.Func{Name: opts.MainFn, NumRegs: 1}
	entry := &ir.Block{Label: "entry"}
	hotIdx, coldIdx := 0, 0
	for _, g := range groups {
		var name string
		if g.hot {
			name = fmt.Sprintf("auto_k%d", hotIdx)
			hotIdx++
		} else {
			name = fmt.Sprintf("auto_nk%d", coldIdx)
			coldIdx++
		}
		f, err := outlineGroup(main, g.start, g.end, name)
		if err != nil {
			return nil, err
		}
		if err := out.AddFunc(f); err != nil {
			return nil, err
		}
		var dyn int64
		for bi := g.start; bi < g.end; bi++ {
			dyn += ip.InstrCount[main.Blocks[bi].GlobalID]
		}
		k := Kernel{
			Name:      name,
			Hot:       g.hot,
			Hints:     g.hints,
			DynInstrs: dyn,
		}
		k.Globals, k.Reads, k.Writes = analyseGlobals(out, f)
		k.Hash = StructuralHash(f)
		res.Kernels = append(res.Kernels, k)
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpCall, Dst: 0, Sym: name})
	}
	entry.Term = ir.Terminator{Kind: ir.TermRet, Cond: 0}
	newMain.Blocks = []*ir.Block{entry}
	if err := out.AddFunc(newMain); err != nil {
		return nil, err
	}
	if err := out.Finalize(); err != nil {
		return nil, fmt.Errorf("outliner: refactored module invalid: %w", err)
	}
	return res, nil
}

// cloneFunc deep-copies a function so the output module is independent
// of the input.
func cloneFunc(f *ir.Func) *ir.Func {
	nf := &ir.Func{
		Name:      f.Name,
		NumParams: f.NumParams,
		NumRegs:   f.NumRegs,
		Regions:   append([]ir.Region(nil), f.Regions...),
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{Label: b.Label, Term: b.Term}
		nb.Instrs = append(nb.Instrs, b.Instrs...)
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// outlineGroup extracts blocks [start, end) of f into a standalone
// zero-argument function: internal branch targets are rebased and the
// single exit branch to `end` becomes a return. Communication happens
// through module globals (main's locals were promoted by the front
// end), so no parameters are needed — the CodeExtractor analogue.
func outlineGroup(f *ir.Func, start, end int, name string) (*ir.Func, error) {
	nf := &ir.Func{Name: name, NumRegs: f.NumRegs}
	if nf.NumRegs == 0 {
		nf.NumRegs = 1
	}
	rebase := func(target int, where string) (int, bool, error) {
		if target == end {
			return 0, true, nil // exit edge becomes Ret
		}
		if target < start || target >= end {
			return 0, false, fmt.Errorf("outliner: %s: branch from %s escapes group [%d,%d) to %d",
				f.Name, where, start, end, target)
		}
		return target - start, false, nil
	}
	for bi := start; bi < end; bi++ {
		b := f.Blocks[bi]
		nb := &ir.Block{Label: b.Label}
		nb.Instrs = append(nb.Instrs, b.Instrs...)
		switch b.Term.Kind {
		case ir.TermRet:
			nb.Term = b.Term
		case ir.TermBr:
			t, exit, err := rebase(b.Term.Then, b.Label)
			if err != nil {
				return nil, err
			}
			if exit {
				nb.Term = ir.Terminator{Kind: ir.TermRet, Cond: -1}
			} else {
				nb.Term = ir.Terminator{Kind: ir.TermBr, Then: t}
			}
		case ir.TermCondBr:
			thenT, thenExit, err := rebase(b.Term.Then, b.Label)
			if err != nil {
				return nil, err
			}
			elseT, elseExit, err := rebase(b.Term.Else, b.Label)
			if err != nil {
				return nil, err
			}
			if thenExit || elseExit {
				// A conditional exit needs a synthetic return block.
				retIdx := end - start // appended below
				if thenExit {
					thenT = retIdx
				}
				if elseExit {
					elseT = retIdx
				}
				nb.Term = ir.Terminator{Kind: ir.TermCondBr, Cond: b.Term.Cond, Then: thenT, Else: elseT}
				nf.Blocks = append(nf.Blocks, nb)
				continue
			}
			nb.Term = ir.Terminator{Kind: ir.TermCondBr, Cond: b.Term.Cond, Then: thenT, Else: elseT}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	// Synthetic return block if any conditional exit referenced it.
	needRet := false
	for _, b := range nf.Blocks {
		if b.Term.Kind == ir.TermCondBr && (b.Term.Then == end-start || b.Term.Else == end-start) {
			needRet = true
		}
	}
	if needRet {
		nf.Blocks = append(nf.Blocks, &ir.Block{
			Label: "outlined.ret",
			Term:  ir.Terminator{Kind: ir.TermRet, Cond: -1},
		})
	}
	if len(nf.Blocks) == 0 {
		nf.Blocks = []*ir.Block{{Label: "empty", Term: ir.Terminator{Kind: ir.TermRet, Cond: -1}}}
	}
	return nf, nil
}

// analyseGlobals reports the globals a function touches (in order of
// first appearance) with read/write classification, following calls
// transitively — the outliner's memory analysis.
func analyseGlobals(m *ir.Module, f *ir.Func) (all, reads, writes []string) {
	seen := map[string]bool{}
	readSet := map[string]bool{}
	writeSet := map[string]bool{}
	visited := map[string]bool{}
	var walk func(fn *ir.Func)
	walk = func(fn *ir.Func) {
		if visited[fn.Name] {
			return
		}
		visited[fn.Name] = true
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					if !seen[in.Sym] {
						seen[in.Sym] = true
						all = append(all, in.Sym)
					}
					readSet[in.Sym] = true
				case ir.OpStore:
					if !seen[in.Sym] {
						seen[in.Sym] = true
						all = append(all, in.Sym)
					}
					writeSet[in.Sym] = true
				case ir.OpCall:
					if callee, ok := m.Funcs[in.Sym]; ok {
						walk(callee)
					}
				}
			}
		}
	}
	walk(f)
	for _, g := range all {
		if readSet[g] {
			reads = append(reads, g)
		}
		if writeSet[g] {
			writes = append(writes, g)
		}
	}
	return all, reads, writes
}

// StructuralHash computes the canonical hash used for kernel
// recognition: opcodes, control structure, and immediates, with
// registers and global names normalised by first appearance so the
// hash is invariant under renaming — two loops written identically
// over differently-named arrays hash equal. This is the "hash-based
// kernel recognition" of Case Study 4 and shares its stated
// assumption: recognition requires operational/structural identity.
func StructuralHash(f *ir.Func) uint64 {
	h := fnv.New64a()
	regNorm := map[int]int{}
	globNorm := map[string]int{}
	normReg := func(r int) int {
		if v, ok := regNorm[r]; ok {
			return v
		}
		v := len(regNorm)
		regNorm[r] = v
		return v
	}
	normGlob := func(g string) int {
		if v, ok := globNorm[g]; ok {
			return v
		}
		v := len(globNorm)
		globNorm[g] = v
		return v
	}
	wByte := func(b byte) { _, _ = h.Write([]byte{b}) }
	wInt := func(x int) {
		var buf [4]byte
		buf[0] = byte(x)
		buf[1] = byte(x >> 8)
		buf[2] = byte(x >> 16)
		buf[3] = byte(x >> 24)
		_, _ = h.Write(buf[:])
	}
	for _, b := range f.Blocks {
		wByte(0xBB)
		for _, in := range b.Instrs {
			wByte(byte(in.Op))
			switch in.Op {
			case ir.OpConst:
				bits := math.Float64bits(in.Imm)
				wInt(int(bits))
				wInt(int(bits >> 32))
				wInt(normReg(in.Dst))
			case ir.OpLoad:
				wInt(normGlob(in.Sym))
				wInt(normReg(in.A))
				wInt(normReg(in.Dst))
			case ir.OpStore:
				wInt(normGlob(in.Sym))
				wInt(normReg(in.A))
				wInt(normReg(in.B))
			case ir.OpCall:
				// Callee identity matters structurally.
				_, _ = h.Write([]byte(in.Sym))
				for _, a := range in.Args {
					wInt(normReg(a))
				}
				wInt(normReg(in.Dst))
			case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpSin, ir.OpCos,
				ir.OpSqrt, ir.OpAbs, ir.OpFloor:
				// Unary: the B field is unused and must not leak a
				// spurious register into the normalisation map.
				wInt(normReg(in.Dst))
				wInt(normReg(in.A))
			default:
				wInt(normReg(in.Dst))
				wInt(normReg(in.A))
				wInt(normReg(in.B))
			}
		}
		wByte(0xEE)
		wByte(byte(b.Term.Kind))
		switch b.Term.Kind {
		case ir.TermBr:
			wInt(b.Term.Then)
		case ir.TermCondBr:
			wInt(normReg(b.Term.Cond))
			wInt(b.Term.Then)
			wInt(b.Term.Else)
		case ir.TermRet:
			if b.Term.Cond >= 0 {
				wInt(normReg(b.Term.Cond))
			} else {
				wInt(-1)
			}
		}
	}
	return h.Sum64()
}
