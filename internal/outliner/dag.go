package outliner

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/appmodel"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/tracer"
)

// SpecOptions controls JSON DAG generation from a conversion result.
type SpecOptions struct {
	// AppName names the generated application.
	AppName string
	// SharedObject is the namespace the auto runfuncs register under;
	// defaults to "<AppName>_auto.so".
	SharedObject string
	// PerInstrNS converts the tracing run's dynamic instruction counts
	// into cost annotations (nanoseconds per IR instruction of the
	// compiled C on the baseline A53). Default DefaultPerInstrNS.
	PerInstrNS float64
	// Recognize applies the hash-based kernel recognition table,
	// redirecting recognised kernels to optimised and accelerator
	// implementations (Case Study 4's headline capability).
	Recognize bool
	// Registry receives the generated runfuncs. Required.
	Registry *kernels.Registry
}

// DefaultPerInstrNS is the calibrated per-IR-instruction cost on the
// A53 baseline: the compiled C of one interpreter-level IR instruction
// retires in well under a nanosecond on average (the naive DFT's
// multiply-accumulate body compiles to a handful of pipelined FP ops),
// calibrated so the naive-DFT-to-optimised-FFT ratio at n=1024 lands
// at the paper's measured 102x.
const DefaultPerInstrNS = 0.17

// Recognition records one substitution performed on the generated DAG.
type Recognition struct {
	Node string
	// Kind is the recognised kernel family ("dft", "corr_idft").
	Kind string
	// N is the inferred transform length.
	N int
}

// GenerateSpec turns a conversion result into a framework-compatible
// application: variables from the module globals (the memory
// analysis), one DAG node per outlined group in a sequential chain
// ("each node abstracted as a function call ... a sequence of function
// calls"), cost annotations from the dynamic profile, and runfuncs
// that execute the outlined IR against instance memory.
func GenerateSpec(res *Result, o SpecOptions) (*appmodel.AppSpec, []Recognition, error) {
	if o.Registry == nil {
		return nil, nil, fmt.Errorf("outliner: SpecOptions.Registry is required")
	}
	if o.AppName == "" {
		return nil, nil, fmt.Errorf("outliner: SpecOptions.AppName is required")
	}
	if o.SharedObject == "" {
		o.SharedObject = o.AppName + "_auto.so"
	}
	if o.PerInstrNS <= 0 {
		o.PerInstrNS = DefaultPerInstrNS
	}

	spec := &appmodel.AppSpec{
		AppName:      o.AppName,
		SharedObject: o.SharedObject,
		Variables:    map[string]appmodel.VariableSpec{},
		DAG:          map[string]appmodel.NodeSpec{},
	}
	// Memory analysis -> variable table: every module global becomes a
	// pointer variable backed by float64 storage.
	for _, gn := range res.Module.GlobalOrder {
		g := res.Module.Globals[gn]
		spec.Variables[gn] = appmodel.VariableSpec{
			Bytes:         8,
			IsPtr:         true,
			PtrAllocBytes: 8 * g.Elems,
			Val:           f64Bytes(g.Init),
		}
	}

	var recs []Recognition
	for i, k := range res.Kernels {
		node := appmodel.NodeSpec{
			Arguments: append([]string(nil), k.Globals...),
		}
		if len(node.Arguments) == 0 {
			// A group touching no memory still needs a schedulable
			// node; give it a token variable.
			if _, ok := spec.Variables["__auto_token"]; !ok {
				spec.Variables["__auto_token"] = appmodel.VariableSpec{Bytes: 8, IsPtr: true, PtrAllocBytes: 8}
			}
			node.Arguments = []string{"__auto_token"}
		}
		if i > 0 {
			node.Predecessors = []string{res.Kernels[i-1].Name}
		}
		if i+1 < len(res.Kernels) {
			node.Successors = []string{res.Kernels[i+1].Name}
		}
		cost := int64(float64(k.DynInstrs) * o.PerInstrNS)
		if cost < 1 {
			cost = 1
		}
		node.Platforms = []appmodel.PlatformSpec{{
			Name: "cpu", RunFunc: k.Name, CostNS: cost, ComputeNS: cost,
		}}
		if err := registerInterpRunFunc(o.Registry, o.SharedObject, k.Name, res.Module); err != nil {
			return nil, nil, err
		}

		if o.Recognize && k.Hot {
			if rec, ok := recognize(res, k, &node, o); ok {
				recs = append(recs, rec)
			}
		}
		spec.DAG[k.Name] = node
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("outliner: generated DAG invalid: %w", err)
	}
	return spec, recs, nil
}

func f64Bytes(xs []float64) []byte {
	if len(xs) == 0 {
		return nil
	}
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// registerInterpRunFunc installs a runfunc that executes the outlined
// IR function against the application instance's memory: the global
// arrays are viewed directly as []float64, so kernel writes flow to
// successor tasks through shared memory exactly like the hand-written
// applications. Duplicate registration (same module/function) is
// tolerated to allow regenerating a spec.
func registerInterpRunFunc(reg *kernels.Registry, so, fn string, m *ir.Module) error {
	f := func(ctx *kernels.Context) error {
		env := &tracer.Env{Globals: map[string][]float64{}}
		// Bind every argument variable; the outlined function touches
		// only its analysed globals, which are exactly the node
		// arguments.
		for _, name := range ctx.Args {
			v, err := ctx.Mem.Lookup(name)
			if err != nil {
				return err
			}
			env.Globals[name] = v.Float64s()
		}
		ip, err := tracer.New(m, env, tracer.Options{})
		if err != nil {
			return err
		}
		_, err = ip.Call(fn)
		return err
	}
	if err := reg.Register(so, fn, f); err != nil {
		// Re-registration with an identical symbol is fine in practice
		// (spec regenerated); surface only genuinely new conflicts.
		if !strings.Contains(err.Error(), "duplicate symbol") {
			return err
		}
	}
	return nil
}

// --- hash-based kernel recognition -------------------------------------------

// recognize matches a kernel group against the reference table and, on
// a hit, rewrites the node's platform entries to the optimised CPU
// implementation and the FFT accelerator — "the platform entries in
// the DAG JSON were then automatically redirected ... through use of
// the shared object key".
func recognize(res *Result, k Kernel, node *appmodel.NodeSpec, o SpecOptions) (Recognition, bool) {
	table := referenceTable()
	kind, ok := table[k.Hash]
	if !ok {
		return Recognition{}, false
	}
	roles, err := classifyOperands(res.Module, k)
	if err != nil {
		return Recognition{}, false
	}
	n := roles.n
	if !kernels.IsPow2(n) {
		return Recognition{}, false
	}

	optName := "opt_" + k.Name
	accelName := "accel_" + k.Name
	var optCost int64
	var kernelKey string
	switch kind {
	case "dft":
		kernelKey = platform.KFFT
		optCost = platform.CPUBaseNS(platform.KFFTOpt, n)
		registerOptRunFunc(o.Registry, o.SharedObject, optName, roles, false)
		registerOptRunFunc(o.Registry, kernels.SharedObjectFFTAccel, accelName, roles, false)
	case "corr_idft":
		kernelKey = platform.KIFFT
		optCost = platform.CPUBaseNS(platform.KFFTOpt, n) + platform.CPUBaseNS(platform.KVecMulConj, n)
		registerOptRunFunc(o.Registry, o.SharedObject, optName, roles, true)
		registerOptRunFunc(o.Registry, kernels.SharedObjectFFTAccel, accelName, roles, true)
	default:
		return Recognition{}, false
	}

	cfg, err := platform.ZCU102(1, 1)
	if err != nil {
		return Recognition{}, false
	}
	// Per direction: the re and im arrays, packed to the accelerator's
	// single-precision wire format by the DMA interface.
	transfer := 2 * n * 4
	accelCost, okAccel := platform.AccelCostNS(kernelKey, n, transfer, cfg.DMA)
	accelCompute, _ := platform.AccelComputeNS(kernelKey, n)

	node.Platforms = []appmodel.PlatformSpec{
		{Name: "cpu", RunFunc: optName, CostNS: optCost, ComputeNS: optCost},
	}
	if okAccel {
		node.Platforms = append(node.Platforms, appmodel.PlatformSpec{
			Name: "fft", RunFunc: accelName, SharedObject: kernels.SharedObjectFFTAccel,
			CostNS: accelCost, ComputeNS: accelCompute,
		})
		node.TransferBytes = transfer
	}
	return Recognition{Node: k.Name, Kind: kind, N: n}, true
}

// operandRoles identifies the complex-array operands of a recognised
// transform by the front end's _re/_im naming convention, in order of
// first appearance: inputs (read-only pairs) then outputs (written
// pairs).
type operandRoles struct {
	n       int
	inputs  [][2]string // pairs of (re, im) array names, appearance order
	outputs [][2]string
}

func classifyOperands(m *ir.Module, k Kernel) (operandRoles, error) {
	written := map[string]bool{}
	for _, w := range k.Writes {
		written[w] = true
	}
	pairUp := func(names []string) ([][2]string, error) {
		re := map[string]string{}
		im := map[string]string{}
		var order []string
		for _, name := range names {
			base := ""
			switch {
			case strings.HasSuffix(name, "_re"):
				base = strings.TrimSuffix(name, "_re")
				re[base] = name
			case strings.HasSuffix(name, "_im"):
				base = strings.TrimSuffix(name, "_im")
				im[base] = name
			default:
				continue
			}
			found := false
			for _, o := range order {
				if o == base {
					found = true
				}
			}
			if !found {
				order = append(order, base)
			}
		}
		var pairs [][2]string
		for _, base := range order {
			r, okR := re[base]
			i, okI := im[base]
			if !okR || !okI {
				return nil, fmt.Errorf("outliner: array pair %q incomplete", base)
			}
			pairs = append(pairs, [2]string{r, i})
		}
		return pairs, nil
	}
	var inNames, outNames []string
	n := 0
	for _, g := range k.Globals {
		glob := m.Globals[g]
		if glob == nil || glob.Elems <= 1 {
			continue
		}
		if written[g] {
			outNames = append(outNames, g)
		} else {
			inNames = append(inNames, g)
		}
		if glob.Elems > n {
			n = glob.Elems
		}
	}
	ins, err := pairUp(inNames)
	if err != nil {
		return operandRoles{}, err
	}
	outs, err := pairUp(outNames)
	if err != nil {
		return operandRoles{}, err
	}
	if len(ins) == 0 || len(outs) == 0 {
		return operandRoles{}, fmt.Errorf("outliner: transform operands not identified")
	}
	return operandRoles{n: n, inputs: ins, outputs: outs}, nil
}

// registerOptRunFunc installs the optimised replacement: a direct FFT
// (or conjugate-multiply + inverse FFT for the fused correlator) over
// the recognised kernel's re/im arrays. Semantically equivalent to the
// naive loops it replaces; the emulator's timing model charges the
// optimised cost.
func registerOptRunFunc(reg *kernels.Registry, so, name string, roles operandRoles, corr bool) {
	f := func(ctx *kernels.Context) error {
		view := func(arr string) ([]float64, error) {
			v, err := ctx.Mem.Lookup(arr)
			if err != nil {
				return nil, err
			}
			return v.Float64s(), nil
		}
		loadPair := func(p [2]string) ([]complex128, error) {
			re, err := view(p[0])
			if err != nil {
				return nil, err
			}
			im, err := view(p[1])
			if err != nil {
				return nil, err
			}
			if len(re) < roles.n || len(im) < roles.n {
				return nil, fmt.Errorf("outliner: %s: operand arrays shorter than n=%d", name, roles.n)
			}
			buf := make([]complex128, roles.n)
			for i := range buf {
				buf[i] = complex(re[i], im[i])
			}
			return buf, nil
		}
		storePair := func(p [2]string, buf []complex128) error {
			re, err := view(p[0])
			if err != nil {
				return err
			}
			im, err := view(p[1])
			if err != nil {
				return err
			}
			for i, c := range buf {
				re[i] = real(c)
				im[i] = imag(c)
			}
			return nil
		}

		if !corr {
			x, err := loadPair(roles.inputs[0])
			if err != nil {
				return err
			}
			if err := kernels.FFT64InPlace(x); err != nil {
				return err
			}
			return storePair(roles.outputs[0], x)
		}
		if len(roles.inputs) < 2 {
			return fmt.Errorf("outliner: %s: correlator needs two input pairs", name)
		}
		a, err := loadPair(roles.inputs[0])
		if err != nil {
			return err
		}
		b, err := loadPair(roles.inputs[1])
		if err != nil {
			return err
		}
		for i := range a {
			a[i] *= complex(real(b[i]), -imag(b[i]))
		}
		if err := kernels.IFFT64InPlace(a); err != nil {
			return err
		}
		return storePair(roles.outputs[0], a)
	}
	_ = reg.Register(so, name, f) // tolerate regeneration duplicates
}
