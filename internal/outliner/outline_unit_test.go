package outliner

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/tracer"
)

// buildCondExitFunc hand-builds a function whose region [1,3) contains
// a loop whose conditional branch exits the region directly (no join
// block inside), exercising outlineGroup's synthetic-return path.
//
//	b0: g[0]=0              (region A)
//	b1: cond = g[0] < 5 ; condbr cond -> b2 else b3   (region B)
//	b2: g[0]++ ; br b1                                (region B)
//	b3: ret g[0]            (region C)
func buildCondExitFunc(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("condexit")
	if err := m.AddGlobal(&ir.Global{Name: "g", Elems: 1}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", NumRegs: 5}
	f.Blocks = []*ir.Block{
		{Label: "init", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 0},
			{Op: ir.OpConst, Dst: 1, Imm: 0},
			{Op: ir.OpStore, Sym: "g", A: 0, B: 1},
		}, Term: ir.Terminator{Kind: ir.TermBr, Then: 1}},
		{Label: "cond", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 0},
			{Op: ir.OpLoad, Dst: 1, Sym: "g", A: 0},
			{Op: ir.OpConst, Dst: 2, Imm: 5},
			{Op: ir.OpLt, Dst: 3, A: 1, B: 2},
		}, Term: ir.Terminator{Kind: ir.TermCondBr, Cond: 3, Then: 2, Else: 3}},
		{Label: "body", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 0},
			{Op: ir.OpLoad, Dst: 1, Sym: "g", A: 0},
			{Op: ir.OpConst, Dst: 2, Imm: 1},
			{Op: ir.OpAdd, Dst: 4, A: 1, B: 2},
			{Op: ir.OpStore, Sym: "g", A: 0, B: 4},
		}, Term: ir.Terminator{Kind: ir.TermBr, Then: 1}},
		{Label: "exit", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 0},
			{Op: ir.OpLoad, Dst: 1, Sym: "g", A: 0},
		}, Term: ir.Terminator{Kind: ir.TermRet, Cond: 1}},
	}
	f.Regions = []ir.Region{
		{Start: 0, End: 1, Hint: "init"},
		{Start: 1, End: 3, Hint: "loop"},
		{Start: 3, End: 4, Hint: "exit"},
	}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOutlineConditionalExit(t *testing.T) {
	m := buildCondExitFunc(t)
	// Monolithic ground truth.
	_, want, err := tracer.Run(m, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want != 5 {
		t.Fatalf("ground truth %v, want 5", want)
	}
	res, err := Convert(m, Options{HotCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The loop region must be hot and contain a synthetic return block
	// (its conditional branch exits the region directly).
	var loopFn string
	for _, k := range res.Kernels {
		if k.Hot {
			loopFn = k.Name
		}
	}
	if loopFn == "" {
		t.Fatal("loop region not detected as hot")
	}
	f := res.Module.Funcs[loopFn]
	foundSynthetic := false
	for _, b := range f.Blocks {
		if b.Label == "outlined.ret" {
			foundSynthetic = true
		}
	}
	if !foundSynthetic {
		t.Fatalf("outlined loop lacks the synthetic return block: %v", f)
	}
	// Refactored module still computes 5.
	_, got, err := tracer.Run(res.Module, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("outlined result %v != %v", got, want)
	}
}

func TestOutlineRejectsEscapingBranch(t *testing.T) {
	m := buildCondExitFunc(t)
	// A region cut through the middle of the loop makes its back edge
	// escape; outlining must refuse.
	f := m.Funcs["main"]
	f.Regions = []ir.Region{
		{Start: 0, End: 2, Hint: "bad-cut"}, // contains cond but not body
		{Start: 2, End: 4, Hint: "rest"},
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, err := Convert(m, Options{HotCount: 3})
	if err == nil || !strings.Contains(err.Error(), "escapes group") {
		t.Fatalf("want escaping-branch error, got %v", err)
	}
}

func TestConvertErrors(t *testing.T) {
	m := ir.NewModule("x")
	f := &ir.Func{Name: "notmain", NumRegs: 1,
		Blocks: []*ir.Block{{Term: ir.Terminator{Kind: ir.TermRet, Cond: -1}}}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(m, Options{}); err == nil {
		t.Fatal("missing main accepted")
	}
	if _, err := Convert(m, Options{MainFn: "notmain"}); err == nil {
		t.Fatal("region-less main accepted")
	}
}
