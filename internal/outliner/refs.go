package outliner

import (
	"fmt"
	"sync"

	"repro/internal/minic"
)

// The recognition table is built by compiling reference MiniC
// implementations of the kernels the toolchain knows how to optimise
// (the naive DFT and the fused conjugate-multiply inverse DFT of the
// radar correlator), outlining them, and recording the structural
// hashes of the resulting hot kernels. A user kernel is recognised
// when its loop is structurally identical modulo renaming — the
// paper's "fairly strict assumption that it is possible to recognize a
// kernel operationally in an automatic compilation process with no
// human input".

// dftLoop renders the canonical naive forward-DFT double loop over
// arrays named <in>_re/_im into <out>_re/_im, using the given loop
// variable identifiers. Both the reference programs and the
// demonstration application render their loops through this template,
// the way the paper's authors recognised their own application's DFT.
func dftLoop(k, t, ang, wr, wi, sr, si, n, in, out string) string {
	return fmt.Sprintf(`for (%[1]s = 0; %[1]s < %[8]s; %[1]s = %[1]s + 1) {
    %[6]s = 0; %[7]s = 0;
    for (%[2]s = 0; %[2]s < %[8]s; %[2]s = %[2]s + 1) {
      %[3]s = 0 - 6.283185307179586 * %[1]s * %[2]s / %[8]s;
      %[4]s = cos(%[3]s); %[5]s = sin(%[3]s);
      %[6]s = %[6]s + %[9]s_re[%[2]s] * %[4]s - %[9]s_im[%[2]s] * %[5]s;
      %[7]s = %[7]s + %[9]s_re[%[2]s] * %[5]s + %[9]s_im[%[2]s] * %[4]s;
    }
    %[10]s_re[%[1]s] = %[6]s; %[10]s_im[%[1]s] = %[7]s;
  }`, k, t, ang, wr, wi, sr, si, n, in, out)
}

// corrIDFTLoop renders the fused correlator: the inverse DFT of
// A .* conj(B), accumulating the product on the fly — the single
// double loop Case Study 4's application implements its IFFT stage as.
func corrIDFTLoop(k, t, ang, wr, wi, sr, si, pr, pi, n, a, b, out string) string {
	return fmt.Sprintf(`for (%[1]s = 0; %[1]s < %[10]s; %[1]s = %[1]s + 1) {
    %[6]s = 0; %[7]s = 0;
    for (%[2]s = 0; %[2]s < %[10]s; %[2]s = %[2]s + 1) {
      %[8]s = %[11]s_re[%[2]s] * %[12]s_re[%[2]s] + %[11]s_im[%[2]s] * %[12]s_im[%[2]s];
      %[9]s = %[11]s_im[%[2]s] * %[12]s_re[%[2]s] - %[11]s_re[%[2]s] * %[12]s_im[%[2]s];
      %[3]s = 6.283185307179586 * %[1]s * %[2]s / %[10]s;
      %[4]s = cos(%[3]s); %[5]s = sin(%[3]s);
      %[6]s = %[6]s + %[8]s * %[4]s - %[9]s * %[5]s;
      %[7]s = %[7]s + %[8]s * %[5]s + %[9]s * %[4]s;
    }
    %[13]s_re[%[1]s] = %[6]s / %[10]s; %[13]s_im[%[1]s] = %[7]s / %[10]s;
  }`, k, t, ang, wr, wi, sr, si, pr, pi, n, a, b, out)
}

// referenceDFTProgram is the table-building program for the forward
// DFT (small n keeps table construction fast; the hash is independent
// of n).
func referenceDFTProgram() string {
	return fmt.Sprintf(`
float n = 32;
float x_re[32]; float x_im[32];
float X_re[32]; float X_im[32];
float main() {
  float k; float t; float ang; float wr; float wi; float sr; float si;
  %s
  return 0;
}
`, dftLoop("k", "t", "ang", "wr", "wi", "sr", "si", "n", "x", "X"))
}

func referenceCorrIDFTProgram() string {
	return fmt.Sprintf(`
float n = 32;
float A_re[32]; float A_im[32];
float B_re[32]; float B_im[32];
float C_re[32]; float C_im[32];
float main() {
  float k; float t; float ang; float wr; float wi; float sr; float si; float pr; float pi;
  %s
  return 0;
}
`, corrIDFTLoop("k", "t", "ang", "wr", "wi", "sr", "si", "pr", "pi", "n", "A", "B", "C"))
}

var (
	refOnce  sync.Once
	refTable map[uint64]string
	refErr   error
)

// referenceTable lazily builds hash -> kernel-kind.
func referenceTable() map[uint64]string {
	refOnce.Do(func() {
		refTable = map[uint64]string{}
		for _, ref := range []struct {
			src, kind string
		}{
			{referenceDFTProgram(), "dft"},
			{referenceCorrIDFTProgram(), "corr_idft"},
		} {
			m, err := minic.Compile(ref.src, "ref_"+ref.kind)
			if err != nil {
				refErr = fmt.Errorf("outliner: compiling %s reference: %w", ref.kind, err)
				return
			}
			res, err := Convert(m, Options{HotCount: 8})
			if err != nil {
				refErr = fmt.Errorf("outliner: outlining %s reference: %w", ref.kind, err)
				return
			}
			found := false
			for _, k := range res.Kernels {
				if k.Hot {
					refTable[k.Hash] = ref.kind
					found = true
					break
				}
			}
			if !found {
				refErr = fmt.Errorf("outliner: %s reference produced no hot kernel", ref.kind)
			}
		}
	})
	if refErr != nil {
		panic(refErr)
	}
	return refTable
}

// MonolithicRangeDetection generates the unlabeled, monolithic C
// application Case Study 4 converts: range detection written as one
// main() with six loops — reading the received and reference
// waveforms (file-I/O-style copies), two naive DFTs, the fused
// correlator inverse DFT, and the output/peak-search pass. The
// toolchain must detect exactly those six kernels ("among the six
// kernels that are currently detected, three of them consist of heavy
// file I/O, along with two kernels consisting of two FFTs and one
// kernel consisting of the IFFT").
//
// The lag target is embedded in the synthetic input so functional
// correctness is checkable end to end.
func MonolithicRangeDetection(n, lag int) string {
	return fmt.Sprintf(`
// Monolithic range detection, unlabeled C (MiniC subset).
float n = %[1]d;
float lag_true = %[2]d;
// Raw capture buffers ("file" contents).
float file_rx_re[%[1]d]; float file_rx_im[%[1]d];
float file_ref_re[%[1]d]; float file_ref_im[%[1]d];
// Working arrays.
float rx_re[%[1]d]; float rx_im[%[1]d];
float ref_re[%[1]d]; float ref_im[%[1]d];
float RX_re[%[1]d]; float RX_im[%[1]d];
float REF_re[%[1]d]; float REF_im[%[1]d];
float corr_re[%[1]d]; float corr_im[%[1]d];
float out_mag[%[1]d];
float peak_index = 0;
float peak_val = 0;

float main() {
  float i; float k; float t; float ang; float wr; float wi;
  float sr; float si; float pr; float pi; float ph; float m;

  // Synthesise the "file" contents: reference chirp and the delayed
  // return (in a real run these loops stream from disk, which is why
  // the detector classifies them as heavy I/O kernels).
  for (i = 0; i < n; i = i + 1) {
    ph = 3.141592653589793 * 0.5 * (i * i / n - i);
    file_ref_re[i] = cos(ph);
    file_ref_im[i] = sin(ph);
    file_rx_re[i] = 0;
    file_rx_im[i] = 0;
  }
  for (i = 0; i < n; i = i + 1) {
    if (i >= lag_true) {
      ph = 3.141592653589793 * 0.5 * ((i - lag_true) * (i - lag_true) / n - (i - lag_true));
      file_rx_re[i] = cos(ph);
      file_rx_im[i] = sin(ph);
    }
    rx_re[i] = file_rx_re[i];
    rx_im[i] = file_rx_im[i];
    ref_re[i] = file_ref_re[i];
    ref_im[i] = file_ref_im[i];
  }

  // Naive forward DFT of the received signal.
  %[3]s

  // Naive forward DFT of the reference chirp.
  %[4]s

  // Correlator: inverse DFT of RX .* conj(REF), fused in one loop.
  %[5]s

  // Write the magnitude "file" and track the correlation peak.
  for (i = 0; i < n; i = i + 1) {
    m = corr_re[i] * corr_re[i] + corr_im[i] * corr_im[i];
    out_mag[i] = sqrt(m);
    if (m > peak_val) {
      peak_val = m;
      peak_index = i;
    }
  }

  return peak_index;
}
`, n, lag,
		dftLoop("k", "t", "ang", "wr", "wi", "sr", "si", "n", "rx", "RX"),
		dftLoop("k", "t", "ang", "wr", "wi", "sr", "si", "n", "ref", "REF"),
		corrIDFTLoop("k", "t", "ang", "wr", "wi", "sr", "si", "pr", "pi", "n", "RX", "REF", "corr"))
}
