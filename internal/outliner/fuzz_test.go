package outliner_test

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/minic/minicgen"
)

// FuzzConvert drives the whole conversion back end — trace, kernel
// detection, outlining, memory analysis, DAG generation — with
// generator shapes picked by the fuzzer. The generator's contract is
// that every program it emits survives the full pipeline, so any
// Build error here is a real finding in minic, the outliner, or the
// generator itself, not an "invalid input" to be skipped.
func FuzzConvert(f *testing.F) {
	f.Add(int64(0), 8, 3, 2, 3, 2, 64, 3)
	f.Add(int64(1), 1, 0, 1, 0, 1, 8, 1)
	f.Add(int64(7), 64, 64, 3, 8, 4, 256, 6)
	f.Add(int64(42), 12, 1, 3, 5, 4, 16, 2)
	f.Add(int64(-9), 0, -1, 0, -1, 0, 0, 0)
	f.Fuzz(func(t *testing.T, seed int64, regions, kern, depth, helpers, callDepth, arrLen, fanIn int) {
		cfg := minicgen.Config{
			Regions:      regions,
			Kernels:      kern,
			MaxLoopDepth: depth,
			Helpers:      helpers,
			MaxCallDepth: callDepth,
			MaxArrayLen:  arrLen,
			FanIn:        fanIn,
		}
		p := minicgen.Generate(seed, cfg)
		spec, res, err := p.Build(kernels.NewRegistry())
		if err != nil {
			t.Fatalf("generated program failed conversion: %v\nsource:\n%s", err, p.Source())
		}
		if spec.TaskCount() < 1 {
			t.Fatalf("conversion produced an empty DAG\nsource:\n%s", p.Source())
		}
		if _, err := spec.TopoOrder(); err != nil {
			t.Fatalf("generated spec is not a DAG: %v", err)
		}
		// The refactored module must still be valid IR.
		if err := res.Module.Finalize(); err != nil {
			t.Fatalf("outlined module fails validation: %v", err)
		}
		// Profile accounting: group costs are non-negative and never
		// exceed the tracing run's total.
		var sum int64
		for _, k := range res.Kernels {
			if k.DynInstrs < 0 {
				t.Fatalf("kernel %s has negative dynamic cost %d", k.Name, k.DynInstrs)
			}
			sum += k.DynInstrs
		}
		if sum > res.TotalDynInstrs {
			t.Fatalf("group costs sum to %d > traced total %d", sum, res.TotalDynInstrs)
		}
	})
}
