package outliner

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/tracer"
)

const testN = 64
const testLag = 9

func convertRangeDetection(t *testing.T) (*Result, float64) {
	t.Helper()
	src := MonolithicRangeDetection(testN, testLag)
	m, err := minic.Compile(src, "rd_mono")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Ground truth: run the monolithic program directly.
	_, want, err := tracer.Run(m, "main", nil)
	if err != nil {
		t.Fatalf("monolithic run: %v", err)
	}
	res, err := Convert(m, Options{})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	return res, want
}

func TestMonolithicProgramFindsLag(t *testing.T) {
	_, want := convertRangeDetection(t)
	if int(want) != testLag {
		t.Fatalf("monolithic range detection found lag %v, want %d", want, testLag)
	}
}

// TestSixKernelsDetected pins Case Study 4's detection outcome: "among
// the six kernels that are currently detected, three of them consist
// of heavy file I/O, along with two kernels consisting of two FFTs and
// one kernel consisting of the IFFT".
func TestSixKernelsDetected(t *testing.T) {
	res, _ := convertRangeDetection(t)
	var hot []Kernel
	for _, k := range res.Kernels {
		if k.Hot {
			hot = append(hot, k)
		}
	}
	if len(hot) != 6 {
		var names []string
		for _, k := range hot {
			names = append(names, fmt.Sprintf("%s%v", k.Name, k.Hints))
		}
		t.Fatalf("detected %d kernels, want 6: %v", len(hot), names)
	}
	table := referenceTable()
	var dft, corr, io int
	for _, k := range hot {
		switch table[k.Hash] {
		case "dft":
			dft++
		case "corr_idft":
			corr++
		default:
			io++
		}
	}
	if dft != 2 || corr != 1 || io != 3 {
		t.Fatalf("kernel classes: %d dft, %d corr_idft, %d unrecognised; want 2/1/3", dft, corr, io)
	}
}

// TestOutlinedPreservesSemantics: the refactored module (main as a
// sequence of outlined calls) computes the same result as the
// original.
func TestOutlinedPreservesSemantics(t *testing.T) {
	res, want := convertRangeDetection(t)
	_, got, err := tracer.Run(res.Module, "main", nil)
	if err != nil {
		t.Fatalf("outlined run: %v", err)
	}
	if got != want {
		t.Fatalf("outlined result %v != monolithic %v", got, want)
	}
}

func TestKernelProfilesPopulated(t *testing.T) {
	res, _ := convertRangeDetection(t)
	var ioDyn, dftDyn int64
	table := referenceTable()
	for _, k := range res.Kernels {
		if !k.Hot {
			continue
		}
		if k.DynInstrs <= 0 {
			t.Fatalf("kernel %s has no dynamic profile", k.Name)
		}
		if table[k.Hash] == "dft" {
			dftDyn = k.DynInstrs
		} else if len(k.Hints) > 0 && ioDyn == 0 {
			ioDyn = k.DynInstrs
		}
	}
	// The O(n^2) DFT must dwarf the O(n) copy loops.
	if dftDyn < 10*ioDyn {
		t.Fatalf("DFT dyn instrs %d not much larger than IO %d", dftDyn, ioDyn)
	}
	if res.TotalDynInstrs <= 0 {
		t.Fatal("total dynamic instruction count missing")
	}
}

func TestMemoryAnalysis(t *testing.T) {
	res, _ := convertRangeDetection(t)
	table := referenceTable()
	for _, k := range res.Kernels {
		if table[k.Hash] != "dft" {
			continue
		}
		readsArr := map[string]bool{}
		for _, r := range k.Reads {
			readsArr[r] = true
		}
		writes := map[string]bool{}
		for _, w := range k.Writes {
			writes[w] = true
		}
		// The first DFT reads rx_re/rx_im and writes RX_re/RX_im.
		if !(writes["RX_re"] && writes["RX_im"]) && !(writes["REF_re"] && writes["REF_im"]) {
			t.Fatalf("DFT kernel %s writes %v; expected RX_* or REF_*", k.Name, k.Writes)
		}
		break
	}
}

func TestStructuralHashInvariance(t *testing.T) {
	// Two structurally identical programs over renamed arrays hash
	// equal; the inverse transform hashes differently.
	compileHot := func(src string) uint64 {
		m, err := minic.Compile(src, "h")
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		res, err := Convert(m, Options{HotCount: 8})
		if err != nil {
			t.Fatalf("convert: %v", err)
		}
		for _, k := range res.Kernels {
			if k.Hot {
				return k.Hash
			}
		}
		t.Fatal("no hot kernel")
		return 0
	}
	mk := func(in, out string) string {
		return fmt.Sprintf(`
float n = 16;
float %[1]s_re[16]; float %[1]s_im[16];
float %[2]s_re[16]; float %[2]s_im[16];
float main() {
  float k; float t; float ang; float wr; float wi; float sr; float si;
  %[3]s
  return 0;
}`, in, out, dftLoop("k", "t", "ang", "wr", "wi", "sr", "si", "n", in, out))
	}
	h1 := compileHot(mk("p", "q"))
	h2 := compileHot(mk("alpha", "beta"))
	if h1 != h2 {
		t.Fatalf("renaming changed structural hash: %#x vs %#x", h1, h2)
	}
	// The reference DFT hash matches too (table hit).
	if referenceTable()[h1] != "dft" {
		t.Fatalf("renamed DFT not recognised")
	}
}

func TestGenerateSpecFunctional(t *testing.T) {
	res, want := convertRangeDetection(t)
	reg := kernels.NewRegistry()
	spec, recs, err := GenerateSpec(res, SpecOptions{
		AppName:  "rd_auto",
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recognition ran while disabled: %v", recs)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.TaskCount() != len(res.Kernels) {
		t.Fatalf("spec has %d nodes for %d kernels", spec.TaskCount(), len(res.Kernels))
	}
	// Execute the generated DAG sequentially through its runfuncs.
	got := runSpecSequentially(t, spec, reg, res)
	if int(got) != int(want) {
		t.Fatalf("auto-DAG peak index %v != monolithic %v", got, want)
	}
}

func TestGenerateSpecWithRecognition(t *testing.T) {
	res, want := convertRangeDetection(t)
	reg := kernels.NewRegistry()
	spec, recs, err := GenerateSpec(res, SpecOptions{
		AppName:   "rd_auto_opt",
		Registry:  reg,
		Recognize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recognised %d kernels, want 3 (two DFTs + corr IDFT): %+v", len(recs), recs)
	}
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
		if r.N != testN {
			t.Fatalf("recognition inferred n=%d, want %d", r.N, testN)
		}
	}
	if kinds["dft"] != 2 || kinds["corr_idft"] != 1 {
		t.Fatalf("recognition kinds %v", kinds)
	}
	// Substituted nodes carry accelerator platform entries with lower
	// annotated cost than the naive loops.
	for _, r := range recs {
		node := spec.DAG[r.Node]
		if _, ok := node.PlatformFor("fft"); !ok {
			t.Fatalf("recognised node %s lacks accelerator platform", r.Node)
		}
		cpu, _ := node.PlatformFor("cpu")
		if !strings.HasPrefix(cpu.RunFunc, "opt_") {
			t.Fatalf("recognised node %s cpu runfunc %q not optimised", r.Node, cpu.RunFunc)
		}
	}
	// And the optimised pipeline still finds the target.
	got := runSpecSequentially(t, spec, reg, res)
	if int(got) != int(want) {
		t.Fatalf("optimised auto-DAG peak index %v != monolithic %v", got, want)
	}
}

// runSpecSequentially executes a generated spec's nodes in topological
// order against a fresh instance memory and returns the detected peak
// index (read from the promoted main_... peak variable).
func runSpecSequentially(t *testing.T, spec *appmodel.AppSpec, reg *kernels.Registry, res *Result) float64 {
	t.Helper()
	mem, err := appmodel.NewMemory(spec)
	if err != nil {
		t.Fatal(err)
	}
	order, err := spec.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		node := spec.DAG[name]
		p := node.Platforms[0]
		so := p.SharedObject
		if so == "" {
			so = spec.SharedObject
		}
		f, err := reg.Lookup(so, p.RunFunc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := f(&kernels.Context{Mem: mem, Args: node.Arguments, Node: name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	v, err := mem.Lookup("peak_index")
	if err != nil {
		t.Fatal(err)
	}
	return v.Float64s()[0]
}
