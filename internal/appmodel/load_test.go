package appmodel

import (
	"os"
	"path/filepath"
	"testing"
)

func writeApp(t *testing.T, dir, file, appName string) {
	t.Helper()
	s := &AppSpec{
		AppName:   appName,
		Variables: map[string]VariableSpec{"x": {Bytes: 4}},
		DAG: map[string]NodeSpec{
			"n": {Arguments: []string{"x"},
				Platforms: []PlatformSpec{{Name: "cpu", RunFunc: "f", CostNS: 1}}},
		},
	}
	data, err := s.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	writeApp(t, dir, "a.json", "alpha")
	spec, err := LoadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.AppName != "alpha" {
		t.Fatalf("AppName = %q", spec.AppName)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeApp(t, dir, "a.json", "alpha")
	writeApp(t, dir, "b.json", "beta")
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs["alpha"] == nil || specs["beta"] == nil {
		t.Fatalf("specs = %v", specs)
	}
	// Duplicate AppName across files.
	writeApp(t, dir, "c.json", "alpha")
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("duplicate AppName accepted")
	}
	if _, err := LoadDir(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}
