// Package appmodel implements the framework-compatible representation
// of user applications: the JSON schema of the paper's Listing 1
// (AppName / SharedObject / Variables / DAG), validation of the
// task-graph structure, and the per-instance variable memory that the
// application handler allocates and initialises.
//
// In the paper each application ships as a shared object of kernels
// plus a JSON DAG whose nodes name `runfunc` symbols resolved with
// dlsym. Here the shared object is replaced by a named kernel registry
// (package kernels); the JSON schema is preserved field-for-field.
package appmodel

import (
	"encoding/json"
	"fmt"
	"sort"
)

// VariableSpec describes one program variable exactly as in Listing 1:
// its representation size, whether it is a pointer, how much heap the
// pointer target needs, and the little-endian initial bytes.
type VariableSpec struct {
	// Bytes is the size of the variable's own storage (4 for int32,
	// 8 for a pointer on 64-bit systems, ...).
	Bytes int `json:"bytes"`
	// IsPtr flags pointer-typed variables that own a heap allocation.
	IsPtr bool `json:"is_ptr"`
	// PtrAllocBytes is the size of the heap block allocated for a
	// pointer variable at initialisation time.
	PtrAllocBytes int `json:"ptr_alloc_bytes"`
	// Val holds initial bytes, little-endian. For scalar variables it
	// initialises the variable storage; for pointer variables it
	// initialises the head of the heap block.
	Val []byte `json:"val"`
}

// PlatformSpec is one supported execution platform for a DAG node: the
// PE kind it runs on ("cpu", "fft", ...), the kernel symbol to invoke,
// an optional per-platform shared object override (the paper's
// fft_accel.so mechanism), and the execution-time cost annotation the
// schedulers (MET/EFT) consult.
type PlatformSpec struct {
	Name         string `json:"name"`
	RunFunc      string `json:"runfunc"`
	SharedObject string `json:"shared_object,omitempty"`
	// CostNS is the profiled execution-time cost of this node on this
	// platform in nanoseconds. The paper's JSON carries "execution
	// time cost on supported platforms"; MET and EFT read it. For
	// accelerator platforms it includes the nominal (uncontended) DMA
	// transfers.
	CostNS int64 `json:"cost_ns,omitempty"`
	// ComputeNS is the compute-only portion of CostNS. For CPU
	// platforms it equals CostNS; for accelerators the resource
	// manager re-derives the transfer component at dispatch time,
	// when the manager-thread contention factor is known.
	ComputeNS int64 `json:"compute_ns,omitempty"`
}

// NodeSpec is one task node of the application DAG.
type NodeSpec struct {
	Arguments    []string       `json:"arguments"`
	Predecessors []string       `json:"predecessors"`
	Successors   []string       `json:"successors"`
	Platforms    []PlatformSpec `json:"platforms"`
	// TransferBytes is the node's communication cost annotation (the
	// paper's "data transfer volumes"): the bytes a resource manager
	// moves per direction when the node runs on an accelerator. When
	// zero, the sum of the pointer arguments' allocations is used.
	TransferBytes int `json:"transfer_bytes,omitempty"`
}

// AppSpec is the archetypal instance of an application: the parsed
// JSON from which the application handler instantiates copies.
type AppSpec struct {
	AppName      string                  `json:"AppName"`
	SharedObject string                  `json:"SharedObject"`
	Variables    map[string]VariableSpec `json:"Variables"`
	DAG          map[string]NodeSpec     `json:"DAG"`
}

// ParseJSON decodes and validates an application JSON document.
func ParseJSON(data []byte) (*AppSpec, error) {
	var s AppSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("appmodel: decoding application JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// MarshalIndentJSON renders the spec as the canonical JSON document.
func (s *AppSpec) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the structural invariants the application handler
// relies on: every referenced variable is declared, edge lists are
// mutually consistent, every node has at least one platform with a
// runfunc, and the graph is acyclic with at least one head node.
func (s *AppSpec) Validate() error {
	if s.AppName == "" {
		return fmt.Errorf("appmodel: application has no AppName")
	}
	if len(s.DAG) == 0 {
		return fmt.Errorf("appmodel: %s: empty DAG", s.AppName)
	}
	for name, v := range s.Variables {
		if v.Bytes <= 0 {
			return fmt.Errorf("appmodel: %s: variable %q has non-positive size %d", s.AppName, name, v.Bytes)
		}
		if v.IsPtr && v.PtrAllocBytes <= 0 {
			return fmt.Errorf("appmodel: %s: pointer variable %q has no allocation size", s.AppName, name)
		}
		if !v.IsPtr && v.PtrAllocBytes != 0 {
			return fmt.Errorf("appmodel: %s: non-pointer variable %q declares ptr_alloc_bytes", s.AppName, name)
		}
		limit := v.Bytes
		if v.IsPtr {
			limit = v.PtrAllocBytes
		}
		if len(v.Val) > limit {
			return fmt.Errorf("appmodel: %s: variable %q initialiser (%d bytes) exceeds storage (%d bytes)",
				s.AppName, name, len(v.Val), limit)
		}
	}
	for name, n := range s.DAG {
		for _, arg := range n.Arguments {
			if _, ok := s.Variables[arg]; !ok {
				return fmt.Errorf("appmodel: %s: node %q references undeclared variable %q", s.AppName, name, arg)
			}
		}
		if len(n.Platforms) == 0 {
			return fmt.Errorf("appmodel: %s: node %q supports no platforms", s.AppName, name)
		}
		for _, p := range n.Platforms {
			if p.Name == "" || p.RunFunc == "" {
				return fmt.Errorf("appmodel: %s: node %q has a platform without name or runfunc", s.AppName, name)
			}
		}
		for _, pred := range n.Predecessors {
			pn, ok := s.DAG[pred]
			if !ok {
				return fmt.Errorf("appmodel: %s: node %q lists unknown predecessor %q", s.AppName, name, pred)
			}
			if !contains(pn.Successors, name) {
				return fmt.Errorf("appmodel: %s: edge %s->%s missing from %s's successors", s.AppName, pred, name, pred)
			}
		}
		for _, succ := range n.Successors {
			sn, ok := s.DAG[succ]
			if !ok {
				return fmt.Errorf("appmodel: %s: node %q lists unknown successor %q", s.AppName, name, succ)
			}
			if !contains(sn.Predecessors, name) {
				return fmt.Errorf("appmodel: %s: edge %s->%s missing from %s's predecessors", s.AppName, name, succ, succ)
			}
		}
	}
	if _, err := s.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Heads returns the DAG's entry nodes (no predecessors), sorted for
// determinism. These are the nodes the workload manager appends to the
// ready task list when an application instance is injected.
func (s *AppSpec) Heads() []string {
	var heads []string
	for name, n := range s.DAG {
		if len(n.Predecessors) == 0 {
			heads = append(heads, name)
		}
	}
	sort.Strings(heads)
	return heads
}

// TaskCount reports the number of task nodes, the paper's Table I
// "Task Count" column.
func (s *AppSpec) TaskCount() int { return len(s.DAG) }

// TopoOrder returns node names in a deterministic topological order,
// or an error naming a cycle participant if the graph is cyclic.
func (s *AppSpec) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(s.DAG))
	for name, n := range s.DAG {
		indeg[name] = len(n.Predecessors)
	}
	var frontier []string
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	sort.Strings(frontier)
	if len(frontier) == 0 {
		return nil, fmt.Errorf("appmodel: %s: DAG has no head node (cyclic)", s.AppName)
	}
	order := make([]string, 0, len(s.DAG))
	for len(frontier) > 0 {
		// Pop the lexicographically smallest ready node so the order
		// is unique for a given graph.
		name := frontier[0]
		frontier = frontier[1:]
		order = append(order, name)
		next := s.DAG[name].Successors
		added := false
		for _, succ := range next {
			indeg[succ]--
			if indeg[succ] == 0 {
				frontier = append(frontier, succ)
				added = true
			}
		}
		if added {
			sort.Strings(frontier)
		}
	}
	if len(order) != len(s.DAG) {
		for name, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("appmodel: %s: cycle detected involving node %q", s.AppName, name)
			}
		}
	}
	return order, nil
}

// DataBytes reports the volume of data a node moves per DMA
// direction: the explicit transfer_bytes annotation when present,
// otherwise the sum of the heap allocations of its pointer arguments.
// The resource manager uses it to model DDR<->accelerator transfers.
func (s *AppSpec) DataBytes(node string) int {
	n, ok := s.DAG[node]
	if !ok {
		return 0
	}
	if n.TransferBytes > 0 {
		return n.TransferBytes
	}
	total := 0
	for _, arg := range n.Arguments {
		if v, ok := s.Variables[arg]; ok && v.IsPtr {
			total += v.PtrAllocBytes
		}
	}
	return total
}

// PlatformFor returns the platform entry of the node matching the PE
// type key, if the node supports it.
func (n *NodeSpec) PlatformFor(key string) (PlatformSpec, bool) {
	for _, p := range n.Platforms {
		if p.Name == key {
			return p, true
		}
	}
	return PlatformSpec{}, false
}

// Normalize fills in missing reciprocal edges: if A names B as a
// successor but B does not name A as a predecessor, the predecessor
// entry is added (and vice versa). Hand-written DAG JSONs commonly
// specify each edge once; the paper's parser tolerates this.
func (s *AppSpec) Normalize() {
	for name, n := range s.DAG {
		for _, succ := range n.Successors {
			if sn, ok := s.DAG[succ]; ok && !contains(sn.Predecessors, name) {
				sn.Predecessors = append(sn.Predecessors, name)
				s.DAG[succ] = sn
			}
		}
		for _, pred := range n.Predecessors {
			if pn, ok := s.DAG[pred]; ok && !contains(pn.Successors, name) {
				pn.Successors = append(pn.Successors, name)
				s.DAG[pred] = pn
			}
		}
	}
}

// CriticalPathNS returns the length of the DAG's critical path using
// each node's minimum platform cost, in nanoseconds. This is the lower
// bound on makespan with infinite PEs; tests use it as a sanity bound.
func (s *AppSpec) CriticalPathNS() int64 {
	order, err := s.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make(map[string]int64, len(order))
	var longest int64
	for _, name := range order {
		n := s.DAG[name]
		var start int64
		for _, pred := range n.Predecessors {
			if finish[pred] > start {
				start = finish[pred]
			}
		}
		f := start + n.minCost()
		finish[name] = f
		if f > longest {
			longest = f
		}
	}
	return longest
}

func (n *NodeSpec) minCost() int64 {
	var best int64 = -1
	for _, p := range n.Platforms {
		if best < 0 || (p.CostNS > 0 && p.CostNS < best) {
			best = p.CostNS
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
