package appmodel

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFile parses and validates one application JSON file.
func LoadFile(path string) (*AppSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("appmodel: reading %s: %w", path, err)
	}
	spec, err := ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("appmodel: %s: %w", path, err)
	}
	return spec, nil
}

// LoadDir parses every *.json application in a directory, keyed by
// AppName — the application handler's "parse all available
// applications" pass. Duplicate AppNames are an error.
func LoadDir(dir string) (map[string]*AppSpec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("appmodel: reading directory %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string]*AppSpec, len(names))
	for _, name := range names {
		spec, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if _, dup := out[spec.AppName]; dup {
			return nil, fmt.Errorf("appmodel: duplicate AppName %q in %s", spec.AppName, dir)
		}
		out[spec.AppName] = spec
	}
	return out, nil
}
