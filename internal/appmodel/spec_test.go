package appmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

// listing1 is a trimmed version of the paper's Listing 1 (range
// detection) exercising every schema feature: scalar and pointer
// variables, per-platform runfuncs, and an accelerator shared-object
// override.
const listing1 = `{
  "AppName": "range_detection",
  "SharedObject": "range_detection.so",
  "Variables": {
    "n_samples": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0, "val": [0, 1, 0, 0]},
    "lfm_waveform": {"bytes": 8, "is_ptr": true, "ptr_alloc_bytes": 2048, "val": []},
    "rx": {"bytes": 8, "is_ptr": true, "ptr_alloc_bytes": 2048, "val": []},
    "X1": {"bytes": 8, "is_ptr": true, "ptr_alloc_bytes": 4096, "val": []}
  },
  "DAG": {
    "LFM": {
      "arguments": ["n_samples", "lfm_waveform"],
      "predecessors": [],
      "successors": ["FFT_1"],
      "platforms": [{"name": "cpu", "runfunc": "range_detect_LFM"}]
    },
    "FFT_0": {
      "arguments": ["n_samples", "rx", "X1"],
      "predecessors": [],
      "successors": ["MUL"],
      "platforms": [
        {"name": "cpu", "runfunc": "range_detect_FFT_0_CPU"},
        {"name": "fft", "runfunc": "range_detect_FFT_0_ACCEL", "shared_object": "fft_accel.so"}
      ]
    },
    "FFT_1": {
      "arguments": ["n_samples", "lfm_waveform"],
      "predecessors": ["LFM"],
      "successors": ["MUL"],
      "platforms": [{"name": "cpu", "runfunc": "range_detect_FFT_1_CPU"}]
    },
    "MUL": {
      "arguments": ["n_samples", "X1"],
      "predecessors": ["FFT_0", "FFT_1"],
      "successors": [],
      "platforms": [{"name": "cpu", "runfunc": "range_detect_MUL"}]
    }
  }
}`

func parseListing1(t *testing.T) *AppSpec {
	t.Helper()
	s, err := ParseJSON([]byte(listing1))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	return s
}

func TestParseListing1(t *testing.T) {
	s := parseListing1(t)
	if s.AppName != "range_detection" {
		t.Fatalf("AppName = %q", s.AppName)
	}
	if s.SharedObject != "range_detection.so" {
		t.Fatalf("SharedObject = %q", s.SharedObject)
	}
	if s.TaskCount() != 4 {
		t.Fatalf("TaskCount = %d, want 4", s.TaskCount())
	}
	v := s.Variables["n_samples"]
	if v.Bytes != 4 || v.IsPtr || len(v.Val) != 4 {
		t.Fatalf("n_samples spec mangled: %+v", v)
	}
	fft0 := s.DAG["FFT_0"]
	p, ok := fft0.PlatformFor("fft")
	if !ok || p.RunFunc != "range_detect_FFT_0_ACCEL" || p.SharedObject != "fft_accel.so" {
		t.Fatalf("accelerator platform entry mangled: %+v ok=%v", p, ok)
	}
	if _, ok := fft0.PlatformFor("gpu"); ok {
		t.Fatalf("PlatformFor found an unsupported platform")
	}
}

func TestLittleEndianScalarInit(t *testing.T) {
	s := parseListing1(t)
	m, err := NewMemory(s)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	// The paper: n_samples "initialized with a little-endian
	// representation of 256 as the byte vector [0,1,0,0]".
	if got := m.MustLookup("n_samples").Int32(); got != 256 {
		t.Fatalf("n_samples = %d, want 256", got)
	}
}

func TestHeadsAndTopoOrder(t *testing.T) {
	s := parseListing1(t)
	heads := s.Heads()
	if len(heads) != 2 || heads[0] != "FFT_0" || heads[1] != "LFM" {
		t.Fatalf("Heads = %v, want [FFT_0 LFM]", heads)
	}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	for name, n := range s.DAG {
		for _, pred := range n.Predecessors {
			if pos[pred] >= pos[name] {
				t.Fatalf("topological violation: %s (%d) before its predecessor %s (%d)",
					name, pos[name], pred, pos[pred])
			}
		}
	}
	// Determinism: repeated calls yield the identical order.
	order2, _ := s.TopoOrder()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("TopoOrder nondeterministic: %v vs %v", order, order2)
		}
	}
}

func TestDataBytes(t *testing.T) {
	s := parseListing1(t)
	// FFT_0 touches rx (2048) and X1 (4096); n_samples is scalar.
	if got := s.DataBytes("FFT_0"); got != 2048+4096 {
		t.Fatalf("DataBytes(FFT_0) = %d, want 6144", got)
	}
	if got := s.DataBytes("nope"); got != 0 {
		t.Fatalf("DataBytes on unknown node = %d, want 0", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := parseListing1(t)
	out, err := s.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s2, err := ParseJSON(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s2.AppName != s.AppName || s2.TaskCount() != s.TaskCount() || len(s2.Variables) != len(s.Variables) {
		t.Fatalf("round trip lost structure")
	}
}

func mutate(t *testing.T, f func(*AppSpec)) error {
	t.Helper()
	s := parseListing1(t)
	f(s)
	return s.Validate()
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*AppSpec)
		wantSub string
	}{
		{"no name", func(s *AppSpec) { s.AppName = "" }, "no AppName"},
		{"empty dag", func(s *AppSpec) { s.DAG = nil }, "empty DAG"},
		{"undeclared var", func(s *AppSpec) {
			n := s.DAG["MUL"]
			n.Arguments = append(n.Arguments, "ghost")
			s.DAG["MUL"] = n
		}, "undeclared variable"},
		{"no platforms", func(s *AppSpec) {
			n := s.DAG["MUL"]
			n.Platforms = nil
			s.DAG["MUL"] = n
		}, "no platforms"},
		{"platform without runfunc", func(s *AppSpec) {
			n := s.DAG["MUL"]
			n.Platforms = []PlatformSpec{{Name: "cpu"}}
			s.DAG["MUL"] = n
		}, "without name or runfunc"},
		{"unknown predecessor", func(s *AppSpec) {
			n := s.DAG["MUL"]
			n.Predecessors = append(n.Predecessors, "ghost")
			s.DAG["MUL"] = n
		}, "unknown predecessor"},
		{"unknown successor", func(s *AppSpec) {
			n := s.DAG["LFM"]
			n.Successors = append(n.Successors, "ghost")
			s.DAG["LFM"] = n
		}, "unknown successor"},
		{"asymmetric edge", func(s *AppSpec) {
			n := s.DAG["LFM"]
			n.Successors = append(n.Successors, "MUL") // MUL does not list LFM
			s.DAG["LFM"] = n
		}, "missing from"},
		{"zero-size variable", func(s *AppSpec) {
			s.Variables["bad"] = VariableSpec{Bytes: 0}
			n := s.DAG["MUL"]
			n.Arguments = append(n.Arguments, "bad")
			s.DAG["MUL"] = n
		}, "non-positive size"},
		{"pointer without alloc", func(s *AppSpec) {
			s.Variables["bad"] = VariableSpec{Bytes: 8, IsPtr: true}
		}, "no allocation size"},
		{"scalar with alloc", func(s *AppSpec) {
			s.Variables["bad"] = VariableSpec{Bytes: 4, PtrAllocBytes: 16}
		}, "declares ptr_alloc_bytes"},
		{"oversized initialiser", func(s *AppSpec) {
			s.Variables["bad"] = VariableSpec{Bytes: 2, Val: []byte{1, 2, 3}}
		}, "exceeds storage"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := mutate(t, c.mut)
			if err == nil {
				t.Fatalf("Validate accepted a broken spec")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestValidateCycle(t *testing.T) {
	s := parseListing1(t)
	// Close the loop MUL -> LFM.
	mul := s.DAG["MUL"]
	mul.Successors = append(mul.Successors, "LFM")
	s.DAG["MUL"] = mul
	lfm := s.DAG["LFM"]
	lfm.Predecessors = append(lfm.Predecessors, "MUL")
	s.DAG["LFM"] = lfm
	err := s.Validate()
	if err == nil {
		t.Fatalf("Validate accepted a cyclic DAG")
	}
	// Fully cyclic graph: no head node at all.
	for name, n := range s.DAG {
		if len(n.Predecessors) == 0 {
			n.Predecessors = []string{"MUL"}
			s.DAG[name] = n
		}
	}
	if _, err := s.TopoOrder(); err == nil {
		t.Fatalf("TopoOrder accepted a headless graph")
	}
}

func TestNormalizeCompletesEdges(t *testing.T) {
	s := parseListing1(t)
	// Strip all predecessor lists; Normalize must restore them from
	// the successor lists.
	for name, n := range s.DAG {
		n.Predecessors = nil
		s.DAG[name] = n
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after Normalize: %v", err)
	}
	if got := s.DAG["MUL"].Predecessors; len(got) != 2 {
		t.Fatalf("MUL predecessors after Normalize = %v", got)
	}
}

func TestCriticalPath(t *testing.T) {
	s := parseListing1(t)
	// Annotate costs: LFM=10, FFT_1=20, FFT_0=5, MUL=7.
	set := func(node string, cost int64) {
		n := s.DAG[node]
		for i := range n.Platforms {
			n.Platforms[i].CostNS = cost
		}
		s.DAG[node] = n
	}
	set("LFM", 10)
	set("FFT_1", 20)
	set("FFT_0", 5)
	set("MUL", 7)
	// Critical path: LFM -> FFT_1 -> MUL = 37.
	if got := s.CriticalPathNS(); got != 37 {
		t.Fatalf("CriticalPathNS = %d, want 37", got)
	}
}

// Property: any linear chain of n nodes is valid, topologically
// ordered 0..n-1, and has exactly one head.
func TestChainProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		s := &AppSpec{
			AppName:   "chain",
			Variables: map[string]VariableSpec{"x": {Bytes: 4}},
			DAG:       map[string]NodeSpec{},
		}
		name := func(i int) string { return string(rune('A'+i/26)) + string(rune('a'+i%26)) }
		for i := 0; i < n; i++ {
			node := NodeSpec{
				Arguments: []string{"x"},
				Platforms: []PlatformSpec{{Name: "cpu", RunFunc: "f"}},
			}
			if i > 0 {
				node.Predecessors = []string{name(i - 1)}
			}
			if i < n-1 {
				node.Successors = []string{name(i + 1)}
			}
			s.DAG[name(i)] = node
		}
		if err := s.Validate(); err != nil {
			return false
		}
		if len(s.Heads()) != 1 {
			return false
		}
		order, err := s.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if order[i] != name(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{")); err == nil {
		t.Fatalf("accepted malformed JSON")
	}
	if _, err := ParseJSON([]byte(`{"AppName":"x","DAG":{}}`)); err == nil {
		t.Fatalf("accepted empty DAG")
	}
}
