package appmodel

import (
	"testing"
	"testing/quick"
	"unsafe"
)

func memFor(t *testing.T, vars map[string]VariableSpec) *Memory {
	t.Helper()
	s := &AppSpec{
		AppName:   "t",
		Variables: vars,
		DAG: map[string]NodeSpec{
			"n": {Platforms: []PlatformSpec{{Name: "cpu", RunFunc: "f"}}},
		},
	}
	m, err := NewMemory(s)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	return m
}

func TestMemoryLookup(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{"a": {Bytes: 4}})
	if _, err := m.Lookup("a"); err != nil {
		t.Fatalf("Lookup(a): %v", err)
	}
	if _, err := m.Lookup("b"); err == nil {
		t.Fatalf("Lookup(b) succeeded on missing variable")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustLookup on missing variable did not panic")
		}
	}()
	m.MustLookup("b")
}

func TestScalarAccessorsRoundTrip(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{
		"i32": {Bytes: 4},
		"i64": {Bytes: 8},
		"f32": {Bytes: 4},
		"f64": {Bytes: 8},
	})
	i32 := m.MustLookup("i32")
	i32.SetInt32(-12345)
	if got := i32.Int32(); got != -12345 {
		t.Fatalf("int32 round trip: %d", got)
	}
	i64 := m.MustLookup("i64")
	i64.SetInt64(-1 << 40)
	if got := i64.Int64(); got != -1<<40 {
		t.Fatalf("int64 round trip: %d", got)
	}
	f32 := m.MustLookup("f32")
	f32.SetFloat32(3.5)
	if got := f32.Float32(); got != 3.5 {
		t.Fatalf("float32 round trip: %v", got)
	}
	f64 := m.MustLookup("f64")
	f64.SetFloat64(-2.25)
	if got := f64.Float64(); got != -2.25 {
		t.Fatalf("float64 round trip: %v", got)
	}
}

// Property: SetInt32/Int32 round-trips every value, stored
// little-endian (byte 0 is the least significant byte).
func TestInt32RoundTripProperty(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{"x": {Bytes: 4}})
	v := m.MustLookup("x")
	f := func(x int32) bool {
		v.SetInt32(x)
		if v.Int32() != x {
			return false
		}
		return v.Raw[0] == byte(uint32(x)&0xff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortScalarAccessors(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{"b": {Bytes: 2, Val: []byte{7, 0}}})
	v := m.MustLookup("b")
	if v.Int32() != 0 { // too short for int32 view
		t.Fatalf("short Int32 should be 0")
	}
	v.SetInt32(5) // must not panic or write
	v.SetInt64(5)
	v.SetFloat32(5)
	v.SetFloat64(5)
	if v.Raw[0] != 7 {
		t.Fatalf("short setter overwrote storage")
	}
	if v.Float32() != 0 || v.Int64() != 0 || v.Float64() != 0 {
		t.Fatalf("short getters should be 0")
	}
}

func TestHeapInitialisation(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{
		"buf": {Bytes: 8, IsPtr: true, PtrAllocBytes: 16, Val: []byte{1, 2, 3}},
	})
	v := m.MustLookup("buf")
	if v.HeapLen() != 16 {
		t.Fatalf("HeapLen = %d, want 16", v.HeapLen())
	}
	b := v.Bytes()
	if b[0] != 1 || b[1] != 2 || b[2] != 3 || b[3] != 0 || b[15] != 0 {
		t.Fatalf("heap initialisation wrong: %v", b)
	}
	if &b[0] != &v.Uint8s()[0] {
		t.Fatalf("Uint8s must alias Bytes")
	}
}

func TestHeapAlignment(t *testing.T) {
	for _, size := range []int{1, 7, 8, 9, 2048, 4097} {
		m := memFor(t, map[string]VariableSpec{
			"buf": {Bytes: 8, IsPtr: true, PtrAllocBytes: size},
		})
		v := m.MustLookup("buf")
		addr := uintptr(unsafe.Pointer(&v.Bytes()[0]))
		if addr%8 != 0 {
			t.Fatalf("heap of %d bytes not 8-byte aligned: %#x", size, addr)
		}
	}
}

func TestTypedViewsAlias(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{
		"buf": {Bytes: 8, IsPtr: true, PtrAllocBytes: 64},
	})
	v := m.MustLookup("buf")
	cs := v.Complex64s()
	if len(cs) != 8 {
		t.Fatalf("Complex64s len = %d, want 8", len(cs))
	}
	cs[0] = complex(1, 2)
	fs := v.Float32s()
	if len(fs) != 16 {
		t.Fatalf("Float32s len = %d, want 16", len(fs))
	}
	if fs[0] != 1 || fs[1] != 2 {
		t.Fatalf("views do not alias: fs[0:2] = %v %v", fs[0], fs[1])
	}
	ds := v.Float64s()
	if len(ds) != 8 {
		t.Fatalf("Float64s len = %d", len(ds))
	}
	is := v.Int32s()
	if len(is) != 16 {
		t.Fatalf("Int32s len = %d", len(is))
	}
	is[15] = 42
	if v.Bytes()[60] != 42 {
		t.Fatalf("Int32s does not alias heap")
	}
}

func TestViewsOnScalar(t *testing.T) {
	m := memFor(t, map[string]VariableSpec{"x": {Bytes: 4}})
	v := m.MustLookup("x")
	if v.Bytes() != nil || v.Float32s() != nil || v.Complex64s() != nil ||
		v.Float64s() != nil || v.Int32s() != nil {
		t.Fatalf("scalar variable must have nil heap views")
	}
	if v.HeapLen() != 0 {
		t.Fatalf("scalar HeapLen = %d", v.HeapLen())
	}
}

func TestInstancesIsolated(t *testing.T) {
	s := &AppSpec{
		AppName: "iso",
		Variables: map[string]VariableSpec{
			"buf": {Bytes: 8, IsPtr: true, PtrAllocBytes: 8},
		},
		DAG: map[string]NodeSpec{
			"n": {Arguments: []string{"buf"}, Platforms: []PlatformSpec{{Name: "cpu", RunFunc: "f"}}},
		},
	}
	m1, _ := NewMemory(s)
	m2, _ := NewMemory(s)
	m1.MustLookup("buf").Bytes()[0] = 0xEE
	if m2.MustLookup("buf").Bytes()[0] != 0 {
		t.Fatalf("instances share heap storage; they must be isolated copies")
	}
}
