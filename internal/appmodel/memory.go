package appmodel

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Value is the runtime storage of one application variable. Scalar
// variables live entirely in Raw; pointer variables additionally own a
// heap block (the paper's "assigned a location in the heap that is
// allocated ... upon initialization by the framework").
type Value struct {
	Spec VariableSpec
	// Raw is the variable's own storage (e.g. the 4 bytes of an
	// int32, or the 8 bytes of a pointer). For pointer variables the
	// framework does not store a real address here; the heap block is
	// reached through the Value, mirroring how kernels receive their
	// arguments by name.
	Raw []byte
	// heap is the pointer target, allocated 8-byte aligned so that
	// kernels may reinterpret it as wider numeric types.
	heap []byte
	// backing keeps the aligned allocation alive.
	backing []uint64
}

// Memory is the per-instance variable store created by the application
// handler when it instantiates an application from its archetype.
type Memory struct {
	vars map[string]*Value
}

// NewMemory allocates and initialises every variable declared by the
// spec, reproducing the handler's initialisation phase: scalars get
// their little-endian initial bytes, pointer variables get a zeroed
// heap block with any initial bytes copied to its head.
func NewMemory(s *AppSpec) (*Memory, error) {
	m := &Memory{vars: make(map[string]*Value, len(s.Variables))}
	for name, vs := range s.Variables {
		v := &Value{Spec: vs, Raw: make([]byte, vs.Bytes)}
		if vs.IsPtr {
			// Back the heap with []uint64 so the base address is
			// 8-byte aligned regardless of allocator behaviour; DSP
			// kernels view it as float32/complex64/complex128 data.
			words := (vs.PtrAllocBytes + 7) / 8
			if words == 0 {
				words = 1
			}
			v.backing = make([]uint64, words)
			v.heap = unsafe.Slice((*byte)(unsafe.Pointer(&v.backing[0])), vs.PtrAllocBytes)
			copy(v.heap, vs.Val)
		} else {
			copy(v.Raw, vs.Val)
		}
		m.vars[name] = v
	}
	return m, nil
}

// Lookup returns the named variable.
func (m *Memory) Lookup(name string) (*Value, error) {
	v, ok := m.vars[name]
	if !ok {
		return nil, fmt.Errorf("appmodel: unknown variable %q", name)
	}
	return v, nil
}

// MustLookup is Lookup for callers that have already validated the
// spec; it panics on unknown names, which indicates a framework bug.
func (m *Memory) MustLookup(name string) *Value {
	v, err := m.Lookup(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Len reports the number of variables.
func (m *Memory) Len() int { return len(m.vars) }

// --- scalar accessors ---------------------------------------------------

// Int32 interprets the variable storage as a little-endian int32.
func (v *Value) Int32() int32 {
	if len(v.Raw) < 4 {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(v.Raw))
}

// SetInt32 stores a little-endian int32.
func (v *Value) SetInt32(x int32) {
	if len(v.Raw) >= 4 {
		binary.LittleEndian.PutUint32(v.Raw, uint32(x))
	}
}

// Int64 interprets the variable storage as a little-endian int64.
func (v *Value) Int64() int64 {
	if len(v.Raw) < 8 {
		return int64(v.Int32())
	}
	return int64(binary.LittleEndian.Uint64(v.Raw))
}

// SetInt64 stores a little-endian int64.
func (v *Value) SetInt64(x int64) {
	if len(v.Raw) >= 8 {
		binary.LittleEndian.PutUint64(v.Raw, uint64(x))
	}
}

// Float32 interprets the variable storage as a little-endian float32.
func (v *Value) Float32() float32 {
	if len(v.Raw) < 4 {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(v.Raw))
}

// SetFloat32 stores a little-endian float32.
func (v *Value) SetFloat32(x float32) {
	if len(v.Raw) >= 4 {
		binary.LittleEndian.PutUint32(v.Raw, math.Float32bits(x))
	}
}

// Float64 interprets the variable storage as a little-endian float64.
func (v *Value) Float64() float64 {
	if len(v.Raw) < 8 {
		return float64(v.Float32())
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.Raw))
}

// SetFloat64 stores a little-endian float64.
func (v *Value) SetFloat64(x float64) {
	if len(v.Raw) >= 8 {
		binary.LittleEndian.PutUint64(v.Raw, math.Float64bits(x))
	}
}

// --- heap views -----------------------------------------------------------

// Bytes returns the pointer variable's heap block. It is nil for
// scalar variables.
func (v *Value) Bytes() []byte { return v.heap }

// HeapLen reports the heap block size in bytes (0 for scalars).
func (v *Value) HeapLen() int { return len(v.heap) }

// Float32s views the heap as a []float32. The view aliases the heap:
// kernel writes are visible to successor tasks, exactly as shared
// memory communication works on the emulated SoC.
func (v *Value) Float32s() []float32 {
	n := len(v.heap) / 4
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&v.heap[0])), n)
}

// Float64s views the heap as a []float64.
func (v *Value) Float64s() []float64 {
	n := len(v.heap) / 8
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&v.heap[0])), n)
}

// Complex64s views the heap as a []complex64 (interleaved re,im
// float32 pairs, the layout the signal-processing kernels exchange).
func (v *Value) Complex64s() []complex64 {
	n := len(v.heap) / 8
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*complex64)(unsafe.Pointer(&v.heap[0])), n)
}

// Int32s views the heap as a []int32.
func (v *Value) Int32s() []int32 {
	n := len(v.heap) / 4
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&v.heap[0])), n)
}

// Uint8s is an alias of Bytes kept for symmetry with the other views.
func (v *Value) Uint8s() []byte { return v.heap }
