package apps

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// WiFi transmitter (paper Figure 7, left column): 64 payload bits per
// frame through scrambler, rate-1/2 convolutional encoder,
// block interleaver, QPSK modulation, pilot insertion, IFFT into time
// domain (with frame assembly behind the known preamble), and CRC.
// Seven tasks, matching Table I.

// WiFiParams parameterises both the transmitter and the receiver so a
// TX/RX pair agrees on frame geometry.
type WiFiParams struct {
	// PayloadBits is the frame payload size (the paper's 64 bits).
	PayloadBits int
	// InterleaverRows is the block interleaver depth.
	InterleaverRows int
	// PilotSpacing inserts one pilot after this many data symbols.
	PilotSpacing int
	// SpectrumBins is the IFFT/FFT length (power of two).
	SpectrumBins int
	// RXBufferLen is the receiver capture buffer length in samples.
	RXBufferLen int
	// FrameOffset is where the frame starts inside the RX capture.
	FrameOffset int
	// SNRdB is the synthetic channel quality for the RX archetype.
	SNRdB float64
	// Seed drives payload generation and channel noise.
	Seed int64
}

// DefaultWiFiParams reproduces the paper's 64-bit frame geometry:
// 64 payload bits -> scramble (64) -> encode with 6 tail bits (140
// coded bits) -> interleave (10x14) -> QPSK (70 symbols) -> pilots
// every 7 data symbols (80 symbols) -> 128-bin IFFT.
func DefaultWiFiParams() WiFiParams {
	return WiFiParams{
		PayloadBits:     64,
		InterleaverRows: 10,
		PilotSpacing:    7,
		SpectrumBins:    128,
		RXBufferLen:     256,
		FrameOffset:     24,
		SNRdB:           22,
		Seed:            3,
	}
}

// Derived frame geometry.
func (p WiFiParams) codedBits() int   { return 2 * (p.PayloadBits + kernels.ConvTail) }
func (p WiFiParams) dataSymbols() int { return p.codedBits() / 2 }
func (p WiFiParams) framedSymbols() int {
	return p.dataSymbols() + p.dataSymbols()/p.PilotSpacing
}
func (p WiFiParams) frameLen() int { return kernels.PreambleLen + p.SpectrumBins }

func (p WiFiParams) check() {
	if p.PayloadBits <= 0 || p.codedBits()%2 != 0 {
		panic(fmt.Sprintf("apps: wifi payload %d invalid", p.PayloadBits))
	}
	if p.codedBits()%p.InterleaverRows != 0 {
		panic(fmt.Sprintf("apps: wifi coded bits %d not divisible by %d interleaver rows",
			p.codedBits(), p.InterleaverRows))
	}
	if p.dataSymbols()%p.PilotSpacing != 0 {
		panic(fmt.Sprintf("apps: wifi data symbols %d not divisible by pilot spacing %d",
			p.dataSymbols(), p.PilotSpacing))
	}
	if !kernels.IsPow2(p.SpectrumBins) || p.framedSymbols() > p.SpectrumBins {
		panic(fmt.Sprintf("apps: wifi spectrum bins %d cannot hold %d framed symbols",
			p.SpectrumBins, p.framedSymbols()))
	}
	if p.FrameOffset < 0 || p.FrameOffset+p.frameLen() > p.RXBufferLen {
		panic(fmt.Sprintf("apps: wifi frame [%d,%d) outside capture buffer %d",
			p.FrameOffset, p.FrameOffset+p.frameLen(), p.RXBufferLen))
	}
}

const wifiTXSO = "wifi_tx.so"

// WiFiTX builds the transmitter archetype with a seeded random
// payload.
func WiFiTX(p WiFiParams) *appmodel.AppSpec {
	p.check()
	rng := rand.New(rand.NewSource(p.Seed))
	payload := make([]byte, p.PayloadBits)
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}

	coded := p.codedBits()
	dataSyms := p.dataSymbols()
	framed := p.framedSymbols()

	vars := map[string]appmodel.VariableSpec{
		"n_bits":       scalarVar(int32(p.PayloadBits)),
		"payload_bits": bufVar(p.PayloadBits, payload),
		"scrambled":    bufVar(p.PayloadBits, nil),
		"encoded":      bufVar(coded, nil),
		"interleaved":  bufVar(coded, nil),
		"mod_syms":     bufVar(dataSyms*8, nil),
		"framed_syms":  bufVar(framed*8, nil),
		"tx_frame":     bufVar(p.frameLen()*8, nil),
		"crc_out":      outScalarVar(4),
		"geom":         scalarVar(geomWord(p)),
	}

	ifftCPU := cpuPlatform("wifi_tx_ifft", platform.KIFFT, p.SpectrumBins)
	ifftAcc, _ := fftPlatform("wifi_tx_ifft_accel", platform.KIFFT, p.SpectrumBins, p.SpectrumBins*8)

	dag := map[string]appmodel.NodeSpec{
		"SCRAMBLE": node(
			[]string{"n_bits", "payload_bits", "scrambled"},
			nil, []string{"ENCODE"},
			cpuPlatform("wifi_tx_scramble", platform.KScramble, p.PayloadBits),
		),
		"ENCODE": node(
			[]string{"n_bits", "scrambled", "encoded"},
			[]string{"SCRAMBLE"}, []string{"INTERLEAVE"},
			cpuPlatform("wifi_tx_encode", platform.KConvEncode, p.PayloadBits+kernels.ConvTail),
		),
		"INTERLEAVE": node(
			[]string{"geom", "encoded", "interleaved"},
			[]string{"ENCODE"}, []string{"QPSK_MOD"},
			cpuPlatform("wifi_tx_interleave", platform.KInterleave, coded),
		),
		"QPSK_MOD": node(
			[]string{"geom", "interleaved", "mod_syms"},
			[]string{"INTERLEAVE"}, []string{"PILOT_INS"},
			cpuPlatform("wifi_tx_qpsk_mod", platform.KQPSKMod, dataSyms),
		),
		"PILOT_INS": node(
			[]string{"geom", "mod_syms", "framed_syms"},
			[]string{"QPSK_MOD"}, []string{"IFFT"},
			cpuPlatform("wifi_tx_pilot_insert", platform.KPilotInsert, framed),
		),
		"IFFT": node(
			[]string{"geom", "framed_syms", "tx_frame"},
			[]string{"PILOT_INS"}, []string{"CRC"},
			ifftCPU, ifftAcc,
		),
		"CRC": node(
			[]string{"n_bits", "payload_bits", "crc_out"},
			[]string{"IFFT"}, nil,
			cpuPlatform("wifi_tx_crc", platform.KCRC, p.PayloadBits),
		),
	}

	return &appmodel.AppSpec{
		AppName:      NameWiFiTX,
		SharedObject: wifiTXSO,
		Variables:    vars,
		DAG:          dag,
	}
}

// CheckWiFiTX verifies that the transmitter produced a frame (preamble
// in place, CRC recorded).
func CheckWiFiTX(mem *appmodel.Memory, p WiFiParams) error {
	frameV, err := mem.Lookup("tx_frame")
	if err != nil {
		return err
	}
	frame := frameV.Complex64s()
	pre := kernels.Preamble()
	for i := range pre {
		if frame[i] != pre[i] {
			return fmt.Errorf("apps: wifi tx frame missing preamble at %d", i)
		}
	}
	crcV, err := mem.Lookup("crc_out")
	if err != nil {
		return err
	}
	payloadV, err := mem.Lookup("payload_bits")
	if err != nil {
		return err
	}
	want := kernels.CRC32Bits(payloadV.Bytes())
	if uint32(crcV.Int32()) != want {
		return fmt.Errorf("apps: wifi tx crc %#x, want %#x", uint32(crcV.Int32()), want)
	}
	return nil
}

// --- geometry word -----------------------------------------------------------
//
// Several kernels need more than one geometry parameter; rather than a
// variable per parameter they receive one packed scalar, mirroring the
// C kernels' config word: rows (8 bits) | pilot spacing (8 bits) |
// spectrum bins (16 bits).

func geomWord(p WiFiParams) int32 {
	return int32(p.InterleaverRows) | int32(p.PilotSpacing)<<8 | int32(p.SpectrumBins)<<16
}

func geomUnpack(w int32) (rows, spacing, bins int) {
	return int(w & 0xFF), int((w >> 8) & 0xFF), int((w >> 16) & 0xFFFF)
}

// --- runfuncs ----------------------------------------------------------------

func txBits(ctx *kernels.Context, idx int) ([]byte, error) {
	v, err := ctx.Arg(idx)
	if err != nil {
		return nil, err
	}
	return v.Bytes(), nil
}

func txScramble(ctx *kernels.Context) error {
	nV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	src, err := txBits(ctx, 1)
	if err != nil {
		return err
	}
	dst, err := txBits(ctx, 2)
	if err != nil {
		return err
	}
	n := int(nV.Int32())
	if n > len(src) || n > len(dst) {
		return fmt.Errorf("apps: %s: %d bits exceed buffers", ctx.Node, n)
	}
	return kernels.Scramble(dst[:n], src[:n], kernels.ScramblerSeed)
}

func txEncode(ctx *kernels.Context) error {
	nV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	src, err := txBits(ctx, 1)
	if err != nil {
		return err
	}
	dst, err := txBits(ctx, 2)
	if err != nil {
		return err
	}
	n := int(nV.Int32())
	withTail := append(append([]byte(nil), src[:n]...), make([]byte, kernels.ConvTail)...)
	want := 2 * len(withTail)
	if len(dst) < want {
		return fmt.Errorf("apps: %s: encoded buffer %d < %d", ctx.Node, len(dst), want)
	}
	return kernels.ConvEncode(dst[:want], withTail)
}

func txInterleave(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	rows, _, _ := geomUnpack(gV.Int32())
	src, err := txBits(ctx, 1)
	if err != nil {
		return err
	}
	dst, err := txBits(ctx, 2)
	if err != nil {
		return err
	}
	return kernels.Interleave(dst, src, rows)
}

func txQPSKMod(ctx *kernels.Context) error {
	src, err := txBits(ctx, 1)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	return kernels.QPSKMod(dstV.Complex64s(), src)
}

func txPilotInsert(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	_, spacing, _ := geomUnpack(gV.Int32())
	srcV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	return kernels.PilotInsert(dstV.Complex64s(), srcV.Complex64s(), spacing)
}

// ofdmTimeDomain converts framed frequency-domain symbols into the
// transmitted time-domain block: the symbols occupy the low bins,
// scaled by sqrt(bins) so the time-domain signal keeps near-unit
// power through the normalised IFFT (standard OFDM power scaling).
func ofdmTimeDomain(framed []complex64, bins int) ([]complex64, error) {
	spectrum := make([]complex64, bins)
	scale := float32(math.Sqrt(float64(bins)))
	for i, s := range framed {
		if i >= bins {
			break
		}
		spectrum[i] = complex(real(s)*scale, imag(s)*scale)
	}
	if err := kernels.IFFTInPlace(spectrum); err != nil {
		return nil, err
	}
	return spectrum, nil
}

// txIFFT places the framed symbols into the low spectrum bins,
// transforms to time domain, and assembles the frame behind the known
// preamble.
func txIFFT(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	_, _, bins := geomUnpack(gV.Int32())
	framedV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	frameV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	framed := framedV.Complex64s()
	frame := frameV.Complex64s()
	if len(frame) < kernels.PreambleLen+bins {
		return fmt.Errorf("apps: %s: frame buffer %d too small", ctx.Node, len(frame))
	}
	timeBlock, err := ofdmTimeDomain(framed, bins)
	if err != nil {
		return err
	}
	copy(frame, kernels.Preamble())
	copy(frame[kernels.PreambleLen:], timeBlock)
	return nil
}

func txCRC(ctx *kernels.Context) error {
	nV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	bits, err := txBits(ctx, 1)
	if err != nil {
		return err
	}
	outV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	n := int(nV.Int32())
	if n > len(bits) {
		return fmt.Errorf("apps: %s: %d bits exceed buffer", ctx.Node, n)
	}
	outV.SetInt32(int32(kernels.CRC32Bits(bits[:n])))
	return nil
}

func registerWiFiTX(r *kernels.Registry) {
	r.MustRegister(wifiTXSO, "wifi_tx_scramble", txScramble)
	r.MustRegister(wifiTXSO, "wifi_tx_encode", txEncode)
	r.MustRegister(wifiTXSO, "wifi_tx_interleave", txInterleave)
	r.MustRegister(wifiTXSO, "wifi_tx_qpsk_mod", txQPSKMod)
	r.MustRegister(wifiTXSO, "wifi_tx_pilot_insert", txPilotInsert)
	r.MustRegister(wifiTXSO, "wifi_tx_ifft", txIFFT)
	r.MustRegister(wifiTXSO, "wifi_tx_crc", txCRC)
	r.MustRegister(kernels.SharedObjectFFTAccel, "wifi_tx_ifft_accel", txIFFT)
}
