// Package apps provides the framework's default application library:
// the four software-defined-radio applications of the paper's case
// studies (range detection, pulse Doppler, WiFi TX, WiFi RX) as
// hand-crafted JSON DAG archetypes plus their kernel shared objects.
//
// Each builder returns an appmodel.AppSpec whose variables carry real
// initial data (synthesised radar returns, noisy WiFi frames), whose
// platform entries carry calibrated cost annotations for the
// schedulers, and whose runfuncs execute real DSP against instance
// memory — so validation mode genuinely verifies functional
// integration, exactly as on the paper's testbeds.
package apps

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// Application names as they appear in workload descriptions (paper
// Tables I and II).
const (
	NameRangeDetection = "range_detection"
	NamePulseDoppler   = "pulse_doppler"
	NameWiFiTX         = "wifi_tx"
	NameWiFiRX         = "wifi_rx"
)

var (
	regOnce sync.Once
	reg     *kernels.Registry
)

// Registry returns the kernel registry populated with the generic DSP
// library plus every application shared object in this package.
func Registry() *kernels.Registry {
	regOnce.Do(func() {
		reg = kernels.Default()
		registerRangeDetection(reg)
		registerPulseDoppler(reg)
		registerWiFiTX(reg)
		registerWiFiRX(reg)
	})
	return reg
}

// Specs builds the default archetype of every application, keyed by
// AppName. Panics on internal inconsistency (covered by tests).
func Specs() map[string]*appmodel.AppSpec {
	return map[string]*appmodel.AppSpec{
		NameRangeDetection: RangeDetection(DefaultRangeParams()),
		NamePulseDoppler:   PulseDoppler(DefaultDopplerParams()),
		NameWiFiTX:         WiFiTX(DefaultWiFiParams()),
		NameWiFiRX:         WiFiRX(DefaultWiFiParams()),
	}
}

// --- initial-value encoding helpers -----------------------------------------

// int32Bytes renders x little-endian, the paper's [0,1,0,0]-style
// variable initialiser format.
func int32Bytes(x int32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(x))
	return b
}

// c64Bytes renders interleaved float32 re/im pairs little-endian.
func c64Bytes(xs []complex64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[8*i:], math.Float32bits(real(x)))
		binary.LittleEndian.PutUint32(b[8*i+4:], math.Float32bits(imag(x)))
	}
	return b
}

// scalarVar declares a 4-byte scalar with an initial value.
func scalarVar(x int32) appmodel.VariableSpec {
	return appmodel.VariableSpec{Bytes: 4, Val: int32Bytes(x)}
}

// outScalarVar declares an uninitialised scalar output of the given
// width.
func outScalarVar(bytes int) appmodel.VariableSpec {
	return appmodel.VariableSpec{Bytes: bytes}
}

// bufVar declares a pointer variable backing `bytes` bytes of heap,
// optionally initialised.
func bufVar(bytes int, val []byte) appmodel.VariableSpec {
	return appmodel.VariableSpec{Bytes: 8, IsPtr: true, PtrAllocBytes: bytes, Val: val}
}

// --- platform annotation helpers ---------------------------------------------

// cpuPlatform builds the "cpu" platform entry for a node with the
// calibrated baseline cost of `kernel` over n points.
func cpuPlatform(runFunc, kernel string, n int) appmodel.PlatformSpec {
	cost := platform.CPUBaseNS(kernel, n)
	return appmodel.PlatformSpec{Name: "cpu", RunFunc: runFunc, CostNS: cost, ComputeNS: cost}
}

// fftPlatform builds the "fft" accelerator platform entry; transfer
// bytes are the node's pointer-argument volume, charged both ways at
// nominal (uncontended) DMA cost for the scheduler annotation.
func fftPlatform(runFunc, kernel string, n, transferBytes int) (appmodel.PlatformSpec, bool) {
	compute, ok := platform.AccelComputeNS(kernel, n)
	if !ok {
		return appmodel.PlatformSpec{}, false
	}
	cfg, err := platform.ZCU102(1, 1)
	if err != nil {
		return appmodel.PlatformSpec{}, false
	}
	full, _ := platform.AccelCostNS(kernel, n, transferBytes, cfg.DMA)
	return appmodel.PlatformSpec{
		Name:         "fft",
		RunFunc:      runFunc,
		SharedObject: kernels.SharedObjectFFTAccel,
		CostNS:       full,
		ComputeNS:    compute,
	}, true
}

// node assembles a NodeSpec.
func node(args, preds, succs []string, platforms ...appmodel.PlatformSpec) appmodel.NodeSpec {
	return appmodel.NodeSpec{
		Arguments:    args,
		Predecessors: preds,
		Successors:   succs,
		Platforms:    platforms,
	}
}
