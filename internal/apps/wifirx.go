package apps

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// WiFi receiver (paper Figure 7, right column): matched-filter frame
// synchronisation, payload extraction, FFT back to the frequency
// domain, pilot removal, QPSK demodulation, deinterleaving, Viterbi
// decoding, descrambling, and CRC check. Nine tasks, matching Table I.
//
// The archetype's rx_buffer variable carries a synthesised capture: a
// real transmitter chain run through an AWGN channel and embedded at a
// non-trivial offset in receiver noise, so a successful emulation
// demonstrates true end-to-end functional correctness.

const wifiRXSO = "wifi_rx.so"

// wifiPayload derives the frame payload bits from the seed; TX and RX
// builders share it so a TX/RX pair with equal params agrees.
func wifiPayload(p WiFiParams) []byte {
	rng := rand.New(rand.NewSource(p.Seed))
	payload := make([]byte, p.PayloadBits)
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}
	return payload
}

// synthesizeCapture runs the transmitter chain over the payload and
// returns the noisy receiver capture buffer.
func synthesizeCapture(p WiFiParams) ([]complex64, error) {
	payload := wifiPayload(p)

	scrambled := make([]byte, p.PayloadBits)
	if err := kernels.Scramble(scrambled, payload, kernels.ScramblerSeed); err != nil {
		return nil, err
	}
	withTail := append(append([]byte(nil), scrambled...), make([]byte, kernels.ConvTail)...)
	coded := make([]byte, 2*len(withTail))
	if err := kernels.ConvEncode(coded, withTail); err != nil {
		return nil, err
	}
	interleaved := make([]byte, len(coded))
	if err := kernels.Interleave(interleaved, coded, p.InterleaverRows); err != nil {
		return nil, err
	}
	syms := make([]complex64, len(interleaved)/2)
	if err := kernels.QPSKMod(syms, interleaved); err != nil {
		return nil, err
	}
	framed := make([]complex64, p.framedSymbols())
	if err := kernels.PilotInsert(framed, syms, p.PilotSpacing); err != nil {
		return nil, err
	}
	timeBlock, err := ofdmTimeDomain(framed, p.SpectrumBins)
	if err != nil {
		return nil, err
	}
	frame := append(append([]complex64(nil), kernels.Preamble()...), timeBlock...)

	// Channel: receiver noise floor plus AWGN on the frame itself.
	rng := rand.New(rand.NewSource(p.Seed + 1))
	capture := make([]complex64, p.RXBufferLen)
	floor := float32(0.01)
	for i := range capture {
		capture[i] = complex(floor*float32(rng.NormFloat64()), floor*float32(rng.NormFloat64()))
	}
	noisy := make([]complex64, len(frame))
	if err := kernels.AWGN(noisy, frame, p.SNRdB, rng); err != nil {
		return nil, err
	}
	for i, s := range noisy {
		capture[p.FrameOffset+i] += s
	}
	return capture, nil
}

// WiFiRX builds the receiver archetype.
func WiFiRX(p WiFiParams) *appmodel.AppSpec {
	p.check()
	capture, err := synthesizeCapture(p)
	if err != nil {
		panic(fmt.Sprintf("apps: wifi rx synthesis failed: %v", err))
	}
	payload := wifiPayload(p)

	coded := p.codedBits()
	dataSyms := p.dataSymbols()
	decodedLen := p.PayloadBits + kernels.ConvTail

	vars := map[string]appmodel.VariableSpec{
		"n_bits":       scalarVar(int32(p.PayloadBits)),
		"geom":         scalarVar(geomWord(p)),
		"rx_buffer":    bufVar(p.RXBufferLen*8, c64Bytes(capture)),
		"frame_start":  outScalarVar(4),
		"payload_time": bufVar(p.SpectrumBins*8, nil),
		"data_syms":    bufVar(dataSyms*8, nil),
		"demod_bits":   bufVar(coded, nil),
		"deint_bits":   bufVar(coded, nil),
		"decoded_bits": bufVar(decodedLen, nil),
		"descrambled":  bufVar(p.PayloadBits, nil),
		"crc_expected": scalarVar(int32(kernels.CRC32Bits(payload))),
		"crc_ok":       outScalarVar(4),
	}

	// Matched-filter work scales with (buffer - preamble) * preamble.
	mfWork := (p.RXBufferLen - kernels.PreambleLen + 1) * kernels.PreambleLen

	fftCPU := cpuPlatform("wifi_rx_fft", platform.KFFT, p.SpectrumBins)
	fftAcc, _ := fftPlatform("wifi_rx_fft_accel", platform.KFFT, p.SpectrumBins, p.SpectrumBins*8)

	dag := map[string]appmodel.NodeSpec{
		"MATCH_FILT": node(
			[]string{"rx_buffer", "frame_start"},
			nil, []string{"PAYLOAD_EXT"},
			cpuPlatform("wifi_rx_match_filter", platform.KMatchFilter, mfWork),
		),
		"PAYLOAD_EXT": node(
			[]string{"geom", "rx_buffer", "frame_start", "payload_time"},
			[]string{"MATCH_FILT"}, []string{"FFT"},
			cpuPlatform("wifi_rx_payload_extract", platform.KExtract, p.SpectrumBins),
		),
		"FFT": node(
			[]string{"geom", "payload_time"},
			[]string{"PAYLOAD_EXT"}, []string{"PILOT_RM"},
			fftCPU, fftAcc,
		),
		"PILOT_RM": node(
			[]string{"geom", "payload_time", "data_syms"},
			[]string{"FFT"}, []string{"QPSK_DEMOD"},
			cpuPlatform("wifi_rx_pilot_remove", platform.KPilotRemove, p.framedSymbols()),
		),
		"QPSK_DEMOD": node(
			[]string{"data_syms", "demod_bits"},
			[]string{"PILOT_RM"}, []string{"DEINTERLEAVE"},
			cpuPlatform("wifi_rx_qpsk_demod", platform.KQPSKDemod, dataSyms),
		),
		"DEINTERLEAVE": node(
			[]string{"geom", "demod_bits", "deint_bits"},
			[]string{"QPSK_DEMOD"}, []string{"DECODE"},
			cpuPlatform("wifi_rx_deinterleave", platform.KDeinterleave, coded),
		),
		"DECODE": node(
			[]string{"deint_bits", "decoded_bits"},
			[]string{"DEINTERLEAVE"}, []string{"DESCRAMBLE"},
			cpuPlatform("wifi_rx_decode", platform.KViterbi, decodedLen),
		),
		"DESCRAMBLE": node(
			[]string{"n_bits", "decoded_bits", "descrambled"},
			[]string{"DECODE"}, []string{"CRC_CHECK"},
			cpuPlatform("wifi_rx_descramble", platform.KScramble, p.PayloadBits),
		),
		"CRC_CHECK": node(
			[]string{"n_bits", "descrambled", "crc_expected", "crc_ok"},
			[]string{"DESCRAMBLE"}, nil,
			cpuPlatform("wifi_rx_crc_check", platform.KCRC, p.PayloadBits),
		),
	}

	return &appmodel.AppSpec{
		AppName:      NameWiFiRX,
		SharedObject: wifiRXSO,
		Variables:    vars,
		DAG:          dag,
	}
}

// CheckWiFiRX verifies end-to-end decode: the CRC check passed and the
// descrambled bits equal the transmitted payload.
func CheckWiFiRX(mem *appmodel.Memory, p WiFiParams) error {
	okV, err := mem.Lookup("crc_ok")
	if err != nil {
		return err
	}
	if okV.Int32() != 1 {
		return fmt.Errorf("apps: wifi rx CRC check failed")
	}
	gotV, err := mem.Lookup("descrambled")
	if err != nil {
		return err
	}
	want := wifiPayload(p)
	if !bytes.Equal(gotV.Bytes(), want) {
		return fmt.Errorf("apps: wifi rx decoded payload differs from transmitted bits")
	}
	startV, err := mem.Lookup("frame_start")
	if err != nil {
		return err
	}
	if got := int(startV.Int32()); got != p.FrameOffset {
		return fmt.Errorf("apps: wifi rx synchronised at %d, want %d", got, p.FrameOffset)
	}
	return nil
}

// --- runfuncs ----------------------------------------------------------------

func rxMatchFilter(ctx *kernels.Context) error {
	bufV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	outV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	lag, _ := kernels.MatchFilter(bufV.Complex64s(), kernels.Preamble())
	if lag < 0 {
		return fmt.Errorf("apps: %s: no frame found", ctx.Node)
	}
	outV.SetInt32(int32(lag))
	return nil
}

func rxPayloadExtract(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	_, _, bins := geomUnpack(gV.Int32())
	bufV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	startV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	dst := dstV.Complex64s()
	if len(dst) < bins {
		return fmt.Errorf("apps: %s: payload buffer too small", ctx.Node)
	}
	return kernels.PayloadExtract(dst[:bins], bufV.Complex64s(), int(startV.Int32()), kernels.PreambleLen)
}

func rxFFT(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	_, _, bins := geomUnpack(gV.Int32())
	bufV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	buf := bufV.Complex64s()
	if len(buf) < bins {
		return fmt.Errorf("apps: %s: spectrum buffer too small", ctx.Node)
	}
	return kernels.FFTInPlace(buf[:bins])
}

func rxPilotRemove(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	_, spacing, _ := geomUnpack(gV.Int32())
	specV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	dst := dstV.Complex64s()
	framedLen := len(dst) + len(dst)/spacing
	spec := specV.Complex64s()
	if len(spec) < framedLen {
		return fmt.Errorf("apps: %s: spectrum %d shorter than framed symbols %d", ctx.Node, len(spec), framedLen)
	}
	return kernels.PilotRemove(dst, spec[:framedLen], spacing)
}

func rxQPSKDemod(ctx *kernels.Context) error {
	symsV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	return kernels.QPSKDemod(dstV.Bytes(), symsV.Complex64s())
}

func rxDeinterleave(ctx *kernels.Context) error {
	gV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	rows, _, _ := geomUnpack(gV.Int32())
	srcV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	return kernels.Deinterleave(dstV.Bytes(), srcV.Bytes(), rows)
}

func rxDecode(ctx *kernels.Context) error {
	srcV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	return kernels.ViterbiDecode(dstV.Bytes(), srcV.Bytes())
}

func rxDescramble(ctx *kernels.Context) error {
	nV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	srcV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	n := int(nV.Int32())
	src := srcV.Bytes()
	dst := dstV.Bytes()
	if n > len(src) || n > len(dst) {
		return fmt.Errorf("apps: %s: %d bits exceed buffers", ctx.Node, n)
	}
	return kernels.Scramble(dst[:n], src[:n], kernels.ScramblerSeed)
}

func rxCRCCheck(ctx *kernels.Context) error {
	nV, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	bitsV, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	wantV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	okV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	n := int(nV.Int32())
	bits := bitsV.Bytes()
	if n > len(bits) {
		return fmt.Errorf("apps: %s: %d bits exceed buffer", ctx.Node, n)
	}
	if kernels.CRC32Bits(bits[:n]) == uint32(wantV.Int32()) {
		okV.SetInt32(1)
	} else {
		okV.SetInt32(0)
	}
	return nil
}

func registerWiFiRX(r *kernels.Registry) {
	r.MustRegister(wifiRXSO, "wifi_rx_match_filter", rxMatchFilter)
	r.MustRegister(wifiRXSO, "wifi_rx_payload_extract", rxPayloadExtract)
	r.MustRegister(wifiRXSO, "wifi_rx_fft", rxFFT)
	r.MustRegister(wifiRXSO, "wifi_rx_pilot_remove", rxPilotRemove)
	r.MustRegister(wifiRXSO, "wifi_rx_qpsk_demod", rxQPSKDemod)
	r.MustRegister(wifiRXSO, "wifi_rx_deinterleave", rxDeinterleave)
	r.MustRegister(wifiRXSO, "wifi_rx_decode", rxDecode)
	r.MustRegister(wifiRXSO, "wifi_rx_descramble", rxDescramble)
	r.MustRegister(wifiRXSO, "wifi_rx_crc_check", rxCRCCheck)
	r.MustRegister(kernels.SharedObjectFFTAccel, "wifi_rx_fft_accel", rxFFT)
}
