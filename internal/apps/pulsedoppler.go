package apps

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// Pulse Doppler (paper Figure 8): a burst of m pulses is correlated
// against the reference waveform per pulse (fast time), the resulting
// range profiles are realigned into per-range-gate slow-time series,
// and an FFT across slow time recovers target velocity. The archetype
// reproduces the paper's 770-task DAG:
//
//	m x (FFT, MUL, IFFT)      = 3*128 = 384 per-pulse correlator tasks
//	REALIGN (matrix transpose) = 1
//	per-gate Doppler FFT       = 256
//	per-gate-pair FFT shift    = 128 (two gates per task)
//	MAX (2-D peak search)      = 1
//	                    total  = 770
type DopplerParams struct {
	// Pulses is m, the slow-time length (power of two).
	Pulses int
	// N is the fast-time sample count per pulse (power of two).
	N int
	// TargetGate is the simulated target's range gate.
	TargetGate int
	// TargetDoppler is the normalised Doppler frequency in (-0.5,
	// 0.5): the post-shift peak lands at bin Pulses/2 +
	// round(TargetDoppler*Pulses).
	TargetDoppler float64
	// NoiseSigma and Seed drive the synthetic receiver noise.
	NoiseSigma float64
	Seed       int64
}

// DefaultDopplerParams yields the paper's 770-task shape.
func DefaultDopplerParams() DopplerParams {
	return DopplerParams{Pulses: 128, N: 256, TargetGate: 100, TargetDoppler: 0.25, NoiseSigma: 0.02, Seed: 2}
}

// PulseDopplerTaskCount is the Table I task count this builder
// reproduces.
const PulseDopplerTaskCount = 770

const dopplerSO = "pulse_doppler.so"

// PulseDoppler builds the archetype with a synthetic moving target
// embedded in the rx matrix.
func PulseDoppler(p DopplerParams) *appmodel.AppSpec {
	if !kernels.IsPow2(p.Pulses) || !kernels.IsPow2(p.N) {
		panic(fmt.Sprintf("apps: pulse doppler dims %dx%d must be powers of two", p.Pulses, p.N))
	}
	if p.TargetGate < 0 || p.TargetGate >= p.N {
		panic(fmt.Sprintf("apps: target gate %d outside [0,%d)", p.TargetGate, p.N))
	}
	m, n := p.Pulses, p.N

	// Reference pulse and its spectrum (known a priori, initialised by
	// the application handler rather than computed per instance).
	ref := make([]complex64, n)
	kernels.LFMChirp(ref, 0.5)
	refSpec := append([]complex64(nil), ref...)
	if err := kernels.FFTInPlace(refSpec); err != nil {
		panic(err)
	}

	// Synthesise the m x n receive matrix: the reference delayed by
	// the target gate, rotated per pulse by the Doppler phase, plus
	// noise.
	rng := rand.New(rand.NewSource(p.Seed))
	rxMat := make([]complex64, m*n)
	delayed := kernels.Delay(ref, p.TargetGate)
	for pi := 0; pi < m; pi++ {
		phase := 2 * math.Pi * p.TargetDoppler * float64(pi)
		rot := complex(float32(math.Cos(phase)), float32(math.Sin(phase)))
		row := rxMat[pi*n : (pi+1)*n]
		for j := range row {
			row[j] = delayed[j]*rot +
				complex(float32(p.NoiseSigma*rng.NormFloat64()), float32(p.NoiseSigma*rng.NormFloat64()))
		}
	}

	matBytes := m * n * 8
	rowBytes := n * 8
	vars := map[string]appmodel.VariableSpec{
		"n_samples":    scalarVar(int32(n)),
		"n_pulses":     scalarVar(int32(m)),
		"ref_spectrum": bufVar(rowBytes, c64Bytes(refSpec)),
		"rx_matrix":    bufVar(matBytes, c64Bytes(rxMat)),
		"corr_matrix":  bufVar(matBytes, nil),
		"realigned":    bufVar(matBytes, nil),
		"max_gate":     outScalarVar(4),
		"max_doppler":  outScalarVar(4),
		"max_mag":      outScalarVar(8),
	}

	dag := make(map[string]appmodel.NodeSpec, PulseDopplerTaskCount)

	// Per-pulse correlator chains. Row indices travel through scalar
	// variables so a single runfunc serves every row, as the C kernels
	// do with row pointers.
	var realignPreds []string
	for pi := 0; pi < m; pi++ {
		rowVar := fmt.Sprintf("row_%d", pi)
		vars[rowVar] = scalarVar(int32(pi))
		fftName := fmt.Sprintf("FFT_%d", pi)
		mulName := fmt.Sprintf("MUL_%d", pi)
		ifftName := fmt.Sprintf("IFFT_%d", pi)

		fftAcc, _ := fftPlatform("pd_pulse_fft_accel", platform.KFFT, n, rowBytes)
		fftNode := node(
			[]string{"n_samples", rowVar, "rx_matrix", "corr_matrix"},
			nil, []string{mulName},
			cpuPlatform("pd_pulse_fft", platform.KFFT, n), fftAcc,
		)
		// Only the addressed row crosses the DMA, not the whole matrix.
		fftNode.TransferBytes = rowBytes
		dag[fftName] = fftNode
		dag[mulName] = node(
			[]string{"n_samples", rowVar, "corr_matrix", "ref_spectrum"},
			[]string{fftName}, []string{ifftName},
			cpuPlatform("pd_pulse_mul", platform.KVecMulConj, n),
		)
		ifftAcc, _ := fftPlatform("pd_pulse_ifft_accel", platform.KIFFT, n, rowBytes)
		ifftNode := node(
			[]string{"n_samples", rowVar, "corr_matrix"},
			[]string{mulName}, []string{"REALIGN"},
			cpuPlatform("pd_pulse_ifft", platform.KIFFT, n), ifftAcc,
		)
		ifftNode.TransferBytes = rowBytes
		dag[ifftName] = ifftNode
		realignPreds = append(realignPreds, ifftName)
	}

	// Realign: transpose the m x n correlation matrix into n x m
	// slow-time rows.
	var dopNames []string
	for g := 0; g < n; g++ {
		dopNames = append(dopNames, fmt.Sprintf("DOP_%d", g))
	}
	dag["REALIGN"] = node(
		[]string{"n_pulses", "n_samples", "corr_matrix", "realigned"},
		realignPreds, dopNames,
		cpuPlatform("pd_realign", platform.KTranspose, m*n),
	)

	// Per-gate Doppler FFT over slow time, then FFT-shift in gate
	// pairs (two gates per task to balance task granularity).
	var shiftNames []string
	for j := 0; j < n/2; j++ {
		shiftNames = append(shiftNames, fmt.Sprintf("SHIFT_%d", j))
	}
	for g := 0; g < n; g++ {
		gateVar := fmt.Sprintf("gate_%d", g)
		vars[gateVar] = scalarVar(int32(g))
		dopAcc, _ := fftPlatform("pd_doppler_fft_accel", platform.KFFT, m, m*8)
		dopNode := node(
			[]string{"n_pulses", gateVar, "realigned"},
			[]string{"REALIGN"}, []string{shiftNames[g/2]},
			cpuPlatform("pd_doppler_fft", platform.KFFT, m), dopAcc,
		)
		dopNode.TransferBytes = m * 8
		dag[dopNames[g]] = dopNode
	}
	for j := 0; j < n/2; j++ {
		pairVar := fmt.Sprintf("pair_%d", j)
		vars[pairVar] = scalarVar(int32(j))
		dag[shiftNames[j]] = node(
			[]string{"n_pulses", pairVar, "realigned"},
			[]string{dopNames[2*j], dopNames[2*j+1]}, []string{"MAX"},
			cpuPlatform("pd_fft_shift", platform.KFFTShift, 2*m),
		)
	}

	dag["MAX"] = node(
		[]string{"n_pulses", "n_samples", "realigned", "max_gate", "max_doppler", "max_mag"},
		shiftNames, nil,
		cpuPlatform("pd_max", platform.KMaxAbs, m*n),
	)

	return &appmodel.AppSpec{
		AppName:      NamePulseDoppler,
		SharedObject: dopplerSO,
		Variables:    vars,
		DAG:          dag,
	}
}

// CheckPulseDoppler verifies the detected range gate and Doppler bin
// against the synthesised target.
func CheckPulseDoppler(mem *appmodel.Memory, p DopplerParams) error {
	gateV, err := mem.Lookup("max_gate")
	if err != nil {
		return err
	}
	dopV, err := mem.Lookup("max_doppler")
	if err != nil {
		return err
	}
	wantDop := p.Pulses/2 + int(math.Round(p.TargetDoppler*float64(p.Pulses)))
	wantDop = ((wantDop % p.Pulses) + p.Pulses) % p.Pulses
	if got := int(gateV.Int32()); got != p.TargetGate {
		return fmt.Errorf("apps: pulse doppler found gate %d, want %d", got, p.TargetGate)
	}
	if got := int(dopV.Int32()); got != wantDop {
		return fmt.Errorf("apps: pulse doppler found doppler bin %d, want %d", got, wantDop)
	}
	return nil
}

// --- runfuncs ----------------------------------------------------------------

// pdRow fetches the row/gate slice addressed by (lenArg, idxArg,
// matArg): mat[idx*len : (idx+1)*len].
func pdRow(ctx *kernels.Context, lenArg, idxArg, matArg int) ([]complex64, error) {
	lv, err := ctx.Arg(lenArg)
	if err != nil {
		return nil, err
	}
	iv, err := ctx.Arg(idxArg)
	if err != nil {
		return nil, err
	}
	mv, err := ctx.Arg(matArg)
	if err != nil {
		return nil, err
	}
	n := int(lv.Int32())
	idx := int(iv.Int32())
	mat := mv.Complex64s()
	if n <= 0 || idx < 0 || (idx+1)*n > len(mat) {
		return nil, fmt.Errorf("apps: %s: row %d of length %d outside matrix of %d", ctx.Node, idx, n, len(mat))
	}
	return mat[idx*n : (idx+1)*n], nil
}

func pdPulseFFT(ctx *kernels.Context) error {
	src, err := pdRow(ctx, 0, 1, 2)
	if err != nil {
		return err
	}
	dst, err := pdRow(ctx, 0, 1, 3)
	if err != nil {
		return err
	}
	return copyFFT(dst, src, false)
}

func pdPulseMUL(ctx *kernels.Context) error {
	row, err := pdRow(ctx, 0, 1, 2)
	if err != nil {
		return err
	}
	refV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	ref := refV.Complex64s()
	if len(ref) < len(row) {
		return fmt.Errorf("apps: %s: reference spectrum too short", ctx.Node)
	}
	return kernels.VecMulConj(row, row, ref[:len(row)])
}

func pdPulseIFFT(ctx *kernels.Context) error {
	row, err := pdRow(ctx, 0, 1, 2)
	if err != nil {
		return err
	}
	return kernels.IFFTInPlace(row)
}

func pdRealign(ctx *kernels.Context) error {
	mv, err := ctx.Arg(0) // n_pulses
	if err != nil {
		return err
	}
	nv, err := ctx.Arg(1) // n_samples
	if err != nil {
		return err
	}
	srcV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	dstV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	m, n := int(mv.Int32()), int(nv.Int32())
	return kernels.Transpose(dstV.Complex64s()[:m*n], srcV.Complex64s()[:m*n], m, n)
}

func pdDopplerFFT(ctx *kernels.Context) error {
	row, err := pdRow(ctx, 0, 1, 2)
	if err != nil {
		return err
	}
	return kernels.FFTInPlace(row)
}

// pdFFTShift shifts the two gates of pair j: rows 2j and 2j+1.
func pdFFTShift(ctx *kernels.Context) error {
	mv, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	jv, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	matV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	m, j := int(mv.Int32()), int(jv.Int32())
	mat := matV.Complex64s()
	for _, g := range []int{2 * j, 2*j + 1} {
		if (g+1)*m > len(mat) {
			return fmt.Errorf("apps: %s: gate %d outside matrix", ctx.Node, g)
		}
		kernels.FFTShift(mat[g*m : (g+1)*m])
	}
	return nil
}

func pdMax(ctx *kernels.Context) error {
	mv, err := ctx.Arg(0)
	if err != nil {
		return err
	}
	nv, err := ctx.Arg(1)
	if err != nil {
		return err
	}
	matV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	gateV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	dopV, err := ctx.Arg(4)
	if err != nil {
		return err
	}
	magV, err := ctx.Arg(5)
	if err != nil {
		return err
	}
	m, n := int(mv.Int32()), int(nv.Int32())
	mat := matV.Complex64s()
	if m*n > len(mat) {
		return fmt.Errorf("apps: %s: matrix too small", ctx.Node)
	}
	idx, mag := kernels.MaxAbsIndex(mat[:m*n])
	gateV.SetInt32(int32(idx / m))
	dopV.SetInt32(int32(idx % m))
	magV.SetFloat64(mag)
	return nil
}

func registerPulseDoppler(r *kernels.Registry) {
	r.MustRegister(dopplerSO, "pd_pulse_fft", pdPulseFFT)
	r.MustRegister(dopplerSO, "pd_pulse_mul", pdPulseMUL)
	r.MustRegister(dopplerSO, "pd_pulse_ifft", pdPulseIFFT)
	r.MustRegister(dopplerSO, "pd_realign", pdRealign)
	r.MustRegister(dopplerSO, "pd_doppler_fft", pdDopplerFFT)
	r.MustRegister(dopplerSO, "pd_fft_shift", pdFFTShift)
	r.MustRegister(dopplerSO, "pd_max", pdMax)
	r.MustRegister(kernels.SharedObjectFFTAccel, "pd_pulse_fft_accel", pdPulseFFT)
	r.MustRegister(kernels.SharedObjectFFTAccel, "pd_pulse_ifft_accel", pdPulseIFFT)
	r.MustRegister(kernels.SharedObjectFFTAccel, "pd_doppler_fft_accel", pdDopplerFFT)
}
