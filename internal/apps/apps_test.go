package apps

import (
	"strings"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/kernels"
)

func TestSpecsValidateAndTaskCounts(t *testing.T) {
	// Table I task counts: RD 6, PD 770, TX 7, RX 9.
	want := map[string]int{
		NameRangeDetection: 6,
		NamePulseDoppler:   770,
		NameWiFiTX:         7,
		NameWiFiRX:         9,
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("Specs() returned %d apps", len(specs))
	}
	for name, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		if got := spec.TaskCount(); got != want[name] {
			t.Errorf("%s: task count %d, want %d", name, got, want[name])
		}
		if spec.AppName != name {
			t.Errorf("%s: AppName %q", name, spec.AppName)
		}
	}
}

func TestAllRunFuncsResolve(t *testing.T) {
	// The application handler resolves every runfunc at parse time;
	// verify every platform entry of every node has a registered
	// symbol in its shared object.
	r := Registry()
	for name, spec := range Specs() {
		for node, ns := range spec.DAG {
			for _, p := range ns.Platforms {
				so := p.SharedObject
				if so == "" {
					so = spec.SharedObject
				}
				if _, err := r.Lookup(so, p.RunFunc); err != nil {
					t.Errorf("%s/%s: %v", name, node, err)
				}
			}
		}
	}
}

func TestCostAnnotationsPresent(t *testing.T) {
	for name, spec := range Specs() {
		for node, ns := range spec.DAG {
			for _, p := range ns.Platforms {
				if p.CostNS <= 0 {
					t.Errorf("%s/%s platform %s: missing cost annotation", name, node, p.Name)
				}
				if p.Name == "fft" && p.ComputeNS >= p.CostNS {
					t.Errorf("%s/%s: accelerator compute %d should be below full cost %d (DMA included)",
						name, node, p.ComputeNS, p.CostNS)
				}
			}
		}
	}
}

func TestJSONRoundTripAllApps(t *testing.T) {
	for name, spec := range Specs() {
		data, err := spec.MarshalIndentJSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := appmodel.ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if back.TaskCount() != spec.TaskCount() || len(back.Variables) != len(spec.Variables) {
			t.Fatalf("%s: JSON round trip lost structure", name)
		}
	}
}

// runSequential executes an application spec in plain topological
// order against a fresh memory — the ground-truth execution the
// emulator must preserve under any schedule.
func runSequential(t *testing.T, spec *appmodel.AppSpec) *appmodel.Memory {
	t.Helper()
	r := Registry()
	mem, err := appmodel.NewMemory(spec)
	if err != nil {
		t.Fatal(err)
	}
	order, err := spec.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		ns := spec.DAG[name]
		p := ns.Platforms[0] // cpu implementation
		so := p.SharedObject
		if so == "" {
			so = spec.SharedObject
		}
		f, err := r.Lookup(so, p.RunFunc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := f(&kernels.Context{Mem: mem, Args: ns.Arguments, Node: name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return mem
}

func TestRangeDetectionFunctional(t *testing.T) {
	p := DefaultRangeParams()
	mem := runSequential(t, RangeDetection(p))
	if err := CheckRangeDetection(mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestRangeDetectionVariousLags(t *testing.T) {
	// Lags near N leave almost no pulse overlap in the capture window,
	// so detection is physically impossible there; stay within 3N/4.
	for _, lag := range []int{0, 1, 17, 100, 192} {
		p := DefaultRangeParams()
		p.TargetLag = lag
		mem := runSequential(t, RangeDetection(p))
		if err := CheckRangeDetection(mem, p); err != nil {
			t.Errorf("lag %d: %v", lag, err)
		}
	}
}

func TestRangeDetectionAccelPathEquivalent(t *testing.T) {
	// Running the FFT nodes through the accelerator runfuncs must give
	// the same detection result.
	p := DefaultRangeParams()
	spec := RangeDetection(p)
	r := Registry()
	mem, err := appmodel.NewMemory(spec)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := spec.TopoOrder()
	for _, name := range order {
		ns := spec.DAG[name]
		// Prefer the accelerator platform when present.
		chosen := ns.Platforms[0]
		for _, pl := range ns.Platforms {
			if pl.Name == "fft" {
				chosen = pl
			}
		}
		so := chosen.SharedObject
		if so == "" {
			so = spec.SharedObject
		}
		f, err := r.Lookup(so, chosen.RunFunc)
		if err != nil {
			t.Fatal(err)
		}
		if err := f(&kernels.Context{Mem: mem, Args: ns.Arguments, Node: name}); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckRangeDetection(mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestPulseDopplerFunctional(t *testing.T) {
	p := DefaultDopplerParams()
	mem := runSequential(t, PulseDoppler(p))
	if err := CheckPulseDoppler(mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestPulseDopplerOtherTargets(t *testing.T) {
	cases := []struct {
		gate int
		dop  float64
	}{
		{10, -0.25},
		{200, 0.125},
		{0, 0.0},
	}
	for _, c := range cases {
		p := DefaultDopplerParams()
		p.TargetGate = c.gate
		p.TargetDoppler = c.dop
		mem := runSequential(t, PulseDoppler(p))
		if err := CheckPulseDoppler(mem, p); err != nil {
			t.Errorf("gate=%d dop=%v: %v", c.gate, c.dop, err)
		}
	}
}

func TestPulseDopplerTaskBreakdown(t *testing.T) {
	spec := PulseDoppler(DefaultDopplerParams())
	counts := map[string]int{}
	for name := range spec.DAG {
		switch {
		case strings.HasPrefix(name, "FFT_"):
			counts["fft"]++
		case strings.HasPrefix(name, "MUL_"):
			counts["mul"]++
		case strings.HasPrefix(name, "IFFT_"):
			counts["ifft"]++
		case strings.HasPrefix(name, "DOP_"):
			counts["dop"]++
		case strings.HasPrefix(name, "SHIFT_"):
			counts["shift"]++
		default:
			counts["other"]++
		}
	}
	want := map[string]int{"fft": 128, "mul": 128, "ifft": 128, "dop": 256, "shift": 128, "other": 2}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("%s tasks = %d, want %d", k, counts[k], v)
		}
	}
}

func TestWiFiTXFunctional(t *testing.T) {
	p := DefaultWiFiParams()
	mem := runSequential(t, WiFiTX(p))
	if err := CheckWiFiTX(mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestWiFiRXFunctional(t *testing.T) {
	p := DefaultWiFiParams()
	mem := runSequential(t, WiFiRX(p))
	if err := CheckWiFiRX(mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestWiFiRXAcrossSeedsAndOffsets(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		p := DefaultWiFiParams()
		p.Seed = seed
		p.FrameOffset = 8 * int(seed%12)
		mem := runSequential(t, WiFiRX(p))
		if err := CheckWiFiRX(mem, p); err != nil {
			t.Errorf("seed %d offset %d: %v", seed, p.FrameOffset, err)
		}
	}
}

func TestWiFiRXLowSNRStillDecodes(t *testing.T) {
	// The Viterbi decoder should carry the frame through a moderately
	// noisy channel.
	p := DefaultWiFiParams()
	p.SNRdB = 14
	mem := runSequential(t, WiFiRX(p))
	if err := CheckWiFiRX(mem, p); err != nil {
		t.Fatalf("14 dB decode failed: %v", err)
	}
}

func TestWiFiGeometryPanics(t *testing.T) {
	bad := DefaultWiFiParams()
	bad.InterleaverRows = 11 // 140 % 11 != 0
	assertPanics(t, func() { WiFiTX(bad) }, "interleaver")
	bad2 := DefaultWiFiParams()
	bad2.FrameOffset = 1000
	assertPanics(t, func() { WiFiRX(bad2) }, "capture buffer")
	bad3 := DefaultWiFiParams()
	bad3.SpectrumBins = 100 // not a power of two
	assertPanics(t, func() { WiFiTX(bad3) }, "spectrum")
}

func TestRangeDetectionPanics(t *testing.T) {
	p := DefaultRangeParams()
	p.N = 100
	assertPanics(t, func() { RangeDetection(p) }, "power of two")
	p2 := DefaultRangeParams()
	p2.TargetLag = -1
	assertPanics(t, func() { RangeDetection(p2) }, "lag")
}

func TestPulseDopplerPanics(t *testing.T) {
	p := DefaultDopplerParams()
	p.Pulses = 100
	assertPanics(t, func() { PulseDoppler(p) }, "powers of two")
	p2 := DefaultDopplerParams()
	p2.TargetGate = p2.N
	assertPanics(t, func() { PulseDoppler(p2) }, "gate")
}

func assertPanics(t *testing.T, f func(), wantSub string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic mentioning %q", wantSub)
		}
		if msg, ok := r.(string); ok && !strings.Contains(msg, wantSub) {
			t.Fatalf("panic %q does not mention %q", msg, wantSub)
		}
	}()
	f()
}

func TestGeomWordRoundTrip(t *testing.T) {
	p := DefaultWiFiParams()
	rows, spacing, bins := geomUnpack(geomWord(p))
	if rows != p.InterleaverRows || spacing != p.PilotSpacing || bins != p.SpectrumBins {
		t.Fatalf("geom round trip: %d %d %d", rows, spacing, bins)
	}
}

func TestTransferAnnotationsRowSized(t *testing.T) {
	// Accelerator transfers for pulse doppler are per row, not the
	// whole matrix.
	p := DefaultDopplerParams()
	spec := PulseDoppler(p)
	if got := spec.DataBytes("FFT_0"); got != p.N*8 {
		t.Fatalf("FFT_0 transfer = %d bytes, want %d", got, p.N*8)
	}
	if got := spec.DataBytes("DOP_0"); got != p.Pulses*8 {
		t.Fatalf("DOP_0 transfer = %d bytes, want %d", got, p.Pulses*8)
	}
}
