package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// Range detection (paper Figure 2 / Listing 1): correlate a received
// radar return against the transmitted LFM chirp in the frequency
// domain and locate the correlation peak, whose lag gives the target
// distance. Six tasks: LFM, FFT_0, FFT_1, MUL, IFFT, MAX.

// RangeParams parameterises the range detection archetype.
type RangeParams struct {
	// N is the sample count per waveform (the paper's n_samples=256).
	N int
	// TargetLag is the simulated target's delay in samples; the
	// pipeline must find exactly this value.
	TargetLag int
	// NoiseSigma is the per-dimension receiver noise level.
	NoiseSigma float64
	// Seed drives the synthetic receiver noise.
	Seed int64
}

// DefaultRangeParams mirrors the paper's configuration.
func DefaultRangeParams() RangeParams {
	return RangeParams{N: 256, TargetLag: 42, NoiseSigma: 0.05, Seed: 1}
}

const rangeSO = "range_detection.so"

// RangeDetection builds the archetype with a synthetic return
// embedded in the rx variable. Panics only on internally inconsistent
// parameters (covered by tests); use Validate on the result.
func RangeDetection(p RangeParams) *appmodel.AppSpec {
	if p.N <= 0 || !kernels.IsPow2(p.N) {
		panic(fmt.Sprintf("apps: range detection N=%d must be a power of two", p.N))
	}
	if p.TargetLag < 0 || p.TargetLag >= p.N {
		panic(fmt.Sprintf("apps: target lag %d outside [0,%d)", p.TargetLag, p.N))
	}
	// Synthesise the received signal: the transmitted chirp delayed by
	// the target lag plus receiver noise.
	chirp := make([]complex64, p.N)
	kernels.LFMChirp(chirp, 0.5)
	rx := kernels.Delay(chirp, p.TargetLag)
	rng := rand.New(rand.NewSource(p.Seed))
	for i := range rx {
		rx[i] += complex(float32(p.NoiseSigma*rng.NormFloat64()), float32(p.NoiseSigma*rng.NormFloat64()))
	}

	buf := p.N * 8
	vars := map[string]appmodel.VariableSpec{
		"n_samples":    scalarVar(int32(p.N)),
		"lfm_waveform": bufVar(buf, nil),
		"rx":           bufVar(buf, c64Bytes(rx)),
		"X1":           bufVar(buf, nil),
		"X2":           bufVar(buf, nil),
		"corr":         bufVar(buf, nil),
		"corr_time":    bufVar(buf, nil),
		"lag":          outScalarVar(4),
		"max_corr":     outScalarVar(8),
	}

	fft0CPU := cpuPlatform("range_detect_FFT_0_CPU", platform.KFFT, p.N)
	fft0Acc, _ := fftPlatform("range_detect_FFT_0_ACCEL", platform.KFFT, p.N, buf)
	fft1CPU := cpuPlatform("range_detect_FFT_1_CPU", platform.KFFT, p.N)
	fft1Acc, _ := fftPlatform("range_detect_FFT_1_ACCEL", platform.KFFT, p.N, buf)
	ifftCPU := cpuPlatform("range_detect_IFFT_CPU", platform.KIFFT, p.N)
	ifftAcc, _ := fftPlatform("range_detect_IFFT_ACCEL", platform.KIFFT, p.N, buf)

	dag := map[string]appmodel.NodeSpec{
		"LFM": node(
			[]string{"n_samples", "lfm_waveform"},
			nil, []string{"FFT_1"},
			cpuPlatform("range_detect_LFM", platform.KLFM, p.N),
		),
		"FFT_0": node(
			[]string{"n_samples", "rx", "X1"},
			nil, []string{"MUL"},
			fft0CPU, fft0Acc,
		),
		"FFT_1": node(
			[]string{"n_samples", "lfm_waveform", "X2"},
			[]string{"LFM"}, []string{"MUL"},
			fft1CPU, fft1Acc,
		),
		"MUL": node(
			[]string{"n_samples", "X1", "X2", "corr"},
			[]string{"FFT_0", "FFT_1"}, []string{"IFFT"},
			cpuPlatform("range_detect_MUL", platform.KVecMulConj, p.N),
		),
		"IFFT": node(
			[]string{"n_samples", "corr", "corr_time"},
			[]string{"MUL"}, []string{"MAX"},
			ifftCPU, ifftAcc,
		),
		"MAX": node(
			[]string{"n_samples", "corr_time", "lag", "max_corr"},
			[]string{"IFFT"}, nil,
			cpuPlatform("range_detect_MAX", platform.KMaxAbs, p.N),
		),
	}

	return &appmodel.AppSpec{
		AppName:      NameRangeDetection,
		SharedObject: rangeSO,
		Variables:    vars,
		DAG:          dag,
	}
}

// CheckRangeDetection verifies the pipeline output inside an executed
// instance memory: the detected lag must equal the synthesised target
// lag.
func CheckRangeDetection(mem *appmodel.Memory, p RangeParams) error {
	lagV, err := mem.Lookup("lag")
	if err != nil {
		return err
	}
	if got := int(lagV.Int32()); got != p.TargetLag {
		return fmt.Errorf("apps: range detection found lag %d, want %d", got, p.TargetLag)
	}
	magV, err := mem.Lookup("max_corr")
	if err != nil {
		return err
	}
	if magV.Float64() <= 0 {
		return fmt.Errorf("apps: range detection peak magnitude %v not positive", magV.Float64())
	}
	return nil
}

// --- runfuncs ----------------------------------------------------------------

// copyFFT copies src into dst and transforms dst in place.
func copyFFT(dst, src []complex64, inverse bool) error {
	copy(dst, src)
	if inverse {
		return kernels.IFFTInPlace(dst)
	}
	return kernels.FFTInPlace(dst)
}

func rdArgs(ctx *kernels.Context) (n int, err error) {
	v, err := ctx.Arg(0)
	if err != nil {
		return 0, err
	}
	return int(v.Int32()), nil
}

func rdComplex(ctx *kernels.Context, idx, n int) ([]complex64, error) {
	v, err := ctx.Arg(idx)
	if err != nil {
		return nil, err
	}
	cs := v.Complex64s()
	if len(cs) < n {
		return nil, fmt.Errorf("apps: %s: arg %d holds %d samples, need %d", ctx.Node, idx, len(cs), n)
	}
	return cs[:n], nil
}

func rdLFM(ctx *kernels.Context) error {
	n, err := rdArgs(ctx)
	if err != nil {
		return err
	}
	buf, err := rdComplex(ctx, 1, n)
	if err != nil {
		return err
	}
	kernels.LFMChirp(buf, 0.5)
	return nil
}

// rdFFT builds the FFT_0/FFT_1/IFFT runfuncs, which share the shape
// (n, src, dst).
func rdFFT(inverse bool) kernels.Func {
	return func(ctx *kernels.Context) error {
		n, err := rdArgs(ctx)
		if err != nil {
			return err
		}
		src, err := rdComplex(ctx, 1, n)
		if err != nil {
			return err
		}
		dst, err := rdComplex(ctx, 2, n)
		if err != nil {
			return err
		}
		return copyFFT(dst, src, inverse)
	}
}

func rdMUL(ctx *kernels.Context) error {
	n, err := rdArgs(ctx)
	if err != nil {
		return err
	}
	a, err := rdComplex(ctx, 1, n)
	if err != nil {
		return err
	}
	b, err := rdComplex(ctx, 2, n)
	if err != nil {
		return err
	}
	dst, err := rdComplex(ctx, 3, n)
	if err != nil {
		return err
	}
	return kernels.VecMulConj(dst, a, b)
}

func rdMAX(ctx *kernels.Context) error {
	n, err := rdArgs(ctx)
	if err != nil {
		return err
	}
	buf, err := rdComplex(ctx, 1, n)
	if err != nil {
		return err
	}
	lagV, err := ctx.Arg(2)
	if err != nil {
		return err
	}
	magV, err := ctx.Arg(3)
	if err != nil {
		return err
	}
	idx, mag := kernels.MaxAbsIndex(buf)
	lagV.SetInt32(int32(idx))
	magV.SetFloat64(mag)
	return nil
}

func registerRangeDetection(r *kernels.Registry) {
	r.MustRegister(rangeSO, "range_detect_LFM", rdLFM)
	r.MustRegister(rangeSO, "range_detect_FFT_0_CPU", rdFFT(false))
	r.MustRegister(rangeSO, "range_detect_FFT_1_CPU", rdFFT(false))
	r.MustRegister(rangeSO, "range_detect_IFFT_CPU", rdFFT(true))
	r.MustRegister(rangeSO, "range_detect_MUL", rdMUL)
	r.MustRegister(rangeSO, "range_detect_MAX", rdMAX)
	// Accelerator entry points live in the accelerator interface
	// library, referenced via the node's shared_object override as in
	// Listing 1. Functionally identical; the resource manager owns
	// the DMA timing difference.
	r.MustRegister(kernels.SharedObjectFFTAccel, "range_detect_FFT_0_ACCEL", rdFFT(false))
	r.MustRegister(kernels.SharedObjectFFTAccel, "range_detect_FFT_1_ACCEL", rdFFT(false))
	r.MustRegister(kernels.SharedObjectFFTAccel, "range_detect_IFFT_ACCEL", rdFFT(true))
}
