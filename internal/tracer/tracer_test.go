package tracer

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// sumModule builds func sum(n): s=0; for i in n..1: s+=i; out[0]=s.
func sumModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("t")
	if err := m.AddGlobal(&ir.Global{Name: "out", Elems: 1}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "sum", NumParams: 1, NumRegs: 4}
	f.Blocks = []*ir.Block{
		{Label: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 0},
			{Op: ir.OpConst, Dst: 3, Imm: 0},
		}, Term: ir.Terminator{Kind: ir.TermBr, Then: 1}},
		{Label: "cond", Instrs: []ir.Instr{
			{Op: ir.OpGt, Dst: 2, A: 0, B: 3},
		}, Term: ir.Terminator{Kind: ir.TermCondBr, Cond: 2, Then: 2, Else: 3}},
		{Label: "body", Instrs: []ir.Instr{
			{Op: ir.OpAdd, Dst: 1, A: 1, B: 0},
			{Op: ir.OpConst, Dst: 2, Imm: 1},
			{Op: ir.OpSub, Dst: 0, A: 0, B: 2},
		}, Term: ir.Terminator{Kind: ir.TermBr, Then: 1}},
		{Label: "exit", Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 2, Imm: 0},
			{Op: ir.OpStore, Sym: "out", A: 2, B: 1},
		}, Term: ir.Terminator{Kind: ir.TermRet, Cond: 1}},
	}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterpretSum(t *testing.T) {
	m := sumModule(t)
	env, ret, err := Run(m, "sum", nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 55 {
		t.Fatalf("sum(10) = %v, want 55", ret)
	}
	if env.Globals["out"][0] != 55 {
		t.Fatalf("out[0] = %v", env.Globals["out"][0])
	}
}

func TestBlockCounts(t *testing.T) {
	m := sumModule(t)
	ct := NewCountTrace(m)
	_, _, err := Run(m, "sum", ct, 10)
	if err != nil {
		t.Fatal(err)
	}
	// entry 1, cond 11, body 10, exit 1.
	want := []int64{1, 11, 10, 1}
	for i, w := range want {
		if ct.Counts[i] != w {
			t.Fatalf("block %d count %d, want %d (all: %v)", i, ct.Counts[i], w, ct.Counts)
		}
	}
	if ct.Blocks != 23 {
		t.Fatalf("total blocks %d", ct.Blocks)
	}
}

func TestInstrCountProfile(t *testing.T) {
	m := sumModule(t)
	env := NewEnv(m)
	ip, err := New(m, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Call("sum", 5); err != nil {
		t.Fatal(err)
	}
	// body executes 5 times x 3 instrs = 15.
	if ip.InstrCount[2] != 15 {
		t.Fatalf("body instr count %d, want 15", ip.InstrCount[2])
	}
	if ip.Steps() == 0 {
		t.Fatal("no steps counted")
	}
}

func TestArgumentArity(t *testing.T) {
	m := sumModule(t)
	if _, _, err := Run(m, "sum", nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, _, err := Run(m, "nope", nil, 1); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestUnfinalizedRejected(t *testing.T) {
	m := ir.NewModule("x")
	if _, err := New(m, NewEnv(m), Options{}); err == nil {
		t.Fatal("unfinalized module accepted")
	}
}

func TestBoundsChecking(t *testing.T) {
	m := sumModule(t)
	// Patch the store index to 5 (out has 1 element).
	m.Funcs["sum"].Blocks[3].Instrs[0].Imm = 5
	_, _, err := Run(m, "sum", nil, 3)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	m := ir.NewModule("loop")
	f := &ir.Func{Name: "spin", NumRegs: 1}
	f.Blocks = []*ir.Block{{
		Label:  "b",
		Instrs: []ir.Instr{{Op: ir.OpConst, Dst: 0, Imm: 1}},
		Term:   ir.Terminator{Kind: ir.TermBr, Then: 0},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	env := NewEnv(m)
	ip, _ := New(m, env, Options{MaxSteps: 1000})
	_, err := ip.Call("spin")
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop not caught: %v", err)
	}
}

func TestCallBetweenFunctions(t *testing.T) {
	m := sumModule(t)
	// main() { return sum(4) + 1 }
	main := &ir.Func{Name: "main", NumRegs: 3}
	main.Blocks = []*ir.Block{{
		Label: "entry",
		Instrs: []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 4},
			{Op: ir.OpCall, Dst: 1, Sym: "sum", Args: []int{0}},
			{Op: ir.OpConst, Dst: 0, Imm: 1},
			{Op: ir.OpAdd, Dst: 2, A: 1, B: 0},
		},
		Term: ir.Terminator{Kind: ir.TermRet, Cond: 2},
	}}
	if err := m.AddFunc(main); err != nil {
		t.Fatal(err)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, ret, err := Run(m, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 11 {
		t.Fatalf("main = %v, want 11", ret)
	}
}

func TestEnvIsolatedPerRun(t *testing.T) {
	m := sumModule(t)
	env1, _, err := Run(m, "sum", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	env2, _, err := Run(m, "sum", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if env1.Globals["out"][0] == env2.Globals["out"][0] {
		t.Fatal("environments shared storage")
	}
}

func TestAllScalarOps(t *testing.T) {
	// One block exercising every arithmetic/comparison opcode.
	m := ir.NewModule("ops")
	f := &ir.Func{Name: "f", NumParams: 2, NumRegs: 8}
	mk := func(op ir.Op) ir.Instr { return ir.Instr{Op: op, Dst: 2, A: 0, B: 1} }
	checks := []struct {
		op   ir.Op
		a, b float64
		want float64
	}{
		{ir.OpAdd, 2, 3, 5},
		{ir.OpSub, 2, 3, -1},
		{ir.OpMul, 2, 3, 6},
		{ir.OpDiv, 6, 3, 2},
		{ir.OpMod, 7, 3, 1},
		{ir.OpEq, 2, 2, 1},
		{ir.OpNe, 2, 2, 0},
		{ir.OpLt, 1, 2, 1},
		{ir.OpLe, 2, 2, 1},
		{ir.OpGt, 1, 2, 0},
		{ir.OpGe, 2, 3, 0},
		{ir.OpAnd, 1, 0, 0},
		{ir.OpOr, 1, 0, 1},
	}
	f.Blocks = []*ir.Block{{
		Label:  "b",
		Instrs: []ir.Instr{mk(ir.OpAdd)},
		Term:   ir.Terminator{Kind: ir.TermRet, Cond: 2},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		f.Blocks[0].Instrs[0] = mk(c.op)
		if err := m.Finalize(); err != nil {
			t.Fatal(err)
		}
		_, got, err := Run(m, "f", nil, c.a, c.b)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got != c.want {
			t.Fatalf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	// Unary ops.
	unary := []struct {
		op      ir.Op
		a, want float64
	}{
		{ir.OpNeg, 3, -3},
		{ir.OpNot, 0, 1},
		{ir.OpAbs, -4, 4},
		{ir.OpSqrt, 9, 3},
		{ir.OpFloor, 2.9, 2},
	}
	for _, c := range unary {
		f.Blocks[0].Instrs[0] = ir.Instr{Op: c.op, Dst: 2, A: 0}
		if err := m.Finalize(); err != nil {
			t.Fatal(err)
		}
		_, got, err := Run(m, "f", nil, c.a, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got != c.want {
			t.Fatalf("%v(%v) = %v, want %v", c.op, c.a, got, c.want)
		}
	}
}
