package tracer_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/minic"
	"repro/internal/tracer"
)

const recSrcA = `
float a[16];
float main() {
  float i = 0;
  for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }
  return a[15];
}`

const recSrcB = `
float v = 1;
float main() {
  while (v < 100) { v = v * 2; }
  return v;
}`

func recordCorpus(t *testing.T) *tracer.Record {
	t.Helper()
	ma, err := minic.Compile(recSrcA, "a")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := minic.Compile(recSrcB, "b")
	if err != nil {
		t.Fatal(err)
	}
	r := tracer.NewRecorder(0.25)
	for i := 0; i < 3; i++ {
		if err := r.Run(ma, "appA", "main"); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(mb, "appB", "main"); err != nil {
			t.Fatal(err)
		}
	}
	return r.Record()
}

// TestRecorderDeterministic pins the recording contract the replay
// parity harness stands on: two recordings of the same seeded run are
// byte-identical.
func TestRecorderDeterministic(t *testing.T) {
	b1, err := recordCorpus(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := recordCorpus(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two recordings of the same run serialised differently")
	}
}

func TestRecordShape(t *testing.T) {
	rec := recordCorpus(t)
	if len(rec.Entries) != 6 {
		t.Fatalf("recorded %d entries, want 6", len(rec.Entries))
	}
	for i, e := range rec.Entries {
		if e.Steps <= 0 {
			t.Fatalf("entry %d: non-positive step count %d", i, e.Steps)
		}
		if i > 0 && e.At <= rec.Entries[i-1].At {
			t.Fatalf("entry %d at %v does not advance past %v", i, e.At, rec.Entries[i-1].At)
		}
	}
	// Same app, same module: identical fingerprints and step counts
	// across repetitions.
	if rec.Entries[0].Hash != rec.Entries[2].Hash || rec.Entries[0].Steps != rec.Entries[2].Steps {
		t.Fatal("repeated runs of one module disagree")
	}
	// Different modules: different fingerprints.
	if rec.Entries[0].Hash == rec.Entries[1].Hash {
		t.Fatal("distinct modules share a fingerprint")
	}
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	rec := recordCorpus(t)
	data, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := tracer.UnmarshalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", rec, back)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	data, err := recordCorpus(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.UnmarshalRecord(data[:len(data)-3]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := tracer.UnmarshalRecord(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if _, err := tracer.UnmarshalRecord(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestFingerprintStructural: the fingerprint must move when any part
// the interpreter reads moves, and must not depend on anything else.
func TestFingerprintStructural(t *testing.T) {
	m1, err := minic.Compile(recSrcA, "a")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := minic.Compile(recSrcA, "a")
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Fingerprint(m1) != tracer.Fingerprint(m2) {
		t.Fatal("identical compiles fingerprint differently")
	}
	// One constant changed: different program, different fingerprint.
	m3, err := minic.Compile(
		"\nfloat a[16];\nfloat main() {\n  float i = 0;\n  for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }\n  return a[14];\n}", "a")
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Fingerprint(m1) == tracer.Fingerprint(m3) {
		t.Fatal("distinct programs share a fingerprint")
	}
}
