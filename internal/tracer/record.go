// Trace recording: a Recorder executes converted modules under the
// interpreter and logs one entry per run — which application, a
// structural fingerprint of the module it was built from, the dynamic
// step count, and the virtual arrival instant derived from the
// accumulated cost. The resulting Record serialises to a deterministic
// byte stream, so two recordings of the same seeded corpus are
// byte-identical and a replayed run can prove it is consuming the
// trace it thinks it is.
package tracer

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/ir"
	"repro/internal/vtime"
)

// Fingerprint computes a structural FNV-1a hash of a module: globals,
// functions, blocks, instructions and terminators in declaration
// order. Two modules compare equal exactly when every part the
// interpreter reads is identical, so a replay consumer can detect a
// trace recorded against a different build of the same application.
func Fingerprint(m *ir.Module) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	str(m.Name)
	for _, gn := range m.GlobalOrder {
		g := m.Globals[gn]
		str(g.Name)
		u64(uint64(g.Elems))
		u64(uint64(len(g.Init)))
		for _, v := range g.Init {
			u64(math.Float64bits(v))
		}
	}
	for _, fn := range m.FuncOrder {
		f := m.Funcs[fn]
		str(f.Name)
		u64(uint64(f.NumParams))
		u64(uint64(f.NumRegs))
		u64(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			str(b.Label)
			u64(uint64(len(b.Instrs)))
			for _, in := range b.Instrs {
				u64(uint64(in.Op))
				u64(uint64(int64(in.Dst)))
				u64(uint64(int64(in.A)))
				u64(uint64(int64(in.B)))
				u64(math.Float64bits(in.Imm))
				str(in.Sym)
				u64(uint64(len(in.Args)))
				for _, a := range in.Args {
					u64(uint64(int64(a)))
				}
			}
			u64(uint64(b.Term.Kind))
			u64(uint64(int64(b.Term.Cond)))
			u64(uint64(int64(b.Term.Then)))
			u64(uint64(int64(b.Term.Else)))
		}
	}
	return h.Sum64()
}

// Entry is one recorded run: an application arrival in the trace.
type Entry struct {
	// App names the application the run belongs to.
	App string
	// Hash is the Fingerprint of the module the run executed.
	Hash uint64
	// Steps is the dynamic instruction count of the run.
	Steps int64
	// At is the virtual instant the arrival lands on.
	At vtime.Time
}

// Record is a completed recording: an ordered arrival trace plus the
// cost scale it was recorded under.
type Record struct {
	// PerInstrNS is the per-instruction cost used to advance the
	// recording clock between runs.
	PerInstrNS float64
	// Entries lists the arrivals in recording order; At is
	// non-decreasing by construction.
	Entries []Entry
}

// recordMagic versions the serialised form.
const recordMagic = "TRCREC1\x00"

// MarshalBinary renders the record as a deterministic little-endian
// byte stream: same record in, same bytes out, always.
func (r *Record) MarshalBinary() ([]byte, error) {
	var out []byte
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		out = append(out, buf[:]...)
	}
	out = append(out, recordMagic...)
	u64(math.Float64bits(r.PerInstrNS))
	u64(uint64(len(r.Entries)))
	for _, e := range r.Entries {
		if e.Steps < 0 {
			return nil, fmt.Errorf("tracer: entry %q has negative step count %d", e.App, e.Steps)
		}
		u64(uint64(len(e.App)))
		out = append(out, e.App...)
		u64(e.Hash)
		u64(uint64(e.Steps))
		u64(uint64(int64(e.At)))
	}
	return out, nil
}

// UnmarshalRecord parses a stream produced by MarshalBinary.
func UnmarshalRecord(data []byte) (*Record, error) {
	if len(data) < len(recordMagic) || string(data[:len(recordMagic)]) != recordMagic {
		return nil, fmt.Errorf("tracer: not a trace record (bad magic)")
	}
	data = data[len(recordMagic):]
	u64 := func() (uint64, error) {
		if len(data) < 8 {
			return 0, fmt.Errorf("tracer: truncated trace record")
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v, nil
	}
	r := &Record{}
	bits, err := u64()
	if err != nil {
		return nil, err
	}
	r.PerInstrNS = math.Float64frombits(bits)
	n, err := u64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var e Entry
		l, err := u64()
		if err != nil {
			return nil, err
		}
		if uint64(len(data)) < l {
			return nil, fmt.Errorf("tracer: truncated trace record")
		}
		e.App = string(data[:l])
		data = data[l:]
		if e.Hash, err = u64(); err != nil {
			return nil, err
		}
		steps, err := u64()
		if err != nil {
			return nil, err
		}
		e.Steps = int64(steps)
		at, err := u64()
		if err != nil {
			return nil, err
		}
		e.At = vtime.Time(int64(at))
		r.Entries = append(r.Entries, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("tracer: %d trailing bytes after trace record", len(data))
	}
	return r, nil
}

// Recorder accumulates a Record by executing module entry functions
// under the interpreter and advancing a virtual clock by each run's
// dynamic cost. Runs land back to back: entry i+1 arrives when entry
// i's modelled execution finishes, which gives replayed workloads the
// serial-baseline arrival cadence the emulated schedulers then overlap.
type Recorder struct {
	// PerInstrNS converts step counts to virtual nanoseconds; zero or
	// negative falls back to 1.0.
	PerInstrNS float64
	// MaxSteps bounds each recorded run (0 = unbounded), exactly as
	// tracer.Options.MaxSteps.
	MaxSteps int64

	rec Record
	now vtime.Time
}

// NewRecorder returns a Recorder with the given cost scale.
func NewRecorder(perInstrNS float64) *Recorder {
	if perInstrNS <= 0 {
		perInstrNS = 1
	}
	return &Recorder{PerInstrNS: perInstrNS, rec: Record{PerInstrNS: perInstrNS}}
}

// Run executes fn of the module against fresh storage, appends the
// arrival entry for the given application name, and advances the
// recording clock by the run's modelled cost.
func (r *Recorder) Run(m *ir.Module, app, fn string, args ...float64) error {
	env := NewEnv(m)
	ip, err := New(m, env, Options{MaxSteps: r.MaxSteps})
	if err != nil {
		return err
	}
	if _, err := ip.Call(fn, args...); err != nil {
		return fmt.Errorf("tracer: recording %s: %w", app, err)
	}
	r.rec.Entries = append(r.rec.Entries, Entry{
		App:   app,
		Hash:  Fingerprint(m),
		Steps: ip.Steps(),
		At:    r.now,
	})
	cost := vtime.Duration(float64(ip.Steps()) * r.PerInstrNS)
	if cost < 1 {
		cost = 1
	}
	r.now = r.now.Add(cost)
	return nil
}

// Record returns the accumulated trace. The recorder may keep running
// afterwards; the returned value is a snapshot.
func (r *Recorder) Record() *Record {
	snap := Record{PerInstrNS: r.rec.PerInstrNS}
	snap.Entries = append(snap.Entries, r.rec.Entries...)
	return &snap
}
