// Package tracer executes ir modules under instrumentation, producing
// the dynamic basic-block traces the kernel detector consumes. It is
// the reproduction's stand-in for the paper's TraceAtlas flow: "we
// compile a tracing executable that dumps a runtime trace of its
// application behavior" — here the interpreter emits block events
// directly.
package tracer

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Env is the mutable execution state: global array storage. Outlined
// functions communicate through it, mirroring the shared-memory
// contract of the paper's extracted kernels.
type Env struct {
	Globals map[string][]float64
}

// NewEnv allocates storage for every module global, applying
// initialisers.
func NewEnv(m *ir.Module) *Env {
	env := &Env{Globals: make(map[string][]float64, len(m.Globals))}
	for name, g := range m.Globals {
		buf := make([]float64, g.Elems)
		copy(buf, g.Init)
		env.Globals[name] = buf
	}
	return env
}

// BlockListener observes dynamic execution, one call per basic block
// entered.
type BlockListener interface {
	OnBlock(fn string, globalID int)
}

// CountTrace accumulates per-block execution counts plus the total
// dynamic instruction count — the profile the kernel detector uses.
type CountTrace struct {
	Counts []int64
	Blocks int64
}

// OnBlock implements BlockListener.
func (c *CountTrace) OnBlock(_ string, id int) {
	if id >= 0 && id < len(c.Counts) {
		c.Counts[id]++
	}
	c.Blocks++
}

// NewCountTrace sizes a trace for the module.
func NewCountTrace(m *ir.Module) *CountTrace {
	return &CountTrace{Counts: make([]int64, m.NumBlocks())}
}

// Options bounds execution.
type Options struct {
	// MaxSteps aborts runaway programs (dynamic instruction budget).
	// Zero means the default of 500M.
	MaxSteps int64
	// Listener receives block events; nil disables instrumentation.
	Listener BlockListener
}

// Interp executes functions of a finalized module against an Env.
type Interp struct {
	m     *ir.Module
	env   *Env
	opts  Options
	steps int64
	// InstrCount tallies executed instructions per global block id
	// when a listener is attached, giving the outliner its region
	// cost profile.
	InstrCount []int64
}

// New builds an interpreter. The module must be finalized.
func New(m *ir.Module, env *Env, opts Options) (*Interp, error) {
	if !m.Finalized() {
		return nil, fmt.Errorf("tracer: module %q not finalized", m.Name)
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 500_000_000
	}
	return &Interp{m: m, env: env, opts: opts, InstrCount: make([]int64, m.NumBlocks())}, nil
}

// Call runs the named function with arguments and returns its value.
func (ip *Interp) Call(fn string, args ...float64) (float64, error) {
	f, ok := ip.m.Funcs[fn]
	if !ok {
		return 0, fmt.Errorf("tracer: unknown function %q", fn)
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("tracer: %s expects %d arguments, got %d", fn, f.NumParams, len(args))
	}
	return ip.exec(f, args)
}

// Steps reports the dynamic instruction count so far.
func (ip *Interp) Steps() int64 { return ip.steps }

func (ip *Interp) exec(f *ir.Func, args []float64) (float64, error) {
	regs := make([]float64, f.NumRegs)
	copy(regs, args)
	bi := 0
	for {
		b := f.Blocks[bi]
		if ip.opts.Listener != nil {
			ip.opts.Listener.OnBlock(f.Name, b.GlobalID)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ip.steps++
			if ip.steps > ip.opts.MaxSteps {
				return 0, fmt.Errorf("tracer: step budget exhausted in %s", f.Name)
			}
			if err := ip.step(f, regs, in); err != nil {
				return 0, err
			}
		}
		ip.InstrCount[b.GlobalID] += int64(len(b.Instrs))
		switch b.Term.Kind {
		case ir.TermBr:
			bi = b.Term.Then
		case ir.TermCondBr:
			if regs[b.Term.Cond] != 0 {
				bi = b.Term.Then
			} else {
				bi = b.Term.Else
			}
		case ir.TermRet:
			if b.Term.Cond < 0 {
				return 0, nil
			}
			return regs[b.Term.Cond], nil
		}
	}
}

func (ip *Interp) step(f *ir.Func, regs []float64, in *ir.Instr) error {
	switch in.Op {
	case ir.OpConst:
		regs[in.Dst] = in.Imm
	case ir.OpMov:
		regs[in.Dst] = regs[in.A]
	case ir.OpAdd:
		regs[in.Dst] = regs[in.A] + regs[in.B]
	case ir.OpSub:
		regs[in.Dst] = regs[in.A] - regs[in.B]
	case ir.OpMul:
		regs[in.Dst] = regs[in.A] * regs[in.B]
	case ir.OpDiv:
		regs[in.Dst] = regs[in.A] / regs[in.B]
	case ir.OpMod:
		regs[in.Dst] = math.Mod(regs[in.A], regs[in.B])
	case ir.OpNeg:
		regs[in.Dst] = -regs[in.A]
	case ir.OpEq:
		regs[in.Dst] = b2f(regs[in.A] == regs[in.B])
	case ir.OpNe:
		regs[in.Dst] = b2f(regs[in.A] != regs[in.B])
	case ir.OpLt:
		regs[in.Dst] = b2f(regs[in.A] < regs[in.B])
	case ir.OpLe:
		regs[in.Dst] = b2f(regs[in.A] <= regs[in.B])
	case ir.OpGt:
		regs[in.Dst] = b2f(regs[in.A] > regs[in.B])
	case ir.OpGe:
		regs[in.Dst] = b2f(regs[in.A] >= regs[in.B])
	case ir.OpAnd:
		regs[in.Dst] = b2f(regs[in.A] != 0 && regs[in.B] != 0)
	case ir.OpOr:
		regs[in.Dst] = b2f(regs[in.A] != 0 || regs[in.B] != 0)
	case ir.OpNot:
		regs[in.Dst] = b2f(regs[in.A] == 0)
	case ir.OpSin:
		regs[in.Dst] = math.Sin(regs[in.A])
	case ir.OpCos:
		regs[in.Dst] = math.Cos(regs[in.A])
	case ir.OpSqrt:
		regs[in.Dst] = math.Sqrt(regs[in.A])
	case ir.OpAbs:
		regs[in.Dst] = math.Abs(regs[in.A])
	case ir.OpFloor:
		regs[in.Dst] = math.Floor(regs[in.A])
	case ir.OpLoad:
		buf := ip.env.Globals[in.Sym]
		idx := int(regs[in.A])
		if idx < 0 || idx >= len(buf) {
			return fmt.Errorf("tracer: %s: load %s[%d] out of bounds (%d elems)", f.Name, in.Sym, idx, len(buf))
		}
		regs[in.Dst] = buf[idx]
	case ir.OpStore:
		buf := ip.env.Globals[in.Sym]
		idx := int(regs[in.A])
		if idx < 0 || idx >= len(buf) {
			return fmt.Errorf("tracer: %s: store %s[%d] out of bounds (%d elems)", f.Name, in.Sym, idx, len(buf))
		}
		buf[idx] = regs[in.B]
	case ir.OpCall:
		callee, ok := ip.m.Funcs[in.Sym]
		if !ok {
			return fmt.Errorf("tracer: %s: call to unknown %q", f.Name, in.Sym)
		}
		args := make([]float64, len(in.Args))
		for i, r := range in.Args {
			args[i] = regs[r]
		}
		ret, err := ip.exec(callee, args)
		if err != nil {
			return err
		}
		regs[in.Dst] = ret
	default:
		return fmt.Errorf("tracer: %s: unknown opcode %v", f.Name, in.Op)
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Run is a convenience wrapper: build an env, run fn, return the env
// for inspection.
func Run(m *ir.Module, fn string, listener BlockListener, args ...float64) (*Env, float64, error) {
	env := NewEnv(m)
	ip, err := New(m, env, Options{Listener: listener})
	if err != nil {
		return nil, 0, err
	}
	ret, err := ip.Call(fn, args...)
	return env, ret, err
}
