package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCancelMidGrid is the cancellation contract test: a context
// cancelled partway through a grid (a) stops feeding new cells, (b)
// returns the cells that did complete with Incomplete set — partial
// results are flagged, never silently truncated — and (c) leaks no
// goroutines (every worker has exited when RunContext returns).
func TestCancelMidGrid(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var started atomic.Int32
			const n = 64
			cells := make([]Cell[int], n)
			for i := range cells {
				cells[i] = Cell[int]{
					Label: fmt.Sprintf("cell%d", i),
					Run: func(*core.Scratch) (int, error) {
						// Cancel once a few cells are in flight; later
						// cells must then never start.
						if started.Add(1) == 8 {
							cancel()
						}
						return i * i, nil
					},
				}
			}
			oc, err := RunContext(ctx, cells, Options{Workers: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled sweep returned err=%v, want context.Canceled", err)
			}
			if !oc.Incomplete {
				t.Fatal("cancelled sweep not flagged Incomplete")
			}
			if got := oc.NumDone(); got == 0 || got == n {
				t.Fatalf("mid-grid cancel completed %d/%d cells, want partial", got, n)
			}
			for i, done := range oc.Done {
				if done && oc.Results[i] != i*i {
					t.Fatalf("completed cell %d has wrong result %d", i, oc.Results[i])
				}
				if !done && oc.Results[i] != 0 {
					t.Fatalf("unfinished cell %d has non-zero result %d", i, oc.Results[i])
				}
			}

			// No goroutine leaks: workers exit before RunContext
			// returns. NumGoroutine is noisy (test framework, GC), so
			// poll briefly before declaring a leak.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d before, %d after cancel",
						before, runtime.NumGoroutine())
				}
				runtime.Gosched()
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestCancelBeforeStart: a context cancelled before the sweep begins
// attempts nothing and reports Incomplete.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	cells := []Cell[int]{{Label: "never", Run: func(*core.Scratch) (int, error) {
		ran = true
		return 1, nil
	}}}
	oc, err := RunContext(ctx, cells, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) || !oc.Incomplete {
		t.Fatalf("pre-cancelled sweep: err=%v incomplete=%v", err, oc.Incomplete)
	}
	if ran || oc.NumDone() != 0 {
		t.Fatal("pre-cancelled sweep ran a cell")
	}
}

// TestCancelCause propagates a WithCancelCause cause, so a server
// drain can distinguish "client went away" from "shutting down".
func TestCancelCause(t *testing.T) {
	drain := errors.New("server draining")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(drain)
	_, err := RunContext(ctx, []Cell[int]{{Label: "c", Run: func(*core.Scratch) (int, error) {
		return 0, nil
	}}}, Options{Workers: 2})
	if !errors.Is(err, drain) {
		t.Fatalf("cause lost: %v", err)
	}
}

// TestKeepGoingMergesCompletedCells: under KeepGoing, failing and
// panicking cells become structured CellErrors carrying their grid
// coordinates while every other cell still completes, deterministically
// in grid order.
func TestKeepGoingMergesCompletedCells(t *testing.T) {
	boom := errors.New("boom")
	const n = 16
	mk := func() []Cell[int] {
		cells := make([]Cell[int], n)
		for i := range cells {
			cells[i] = Cell[int]{
				Label: fmt.Sprintf("cell%d", i),
				Run: func(*core.Scratch) (int, error) {
					switch i {
					case 3:
						return 0, boom
					case 11:
						panic("kernel bug")
					}
					return i * i, nil
				},
			}
		}
		return cells
	}
	for _, workers := range []int{1, 4} {
		oc, err := RunContext(context.Background(), mk(), Options{Workers: workers, KeepGoing: true})
		if err != nil {
			t.Fatalf("workers=%d: KeepGoing surfaced aggregate error %v", workers, err)
		}
		if oc.Incomplete {
			t.Fatalf("workers=%d: KeepGoing run flagged Incomplete", workers)
		}
		if oc.NumDone() != n-2 {
			t.Fatalf("workers=%d: %d cells done, want %d", workers, oc.NumDone(), n-2)
		}
		for i, done := range oc.Done {
			if i == 3 || i == 11 {
				if done {
					t.Fatalf("workers=%d: failed cell %d marked done", workers, i)
				}
				continue
			}
			if !done || oc.Results[i] != i*i {
				t.Fatalf("workers=%d: cell %d done=%v result=%d", workers, i, done, oc.Results[i])
			}
		}
		if len(oc.Errs) != 2 {
			t.Fatalf("workers=%d: %d cell errors, want 2: %v", workers, len(oc.Errs), oc.Errs)
		}
		e3, e11 := oc.Errs[0], oc.Errs[1]
		if e3.Index != 3 || e3.Label != "cell3" || e3.Panicked || !errors.Is(e3, boom) {
			t.Fatalf("workers=%d: bad error coordinates: %+v", workers, e3)
		}
		if e11.Index != 11 || e11.Label != "cell11" || !e11.Panicked ||
			!strings.Contains(e11.Err.Error(), "kernel bug") {
			t.Fatalf("workers=%d: bad panic coordinates: %+v", workers, e11)
		}
		if !strings.Contains(e11.Error(), "cell 11 (cell11)") {
			t.Fatalf("workers=%d: CellError message lost coordinates: %v", workers, e11)
		}
	}
}

// TestAbortReturnsStructuredError: without KeepGoing the classic
// abort semantics hold, but the returned error is now a *CellError
// whose coordinates are inspectable, and the Outcome still carries the
// cells that finished before the abort.
func TestAbortReturnsStructuredError(t *testing.T) {
	boom := errors.New("boom")
	cells := make([]Cell[int], 8)
	for i := range cells {
		cells[i] = Cell[int]{
			Label: fmt.Sprintf("cell%d", i),
			Run: func(*core.Scratch) (int, error) {
				if i == 2 {
					return 0, boom
				}
				return i, nil
			},
		}
	}
	oc, err := RunContext(context.Background(), cells, Options{Workers: 1})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("abort error is not a *CellError: %v", err)
	}
	if ce.Index != 2 || ce.Label != "cell2" || !errors.Is(ce, boom) {
		t.Fatalf("bad structured abort error: %+v", ce)
	}
	if !oc.Incomplete {
		t.Fatal("aborted sweep not flagged Incomplete")
	}
	if oc.NumDone() != 2 || !oc.Done[0] || !oc.Done[1] {
		t.Fatalf("sequential abort should keep cells 0..1: done=%v", oc.Done)
	}
}
