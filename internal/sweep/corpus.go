package sweep

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/minic/minicgen"
	"repro/internal/stats"
	"repro/internal/tracer"
	"repro/internal/workload"
)

// Generated-corpus scenario class: a seeded batch of MiniC programs is
// compiled through the full conversion toolchain (MiniC -> IR ->
// outliner -> DAG) once, its recorded interpreter trace becomes the
// arrival process, and the result fans out across a sweep grid as
// ordinary Emulation cells. Grids built this way exercise application
// shapes no hand-written fixture covers while keeping the sweep
// engine's determinism contract: everything derives from the batch
// seeds, and each cell replays the same trace from a fresh single-use
// source.

// CorpusSpec describes one seeded corpus batch. The zero value of
// every field takes the documented default, so CorpusSpec{Batch: n}
// is a complete spec.
type CorpusSpec struct {
	// Batch selects the seed range: programs are generated from seeds
	// Batch*Apps .. Batch*Apps+Apps-1, so distinct batches never share
	// a program.
	Batch int
	// Apps is the number of generated programs in the batch. Default 8.
	Apps int
	// Reps is how many recorded interpreter rounds of the whole batch
	// make up the arrival trace. Default 2.
	Reps int
	// PerInstrNS converts interpreter step counts to virtual
	// nanoseconds in the recorded trace. The default 0.02 compresses
	// arrivals far below the specs' cost scale so replayed runs overlap
	// heavily, loading the ready queues. Zero takes the default.
	PerInstrNS float64
	// MaxSteps bounds each recorded interpreter run. Default 100M.
	MaxSteps int64
}

func (cs CorpusSpec) withDefaults() CorpusSpec {
	if cs.Apps <= 0 {
		cs.Apps = 8
	}
	if cs.Reps <= 0 {
		cs.Reps = 2
	}
	if cs.PerInstrNS <= 0 {
		cs.PerInstrNS = 0.02
	}
	if cs.MaxSteps <= 0 {
		cs.MaxSteps = 100_000_000
	}
	return cs
}

// corpusShape sweeps the generator's shape space by seed, the same way
// the minicgen property tests and the core corpus differential do.
func corpusShape(seed int64) minicgen.Config {
	return minicgen.Config{
		Regions:      2 + int(seed%9),
		Kernels:      1 + int(seed%4),
		MaxLoopDepth: 1 + int(seed%3),
		Helpers:      int(seed % 5),
		MaxCallDepth: 1 + int(seed%3),
		MaxArrayLen:  8 << (seed % 3),
		FanIn:        1 + int(seed%4),
	}
}

// Corpus is a compiled batch: the application library, the kernel
// registry its runfuncs were registered into, and the recorded arrival
// trace. A Corpus is immutable after Compile and safe to share across
// the cells of a grid; per-run state lives in the sources it hands out.
type Corpus struct {
	// Spec is the (default-filled) spec the corpus was compiled from.
	Spec CorpusSpec
	// Names lists the generated applications in seed order.
	Names []string
	// Registry resolves the generated runfunc symbols; cells built
	// from this corpus must emulate against it.
	Registry *kernels.Registry

	specs  map[string]*appmodel.AppSpec
	prints map[string]uint64
	rec    *tracer.Record
}

// Compile generates the batch's programs, converts each through the
// pipeline, and records Reps interpreter rounds as the arrival trace.
// The work happens once per corpus, not once per cell.
func (cs CorpusSpec) Compile() (*Corpus, error) {
	cs = cs.withDefaults()
	c := &Corpus{
		Spec:     cs,
		Registry: kernels.NewRegistry(),
		specs:    map[string]*appmodel.AppSpec{},
		prints:   map[string]uint64{},
	}
	mods := map[string]*ir.Module{}
	for i := 0; i < cs.Apps; i++ {
		seed := int64(cs.Batch*cs.Apps + i)
		p := minicgen.Generate(seed, corpusShape(seed))
		spec, res, err := p.Build(c.Registry)
		if err != nil {
			return nil, fmt.Errorf("sweep: corpus seed %d failed conversion: %w", seed, err)
		}
		c.Names = append(c.Names, spec.AppName)
		c.specs[spec.AppName] = spec
		c.prints[spec.AppName] = tracer.Fingerprint(res.Module)
		mods[spec.AppName] = res.Module
	}
	recorder := tracer.NewRecorder(cs.PerInstrNS)
	recorder.MaxSteps = cs.MaxSteps
	for r := 0; r < cs.Reps; r++ {
		for _, name := range c.Names {
			if err := recorder.Run(mods[name], name, "main"); err != nil {
				return nil, fmt.Errorf("sweep: corpus recording: %w", err)
			}
		}
	}
	c.rec = recorder.Record()
	return c, nil
}

// Arrivals reports how many application instances one replay pass
// delivers (Apps x Reps).
func (c *Corpus) Arrivals() int { return len(c.rec.Entries) }

// Source returns a fresh single-use replay of the corpus trace. Each
// emulator run needs its own.
func (c *Corpus) Source() core.ArrivalSource {
	return workload.NewReplaySource(c.rec, c.specs, c.prints)
}

// Cell wraps the corpus as a labelled grid cell: base supplies the
// platform, policy and seeding exactly as for any Emulation, and the
// corpus supplies the registry plus a fresh replay source on every
// invocation (satisfying the single-use Source rule). Base's Arrivals,
// Source and Registry fields are ignored. The usual Emulation sharing
// rules still apply to base — in particular a stateful Policy must be
// per-cell.
func (c *Corpus) Cell(label string, base Emulation) Cell[*stats.Report] {
	return Cell[*stats.Report]{
		Label: label,
		Run: func(s *core.Scratch) (*stats.Report, error) {
			em := base
			em.Registry = c.Registry
			em.Arrivals = nil
			em.Source = c.Source()
			return em.Run(s)
		},
	}
}
