// Package sweep is the framework's parallel experiment engine: it
// fans a grid of independent emulation cells out over a bounded worker
// pool and merges the results in grid order, so a sweep parallelised
// over N workers produces byte-identical output to the sequential run.
//
// The paper's evaluation (Section III) is exactly such a grid —
// policy x injection rate x configuration x trial — and every cell is
// an independent deterministic emulation against its own virtual
// clock, so the sweep layer is embarrassingly parallel. Determinism is
// preserved by construction rather than by locking: each cell carries
// its own seed and builds its own emulator, workers share nothing but
// a per-worker scratch buffer (core.Scratch, recycled through a
// sync.Pool), and results land in a slice indexed by grid position, so
// neither the worker count nor completion order can influence what a
// cell computes or where its result ends up.
//
// Cells are plain functions, so anything can be swept, but most grids
// are emulator runs: the Emulation cell spec in this package carries a
// complete core.Options cell (policy, platform, trace, seed, and the
// SkipExecution fast path used by timing-only scheduler studies) and
// handles per-worker scratch plumbing itself.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Cell is one independent unit of work in a sweep grid. Run receives
// the worker's reusable scratch; it must not share mutable state with
// other cells and must compute the same result regardless of which
// worker executes it or when.
type Cell[T any] struct {
	// Label identifies the cell in progress output and errors
	// ("fig10 eft@6.92").
	Label string
	// Run executes the cell. The scratch is owned by the calling
	// worker for the duration of the call.
	Run func(s *core.Scratch) (T, error)
}

// Options configure a sweep run.
type Options struct {
	// Workers bounds the worker pool; 0 (the default) uses
	// runtime.GOMAXPROCS(0). 1 degenerates to a sequential sweep.
	Workers int
	// Progress, when non-nil, receives throttled "done/total + ETA"
	// lines (cmd/experiments points it at stderr). nil is silent.
	Progress io.Writer
	// Label names the sweep in progress output.
	Label string
	// KeepGoing runs every cell even after failures: a failing or
	// panicking cell becomes a CellError in the Outcome instead of
	// aborting the grid, so long-lived callers (the emulated daemon)
	// can merge the completed cells and report the broken ones
	// per-coordinate. The default (false) preserves the classic
	// abort-on-first-error semantics.
	KeepGoing bool
}

// CellError is the structured failure of one grid cell: the grid
// coordinate (Index), the cell's label, and whether the failure was a
// recovered panic. A sweep converts worker panics into CellErrors so a
// single bad cell can never take down the process that hosts the pool.
type CellError struct {
	// Index is the cell's grid coordinate (cells[Index] failed).
	Index int
	// Label is the failing cell's label.
	Label string
	// Panicked records that Err was recovered from a panic rather than
	// returned by the cell.
	Panicked bool
	// Err is the underlying failure; for panics it carries the panic
	// value and stack.
	Err error
}

// Error renders the classic sweep error shape ("sweep: cell 5 (eft@6.92): ...").
func (e *CellError) Error() string {
	return fmt.Sprintf("sweep: cell %d (%s): %v", e.Index, e.Label, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Outcome is the full result of a context-aware sweep, partial
// completion included. Results is always in grid order; Results[i] is
// meaningful only where Done[i] is true.
type Outcome[T any] struct {
	// Results holds per-cell results in grid order.
	Results []T
	// Done marks which cells completed successfully. Under
	// cancellation or abort the set of completed cells depends on
	// worker timing, but every completed cell's value is the
	// deterministic value that cell always computes.
	Done []bool
	// Errs lists failed cells in ascending grid order (empty on a
	// clean run). With Options.KeepGoing it covers every failed cell;
	// without, it covers the failures observed before the abort.
	Errs []*CellError
	// Incomplete is true when not every cell was attempted — the
	// context was cancelled or a failure aborted the grid. A caller
	// that consumes partial results must check this flag: a sweep
	// never silently truncates.
	Incomplete bool
}

// NumDone counts the successfully completed cells.
func (o *Outcome[T]) NumDone() int {
	n := 0
	for _, d := range o.Done {
		if d {
			n++
		}
	}
	return n
}

// scratchPool recycles per-worker emulator scratch state across sweeps
// so back-to-back grids (cmd/experiments -exp all) keep their warmed
// buffers.
var scratchPool = sync.Pool{New: func() any { return core.NewScratch() }}

// Run executes every cell over the worker pool and returns the
// results in grid order: out[i] is cells[i]'s result, whatever order
// the workers finished in. On failure it returns the error of the
// lowest-indexed cell that was observed to fail (remaining cells are
// skipped, so under concurrency the identity of that cell can vary
// between runs; successful sweeps are fully deterministic). Callers
// that need cancellation, partial-result merging, or keep-going
// semantics use RunContext.
func Run[T any](cells []Cell[T], opts Options) ([]T, error) {
	opts.KeepGoing = false
	oc, err := RunContext(context.Background(), cells, opts)
	if err != nil {
		return nil, err
	}
	if len(oc.Results) == 0 {
		return nil, nil
	}
	return oc.Results, nil
}

// RunContext is the context-aware sweep entry point. It executes cells
// over the worker pool until the grid is exhausted, the context is
// cancelled, or (without Options.KeepGoing) a cell fails. The returned
// Outcome always carries every completed cell's result in grid order —
// cancellation and failure surrender the remaining cells, never the
// finished ones — with Incomplete set whenever some cell was not run.
//
// Cancellation is drain-shaped: in-flight cells finish (a cell is an
// independent emulation against its own virtual clock and cannot be
// preempted mid-run), no new cells start, and every worker goroutine
// has exited by the time RunContext returns, so a cancelled sweep
// leaks nothing.
//
// The error is non-nil when the run was cut short: the context's
// cancellation cause, or the lowest-indexed observed *CellError when a
// cell failure aborted the grid. With KeepGoing, cell failures are
// reported only through Outcome.Errs and the error stays nil.
func RunContext[T any](ctx context.Context, cells []Cell[T], opts Options) (*Outcome[T], error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	oc := &Outcome[T]{
		Results: make([]T, len(cells)),
		Done:    make([]bool, len(cells)),
	}
	if len(cells) == 0 {
		return oc, ctx.Err()
	}

	errs := make([]*CellError, len(cells))
	prog := newProgress(opts.Progress, opts.Label, len(cells))
	attempted := 0

	if workers <= 1 {
		// Sequential fast path: same code shape, no goroutines, and
		// errors abort at the exact failing cell.
		s := scratchPool.Get().(*core.Scratch)
		defer scratchPool.Put(s)
	seq:
		for i, c := range cells {
			if ctx.Err() != nil {
				break seq
			}
			attempted++
			if err := runCell(&oc.Results[i], i, c, s, errs); err != nil {
				if !opts.KeepGoing {
					break seq
				}
				continue
			}
			oc.Done[i] = true
			prog.step()
		}
		return finishOutcome(ctx, oc, errs, attempted, len(cells), opts, prog)
	}

	next := make(chan int)
	var wg sync.WaitGroup
	var failed sync.Once
	abort := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker for its whole lifetime: buffer
			// reuse without any cross-worker sharing.
			s := scratchPool.Get().(*core.Scratch)
			defer scratchPool.Put(s)
			for i := range next {
				if err := runCell(&oc.Results[i], i, cells[i], s, errs); err != nil {
					if !opts.KeepGoing {
						failed.Do(func() { close(abort) })
					}
					continue
				}
				oc.Done[i] = true
				prog.step()
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case next <- i:
			attempted++
		case <-abort:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	return finishOutcome(ctx, oc, errs, attempted, len(cells), opts, prog)
}

// finishOutcome assembles the Outcome shared by the sequential and
// parallel paths: collect per-cell errors in grid order, classify the
// run as complete/incomplete, and pick the error to surface.
func finishOutcome[T any](ctx context.Context, oc *Outcome[T], errs []*CellError,
	attempted, total int, opts Options, prog *progress) (*Outcome[T], error) {
	for _, e := range errs {
		if e != nil {
			oc.Errs = append(oc.Errs, e)
		}
	}
	sort.Slice(oc.Errs, func(i, j int) bool { return oc.Errs[i].Index < oc.Errs[j].Index })

	if err := context.Cause(ctx); err != nil {
		oc.Incomplete = true
		return oc, err
	}
	if !opts.KeepGoing && len(oc.Errs) > 0 {
		oc.Incomplete = true
		return oc, oc.Errs[0]
	}
	if attempted < total {
		// Aborted without a recorded error or cancellation: the
		// failing worker's error lands before wg.Wait returns, so this
		// is unreachable — but classify defensively rather than lie
		// about completeness.
		oc.Incomplete = true
		return oc, nil
	}
	if len(oc.Errs) == 0 {
		prog.finish()
	}
	return oc, nil
}

// runCell executes one cell, converting a panic into a structured
// CellError so a bad cell fails its sweep (or, under KeepGoing, only
// itself) instead of killing the process from a worker goroutine.
func runCell[T any](out *T, i int, c Cell[T], s *core.Scratch, errs []*CellError) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			errs[i] = &CellError{Index: i, Label: c.Label, Panicked: true, Err: err}
		}
	}()
	v, err := c.Run(s)
	if err != nil {
		errs[i] = &CellError{Index: i, Label: c.Label, Err: err}
		return err
	}
	*out = v
	return nil
}

// progress is the throttled done/total + ETA reporter. The wall clock
// here only shapes log lines, never results.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	start time.Time
	last  time.Time
}

const progressEvery = 250 * time.Millisecond

func newProgress(w io.Writer, label string, total int) *progress {
	if label == "" {
		label = "sweep"
	}
	return &progress{w: w, label: label, total: total, start: time.Now()}
}

func (p *progress) step() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	now := time.Now()
	if now.Sub(p.last) < progressEvery || p.done == p.total {
		return // the final cell is reported by finish's summary line
	}
	p.last = now
	elapsed := now.Sub(p.start)
	eta := time.Duration(0)
	if p.done > 0 {
		eta = time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
	}
	fmt.Fprintf(p.w, "%s: %d/%d (%.0f%%) elapsed %s eta %s\n",
		p.label, p.done, p.total, 100*float64(p.done)/float64(p.total),
		elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
}

func (p *progress) finish() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done < p.total {
		// Error path already reported; nothing to summarise.
		return
	}
	fmt.Fprintf(p.w, "%s: done (%d cells in %s)\n",
		p.label, p.total, time.Since(p.start).Round(time.Millisecond))
}
