// Package sweep is the framework's parallel experiment engine: it
// fans a grid of independent emulation cells out over a bounded worker
// pool and merges the results in grid order, so a sweep parallelised
// over N workers produces byte-identical output to the sequential run.
//
// The paper's evaluation (Section III) is exactly such a grid —
// policy x injection rate x configuration x trial — and every cell is
// an independent deterministic emulation against its own virtual
// clock, so the sweep layer is embarrassingly parallel. Determinism is
// preserved by construction rather than by locking: each cell carries
// its own seed and builds its own emulator, workers share nothing but
// a per-worker scratch buffer (core.Scratch, recycled through a
// sync.Pool), and results land in a slice indexed by grid position, so
// neither the worker count nor completion order can influence what a
// cell computes or where its result ends up.
//
// Cells are plain functions, so anything can be swept, but most grids
// are emulator runs: the Emulation cell spec in this package carries a
// complete core.Options cell (policy, platform, trace, seed, and the
// SkipExecution fast path used by timing-only scheduler studies) and
// handles per-worker scratch plumbing itself.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
)

// Cell is one independent unit of work in a sweep grid. Run receives
// the worker's reusable scratch; it must not share mutable state with
// other cells and must compute the same result regardless of which
// worker executes it or when.
type Cell[T any] struct {
	// Label identifies the cell in progress output and errors
	// ("fig10 eft@6.92").
	Label string
	// Run executes the cell. The scratch is owned by the calling
	// worker for the duration of the call.
	Run func(s *core.Scratch) (T, error)
}

// Options configure a sweep run.
type Options struct {
	// Workers bounds the worker pool; 0 (the default) uses
	// runtime.GOMAXPROCS(0). 1 degenerates to a sequential sweep.
	Workers int
	// Progress, when non-nil, receives throttled "done/total + ETA"
	// lines (cmd/experiments points it at stderr). nil is silent.
	Progress io.Writer
	// Label names the sweep in progress output.
	Label string
}

// scratchPool recycles per-worker emulator scratch state across sweeps
// so back-to-back grids (cmd/experiments -exp all) keep their warmed
// buffers.
var scratchPool = sync.Pool{New: func() any { return core.NewScratch() }}

// Run executes every cell over the worker pool and returns the
// results in grid order: out[i] is cells[i]'s result, whatever order
// the workers finished in. On failure it returns the error of the
// lowest-indexed cell that was observed to fail (remaining cells are
// skipped, so under concurrency the identity of that cell can vary
// between runs; successful sweeps are fully deterministic).
func Run[T any](cells []Cell[T], opts Options) ([]T, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if len(cells) == 0 {
		return nil, nil
	}

	out := make([]T, len(cells))
	errs := make([]error, len(cells))
	prog := newProgress(opts.Progress, opts.Label, len(cells))

	if workers <= 1 {
		// Sequential fast path: same code shape, no goroutines, and
		// errors abort at the exact failing cell.
		s := scratchPool.Get().(*core.Scratch)
		defer scratchPool.Put(s)
		for i, c := range cells {
			var err error
			if out[i], err = runCell(c, s); err != nil {
				return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, c.Label, err)
			}
			prog.step()
		}
		prog.finish()
		return out, nil
	}

	next := make(chan int)
	var wg sync.WaitGroup
	var failed sync.Once
	abort := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker for its whole lifetime: buffer
			// reuse without any cross-worker sharing.
			s := scratchPool.Get().(*core.Scratch)
			defer scratchPool.Put(s)
			for i := range next {
				var err error
				if out[i], err = runCell(cells[i], s); err != nil {
					errs[i] = err
					failed.Do(func() { close(abort) })
					continue
				}
				prog.step()
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case next <- i:
		case <-abort:
			break feed
		}
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, cells[i].Label, err)
		}
	}
	prog.finish()
	return out, nil
}

// runCell executes one cell, converting a panic into an error so a
// bad cell fails its sweep instead of killing the process from a
// worker goroutine.
func runCell[T any](c Cell[T], s *core.Scratch) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return c.Run(s)
}

// progress is the throttled done/total + ETA reporter. The wall clock
// here only shapes log lines, never results.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	start time.Time
	last  time.Time
}

const progressEvery = 250 * time.Millisecond

func newProgress(w io.Writer, label string, total int) *progress {
	if label == "" {
		label = "sweep"
	}
	return &progress{w: w, label: label, total: total, start: time.Now()}
}

func (p *progress) step() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	now := time.Now()
	if now.Sub(p.last) < progressEvery || p.done == p.total {
		return // the final cell is reported by finish's summary line
	}
	p.last = now
	elapsed := now.Sub(p.start)
	eta := time.Duration(0)
	if p.done > 0 {
		eta = time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
	}
	fmt.Fprintf(p.w, "%s: %d/%d (%.0f%%) elapsed %s eta %s\n",
		p.label, p.done, p.total, 100*float64(p.done)/float64(p.total),
		elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
}

func (p *progress) finish() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done < p.total {
		// Error path already reported; nothing to summarise.
		return
	}
	fmt.Fprintf(p.w, "%s: done (%d cells in %s)\n",
		p.label, p.total, time.Since(p.start).Round(time.Millisecond))
}
