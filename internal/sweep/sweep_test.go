package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestGridOrder verifies the core merge contract: out[i] belongs to
// cells[i] at every worker count, including worker counts above the
// cell count.
func TestGridOrder(t *testing.T) {
	const n = 64
	cells := make([]Cell[int], n)
	for i := range cells {
		cells[i] = Cell[int]{
			Label: fmt.Sprintf("cell%d", i),
			Run:   func(*core.Scratch) (int, error) { return i * i, nil },
		}
	}
	for _, workers := range []int{0, 1, 3, 16, 128} {
		out, err := Run(cells, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestEmptyGrid(t *testing.T) {
	out, err := Run[int](nil, Options{})
	if err != nil || out != nil {
		t.Fatalf("empty grid: out=%v err=%v", out, err)
	}
}

// TestErrorCarriesLabel checks that a failing cell aborts the sweep
// with its index and label in the error, sequentially and in parallel.
func TestErrorCarriesLabel(t *testing.T) {
	boom := errors.New("boom")
	cells := make([]Cell[int], 8)
	for i := range cells {
		cells[i] = Cell[int]{
			Label: fmt.Sprintf("cell%d", i),
			Run: func(*core.Scratch) (int, error) {
				if i == 5 {
					return 0, boom
				}
				return i, nil
			},
		}
	}
	for _, workers := range []int{1, 4} {
		out, err := Run(cells, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "cell5") {
			t.Fatalf("workers=%d: error lost cause or label: %v", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: partial results returned alongside error", workers)
		}
	}
}

// TestPanicBecomesError ensures a panicking cell fails its sweep
// instead of killing the process from a worker goroutine.
func TestPanicBecomesError(t *testing.T) {
	cells := []Cell[int]{
		{Label: "ok", Run: func(*core.Scratch) (int, error) { return 1, nil }},
		{Label: "bad", Run: func(*core.Scratch) (int, error) { panic("kernel bug") }},
	}
	for _, workers := range []int{1, 2} {
		_, err := Run(cells, Options{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "kernel bug") {
			t.Fatalf("workers=%d: panic not converted: %v", workers, err)
		}
	}
}

// emulationGrid builds a small real scheduler-study grid: 2 policies x
// 2 Table II rates on 3C+2F, timing-only.
func emulationGrid(t *testing.T) []Cell[*stats.Report] {
	t.Helper()
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := apps.Specs()
	var cells []Cell[*stats.Report]
	for _, policyName := range []string{"frfs", "met"} {
		for _, row := range workload.TableII[:2] {
			cells = append(cells, Cell[*stats.Report]{
				Label: fmt.Sprintf("%s@%.2f", policyName, row.RateJobsPerMS),
				Run: func(s *core.Scratch) (*stats.Report, error) {
					trace, err := workload.TableIITrace(specs, row)
					if err != nil {
						return nil, err
					}
					policy, err := sched.New(policyName, 7)
					if err != nil {
						return nil, err
					}
					return Emulation{
						Config: cfg, Policy: policy, Registry: apps.Registry(),
						Arrivals: trace, Seed: 7, SkipExecution: true,
					}.Run(s)
				},
			})
		}
	}
	return cells
}

// TestEmulationDeterminism is the engine-level determinism check: the
// same emulation grid at 1 and at 8 workers yields identical makespans,
// overhead charges and invocation counts in identical order. Run with
// -race (the Makefile's check target does) this also exercises the
// scratch-isolation claims under the race detector.
func TestEmulationDeterminism(t *testing.T) {
	seq, err := Run(emulationGrid(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(emulationGrid(t), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Makespan != p.Makespan || s.Sched.Invocations != p.Sched.Invocations ||
			s.Sched.OverheadNS != p.Sched.OverheadNS || len(s.Tasks) != len(p.Tasks) {
			t.Fatalf("cell %d diverged: seq{%v %d %d %d} par{%v %d %d %d}", i,
				s.Makespan, s.Sched.Invocations, s.Sched.OverheadNS, len(s.Tasks),
				p.Makespan, p.Sched.Invocations, p.Sched.OverheadNS, len(p.Tasks))
		}
	}
}

// TestScratchReuseIsInvisible runs the same emulation on a cold and on
// a heavily warmed scratch: the reports must match exactly, proving
// buffer reuse never leaks state between cells.
func TestScratchReuseIsInvisible(t *testing.T) {
	cells := emulationGrid(t)
	cold := core.NewScratch()
	first, err := cells[0].Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := core.NewScratch()
	for _, c := range cells {
		if _, err := c.Run(warm); err != nil {
			t.Fatal(err)
		}
	}
	again, err := cells[0].Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if first.Makespan != again.Makespan || first.Sched.TotalOps != again.Sched.TotalOps ||
		len(first.Tasks) != len(again.Tasks) {
		t.Fatalf("warm scratch changed the result: %v/%d vs %v/%d",
			first.Makespan, len(first.Tasks), again.Makespan, len(again.Tasks))
	}
	for i := range first.Tasks {
		if first.Tasks[i] != again.Tasks[i] {
			t.Fatalf("task record %d diverged: %+v vs %+v", i, first.Tasks[i], again.Tasks[i])
		}
	}
}

// TestProgressReporting checks the throttled reporter emits a final
// summary and never mixes lines (the buffer is written under the
// progress mutex).
func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	cells := make([]Cell[int], 10)
	for i := range cells {
		cells[i] = Cell[int]{Label: "c", Run: func(*core.Scratch) (int, error) { return i, nil }}
	}
	if _, err := Run(cells, Options{Workers: 4, Progress: &buf, Label: "unit"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unit: done (10 cells") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "unit: ") {
			t.Fatalf("garbled progress line %q", line)
		}
	}
}

// TestSchedulerPathParityGrid runs the platform grid — uniform
// synthetic pools, the Odroid's big.LITTLE split-class pool, and the
// heterogeneous synthetic pool — under every built-in policy through
// both scheduler paths: the indexed fast path and the legacy slice
// path (Emulation.SlicePath), in one parallel sweep each, and requires
// byte-identical reports cell by cell. This is the sweep-level pin of
// the indexed scheduler's determinism contract, cost-class interning
// included.
func TestSchedulerPathParityGrid(t *testing.T) {
	specs := apps.Specs()
	trace, err := workload.RateTrace(specs, 4, workload.TableIIFrame)
	if err != nil {
		t.Fatal(err)
	}
	var configs []*platform.Config
	for _, cf := range [][2]int{{8, 2}, {16, 4}} {
		cfg, err := platform.Synthetic(cf[0], cf[1])
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, cfg)
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	het, err := platform.SyntheticHet(8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	configs = append(configs, od, het)
	grid := func(slicePath bool) []Cell[*stats.Report] {
		var cells []Cell[*stats.Report]
		for _, cfg := range configs {
			for _, name := range sched.Names() {
				policy, err := sched.New(name, 13)
				if err != nil {
					t.Fatal(err)
				}
				cells = append(cells, EmulationCell(
					fmt.Sprintf("%s/%s/slice=%v", cfg.Name, name, slicePath),
					Emulation{
						Config: cfg, Policy: policy, Registry: apps.Registry(),
						Arrivals: trace, Seed: 13, JitterSigma: 0.02,
						SkipExecution: true, SlicePath: slicePath,
					}))
			}
		}
		return cells
	}
	indexed, err := Run(grid(false), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := Run(grid(true), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(slice) {
		t.Fatalf("cell counts differ: %d vs %d", len(indexed), len(slice))
	}
	for i := range indexed {
		a, b := indexed[i], slice[i]
		if a.Makespan != b.Makespan || a.Sched != b.Sched || len(a.Tasks) != len(b.Tasks) {
			t.Fatalf("cell %d diverged between scheduler paths: indexed{%v %+v} slice{%v %+v}",
				i, a.Makespan, a.Sched, b.Makespan, b.Sched)
		}
		for j := range a.Tasks {
			if a.Tasks[j] != b.Tasks[j] {
				t.Fatalf("cell %d task %d diverged: %+v vs %+v", i, j, a.Tasks[j], b.Tasks[j])
			}
		}
	}
}
