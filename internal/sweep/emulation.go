package sweep

import (
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Emulation is the cell spec for the common case: one emulator run.
// It is a value type so a grid builder can stamp out variants from a
// base cell. Determinism follows from the emulator's own contract:
// the seed drives the jitter model and nothing else, and the virtual
// clock makes the run independent of host timing.
type Emulation struct {
	// Config is the emulated DSSoC hardware configuration. Configs
	// may be shared between cells: emulators only read them.
	Config *platform.Config
	// Policy is the scheduling heuristic. Policies are per-cell
	// values; stateful policies (rand-seeded, queue-depth) must not be
	// shared between cells.
	Policy sched.Policy
	// Registry resolves runfunc symbols; registries are
	// concurrency-safe and normally shared.
	Registry *kernels.Registry
	// Arrivals is the workload trace. Cells may share a trace
	// read-only (the emulator sorts a private copy).
	Arrivals []core.Arrival
	// Seed and JitterSigma drive the per-cell jitter model.
	Seed        int64
	JitterSigma float64
	// SkipExecution selects the timing-only fast path: kernels are
	// not executed, which is what makes million-cell scheduler sweeps
	// tractable. Functional validation cells leave it false.
	SkipExecution bool
	// Timing selects modeled or host-measured task durations; sweeps
	// should keep the default Modeled for reproducibility.
	Timing core.ExecTiming
	// Programs optionally overrides the compiled-template cache. The
	// default (nil) is the process-wide shared cache: all cells of a
	// grid that inject the same application archetypes onto the same
	// configuration share one compiled template, so the per-arrival
	// parse work (symbol resolution, DAG lowering) is paid once per
	// grid rather than once per arrival of every cell.
	Programs *core.ProgramCache
	// Sink optionally streams per-record statistics out of the run
	// (core.Options.Sink); the report's Tasks/Apps slices then stay
	// empty. A sink is stateful, so cells that carry one must build
	// the Emulation value — sink included — inside their Run closure
	// rather than sharing it across invocations.
	Sink stats.Sink
	// Source, when non-nil, streams the workload through RunStream
	// (lazy instantiation, bounded memory) and Arrivals is ignored.
	// Sources are single-use; the same closure rule as Sink applies.
	Source core.ArrivalSource
	// Events is the dynamic-platform event schedule (PE faults, DVFS,
	// power caps) replayed by every run of the cell. Schedules are
	// read-only after construction, so one Schedule may be shared across
	// the cells of a grid.
	Events *platevent.Schedule
	// SlicePath forces the emulator onto the legacy slice scheduling
	// path (sched.SliceOnly), bypassing the built-in policies' indexed
	// fast paths. Results are byte-identical either way — that contract
	// is what the path-differential sweeps exist to pin — so the switch
	// is for ablation benchmarks and differential grids, not for
	// production sweeps.
	SlicePath bool
}

// Run builds the emulator against the worker's scratch and executes
// the trace, satisfying the Cell[*stats.Report] signature.
func (em Emulation) Run(s *core.Scratch) (*stats.Report, error) {
	policy := em.Policy
	if em.SlicePath && policy != nil {
		policy = sched.SliceOnly(policy)
	}
	e, err := core.New(core.Options{
		Config:        em.Config,
		Policy:        policy,
		Registry:      em.Registry,
		Seed:          em.Seed,
		JitterSigma:   em.JitterSigma,
		SkipExecution: em.SkipExecution,
		Timing:        em.Timing,
		Scratch:       s,
		Programs:      em.Programs,
		Sink:          em.Sink,
		Events:        em.Events,
	})
	if err != nil {
		return nil, err
	}
	if em.Source != nil {
		return e.RunStream(em.Source)
	}
	return e.Run(em.Arrivals)
}

// EmulationCell wraps an Emulation spec as a labelled grid cell.
func EmulationCell(label string, em Emulation) Cell[*stats.Report] {
	return Cell[*stats.Report]{Label: label, Run: em.Run}
}
