package sweep

import (
	"fmt"
	"testing"

	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// corpusGrid stamps the compiled batch across configurations, the full
// policy library and both scheduler paths — optionally under a
// dynamic-platform event schedule shared read-only by every cell.
func corpusGrid(t *testing.T, c *Corpus, ev *platevent.Schedule, slicePath bool) []Cell[*stats.Report] {
	t.Helper()
	syn, err := platform.Synthetic(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var cells []Cell[*stats.Report]
	for _, cfg := range []*platform.Config{syn, od} {
		for _, name := range sched.Names() {
			policy, err := sched.New(name, 5)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, c.Cell(
				fmt.Sprintf("corpus/%s/%s/slice=%v", cfg.Name, name, slicePath),
				Emulation{
					Config: cfg, Policy: policy,
					Seed: 5, JitterSigma: 0.02,
					SkipExecution: true, SlicePath: slicePath,
					Events: ev,
				}))
		}
	}
	return cells
}

// TestCorpusScenarioGrid is the scenario class's contract: one
// compiled batch fans out over a parallel grid, results are
// byte-identical at any worker count, every cell consumed the full
// recorded trace, and the indexed scheduler path agrees with the
// legacy slice path cell by cell.
func TestCorpusScenarioGrid(t *testing.T) {
	c, err := CorpusSpec{Batch: 3, Apps: 6}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrivals() != 12 {
		t.Fatalf("6 apps x 2 reps recorded %d arrivals", c.Arrivals())
	}
	seq, err := Run(corpusGrid(t, c, nil, false), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(corpusGrid(t, c, nil, false), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := Run(corpusGrid(t, c, nil, true), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != len(slice) {
		t.Fatalf("cell counts differ: %d/%d/%d", len(seq), len(par), len(slice))
	}
	for i := range seq {
		if len(seq[i].Apps) != c.Arrivals() {
			t.Fatalf("cell %d emulated %d of %d corpus instances", i, len(seq[i].Apps), c.Arrivals())
		}
		for _, other := range [][]*stats.Report{par, slice} {
			a, b := seq[i], other[i]
			if a.Makespan != b.Makespan || a.Sched != b.Sched || len(a.Tasks) != len(b.Tasks) {
				t.Fatalf("cell %d diverged: {%v %+v} vs {%v %+v}",
					i, a.Makespan, a.Sched, b.Makespan, b.Sched)
			}
			for j := range a.Tasks {
				if a.Tasks[j] != b.Tasks[j] {
					t.Fatalf("cell %d task %d diverged: %+v vs %+v", i, j, a.Tasks[j], b.Tasks[j])
				}
			}
		}
	}
}

// TestCorpusScenarioUnderEvents composes the scenario class with the
// dynamic-platform layer: the same corpus grid under a fault/DVFS/cap
// schedule must apply events on every cell and still hold scheduler-
// path parity, requeue counters included.
func TestCorpusScenarioUnderEvents(t *testing.T) {
	c, err := CorpusSpec{Batch: 7, Apps: 4}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ev := platevent.New().
		FaultAt(vtime.Time(2*vtime.Microsecond), 0).
		SetSpeedAt(vtime.Time(5*vtime.Microsecond), 1, 1.4).
		PowerCapAt(vtime.Time(8*vtime.Microsecond), 2.5).
		RestoreAt(vtime.Time(12*vtime.Microsecond), 0)
	indexed, err := Run(corpusGrid(t, c, ev, false), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := Run(corpusGrid(t, c, ev, true), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range indexed {
		a, b := indexed[i], slice[i]
		if a.PlatEvents == 0 {
			t.Fatalf("cell %d applied no platform events", i)
		}
		if a.PlatEvents != b.PlatEvents || a.Requeues != b.Requeues ||
			a.Makespan != b.Makespan || a.Sched != b.Sched {
			t.Fatalf("cell %d diverged under events: {%v ev=%d rq=%d} vs {%v ev=%d rq=%d}",
				i, a.Makespan, a.PlatEvents, a.Requeues, b.Makespan, b.PlatEvents, b.Requeues)
		}
	}
}
