package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.StateDir == "" {
		opts.StateDir = t.TempDir()
	}
	if opts.Admission.TenantRate == 0 {
		opts.Admission = AdmissionConfig{
			MaxActive: 2, QueueDepth: 4, TenantRate: 1000, TenantBurst: 1000,
		}
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postSweep(t *testing.T, url string, req SweepRequest) (int, http.Header, []string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, lines
}

// eventsOf unmarshals every line into a loose map keyed by type.
func eventsOf(t *testing.T, lines []string) []map[string]any {
	t.Helper()
	out := make([]map[string]any, len(lines))
	for i, l := range lines {
		if err := json.Unmarshal([]byte(l), &out[i]); err != nil {
			t.Fatalf("line %d not JSON: %q", i, l)
		}
	}
	return out
}

// cellLines filters the deterministic merged output: the cell and
// cell_error events, which the service guarantees appear in grid order.
func cellLines(lines []string) []string {
	var out []string
	for _, l := range lines {
		if strings.Contains(l, `"type":"cell"`) || strings.Contains(l, `"type":"cell_error"`) {
			out = append(out, l)
		}
	}
	return out
}

func terminalOf(t *testing.T, lines []string) map[string]any {
	t.Helper()
	evs := eventsOf(t, lines)
	if len(evs) == 0 {
		t.Fatal("empty stream")
	}
	last := evs[len(evs)-1]
	if ty := last["type"]; ty != "done" && ty != "incomplete" {
		t.Fatalf("stream does not end in a terminal event: %v", last)
	}
	return last
}

func intField(m map[string]any, k string) int {
	v, _ := m[k].(float64)
	return int(v)
}

// TestSweepStreamEndToEnd: a full request streams accepted → cells in
// grid order → done, with per-cell results that look like emulations.
func TestSweepStreamEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, hdr, lines := postSweep(t, ts.URL, perfRequest())
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	evs := eventsOf(t, lines)
	if evs[0]["type"] != "accepted" || intField(evs[0], "cells") != 8 {
		t.Fatalf("first event: %v", evs[0])
	}
	term := terminalOf(t, lines)
	if term["type"] != "done" || intField(term, "computed") != 8 ||
		intField(term, "ledger_hits") != 0 || intField(term, "failed") != 0 {
		t.Fatalf("terminal event: %v", term)
	}
	cells := cellLines(lines)
	if len(cells) != 8 {
		t.Fatalf("%d cell events, want 8", len(cells))
	}
	for i, l := range cells {
		var ev struct {
			Index  int        `json:"index"`
			Result CellResult `json:"result"`
		}
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Index != i {
			t.Fatalf("cell event %d has index %d: grid order violated", i, ev.Index)
		}
		if ev.Result.MakespanNS <= 0 || ev.Result.Tasks <= 0 {
			t.Fatalf("cell %d result implausible: %+v", i, ev.Result)
		}
	}
}

// TestCrashResumeDifferential is the package-level half of the
// acceptance criterion (the SIGKILL half lives in make serve-smoke):
// a daemon restarted over a half-written journal recomputes zero
// journaled cells, and its merged cell output is byte-identical to an
// uninterrupted run's.
func TestCrashResumeDifferential(t *testing.T) {
	req := perfRequest()

	// Uninterrupted run on state dir A.
	dirA := t.TempDir()
	_, tsA := newTestServer(t, Options{StateDir: dirA})
	_, _, linesA := postSweep(t, tsA.URL, req)
	wantCells := cellLines(linesA)
	if len(wantCells) != 8 {
		t.Fatalf("baseline: %d cells", len(wantCells))
	}

	// Simulate the crash: state dir B's journal is a prefix of A's —
	// exactly what kill -9 after K fsynced appends leaves behind
	// (plus, here, a torn final line for good measure).
	journalA, err := os.ReadFile(filepath.Join(dirA, "ledger.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	entries := bytes.SplitAfter(journalA, []byte("\n"))
	const k = 5
	if len(entries) < 8 {
		t.Fatalf("journal has %d lines", len(entries))
	}
	prefix := bytes.Join(entries[:k], nil)
	prefix = append(prefix, []byte(`{"h":"torn`)...)
	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, "ledger.ndjson"), prefix, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restarted daemon on B: resume.
	_, tsB := newTestServer(t, Options{StateDir: dirB})
	_, _, linesB := postSweep(t, tsB.URL, req)
	term := terminalOf(t, linesB)
	if got := intField(term, "ledger_hits"); got != k {
		t.Fatalf("resume replayed %d cells from the ledger, want %d", got, k)
	}
	if got := intField(term, "computed"); got != 8-k {
		t.Fatalf("resume recomputed %d cells, want %d", got, 8-k)
	}

	// The differential: merged output byte-identical.
	gotCells := cellLines(linesB)
	if len(gotCells) != len(wantCells) {
		t.Fatalf("cell counts differ: %d vs %d", len(gotCells), len(wantCells))
	}
	for i := range wantCells {
		if gotCells[i] != wantCells[i] {
			t.Fatalf("cell line %d diverged after resume:\n  uninterrupted: %s\n  resumed:       %s",
				i, wantCells[i], gotCells[i])
		}
	}

	// And a second identical request is served entirely from the
	// ledger: zero recomputation, same bytes again.
	_, _, linesC := postSweep(t, tsB.URL, req)
	termC := terminalOf(t, linesC)
	if intField(termC, "computed") != 0 || intField(termC, "ledger_hits") != 8 {
		t.Fatalf("warm rerun recomputed: %v", termC)
	}
	for i, l := range cellLines(linesC) {
		if l != wantCells[i] {
			t.Fatalf("warm rerun cell %d diverged", i)
		}
	}
}

// TestAdmission429: tenant throttling and queue saturation both
// surface as 429 with a computed Retry-After header, and never hang.
func TestAdmission429(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Admission: AdmissionConfig{MaxActive: 1, QueueDepth: 0, TenantRate: 0.001, TenantBurst: 1},
	})

	// Pin the only active slot so the next request hits the full queue.
	// A distinct tenant keeps this probe from spending tenant "t"'s
	// token (the bucket is debited before the queue check).
	release, _, err := s.admission.Acquire(context.Background(), "other")
	if err != nil {
		t.Fatal(err)
	}
	qreq := perfRequest()
	qreq.Tenant = "queued"
	status, hdr, _ := postSweep(t, ts.URL, qreq)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d", status)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", hdr.Get("Retry-After"))
	}
	release()

	// Tenant bucket: burst 1 at ~0 refill — tenant "t"'s first request
	// runs, the second is throttled.
	status, _, _ = postSweep(t, ts.URL, perfRequest())
	if status != http.StatusOK {
		t.Fatalf("first tenant request: status %d", status)
	}
	status, hdr, _ = postSweep(t, ts.URL, perfRequest())
	if status != http.StatusTooManyRequests {
		t.Fatalf("throttled tenant: status %d", status)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("tenant Retry-After %q", hdr.Get("Retry-After"))
	}
}

// TestBadRequests: validation failures are 400s before admission — a
// malformed request consumes no tenant tokens and no queue slot.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	bad := perfRequest()
	bad.Policies = []string{"lottery"}
	status, _, _ := postSweep(t, ts.URL, bad)
	if status != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if st := s.admission.Snapshot(); st.Tenants != 0 {
		t.Fatalf("rejected requests touched the admission gate: %+v", st)
	}
}

// slowRequest is a grid big enough to still be running when the test
// drains or disconnects (32 timing-only cells, each tens of ms here).
func slowRequest() SweepRequest {
	return SweepRequest{
		Tenant:         "t",
		Platform:       PlatformSpec{Name: "synthetic", Cores: 16, FFTs: 4},
		Policies:       []string{"frfs", "eft"},
		RatesJobsPerMS: []float64{4, 6},
		FrameMS:        100,
		Seeds:          []int64{1, 2, 3, 4, 5, 6, 7, 8},
		SkipExecution:  true,
	}
}

// TestDrainMidSweep: SIGTERM semantics. A sweep interrupted by Drain
// finishes its in-flight cells, streams an explicit incomplete event,
// and the drained server refuses new work — while everything already
// journaled survives for the next process.
func TestDrainMidSweep(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{StateDir: dir, Workers: 2})

	body, _ := json.Marshal(slowRequest())
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil || !strings.Contains(first, `"accepted"`) {
		t.Fatalf("first line %q, err %v", first, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var lines []string
	for {
		l, err := br.ReadString('\n')
		if l != "" {
			lines = append(lines, strings.TrimRight(l, "\n"))
		}
		if err != nil {
			break
		}
	}
	term := terminalOf(t, lines)
	if term["type"] != "incomplete" {
		t.Fatalf("drained sweep ended with %v, want incomplete", term)
	}
	if !strings.Contains(term["reason"].(string), "draining") {
		t.Fatalf("incomplete reason %v", term["reason"])
	}

	// Drained server refuses new work and reports unhealthy.
	status, _, _ := postSweep(t, ts.URL, perfRequest())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST: status %d", status)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d", hresp.StatusCode)
	}

	// The journal holds exactly the done cells (fsynced before being
	// streamed), ready for the next process to resume from.
	l, err := OpenLedger(filepath.Join(dir, "ledger.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got, done := l.Len(), intField(term, "computed")+intField(term, "ledger_hits"); got != done {
		t.Fatalf("journal has %d cells, terminal event says %d", got, done)
	}
}

// TestClientDisconnectReleasesSlot: a client that goes away mid-stream
// cancels its sweep; the admission slot frees and the server keeps
// serving others.
func TestClientDisconnectReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Admission: AdmissionConfig{MaxActive: 1, QueueDepth: 0, TenantRate: 1000, TenantBurst: 1000},
	})

	body, _ := json.Marshal(slowRequest())
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweeps", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.admission.Snapshot(); st.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released after disconnect: %+v", s.admission.Snapshot())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status, _, _ := postSweep(t, ts.URL, perfRequest()); status != http.StatusOK {
		t.Fatalf("server unusable after a disconnect: status %d", status)
	}
}

// TestStatz sanity-checks the observability surface.
func TestStatz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _, _ := postSweep(t, ts.URL, perfRequest()); status != http.StatusOK {
		t.Fatal("seed sweep failed")
	}
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Ledger struct {
			Cells int `json:"cells"`
		} `json:"ledger"`
		Programs int  `json:"compiled_programs"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ledger.Cells != 8 || st.Draining {
		t.Fatalf("statz: %+v", st)
	}
	if st.Programs == 0 {
		t.Fatal("program cache cold after a sweep — the warm-cache contract is broken")
	}
}

// TestSnapshotEvents: with an aggressive snapshot interval a sweep
// emits progress snapshots before its terminal event.
func TestSnapshotEvents(t *testing.T) {
	_, ts := newTestServer(t, Options{SnapshotEvery: 5 * time.Millisecond})
	_, _, lines := postSweep(t, ts.URL, slowRequest())
	evs := eventsOf(t, lines)
	snaps := 0
	for i, ev := range evs {
		if ev["type"] == "snapshot" {
			snaps++
			if i == len(evs)-1 {
				t.Fatal("snapshot after terminal event")
			}
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshot events at a 5ms interval on a multi-second sweep")
	}
	// Snapshots carry live aggregates once records flow.
	last := map[string]any{}
	for _, ev := range evs {
		if ev["type"] == "snapshot" {
			last = ev
		}
	}
	if intField(last, "done") == 0 && intField(last, "tasks_seen") == 0 {
		t.Fatalf("final snapshot empty: %v", last)
	}
}
