package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// PlatformSpec names an emulated hardware configuration in a request.
// It mirrors cmd/emulate's -platform flags.
type PlatformSpec struct {
	// Name is zcu102, odroid, synthetic, or synthetic-het.
	Name string `json:"name"`
	// Cores/FFTs size zcu102 and synthetic; Big/Little size odroid and
	// (with FFTs) synthetic-het. Zero fields take the platform's
	// defaults.
	Cores  int `json:"cores,omitempty"`
	FFTs   int `json:"ffts,omitempty"`
	Big    int `json:"big,omitempty"`
	Little int `json:"little,omitempty"`
}

// build constructs the platform config (validating the spec).
func (p PlatformSpec) build() (*platform.Config, error) {
	orDefault := func(v, d int) int {
		if v <= 0 {
			return d
		}
		return v
	}
	switch p.Name {
	case "zcu102":
		return platform.ZCU102(orDefault(p.Cores, 3), orDefault(p.FFTs, 2))
	case "odroid":
		return platform.OdroidXU3(orDefault(p.Big, 4), orDefault(p.Little, 3))
	case "synthetic":
		return platform.Synthetic(orDefault(p.Cores, 16), orDefault(p.FFTs, 4))
	case "synthetic-het":
		return platform.SyntheticHet(orDefault(p.Big, 8), orDefault(p.Little, 6), orDefault(p.FFTs, 2))
	default:
		return nil, fmt.Errorf("unknown platform %q (zcu102, odroid, synthetic, synthetic-het)", p.Name)
	}
}

// SweepRequest is the body of POST /v1/sweeps: a design-space grid
// policies × rates (or one validation workload) × seeds, exactly the
// paper's evaluation shape. The grid expands in deterministic
// policy-major, rate-middle, seed-minor order; that order is the cell
// index space every response event refers to.
type SweepRequest struct {
	// Tenant names the admission-control principal; required.
	Tenant string `json:"tenant"`
	// Label is echoed in progress output; optional.
	Label string `json:"label,omitempty"`
	// Platform picks the emulated hardware configuration.
	Platform PlatformSpec `json:"platform"`
	// Policies are scheduler names (sched.Names()); at least one.
	Policies []string `json:"policies"`
	// RatesJobsPerMS selects performance mode: one grid column per
	// injection rate, applications arriving periodically over Frame.
	RatesJobsPerMS []float64 `json:"rates_jobs_per_ms,omitempty"`
	// FrameMS is the performance-mode injection frame (default 100ms).
	FrameMS float64 `json:"frame_ms,omitempty"`
	// Apps selects validation mode (used when RatesJobsPerMS is
	// empty): app name → instance count, all injected at t=0.
	Apps map[string]int `json:"apps,omitempty"`
	// Seeds drive the per-cell jitter model; empty defaults to [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// JitterSigma is the log-normal timing jitter (0 = deterministic).
	JitterSigma float64 `json:"jitter_sigma,omitempty"`
	// SkipExecution selects the timing-only fast path (scheduler
	// studies); functional runs leave it false.
	SkipExecution bool `json:"skip_execution,omitempty"`
	// TimeoutMS bounds the request's wall time; 0 uses the server
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// appCount is the canonical (sorted) form of the Apps map used for
// hashing and trace construction.
type appCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// cellKey is everything that determines one cell's result. Marshaled
// to canonical JSON (fixed field order, sorted app list) and hashed,
// it is the cell's ledger identity: two requests that mean the same
// emulation — across restarts, tenants, and grid shapes — share bytes.
type cellKey struct {
	Version       string       `json:"version"`
	Platform      PlatformSpec `json:"platform"`
	Policy        string       `json:"policy"`
	Mode          string       `json:"mode"`
	RateJobsPerMS float64      `json:"rate_jobs_per_ms"`
	FrameMS       float64      `json:"frame_ms"`
	Apps          []appCount   `json:"apps"`
	Seed          int64        `json:"seed"`
	JitterSigma   float64      `json:"jitter_sigma"`
	SkipExecution bool         `json:"skip_execution"`
}

// hash returns the hex SHA-256 of the canonical key encoding.
func (k cellKey) hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// cellKey is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("serve: marshal cellKey: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CellResult is the deterministic per-cell payload streamed to the
// client and journaled in the ledger. Every field is a pure function
// of the cell spec — virtual-clock quantities and scheduler counters,
// never host timing — which is what makes resumed output byte-
// identical to uninterrupted output.
type CellResult struct {
	Policy        string  `json:"policy"`
	RateJobsPerMS float64 `json:"rate_jobs_per_ms,omitempty"`
	Seed          int64   `json:"seed"`
	MakespanNS    int64   `json:"makespan_ns"`
	Tasks         int64   `json:"tasks"`
	Apps          int64   `json:"apps"`
	SchedInvoked  int     `json:"sched_invocations"`
	SchedOps      int64   `json:"sched_ops"`
	MaxReady      int     `json:"max_ready"`
	WaitP50NS     int64   `json:"wait_p50_ns"`
	WaitP99NS     int64   `json:"wait_p99_ns"`
	RespP50NS     int64   `json:"resp_p50_ns"`
	RespP99NS     int64   `json:"resp_p99_ns"`
	EnergyJ       float64 `json:"energy_j"`
}

// sweepPlan is a validated, expanded request: the grid cells, their
// content hashes, and the shared immutable inputs.
type sweepPlan struct {
	req    SweepRequest
	config *platform.Config
	specs  map[string]*appmodel.AppSpec
	reg    *kernels.Registry
	cells  []planCell
}

type planCell struct {
	key   cellKey
	hash  string
	label string
}

// planSweep validates the request and expands the grid. All
// per-request validation lives here so a bad request is a 400 before
// admission, not a mid-stream cell error after it.
func planSweep(req SweepRequest, specs map[string]*appmodel.AppSpec, reg *kernels.Registry) (*sweepPlan, error) {
	if req.Tenant == "" {
		return nil, fmt.Errorf("tenant is required")
	}
	cfg, err := req.Platform.build()
	if err != nil {
		return nil, err
	}
	if len(req.Policies) == 0 {
		return nil, fmt.Errorf("at least one policy is required (have: %v)", sched.Names())
	}
	for _, name := range req.Policies {
		if _, err := sched.New(name, 1); err != nil {
			return nil, err
		}
	}
	mode := "performance"
	var apps []appCount
	if len(req.RatesJobsPerMS) == 0 {
		mode = "validation"
		if len(req.Apps) == 0 {
			return nil, fmt.Errorf("either rates_jobs_per_ms or apps must be given")
		}
		for name, n := range req.Apps {
			if _, ok := specs[name]; !ok {
				return nil, fmt.Errorf("unknown application %q", name)
			}
			if n <= 0 {
				return nil, fmt.Errorf("application %q count must be positive", name)
			}
			apps = append(apps, appCount{name, n})
		}
		sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	} else {
		for _, r := range req.RatesJobsPerMS {
			if r <= 0 {
				return nil, fmt.Errorf("injection rate must be positive, got %v", r)
			}
		}
	}
	if req.FrameMS < 0 {
		return nil, fmt.Errorf("frame_ms must be non-negative")
	}
	if mode == "performance" && req.FrameMS == 0 {
		req.FrameMS = 100
	}
	if len(req.Seeds) == 0 {
		req.Seeds = []int64{1}
	}

	p := &sweepPlan{req: req, config: cfg, specs: specs, reg: reg}
	rates := req.RatesJobsPerMS
	if mode == "validation" {
		rates = []float64{0}
	}
	for _, policy := range req.Policies {
		for _, rate := range rates {
			for _, seed := range req.Seeds {
				key := cellKey{
					Version:       ledgerVersion,
					Platform:      req.Platform,
					Policy:        policy,
					Mode:          mode,
					RateJobsPerMS: rate,
					FrameMS:       req.FrameMS,
					Apps:          apps,
					Seed:          seed,
					JitterSigma:   req.JitterSigma,
					SkipExecution: req.SkipExecution,
				}
				label := fmt.Sprintf("%s@%g/seed%d", policy, rate, seed)
				if mode == "validation" {
					label = fmt.Sprintf("%s/validation/seed%d", policy, seed)
				}
				p.cells = append(p.cells, planCell{key: key, hash: key.hash(), label: label})
			}
		}
	}
	return p, nil
}

// sweepCell builds the executable cell for one grid coordinate. The
// policy, trace, and sink are all constructed inside the returned
// closure — cells run concurrently and those values are single-use
// (the repolint singleuse contract).
func (p *sweepPlan) sweepCell(i int, mirror *progressMirror, programs *core.ProgramCache) sweep.Cell[CellResult] {
	pc := p.cells[i]
	return sweep.Cell[CellResult]{
		Label: pc.label,
		Run: func(s *core.Scratch) (CellResult, error) {
			policy, err := sched.New(pc.key.Policy, pc.key.Seed)
			if err != nil {
				return CellResult{}, err
			}
			var arrivals []core.Arrival
			if pc.key.Mode == "validation" {
				counts := make(map[string]int, len(pc.key.Apps))
				for _, a := range pc.key.Apps {
					counts[a.Name] = a.Count
				}
				arrivals, err = workload.Validation(p.specs, counts)
			} else {
				frame := vtime.Duration(pc.key.FrameMS * float64(vtime.Millisecond))
				arrivals, err = workload.RateTrace(p.specs, pc.key.RateJobsPerMS, frame)
			}
			if err != nil {
				return CellResult{}, err
			}
			snk := &cellSink{online: stats.NewOnline(0), mirror: mirror}
			report, err := sweep.Emulation{
				Config:        p.config,
				Policy:        policy,
				Registry:      p.reg,
				Arrivals:      arrivals,
				Seed:          pc.key.Seed,
				JitterSigma:   pc.key.JitterSigma,
				SkipExecution: pc.key.SkipExecution,
				Programs:      programs,
				Sink:          snk,
			}.Run(s)
			if err != nil {
				return CellResult{}, err
			}
			return makeCellResult(pc.key, report, snk.online), nil
		},
	}
}

// makeCellResult projects a report + per-cell online sink into the
// deterministic ledger payload.
func makeCellResult(key cellKey, r *stats.Report, o *stats.Online) CellResult {
	q := func(d *stats.Dist, p float64) int64 {
		v := d.Quantile(p)
		if v != v { // NaN: no post-warmup records
			return 0
		}
		return int64(v)
	}
	return CellResult{
		Policy:        key.Policy,
		RateJobsPerMS: key.RateJobsPerMS,
		Seed:          key.Seed,
		MakespanNS:    int64(r.Makespan),
		Tasks:         o.TasksSeen,
		Apps:          o.AppsSeen,
		SchedInvoked:  r.Sched.Invocations,
		SchedOps:      r.Sched.TotalOps,
		MaxReady:      r.Sched.MaxReadyLen,
		WaitP50NS:     q(&o.Wait, 0.50),
		WaitP99NS:     q(&o.Wait, 0.99),
		RespP50NS:     q(&o.Response, 0.50),
		RespP99NS:     q(&o.Response, 0.99),
		EnergyJ:       r.TotalEnergyJ(),
	}
}

// cellSink is each cell's private sink: it feeds the cell's own Online
// aggregate (the source of the deterministic result quantiles) and
// mirrors every record into the request-wide progress aggregate that
// snapshot events are cut from. The sink itself is cell-local and
// single-use; only the mutex-guarded mirror is shared.
type cellSink struct {
	online *stats.Online
	mirror *progressMirror
}

func (c *cellSink) RecordTask(r stats.TaskRecord) {
	c.online.RecordTask(r)
	c.mirror.observeTask(r)
}

func (c *cellSink) RecordApp(r stats.AppRecord) {
	c.online.RecordApp(r)
	c.mirror.observeApp(r)
}
