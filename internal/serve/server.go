package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ErrDraining is the cancellation cause used when SIGTERM drains the
// server: running sweeps finish their in-flight cells (journaling each
// one), stop feeding new cells, and report incomplete.
var ErrDraining = errors.New("server draining")

// Options configure the daemon.
type Options struct {
	// StateDir holds the cell ledger journal; required. It is the
	// daemon's only persistent state.
	StateDir string
	// Workers bounds each sweep's worker pool (0 = GOMAXPROCS).
	Workers int
	// Admission sizes the two-layer gate.
	Admission AdmissionConfig
	// SnapshotEvery throttles mid-run snapshot events (default 250ms,
	// negative disables).
	SnapshotEvery time.Duration
	// DefaultTimeout bounds requests that set no timeout_ms (default
	// 5 minutes).
	DefaultTimeout time.Duration
}

// Server is the emulation service: it holds the process-wide compiled
// program cache warm across requests and runs admitted sweeps through
// the bounded pool, journaling every completed cell.
type Server struct {
	opts      Options
	admission *Admission
	ledger    *Ledger
	programs  *core.ProgramCache
	specs     map[string]*appmodel.AppSpec
	reg       *kernels.Registry

	// drainCtx is cancelled (with ErrDraining) by Drain; in-flight
	// request handlers watch it and new requests are refused after it.
	drainCtx  context.Context
	drainFn   context.CancelCauseFunc
	inflight  sync.WaitGroup
	drainOnce sync.Once
}

// New opens the ledger under opts.StateDir and builds the server.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("serve: StateDir is required")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 250 * time.Millisecond
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 5 * time.Minute
	}
	ledger, err := OpenLedger(filepath.Join(opts.StateDir, "ledger.ndjson"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	return &Server{
		opts:      opts,
		admission: NewAdmission(opts.Admission, nil),
		ledger:    ledger,
		programs:  core.NewProgramCache(),
		specs:     apps.Specs(),
		reg:       apps.Registry(),
		drainCtx:  ctx,
		drainFn:   cancel,
	}, nil
}

// Ledger exposes the cell store (tests and /statz).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Handler returns the HTTP surface:
//
//	POST /v1/sweeps  — run a sweep, streaming NDJSON events
//	GET  /healthz    — 200 while serving, 503 once draining
//	GET  /statz      — admission gate + ledger counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Admission Stats `json:"admission"`
			Ledger    struct {
				Cells int   `json:"cells"`
				Hits  int64 `json:"hits"`
			} `json:"ledger"`
			Programs int  `json:"compiled_programs"`
			Draining bool `json:"draining"`
		}{
			Admission: s.admission.Snapshot(),
			Ledger: struct {
				Cells int   `json:"cells"`
				Hits  int64 `json:"hits"`
			}{s.ledger.Len(), s.ledger.Hits()},
			Programs: s.programs.Len(),
			Draining: s.draining(),
		})
	})
	return mux
}

func (s *Server) draining() bool { return s.drainCtx.Err() != nil }

// Drain is the SIGTERM path: refuse new work, cancel running sweeps at
// cell granularity (in-flight cells finish and are journaled — the
// fsync-per-append ledger IS the checkpoint), wait for every handler
// to finish streaming, then close the journal. The passed context
// bounds the wait; Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drainFn(ErrDraining) })
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.ledger.Close()
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", context.Cause(ctx))
	}
}

// event is one NDJSON response line. Exactly one of the payload groups
// is populated, keyed by Type:
//
//	accepted   — id (request-scoped), cells, resumable hint
//	snapshot   — done/total cells + live Online aggregates (volatile:
//	             excluded from byte-identity comparisons)
//	cell       — index, label, deterministic CellResult (grid order)
//	cell_error — index, label, error (grid order, interleaved with cell)
//	incomplete — the run was cut short (drain, disconnect, deadline)
//	done       — terminal summary: cells, ledger_hits, computed, failed
type event struct {
	Type  string `json:"type"`
	Cells int    `json:"cells,omitempty"`

	// snapshot fields
	Done       int     `json:"done,omitempty"`
	Total      int     `json:"total,omitempty"`
	TasksSeen  int64   `json:"tasks_seen,omitempty"`
	AppsSeen   int64   `json:"apps_seen,omitempty"`
	WaitP50NS  int64   `json:"wait_p50_ns,omitempty"`
	RespP50NS  int64   `json:"resp_p50_ns,omitempty"`
	RespP99NS  int64   `json:"resp_p99_ns,omitempty"`
	WaitMeanNS float64 `json:"wait_mean_ns,omitempty"`

	// cell / cell_error fields
	Index  *int        `json:"index,omitempty"`
	Label  string      `json:"label,omitempty"`
	Result *CellResult `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`

	// incomplete / done fields (absent means zero)
	Reason     string `json:"reason,omitempty"`
	LedgerHits int    `json:"ledger_hits,omitempty"`
	Computed   int    `json:"computed,omitempty"`
	Failed     int    `json:"failed,omitempty"`
}

// handleSweep is POST /v1/sweeps.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := planSweep(req, s.specs, s.reg)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Request context: client disconnect ∪ per-request deadline ∪
	// server drain, each with a distinguishable cause.
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancelTimeout := context.WithTimeoutCause(r.Context(), timeout,
		errors.New("request deadline exceeded"))
	defer cancelTimeout()
	ctx, cancelDrain := context.WithCancelCause(ctx)
	defer cancelDrain(nil)
	stopDrainWatch := context.AfterFunc(s.drainCtx, func() { cancelDrain(ErrDraining) })
	defer stopDrainWatch()

	// Admission: tenant bucket then bounded queue; both reject with a
	// computed Retry-After rather than buffering unboundedly.
	release, retryAfter, err := s.admission.Acquire(ctx, req.Tenant)
	if err != nil {
		if errors.Is(err, ErrTenantThrottled) || errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	s.streamSweep(ctx, w, plan)
}

// streamSweep runs an admitted plan and streams NDJSON events.
//
// Ordering guarantees: cell and cell_error events are emitted in grid
// order (cell i never precedes cell i-1's event), regardless of worker
// completion order, so the concatenation of cell events is the
// deterministic merged report. snapshot events interleave anywhere
// before the terminal event; exactly one terminal event (incomplete or
// done) ends the stream.
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, plan *sweepPlan) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	em := &emitter{w: w, pending: make(map[int][]byte), total: len(plan.cells)}
	em.send(event{Type: "accepted", Cells: len(plan.cells)})

	// Resolve ledger hits up front: those cells are never recomputed.
	// Misses become sweep cells, run KeepGoing so one broken cell
	// reports per-coordinate instead of sinking the grid.
	hits := 0
	var missIdx []int
	var cells []sweep.Cell[CellResult]
	mirror := newProgressMirror()
	for i := range plan.cells {
		if raw, ok := s.ledger.Get(plan.cells[i].hash); ok {
			hits++
			em.resolveRaw(i, plan.cells[i].label, raw)
			continue
		}
		i := i
		missIdx = append(missIdx, i)
		inner := plan.sweepCell(i, mirror, s.programs)
		cells = append(cells, sweep.Cell[CellResult]{
			Label: inner.Label,
			Run: func(sc *core.Scratch) (CellResult, error) {
				res, err := inner.Run(sc)
				if err != nil {
					return res, err
				}
				raw, merr := json.Marshal(res)
				if merr != nil {
					return res, merr
				}
				// Journal before emitting: anything the client has
				// seen is durable, so a crash after this line costs
				// this cell nothing on resume.
				if perr := s.ledger.Put(plan.cells[i].hash, raw); perr != nil {
					return res, perr
				}
				em.resolveRaw(i, inner.Label, raw)
				mirror.cellDone()
				return res, nil
			},
		})
	}
	mirror.setDone(hits, len(plan.cells))

	// Snapshot streaming: a ticker goroutine cuts mutex-guarded Online
	// snapshots mid-run so the client observes progress. Stopped (and
	// drained) before the terminal event so no snapshot trails it.
	var snapWG sync.WaitGroup
	snapStop := make(chan struct{})
	if s.opts.SnapshotEvery > 0 && len(cells) > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(s.opts.SnapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-tick.C:
					em.send(mirror.snapshotEvent())
				}
			}
		}()
	}

	oc, runErr := sweep.RunContext(ctx, cells, sweep.Options{
		Workers:   s.opts.Workers,
		Label:     plan.req.Label,
		KeepGoing: true,
	})
	close(snapStop)
	snapWG.Wait()

	// Failed cells: emit structured per-coordinate errors, grid order.
	for _, ce := range oc.Errs {
		em.resolveErr(missIdx[ce.Index], ce.Label, ce.Err)
	}

	computed := oc.NumDone()
	if runErr != nil {
		// Cut short: flush what resolved contiguously, then say so —
		// partial results are always explicitly flagged, never
		// silently truncated.
		em.send(event{
			Type: "incomplete", Reason: runErr.Error(),
			Cells: len(plan.cells), LedgerHits: hits, Computed: computed,
			Failed: len(oc.Errs),
		})
		return
	}
	em.send(event{
		Type: "done", Cells: len(plan.cells),
		LedgerHits: hits, Computed: computed, Failed: len(oc.Errs),
	})
}

// emitter serializes NDJSON writes and enforces the grid-order
// guarantee: per-cell events buffer until every lower-indexed cell has
// resolved, then flush in index order. Snapshot/terminal events bypass
// the ordering but share the write lock (a flusher per line keeps the
// stream live for long sweeps).
type emitter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	next    int
	total   int
	pending map[int][]byte
}

// send writes one out-of-band (snapshot/terminal/accepted) event.
func (e *emitter) send(ev event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.writeLine(b)
}

// resolveRaw resolves cell i with its (already-marshaled) result — the
// exact ledger bytes, so replayed and computed cells are
// indistinguishable on the wire.
func (e *emitter) resolveRaw(i int, label string, raw []byte) {
	idx := i
	line, err := json.Marshal(struct {
		Type   string          `json:"type"`
		Index  *int            `json:"index,omitempty"`
		Label  string          `json:"label,omitempty"`
		Result json.RawMessage `json:"result,omitempty"`
	}{"cell", &idx, label, raw})
	if err != nil {
		return
	}
	e.resolve(i, line)
}

// resolveErr resolves cell i with its structured failure.
func (e *emitter) resolveErr(i int, label string, cause error) {
	idx := i
	line, err := json.Marshal(event{Type: "cell_error", Index: &idx, Label: label, Error: cause.Error()})
	if err != nil {
		return
	}
	e.resolve(i, line)
}

func (e *emitter) resolve(i int, line []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending[i] = line
	for {
		b, ok := e.pending[e.next]
		if !ok {
			return
		}
		delete(e.pending, e.next)
		e.next++
		e.writeLine(b)
	}
}

// writeLine appends the newline and flushes; callers hold e.mu.
func (e *emitter) writeLine(b []byte) {
	e.w.Write(append(b, '\n'))
	if f, ok := e.w.(http.Flusher); ok {
		f.Flush()
	}
}

// progressMirror is the request-wide aggregate behind snapshot events.
// Cells mirror their records into it concurrently, so it guards a
// stats.Online with a mutex — the documented external-lock form of the
// Online single-writer/snapshot-reader contract. Record interleaving
// across cells follows worker timing, which is fine: snapshots are
// progress telemetry, deliberately excluded from the deterministic
// merged output.
//
//repolint:contract single-writer
type progressMirror struct {
	mu     sync.Mutex
	online *stats.Online
	done   int
	total  int
}

func newProgressMirror() *progressMirror {
	return &progressMirror{online: stats.NewOnline(0)}
}

func (m *progressMirror) observeTask(r stats.TaskRecord) {
	m.mu.Lock()
	m.online.RecordTask(r)
	m.mu.Unlock()
}

func (m *progressMirror) observeApp(r stats.AppRecord) {
	m.mu.Lock()
	m.online.RecordApp(r)
	m.mu.Unlock()
}

func (m *progressMirror) cellDone() {
	m.mu.Lock()
	m.done++
	m.mu.Unlock()
}

func (m *progressMirror) setDone(done, total int) {
	m.mu.Lock()
	m.done, m.total = done, total
	m.mu.Unlock()
}

// snapshotEvent cuts a consistent point-in-time copy of the aggregate
// (stats.Online.Snapshot under the mirror's lock) and projects it into
// a snapshot event.
func (m *progressMirror) snapshotEvent() event {
	m.mu.Lock()
	snap := m.online.Snapshot()
	done, total := m.done, m.total
	m.mu.Unlock()
	q := func(d *stats.Dist, p float64) int64 {
		v := d.Quantile(p)
		if v != v {
			return 0
		}
		return int64(v)
	}
	return event{
		Type: "snapshot", Done: done, Total: total,
		TasksSeen: snap.TasksSeen, AppsSeen: snap.AppsSeen,
		WaitP50NS: q(&snap.Wait, 0.50), RespP50NS: q(&snap.Response, 0.50),
		RespP99NS: q(&snap.Response, 0.99), WaitMeanNS: snap.Wait.Mean(),
	}
}
