package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTenantTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{
		MaxActive: 100, QueueDepth: 100, TenantRate: 1, TenantBurst: 2,
	}, clk.now)
	ctx := context.Background()

	// Burst of 2 admits, third is throttled with a computed backoff.
	for i := 0; i < 2; i++ {
		rel, _, err := a.Acquire(ctx, "alice")
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		rel()
	}
	_, retry, err := a.Acquire(ctx, "alice")
	if !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("third acquire: %v", err)
	}
	if retry < time.Second || retry > 2*time.Second {
		t.Fatalf("retry-after = %v, want ~1s", retry)
	}

	// Tenants are independent: bob is untouched by alice's burst.
	if rel, _, err := a.Acquire(ctx, "bob"); err != nil {
		t.Fatalf("bob throttled by alice: %v", err)
	} else {
		rel()
	}

	// Refill at 1 token/sec: after 1.5s alice gets exactly one more.
	clk.advance(1500 * time.Millisecond)
	rel, _, err := a.Acquire(ctx, "alice")
	if err != nil {
		t.Fatalf("post-refill acquire: %v", err)
	}
	rel()
	if _, _, err := a.Acquire(ctx, "alice"); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("bucket refilled too much: %v", err)
	}
}

func TestQueueBoundAndRetryAfter(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{
		MaxActive: 1, QueueDepth: 0, TenantRate: 1000, TenantBurst: 1000,
	}, clk.now)
	ctx := context.Background()

	rel, _, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	// QueueDepth 0: while one sweep is active the next is rejected
	// immediately — no hidden buffering anywhere.
	_, retry, err := a.Acquire(ctx, "t")
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if retry < time.Second {
		t.Fatalf("queue-full Retry-After = %v, want >= 1s", retry)
	}
	rel()
	if rel2, _, err := a.Acquire(ctx, "t"); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	} else {
		rel2()
	}
}

// TestQueueWaitsAndWakes: a waiter inside the bounded queue gets the
// slot when the active sweep releases it.
func TestQueueWaitsAndWakes(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxActive: 1, QueueDepth: 2, TenantRate: 1000, TenantBurst: 1000,
	}, nil)
	ctx := context.Background()
	rel, _, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, _, err := a.Acquire(ctx, "t")
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// The waiter must be parked, not rejected.
	select {
	case err := <-got:
		t.Fatalf("queued acquire returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("woken waiter failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after release")
	}
}

// TestQueueCancellation: a cancelled waiter leaves the queue and
// surrenders its count (the next caller is not spuriously rejected).
func TestQueueCancellation(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxActive: 1, QueueDepth: 1, TenantRate: 1000, TenantBurst: 1000,
	}, nil)
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := a.Acquire(ctx, "t")
		got <- err
	}()
	// Wait until the waiter is queued, then cancel it.
	deadline := time.Now().Add(2 * time.Second)
	for a.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel(cause)
	if err := <-got; !errors.Is(err, cause) {
		t.Fatalf("cancelled waiter error = %v", err)
	}
	if w := a.Snapshot().Waiting; w != 0 {
		t.Fatalf("waiting count leaked: %d", w)
	}
	rel()
}

// TestReleaseIdempotent: double release must not free two slots.
func TestReleaseIdempotent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxActive: 1, QueueDepth: 0, TenantRate: 1000, TenantBurst: 1000,
	}, nil)
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if got := a.Snapshot().Active; got != 0 {
		t.Fatalf("active = %d after double release", got)
	}
}
