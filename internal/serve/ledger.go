// Package serve is the emulation-as-a-service layer: a long-lived
// HTTP/NDJSON front end over the sweep engine with admission control,
// backpressure, cancellation, and crash-safe resume.
//
// The engine underneath (internal/core + internal/sweep) is already
// O(in-flight) memory and deterministic by construction; this package
// adds what a daemon needs around it — per-tenant token buckets and a
// bounded global queue so overload degrades into 429+Retry-After
// instead of unbounded buffering, context plumbing so client
// disconnects and server drain abort sweeps at cell granularity, a
// content-hashed cell ledger so a killed sweep resumes recomputing
// zero finished cells, and mid-run statistics snapshots so clients
// observe progress instead of polling a silent process.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ledgerVersion is folded into every cell hash. Bump it whenever the
// cell result encoding or the emulation semantics behind it change:
// old journal entries then simply stop matching instead of resuming a
// sweep with stale bytes.
const ledgerVersion = "emulated-cell-v1"

// ledgerEntry is one journal line: a content hash naming the cell and
// the cell's marshaled result, byte-preserved via RawMessage so a
// replayed result is emitted exactly as the original run emitted it.
type ledgerEntry struct {
	Hash   string          `json:"h"`
	Result json.RawMessage `json:"r"`
}

// Ledger is the crash-safe cell result store: an append-only,
// fsync-per-append NDJSON journal keyed by content hash of the cell
// spec. Because the key is derived from everything that determines a
// cell's result (spec, schedule knobs, seed, encoding version — see
// cellHash) and cells are deterministic, a ledger hit IS the cell's
// result: resume never recomputes, and the merged output of a resumed
// sweep is byte-identical to an uninterrupted run.
//
// Crash safety: entries are single appended lines followed by
// File.Sync, so a kill -9 can lose at most the entry being written;
// a torn trailing line (no newline, or truncated JSON) is detected on
// open and ignored — the cell just reruns. The journal is the only
// persistent state the daemon has.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string][]byte
	hits    int64
}

// OpenLedger opens (creating if needed) the journal at path and
// replays it into memory. A torn final line — the signature of a crash
// mid-append — is skipped; any earlier malformed line is corruption
// and errors out loudly rather than silently dropping results.
func OpenLedger(path string) (*Ledger, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("ledger: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{f: f, entries: make(map[string][]byte)}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay loads every complete journal line.
func (l *Ledger) replay() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn append from a crash. The
			// partial entry is unusable; its cell reruns on resume.
			return nil
		}
		if err != nil {
			return fmt.Errorf("ledger: reading journal: %w", err)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e ledgerEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Hash == "" || len(e.Result) == 0 {
			// A malformed *interior* line cannot come from a torn
			// append (those are always last); refuse to guess.
			if _, peekErr := r.Peek(1); peekErr == io.EOF {
				return nil
			}
			return fmt.Errorf("ledger: corrupt journal line %d", lineNo)
		}
		// Duplicate hashes are legal (two crashed runs of the same
		// grid); results are deterministic so the bytes agree.
		l.entries[e.Hash] = append([]byte(nil), e.Result...)
	}
}

// Get returns the stored result bytes for a cell hash. A hit is
// counted: the hit counter is how the resume differential proves zero
// recomputation.
func (l *Ledger) Get(hash string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.entries[hash]
	if ok {
		l.hits++
	}
	return b, ok
}

// Put journals one completed cell: append a single line, fsync, then
// publish to the in-memory index. The fsync-before-publish order is
// the checkpoint guarantee — a result the daemon has ever served from
// the index is durable on disk.
func (l *Ledger) Put(hash string, result []byte) error {
	entry, err := json.Marshal(ledgerEntry{Hash: hash, Result: result})
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	entry = append(entry, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ledger: closed")
	}
	if _, err := l.f.Write(entry); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: fsync: %w", err)
	}
	l.entries[hash] = append([]byte(nil), result...)
	return nil
}

// Len is the number of distinct cells journaled.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Hits is the cumulative ledger hit count since open.
func (l *Ledger) Hits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits
}

// Close syncs and closes the journal. Further Puts fail; Gets keep
// answering from memory (drain finishes streaming from the index).
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
