package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get("h1"); ok {
		t.Fatal("empty ledger answered a Get")
	}
	if err := l.Put("h1", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("h2", []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	b, ok := l.Get("h1")
	if !ok || string(b) != `{"x":1}` {
		t.Fatalf("Get h1 = %q, %v", b, ok)
	}
	if l.Hits() != 1 || l.Len() != 2 {
		t.Fatalf("hits=%d len=%d", l.Hits(), l.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the journal replays byte-identically and hit counting
	// restarts.
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 || l2.Hits() != 0 {
		t.Fatalf("replayed len=%d hits=%d", l2.Len(), l2.Hits())
	}
	b, ok = l2.Get("h2")
	if !ok || string(b) != `{"x":2}` {
		t.Fatalf("replayed Get h2 = %q, %v", b, ok)
	}
}

// TestLedgerTornTail: a crash mid-append leaves a partial final line;
// reopening keeps every complete entry and ignores the torn one.
func TestLedgerTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put("h1", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two torn shapes: truncated JSON without a newline...
	if _, err := f.WriteString(`{"h":"h2","r":{"x`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if l2.Len() != 1 {
		t.Fatalf("torn tail: len=%d want 1", l2.Len())
	}
	if _, ok := l2.Get("h2"); ok {
		t.Fatal("torn entry resurrected")
	}
	// ...and appending after a torn tail still yields a loadable
	// journal for the *new* entry on the next open (the torn line and
	// everything after it is unusable, which is safe: those cells
	// simply rerun).
	if err := l2.Put("h3", []byte(`{"x":3}`)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if _, ok := l3.Get("h1"); !ok {
		t.Fatal("pre-crash entry lost")
	}
}

// TestLedgerCorruptInterior: a malformed line with valid lines after
// it cannot be a torn append — the ledger refuses to guess.
func TestLedgerCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	content := `{"h":"h1","r":{"x":1}}` + "\n" +
		`garbage not json` + "\n" +
		`{"h":"h2","r":{"x":2}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLedger(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption accepted: %v", err)
	}
}

func TestLedgerClosedPut(t *testing.T) {
	l, err := OpenLedger(filepath.Join(t.TempDir(), "ledger.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Put("h", []byte(`{}`)); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	// Gets keep answering from memory during drain.
	if _, ok := l.Get("missing"); ok {
		t.Fatal("closed ledger invented an entry")
	}
}
