package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// Admission errors. Both map to HTTP 429 with a computed Retry-After;
// they are distinct so /statz and tests can tell tenant throttling
// from global saturation apart.
var (
	// ErrTenantThrottled: the tenant's token bucket is empty.
	ErrTenantThrottled = errors.New("tenant rate limit exceeded")
	// ErrQueueFull: the bounded global queue is at its depth
	// threshold. This is the serving-layer mirror of the saturation
	// study's divergence criterion: once the backlog grows past the
	// bound, waiting longer cannot help — the honest answer is
	// "not now, retry after".
	ErrQueueFull = errors.New("sweep queue full")
)

// AdmissionConfig sizes the gate.
type AdmissionConfig struct {
	// MaxActive bounds concurrently running sweeps (each runs its own
	// bounded worker pool); <=0 defaults to 1.
	MaxActive int
	// QueueDepth bounds sweeps waiting for an active slot; past it new
	// work is rejected, never buffered. <0 defaults to 4; 0 means no
	// queueing at all (reject unless a slot is free).
	QueueDepth int
	// TenantRate is each tenant's sustained budget in requests/second;
	// <=0 defaults to 1.
	TenantRate float64
	// TenantBurst is the bucket capacity; <=0 defaults to 4.
	TenantBurst float64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxActive <= 0 {
		c.MaxActive = 1
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 4
	}
	if c.TenantRate <= 0 {
		c.TenantRate = 1
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 4
	}
	return c
}

// Admission is the two-layer gate in front of the sweep engine:
// per-tenant token buckets (fairness: one hot tenant cannot starve the
// rest) and a bounded global active+queue pool (stability: total work
// held in the process is hard-capped, so overload degrades into 429s
// with bounded RSS instead of an OOM).
type Admission struct {
	cfg AdmissionConfig
	// now is the time source, injectable so tests don't sleep.
	now func() time.Time

	mu      sync.Mutex
	tenants map[string]*bucket
	active  int
	waiting int
	// slotFree is signalled (best-effort, capacity 1) on release so
	// queued waiters re-check.
	slotFree chan struct{}
	// avgRunNS is an EWMA of completed sweep wall times, the basis of
	// the queue's computed Retry-After.
	avgRunNS float64
}

// bucket is a standard lazily-refilled token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds the gate. now==nil uses time.Now.
func NewAdmission(cfg AdmissionConfig, now func() time.Time) *Admission {
	if now == nil {
		now = time.Now
	}
	return &Admission{
		cfg:      cfg.withDefaults(),
		now:      now,
		tenants:  make(map[string]*bucket),
		slotFree: make(chan struct{}, 1),
		// Seed the estimate at one second so the very first rejection
		// already carries a sane Retry-After.
		avgRunNS: float64(time.Second),
	}
}

// Acquire admits one sweep for tenant or reports how long the caller
// should back off. On success the returned release function MUST be
// called exactly once when the sweep finishes; it feeds the run's
// duration back into the Retry-After estimate. On rejection err is
// ErrTenantThrottled or ErrQueueFull and retryAfter is the computed
// backoff; on cancellation err is the context's error.
//
// Waiting happens only inside the bounded queue: at most QueueDepth
// callers block here, everyone else is rejected immediately — the
// admission layer never buffers unboundedly.
func (a *Admission) Acquire(ctx context.Context, tenant string) (release func(), retryAfter time.Duration, err error) {
	a.mu.Lock()
	// Layer 1: tenant token bucket.
	b := a.tenants[tenant]
	t := a.now()
	if b == nil {
		b = &bucket{tokens: a.cfg.TenantBurst, last: t}
		a.tenants[tenant] = b
	} else {
		b.tokens = math.Min(a.cfg.TenantBurst,
			b.tokens+t.Sub(b.last).Seconds()*a.cfg.TenantRate)
		b.last = t
	}
	if b.tokens < 1 {
		need := (1 - b.tokens) / a.cfg.TenantRate
		a.mu.Unlock()
		return nil, ceilSecond(time.Duration(need * float64(time.Second))), ErrTenantThrottled
	}
	b.tokens--

	// Layer 2: bounded global pool.
	if a.active < a.cfg.MaxActive {
		a.active++
		start := t
		a.mu.Unlock()
		return a.releaseFunc(start), 0, nil
	}
	if a.waiting >= a.cfg.QueueDepth {
		ra := a.queueRetryAfterLocked()
		a.mu.Unlock()
		return nil, ra, ErrQueueFull
	}
	a.waiting++
	a.mu.Unlock()

	for {
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.waiting--
			a.mu.Unlock()
			return nil, 0, context.Cause(ctx)
		case <-a.slotFree:
			a.mu.Lock()
			if a.active < a.cfg.MaxActive {
				a.active++
				a.waiting--
				start := a.now()
				a.mu.Unlock()
				a.wake()
				return a.releaseFunc(start), 0, nil
			}
			a.mu.Unlock()
		}
	}
}

// releaseFunc returns the idempotence-guarded release closure.
func (a *Admission) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			d := a.now().Sub(start)
			a.mu.Lock()
			a.active--
			// EWMA, alpha=0.3: recent sweeps dominate but one outlier
			// does not own the estimate.
			a.avgRunNS = 0.7*a.avgRunNS + 0.3*float64(d)
			a.mu.Unlock()
			a.wake()
		})
	}
}

// wake nudges one queued waiter (capacity-1 channel, so the
// signal coalesces; waiters re-check under the lock).
func (a *Admission) wake() {
	select {
	case a.slotFree <- struct{}{}:
	default:
	}
}

// queueRetryAfterLocked computes the backoff for a full queue: the
// estimated time for the backlog ahead of the caller to drain through
// MaxActive slots, floored at one second. Callers hold a.mu.
func (a *Admission) queueRetryAfterLocked() time.Duration {
	backlog := float64(a.waiting+1) / float64(a.cfg.MaxActive)
	return ceilSecond(time.Duration(backlog * a.avgRunNS))
}

// ceilSecond rounds up to whole seconds (the Retry-After header's
// resolution), minimum one.
func ceilSecond(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Second
	}
	s := (d + time.Second - 1) / time.Second
	return s * time.Second
}

// Stats is the /statz snapshot of the gate.
type Stats struct {
	Active   int     `json:"active"`
	Waiting  int     `json:"waiting"`
	Tenants  int     `json:"tenants"`
	AvgRunMS float64 `json:"avg_run_ms"`
}

// Snapshot reads the gate's counters.
func (a *Admission) Snapshot() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Active:   a.active,
		Waiting:  a.waiting,
		Tenants:  len(a.tenants),
		AvgRunMS: a.avgRunNS / 1e6,
	}
}
