package serve

import (
	"strings"
	"testing"

	"repro/internal/apps"
)

func planFor(t *testing.T, req SweepRequest) *sweepPlan {
	t.Helper()
	p, err := planSweep(req, apps.Specs(), apps.Registry())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func perfRequest() SweepRequest {
	return SweepRequest{
		Tenant:         "t",
		Platform:       PlatformSpec{Name: "synthetic", Cores: 8, FFTs: 2},
		Policies:       []string{"frfs", "eft"},
		RatesJobsPerMS: []float64{2, 4},
		FrameMS:        20,
		Seeds:          []int64{1, 2},
		SkipExecution:  true,
	}
}

// TestGridExpansionOrder pins the cell index space: policy-major,
// rate-middle, seed-minor — the order every response event refers to.
func TestGridExpansionOrder(t *testing.T) {
	p := planFor(t, perfRequest())
	if len(p.cells) != 8 {
		t.Fatalf("grid size %d, want 8", len(p.cells))
	}
	want := []string{
		"frfs@2/seed1", "frfs@2/seed2", "frfs@4/seed1", "frfs@4/seed2",
		"eft@2/seed1", "eft@2/seed2", "eft@4/seed1", "eft@4/seed2",
	}
	for i, w := range want {
		if p.cells[i].label != w {
			t.Fatalf("cell %d label %q, want %q", i, p.cells[i].label, w)
		}
	}
}

// TestCellHashIdentity: the hash is a pure function of what the cell
// means — identical across grid shapes and request framing — and
// distinct whenever any semantic knob differs.
func TestCellHashIdentity(t *testing.T) {
	a := planFor(t, perfRequest())

	// The same coordinate carved out as a 1-cell request hashes the
	// same: resume and cross-request dedup both rest on this.
	solo := perfRequest()
	solo.Policies = []string{"eft"}
	solo.RatesJobsPerMS = []float64{4}
	solo.Seeds = []int64{2}
	b := planFor(t, solo)
	if b.cells[0].hash != a.cells[7].hash {
		t.Fatal("same cell spec hashed differently across grid shapes")
	}

	// Tenant and label are serving metadata, not cell identity.
	relabeled := perfRequest()
	relabeled.Tenant = "someone-else"
	relabeled.Label = "renamed"
	c := planFor(t, relabeled)
	for i := range a.cells {
		if c.cells[i].hash != a.cells[i].hash {
			t.Fatalf("cell %d hash changed with serving metadata", i)
		}
	}

	// Every semantic knob must move the hash.
	seen := map[string]string{}
	for i, pc := range a.cells {
		if prev, dup := seen[pc.hash]; dup {
			t.Fatalf("cells %s and %d share a hash", prev, i)
		}
		seen[pc.hash] = pc.label
	}
	jittered := perfRequest()
	jittered.JitterSigma = 0.1
	for _, pc := range planFor(t, jittered).cells {
		if _, dup := seen[pc.hash]; dup {
			t.Fatal("jitter_sigma not folded into the hash")
		}
	}
	functional := perfRequest()
	functional.SkipExecution = false
	for _, pc := range planFor(t, functional).cells {
		if _, dup := seen[pc.hash]; dup {
			t.Fatal("skip_execution not folded into the hash")
		}
	}
}

// TestValidationModeCanonicalApps: app maps hash identically whatever
// their (unordered) JSON spelling, via the sorted canonical form.
func TestValidationModeCanonicalApps(t *testing.T) {
	mk := func(m map[string]int) *sweepPlan {
		return planFor(t, SweepRequest{
			Tenant:   "t",
			Platform: PlatformSpec{Name: "zcu102"},
			Policies: []string{"frfs"},
			Apps:     m,
		})
	}
	a := mk(map[string]int{"wifi_tx": 2, "range_detection": 1})
	b := mk(map[string]int{"range_detection": 1, "wifi_tx": 2})
	if a.cells[0].hash != b.cells[0].hash {
		t.Fatal("app map order leaked into the hash")
	}
	if !strings.Contains(a.cells[0].label, "validation") {
		t.Fatalf("validation label: %q", a.cells[0].label)
	}
}

func TestPlanRejects(t *testing.T) {
	base := perfRequest()
	cases := []struct {
		name   string
		mutate func(*SweepRequest)
		want   string
	}{
		{"no tenant", func(r *SweepRequest) { r.Tenant = "" }, "tenant"},
		{"bad platform", func(r *SweepRequest) { r.Platform.Name = "cray" }, "unknown platform"},
		{"no policies", func(r *SweepRequest) { r.Policies = nil }, "policy"},
		{"bad policy", func(r *SweepRequest) { r.Policies = []string{"lottery"} }, "lottery"},
		{"no workload", func(r *SweepRequest) { r.RatesJobsPerMS = nil }, "rates_jobs_per_ms or apps"},
		{"bad rate", func(r *SweepRequest) { r.RatesJobsPerMS = []float64{-1} }, "rate"},
		{"unknown app", func(r *SweepRequest) {
			r.RatesJobsPerMS = nil
			r.Apps = map[string]int{"doom": 1}
		}, "unknown application"},
		{"bad count", func(r *SweepRequest) {
			r.RatesJobsPerMS = nil
			r.Apps = map[string]int{"wifi_tx": 0}
		}, "positive"},
	}
	for _, tc := range cases {
		req := base
		tc.mutate(&req)
		_, err := planSweep(req, apps.Specs(), apps.Registry())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
