package platevent

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/vtime"
)

// TestEventsStableOrder pins the application-order contract: sorted by
// instant, insertion order within one instant.
func TestEventsStableOrder(t *testing.T) {
	s := New().
		RestoreAt(vtime.Time(50*vtime.Microsecond), 1).
		FaultAt(vtime.Time(10*vtime.Microsecond), 0).
		PowerCapAt(vtime.Time(50*vtime.Microsecond), 2.5).
		SetSpeedAt(vtime.Time(10*vtime.Microsecond), 2, 1.5)
	ev := s.Events()
	want := []Event{
		{At: vtime.Time(10 * vtime.Microsecond), Kind: Fault, PE: 0},
		{At: vtime.Time(10 * vtime.Microsecond), Kind: SetSpeed, PE: 2, Speed: 1.5},
		{At: vtime.Time(50 * vtime.Microsecond), Kind: Restore, PE: 1},
		{At: vtime.Time(50 * vtime.Microsecond), Kind: PowerCap, PE: -1, CapW: 2.5},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("events out of contract order:\nwant %+v\ngot  %+v", want, ev)
	}
	// Appending after a sort re-sorts lazily.
	s.FaultAt(vtime.Time(5*vtime.Microsecond), 1)
	if got := s.Events()[0]; got.Kind != Fault || got.PE != 1 {
		t.Fatalf("late append not resorted: head is %+v", got)
	}
}

func TestValidate(t *testing.T) {
	ok := New().FaultAt(0, 0).RestoreAt(10, 3).SetSpeedAt(5, 1, 0.5).PowerCapAt(7, 0)
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(4); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}
	bad := []*Schedule{
		New().FaultAt(0, 4),              // PE out of range
		New().RestoreAt(0, -1),           // negative PE
		New().SetSpeedAt(0, 0, 0),        // non-positive speed
		New().SetSpeedAt(0, 9, 1.0),      // DVFS target out of range
		New().FaultAt(vtime.Time(-1), 0), // negative instant
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("invalid schedule %d accepted", i)
		}
	}
}

// TestJSONRoundTrip pins the cmd/emulate -events document format.
func TestJSONRoundTrip(t *testing.T) {
	s := New().
		FaultAt(50_000, 2).
		RestoreAt(90_000, 2).
		SetSpeedAt(10_000, 0, 1.8).
		PowerCapAt(20_000, 1.5).
		PowerCapAt(30_000, 0) // lift
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events(), back.Events()) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", s.Events(), back.Events())
	}
	if _, err := ParseJSON([]byte(`[{"at_ns": 1, "kind": "melt", "pe": 0}]`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseJSON([]byte(`{"not": "an array"}`)); err == nil {
		t.Fatal("non-array document accepted")
	}
	// The documented "dvfs" alias parses as SetSpeed.
	alias, err := ParseJSON([]byte(`[{"at_ns": 5, "kind": "dvfs", "pe": 1, "speed": 2.0}]`))
	if err != nil {
		t.Fatal(err)
	}
	if ev := alias.Events(); len(ev) != 1 || ev[0].Kind != SetSpeed || ev[0].Speed != 2.0 {
		t.Fatalf("dvfs alias mis-parsed: %+v", alias.Events())
	}
}

// TestChurnDeterministic: same (seed, config) -> identical schedule;
// different seeds diverge.
func TestChurnDeterministic(t *testing.T) {
	cc := ChurnConfig{
		NumPEs:    6,
		Horizon:   2 * vtime.Millisecond,
		Events:    64,
		Speeds:    []float64{0.5, 1.0, 2.0},
		PowerCaps: []float64{1.5, 3.0, 0},
	}
	a := Churn(7, cc)
	b := Churn(7, cc)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	c := Churn(8, cc)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Len() == 0 {
		t.Fatal("churn generated no events")
	}
	if err := a.Validate(cc.NumPEs); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}

// TestChurnNeverKillsAllPEs: replaying any generated schedule's
// fault/restore stream must always leave at least one PE healthy —
// the generator's no-total-blackout guarantee.
func TestChurnNeverKillsAllPEs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		for seed := int64(0); seed < 20; seed++ {
			cc := ChurnConfig{
				NumPEs: n, Horizon: vtime.Millisecond, Events: 200,
				FaultFraction: 1.0,
			}
			down := make([]bool, n)
			nDown := 0
			for _, e := range Churn(seed, cc).Events() {
				switch e.Kind {
				case Fault:
					if !down[e.PE] {
						down[e.PE] = true
						nDown++
					}
				case Restore:
					if down[e.PE] {
						down[e.PE] = false
						nDown--
					}
				}
				if nDown >= n {
					t.Fatalf("n=%d seed=%d: schedule faults every PE at once", n, seed)
				}
			}
		}
	}
}
