// Package platevent models dynamic-platform events: PE faults and
// hotplug restores, DVFS speed steps, and platform-wide power caps, as
// a deterministic event stream ordered on the emulation's virtual
// clock. The paper's heterogeneous targets (the Odroid's big.LITTLE
// pool, Case Study 4's power study) are exactly the platforms where
// cores fault, thermally throttle and DVFS-step in production; a
// Schedule makes those regimes first-class emulation inputs instead of
// frozen assumptions.
//
// A Schedule is built once (by hand, from JSON, or by the seeded Churn
// generator), validated against a configuration's PE count, and handed
// to the emulation core through core.Options.Events. The core applies
// due events at the top of its discrete-event loop — before injection
// and completion monitoring — so an event at instant T is visible to
// every scheduling decision at or after T, and a fault at T wins over
// a completion due at the same T (the in-flight task is requeued, not
// collected). Ordering within one instant is the Schedule's insertion
// order, which the stable sort preserves; everything downstream is
// therefore byte-deterministic for a given Schedule.
//
// Schedules are read-only after being handed to an emulator: the core
// keeps a cursor into the sorted event slice, and several emulators
// (sweep cells, differential pairs) may share one Schedule.
package platevent

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/vtime"
)

// Kind discriminates platform events.
type Kind uint8

const (
	// Fault removes a PE: it leaves the schedulable pool atomically and
	// its in-flight task plus any reservation-queue entries are
	// requeued as ready at the fault instant. Faulting a faulted PE is
	// a no-op.
	Fault Kind = iota
	// Restore returns a faulted PE to the pool, idle. Restoring a
	// healthy PE is a no-op.
	Restore
	// SetSpeed is a DVFS step: the PE's speed factor becomes Speed.
	// The PE's cost-class signature changes with it, so class
	// membership becomes time-varying (see the core's re-interning).
	SetSpeed
	// PowerCap sets the active per-PE power budget in watts; power-aware
	// policies must not place work on PEs drawing more than the cap.
	// CapW <= 0 lifts the cap.
	PowerCap
)

// String names the kind as the JSON encoding spells it.
func (k Kind) String() string {
	switch k {
	case Fault:
		return "fault"
	case Restore:
		return "restore"
	case SetSpeed:
		return "set-speed"
	case PowerCap:
		return "power-cap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one platform event on the virtual clock.
type Event struct {
	// At is the virtual instant the event takes effect.
	At vtime.Time
	// Kind discriminates the remaining fields.
	Kind Kind
	// PE is the target PE index (position in Config.PEs) for Fault,
	// Restore and SetSpeed; ignored (and normalised to -1) for
	// PowerCap.
	PE int
	// Speed is SetSpeed's new speed factor (> 0).
	Speed float64
	// CapW is PowerCap's per-PE power budget in watts; <= 0 lifts the
	// cap.
	CapW float64
}

// Schedule is an ordered platform-event stream. The zero value is an
// empty schedule; build with the *At appenders, which may be chained.
// Building is single-threaded; a built schedule is read-only and may
// then be shared by any number of emulators (sweep cells, differential
// pairs) concurrently.
type Schedule struct {
	events []Event
}

// New returns an empty schedule.
func New() *Schedule { return &Schedule{} }

// FaultAt appends a PE fault.
func (s *Schedule) FaultAt(at vtime.Time, pe int) *Schedule {
	return s.add(Event{At: at, Kind: Fault, PE: pe})
}

// RestoreAt appends a PE restore.
func (s *Schedule) RestoreAt(at vtime.Time, pe int) *Schedule {
	return s.add(Event{At: at, Kind: Restore, PE: pe})
}

// SetSpeedAt appends a DVFS step setting the PE's speed factor.
func (s *Schedule) SetSpeedAt(at vtime.Time, pe int, speed float64) *Schedule {
	return s.add(Event{At: at, Kind: SetSpeed, PE: pe, Speed: speed})
}

// PowerCapAt appends a platform-wide power cap (watts <= 0 lifts it).
func (s *Schedule) PowerCapAt(at vtime.Time, watts float64) *Schedule {
	return s.add(Event{At: at, Kind: PowerCap, PE: -1, CapW: watts})
}

func (s *Schedule) add(e Event) *Schedule {
	s.events = append(s.events, e)
	return s
}

// Len reports the event count.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Events returns the stream sorted by instant, stable in insertion
// order within one instant — the exact application order the core
// uses. It returns a fresh copy without touching the receiver, so a
// built Schedule can be consumed by concurrent emulator constructions.
func (s *Schedule) Events() []Event {
	if s == nil || len(s.events) == 0 {
		return nil
	}
	out := make([]Event, len(s.events))
	copy(out, s.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks every event against a configuration's PE count:
// in-range PE targets, non-negative instants, positive DVFS speeds,
// known kinds. Cross-event interactions (double faults, restores of
// healthy PEs) are legal and resolve idempotently at runtime, so a
// generated or fuzzed schedule needs no global consistency.
func (s *Schedule) Validate(numPEs int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.events {
		if e.At < 0 {
			return fmt.Errorf("platevent: event %d (%s) has negative instant %v", i, e.Kind, e.At)
		}
		switch e.Kind {
		case Fault, Restore:
			if e.PE < 0 || e.PE >= numPEs {
				return fmt.Errorf("platevent: event %d (%s) targets PE %d of %d", i, e.Kind, e.PE, numPEs)
			}
		case SetSpeed:
			if e.PE < 0 || e.PE >= numPEs {
				return fmt.Errorf("platevent: event %d (%s) targets PE %d of %d", i, e.Kind, e.PE, numPEs)
			}
			if !(e.Speed > 0) {
				return fmt.Errorf("platevent: event %d sets non-positive speed %v on PE %d", i, e.Speed, e.PE)
			}
		case PowerCap:
			// Any CapW is legal; <= 0 lifts the cap.
		default:
			return fmt.Errorf("platevent: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// eventJSON is the on-disk form consumed by cmd/emulate's -events
// flag: a JSON array of events with nanosecond instants.
type eventJSON struct {
	AtNS  int64   `json:"at_ns"`
	Kind  string  `json:"kind"`
	PE    int     `json:"pe,omitempty"`
	Speed float64 `json:"speed,omitempty"`
	Watts float64 `json:"watts,omitempty"`
}

// MarshalJSON encodes the schedule in application order.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := make([]eventJSON, 0, s.Len())
	for _, e := range s.Events() {
		out = append(out, eventJSON{
			AtNS: int64(e.At), Kind: e.Kind.String(),
			PE: e.PE, Speed: e.Speed, Watts: e.CapW,
		})
	}
	return json.Marshal(out)
}

// ParseJSON decodes the document format MarshalJSON produces:
//
//	[{"at_ns": 50000, "kind": "fault", "pe": 2},
//	 {"at_ns": 90000, "kind": "restore", "pe": 2},
//	 {"at_ns": 10000, "kind": "set-speed", "pe": 0, "speed": 1.8},
//	 {"at_ns": 20000, "kind": "power-cap", "watts": 1.5}]
func ParseJSON(data []byte) (*Schedule, error) {
	var raw []eventJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("platevent: decoding schedule: %w", err)
	}
	s := New()
	for i, e := range raw {
		at := vtime.Time(e.AtNS)
		switch e.Kind {
		case "fault":
			s.FaultAt(at, e.PE)
		case "restore":
			s.RestoreAt(at, e.PE)
		case "set-speed", "dvfs":
			s.SetSpeedAt(at, e.PE, e.Speed)
		case "power-cap":
			s.PowerCapAt(at, e.Watts)
		default:
			return nil, fmt.Errorf("platevent: event %d has unknown kind %q", i, e.Kind)
		}
	}
	return s, nil
}

// ChurnConfig parameterises the seeded Churn generator.
type ChurnConfig struct {
	// NumPEs is the target configuration's PE count (required).
	NumPEs int
	// Horizon bounds event instants to [0, Horizon).
	Horizon vtime.Duration
	// Events is how many events to draw.
	Events int
	// Speeds is the DVFS step ladder SetSpeed draws from; empty
	// disables DVFS events.
	Speeds []float64
	// PowerCaps is the cap ladder PowerCap draws from (a draw of 0
	// lifts the cap); empty disables power-cap events.
	PowerCaps []float64
	// FaultFraction of events are fault/restore churn (default 0.5
	// when faults are possible). The remainder splits evenly between
	// DVFS and power caps, falling back to whichever ladders exist.
	FaultFraction float64
}

// Churn draws a seeded random event schedule: fault/restore pairs
// (never faulting every PE at once — at least one PE stays up, so
// generated schedules cannot deadlock a workload with no restore),
// DVFS steps from the speed ladder, and power-cap toggles. The same
// (seed, config) always produces the identical schedule.
func Churn(seed int64, cc ChurnConfig) *Schedule {
	s := New()
	if cc.NumPEs <= 0 || cc.Events <= 0 || cc.Horizon <= 0 {
		return s
	}
	ff := cc.FaultFraction
	if ff <= 0 {
		ff = 0.5
	}
	if ff > 1 {
		ff = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Draw the instants up front and sort them so the up/down state
	// tracked below evolves in application (time) order — otherwise a
	// fault drawn late but timestamped early could blackout the
	// platform when the stream is replayed sorted.
	ats := make([]vtime.Time, cc.Events)
	for i := range ats {
		ats[i] = vtime.Time(rng.Int63n(int64(cc.Horizon)))
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	down := make([]bool, cc.NumPEs)
	nDown := 0
	for i := 0; i < cc.Events; i++ {
		at := ats[i]
		r := rng.Float64()
		switch {
		case r < ff:
			// Fault/restore churn: restore a down PE half the time once
			// any are down, otherwise fault one more — but never the
			// last healthy PE.
			if nDown > 0 && (rng.Intn(2) == 0 || nDown >= cc.NumPEs-1) {
				pe := pickState(rng, down, true)
				s.RestoreAt(at, pe)
				down[pe] = false
				nDown--
			} else if nDown < cc.NumPEs-1 {
				pe := pickState(rng, down, false)
				s.FaultAt(at, pe)
				down[pe] = true
				nDown++
			}
		case len(cc.Speeds) > 0 && (r < ff+(1-ff)/2 || len(cc.PowerCaps) == 0):
			s.SetSpeedAt(at, rng.Intn(cc.NumPEs), cc.Speeds[rng.Intn(len(cc.Speeds))])
		case len(cc.PowerCaps) > 0:
			s.PowerCapAt(at, cc.PowerCaps[rng.Intn(len(cc.PowerCaps))])
		}
	}
	return s
}

// pickState draws a uniformly random PE whose down-state matches want.
func pickState(rng *rand.Rand, down []bool, want bool) int {
	n := 0
	for _, d := range down {
		if d == want {
			n++
		}
	}
	k := rng.Intn(n)
	for i, d := range down {
		if d == want {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1 // unreachable: caller guarantees n > 0
}
