// Package vtime provides the virtual-time substrate for the emulation
// framework: a nanosecond-resolution monotonic clock, durations, and a
// deterministic event queue.
//
// The original paper runs on real hardware and uses the wall clock
// (CLOCK_MONOTONIC) as its emulation time base. This reproduction
// replaces the wall clock with a discrete virtual clock so that every
// experiment is bit-for-bit reproducible on any host, including the
// single-core container this repository is developed in. The runtime
// architecture (workload manager, resource handlers, idle/run/complete
// handshake) is unchanged; only the time source differs.
package vtime

import (
	"errors"
	"fmt"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the
// emulation reference start time (the paper's "reference start time"
// captured when the workload manager begins).
type Time int64

// Duration is a span of virtual time in nanoseconds. It is
// deliberately distinct from time.Duration so that virtual and host
// time cannot be mixed accidentally, but converts losslessly.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String renders the timestamp with the most natural unit.
func (t Time) String() string { return Duration(t).String() }

// Std converts d to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String renders the duration with the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// ErrBackwards is returned when a clock is asked to move to an earlier
// instant. The virtual clock is strictly monotonic: the workload
// manager only ever advances it.
var ErrBackwards = errors.New("vtime: clock cannot move backwards")

// Clock is the monotonic virtual clock driven by the workload manager.
// The zero value is a clock at t=0, ready to use.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are
// rejected.
func (c *Clock) Advance(d Duration) error {
	if d < 0 {
		return ErrBackwards
	}
	c.now = c.now.Add(d)
	return nil
}

// AdvanceTo moves the clock to the absolute instant t, which must not
// precede the current time. Advancing to the current time is a no-op.
func (c *Clock) AdvanceTo(t Time) error {
	if t < c.now {
		return fmt.Errorf("%w: at %v, asked for %v", ErrBackwards, c.now, t)
	}
	c.now = t
	return nil
}

// Reset returns the clock to t=0 for a fresh emulation run.
func (c *Clock) Reset() { c.now = 0 }
