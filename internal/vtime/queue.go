package vtime

import "container/heap"

// Event is a scheduled occurrence in virtual time. Events carry an
// opaque payload interpreted by the emulation core (task completion,
// application arrival, ...).
type Event struct {
	At      Time
	Kind    int
	Payload any

	seq uint64 // tie-breaker: insertion order for equal timestamps
}

// EventQueue is a deterministic min-priority queue of events ordered
// by (At, insertion order). Ties resolve FIFO so that replaying the
// same inputs yields the same event order, which the paper's
// experiments depend on for run-to-run comparability.
//
// The zero value is an empty queue ready for use.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// Push schedules an event.
func (q *EventQueue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// PushAt is shorthand for scheduling a payload at an instant.
func (q *EventQueue) PushAt(at Time, kind int, payload any) {
	q.Push(Event{At: at, Kind: kind, Payload: payload})
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; callers must check Len first.
func (q *EventQueue) Pop() Event {
	return heap.Pop(&q.h).(Event)
}

// Peek returns the earliest event without removing it. The boolean is
// false when the queue is empty.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
