package vtime

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", int64(Microsecond))
	}
	if Millisecond != 1000*1000 {
		t.Fatalf("Millisecond = %d", int64(Millisecond))
	}
	if Second != 1000*1000*1000 {
		t.Fatalf("Second = %d", int64(Second))
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50 * Nanosecond)
	if t1 != 150 {
		t.Fatalf("Add: got %d, want 150", int64(t1))
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d, want 50", int64(d))
	}
	if !t0.Before(t1) || t0.After(t1) {
		t.Fatalf("ordering predicates inconsistent")
	}
	if t1.Before(t0) || !t1.After(t0) {
		t.Fatalf("ordering predicates inconsistent (reverse)")
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Std(); got != 1500*time.Microsecond {
		t.Fatalf("Std: got %v", got)
	}
	if got := FromStd(2 * time.Millisecond); got != 2*Millisecond {
		t.Fatalf("FromStd: got %v", got)
	}
	if got := d.Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds: got %v, want 1.5", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Fatalf("Microseconds: got %v, want 1500", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds: got %v, want 2", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2500 * Nanosecond, "2.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-2 * Second, "-2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock not at 0")
	}
	if err := c.Advance(10); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if err := c.AdvanceTo(25); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if c.Now() != 25 {
		t.Fatalf("Now = %d, want 25", int64(c.Now()))
	}
	if err := c.AdvanceTo(24); !errors.Is(err, ErrBackwards) {
		t.Fatalf("backwards AdvanceTo: err = %v, want ErrBackwards", err)
	}
	if err := c.Advance(-1); !errors.Is(err, ErrBackwards) {
		t.Fatalf("negative Advance: err = %v, want ErrBackwards", err)
	}
	// AdvanceTo the same instant is allowed.
	if err := c.AdvanceTo(25); err != nil {
		t.Fatalf("AdvanceTo(now): %v", err)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset did not zero the clock")
	}
}

// Property: for any sequence of non-negative advances, the clock never
// decreases and equals the prefix sum.
func TestClockPrefixSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		var sum int64
		for _, s := range steps {
			if err := c.Advance(Duration(s)); err != nil {
				return false
			}
			sum += int64(s)
			if int64(c.Now()) != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.PushAt(30, 0, "c")
	q.PushAt(10, 0, "a")
	q.PushAt(20, 0, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestEventQueueFIFOTies(t *testing.T) {
	var q EventQueue
	for i := 0; i < 100; i++ {
		q.PushAt(42, 0, i)
	}
	for i := 0; i < 100; i++ {
		e := q.Pop()
		if e.Payload.(int) != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", e.Payload, i)
		}
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q EventQueue
	if _, ok := q.Peek(); ok {
		t.Fatalf("Peek on empty queue reported ok")
	}
	q.PushAt(5, 7, nil)
	e, ok := q.Peek()
	if !ok || e.At != 5 || e.Kind != 7 {
		t.Fatalf("Peek: got %+v ok=%v", e, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Peek consumed the event")
	}
}

// Property: popping a randomly filled queue yields timestamps in
// non-decreasing order, and every pushed event comes back exactly once.
func TestEventQueueSortProperty(t *testing.T) {
	f := func(stamps []uint32) bool {
		var q EventQueue
		for i, s := range stamps {
			q.PushAt(Time(s), 0, i)
		}
		var times []Time
		seen := make(map[int]bool)
		for q.Len() > 0 {
			e := q.Pop()
			times = append(times, e.At)
			id := e.Payload.(int)
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		if len(seen) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterDeterministic(t *testing.T) {
	a := NewJitter(7, 0.05)
	b := NewJitter(7, 0.05)
	for i := 0; i < 100; i++ {
		d := Duration(1000 + i)
		if x, y := a.Scale(d), b.Scale(d); x != y {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestJitterDisabled(t *testing.T) {
	j := NewJitter(1, 0)
	if got := j.Scale(12345); got != 12345 {
		t.Fatalf("sigma=0 must be identity, got %d", int64(got))
	}
	var nilJ *Jitter
	if got := nilJ.Scale(99); got != 99 {
		t.Fatalf("nil jitter must be identity, got %d", int64(got))
	}
	j2 := NewJitter(1, 0.5)
	if got := j2.Scale(0); got != 0 {
		t.Fatalf("zero duration must stay zero, got %d", int64(got))
	}
}

func TestJitterPositiveAndCentered(t *testing.T) {
	j := NewJitter(42, 0.05)
	const n = 20000
	base := Duration(1_000_000)
	var sum float64
	for i := 0; i < n; i++ {
		d := j.Scale(base)
		if d <= 0 {
			t.Fatalf("non-positive jittered duration %d", int64(d))
		}
		sum += float64(d) / float64(base)
	}
	mean := sum / n
	// Log-normal with sigma=0.05 has mean exp(sigma^2/2) ~ 1.00125.
	if mean < 0.99 || mean > 1.01 {
		t.Fatalf("jitter mean %v drifted from 1", mean)
	}
}

func TestJitterSpreadGrowsWithSigma(t *testing.T) {
	spread := func(sigma float64) float64 {
		j := NewJitter(1, sigma)
		base := Duration(1_000_000)
		lo, hi := base, base
		for i := 0; i < 5000; i++ {
			d := j.Scale(base)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return float64(hi-lo) / float64(base)
	}
	if s1, s2 := spread(0.01), spread(0.10); s2 <= s1 {
		t.Fatalf("spread did not grow with sigma: %v vs %v", s1, s2)
	}
}

func BenchmarkEventQueue(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var q EventQueue
	for i := 0; i < 1024; i++ {
		q.PushAt(Time(rng.Int63n(1<<40)), 0, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.PushAt(e.At+Time(rng.Int63n(1000)), 0, nil)
	}
}
