package vtime

import (
	"math"
	"math/rand"
)

// Jitter models run-to-run execution-time variance. On the paper's
// ZCU102 testbed the variance across the 50 iterations of Figure 9a
// comes from OS noise (interrupts, cache state, thread migration).
// Here the same spread is produced by a seeded log-normal multiplier
// applied to modeled task durations, so box plots have the same
// structure while staying reproducible.
type Jitter struct {
	rng   *rand.Rand
	sigma float64
}

// NewJitter creates a jitter source. sigma is the standard deviation
// of the underlying normal in log space; sigma=0 disables noise.
// Typical OS-noise levels on the emulated platforms are around 0.03.
func NewJitter(seed int64, sigma float64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed)), sigma: sigma}
}

// Reseed restores the source to the state NewJitter(seed, sigma)
// produces, without allocating a new generator — the emulator reseeds
// per Run so repeated runs of one emulator draw identical noise.
func (j *Jitter) Reseed(seed int64, sigma float64) {
	j.sigma = sigma
	j.rng.Seed(seed)
}

// Scale perturbs d by a log-normal factor with median 1. The result
// is never negative and is zero only when d is zero.
func (j *Jitter) Scale(d Duration) Duration {
	if j == nil || j.sigma == 0 || d == 0 {
		return d
	}
	f := j.factor()
	out := Duration(float64(d) * f)
	if out < 1 {
		out = 1
	}
	return out
}

// factor draws a median-1 log-normal multiplier: exp(sigma * N(0,1)).
func (j *Jitter) factor() float64 {
	return math.Exp(j.rng.NormFloat64() * j.sigma)
}
