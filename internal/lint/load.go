package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package loading without golang.org/x/tools/go/packages: `go list
// -deps -export -json` yields, for every package in the build, the
// compiled export data the gc toolchain already produced in the build
// cache. Targets (this module's packages) are parsed from source and
// type-checked with go/types; every import — stdlib included — is
// satisfied from export data through importer.ForCompiler's lookup
// hook, so no dependency is ever re-type-checked from source. This is
// the same division of labour a go/packages NeedTypes load performs.

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	// ForTest is set on test-augmented variants ("p [p.test]" has
	// ForTest == "p").
	ForTest  string
	Export   string
	Standard bool
	// GoFiles of a test-augmented variant already include the
	// in-package _test.go files; external test packages carry their
	// sources in XTestGoFiles instead.
	GoFiles      []string
	XTestGoFiles []string
	CgoFiles     []string
	// Imports are the package's source-level import paths; the loader
	// orders targets bottom-up over this graph so analyzer facts
	// computed in a dependency exist before its importers run.
	Imports []string
	// ImportMap rewrites source-level import paths to build-graph
	// package identities (external tests import the test-augmented
	// variant of the package under test).
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// LoadedPackage is one fully type-checked target package.
type LoadedPackage struct {
	// Path is the package's import path with any " [p.test]" build
	// variant suffix stripped — the path scoping rules match against.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadOptions configure Load.
type LoadOptions struct {
	// Dir is the directory to run `go list` in (the module root or
	// below). Empty means current directory.
	Dir string
	// Tests includes _test.go files and external test packages.
	Tests bool
}

// Load lists patterns, then parses and type-checks every non-standard
// module package matched, resolving all imports from gc export data.
func Load(patterns []string, opts LoadOptions) ([]*LoadedPackage, *token.FileSet, error) {
	args := []string{"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,ForTest,Export,Standard,GoFiles,XTestGoFiles,CgoFiles,Imports,ImportMap,Error"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	targets := selectTargets(listed, opts.Tests)
	fset := token.NewFileSet()
	var loaded []*LoadedPackage
	for _, p := range targets {
		lp, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, fset, nil
}

// ExportData runs `go list -deps -export -json` over patterns in dir
// and returns the ImportPath -> export-data-file table. The linttest
// fixture harness uses it to type-check fixture packages against the
// module's real types.
func ExportData(patterns []string, dir string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// selectTargets picks the packages to analyze from the listing: the
// module's own packages, deduplicated so that when a test-augmented
// variant exists it replaces the plain package (its GoFiles are a
// superset), and synthesized ".test" mains are dropped. The result is
// in dependency order — every target precedes the targets importing
// it — so analyzer facts flow bottom-up over the module graph; ties
// are broken by path so the order stays deterministic.
func selectTargets(listed []*listedPackage, tests bool) []*listedPackage {
	byBase := map[string]*listedPackage{}
	var order []string
	for _, p := range listed {
		if p.Standard || strings.HasSuffix(basePath(p.ImportPath), ".test") {
			continue
		}
		// Only packages with local sources (the module under lint);
		// dependencies resolved from a module cache would have no Dir
		// under the repo, but offline builds have none anyway.
		if len(p.GoFiles) == 0 && len(p.XTestGoFiles) == 0 {
			continue
		}
		base := basePath(p.ImportPath)
		prev, ok := byBase[base]
		if !ok {
			byBase[base] = p
			order = append(order, base)
			continue
		}
		// Prefer the test-augmented variant over the plain package.
		if tests && p.ForTest != "" && prev.ForTest == "" {
			byBase[base] = p
		}
	}
	sort.Strings(order)

	// Topological sort (deps first) over the module-internal import
	// edges of the selected variants. Import paths route through
	// ImportMap first, so an external test's dependency on the
	// test-augmented variant of its package under test lands on that
	// target's base path.
	out := make([]*listedPackage, 0, len(order))
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(base string)
	visit = func(base string) {
		p, ok := byBase[base]
		if !ok || state[base] != 0 {
			return // not a target, already emitted, or an import cycle
		}
		state[base] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if mapped, ok := p.ImportMap[imp]; ok {
				imp = mapped
			}
			visit(basePath(imp))
		}
		state[base] = 2
		out = append(out, p)
	}
	for _, base := range order {
		visit(base)
	}
	return out
}

// basePath strips the " [p.test]" build-variant suffix.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// typecheck parses and checks one target against export data.
func typecheck(fset *token.FileSet, p *listedPackage, exports map[string]string) (*LoadedPackage, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by repolint", p.ImportPath)
	}
	names := p.GoFiles
	if len(names) == 0 {
		names = p.XTestGoFiles
	}
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := CheckFiles(fset, basePath(p.ImportPath), files, exports, p.ImportMap)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
	}
	return &LoadedPackage{Path: basePath(p.ImportPath), Files: files, Pkg: pkg, Info: info}, nil
}

// CheckFiles type-checks one package's parsed files, resolving every
// import from the export-data table (after applying importMap, which
// may be nil). Shared with the linttest fixture loader.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, exports map[string]string, importMap map[string]string) (*types.Package, *types.Info, error) {
	return CheckFilesAmong(fset, path, files, exports, importMap, nil)
}

// CheckFilesAmong is CheckFiles with a table of already-checked local
// packages consulted before the export data: the linttest harness
// type-checks multi-package fixture trees (package b importing fixture
// package a) through it, since fixture packages have no gc export data
// of their own.
func CheckFilesAmong(fset *token.FileSet, path string, files []*ast.File, exports map[string]string, importMap map[string]string, local map[string]*types.Package) (*types.Package, *types.Info, error) {
	// A fresh importer per target: test-augmented variants of the
	// same import path must not share a package cache.
	return CheckFilesWith(fset, path, files, NewImporter(fset, exports, importMap, local))
}

// NewImporter builds the loader's import resolver: already-checked
// local packages first (shared by pointer, so one importer can serve a
// whole fixture tree and keep its stdlib type identities consistent),
// gc export data for everything else.
func NewImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string, local map[string]*types.Package) types.Importer {
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the `go list -deps -export` closure)", importPath)
		}
		return os.Open(file)
	}
	return &chainImporter{
		local:    local,
		fallback: importer.ForCompiler(fset, "gc", lookup),
	}
}

// CheckFilesWith type-checks one package's parsed files against an
// existing importer.
func CheckFilesWith(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// chainImporter resolves imports from an in-memory table of
// already-checked packages first, then from gc export data.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	return c.fallback.Import(path)
}
