// Package lint is repolint: the repo's determinism and ownership
// contracts compiled into static-analysis passes. Each PR so far
// shipped those contracts as prose "behavior notes" in CHANGES.md and
// pinned them with golden tests after the fact; the analyzers here
// check them at the source level on every `make check` and CI push,
// before a violation ever reaches an emulation run.
//
// The eight analyzers and the notes they mechanize:
//
//   - detorder: map iteration feeding output must sort keys first
//     (the Fig9CSV class of bug PR 1 fixed by luck).
//   - novtime: virtual-clock packages use vtime and seeded RNGs only —
//     no wall clock, no global math/rand (determinism by construction).
//   - singleuse: sinks and arrival sources are single-use per run and
//     must be built inside the sweep cell that uses them (PR 3/PR 6).
//   - metafreeze: a *sched.ReadyMeta is frozen once pushed into the
//     ready window (PR 5's pointer-validity contract).
//   - scratchown: Instances() views die at the next Run on the same
//     emulator, and a core.Scratch never crosses goroutines (PR 2).
//   - vtflow: the novtime contract made transitive — wall-clock and
//     global-rand values are tracked through helper functions and
//     struct fields (via analyzer facts) into the virtual-clock
//     packages, wherever in the module the source lives.
//   - sharedmut: the PDES-readiness inventory — package-level mutable
//     state a domain-partitioned event loop would race on, including
//     cross-package writes; also emits the PDES_SHARING.md baseline.
//   - singlewriter: //repolint:contract single-writer types (the
//     stats.Online / serve.progressMirror contract) — unlocked
//     mutating methods reached from more than one goroutine-spawn
//     site per value.
//
// The driver loads packages itself (see load.go), orders them
// bottom-up over the import graph, and applies per-analyzer package
// scoping. Analyzers without facts stay pure functions of one
// type-checked package; analyzers with FactTypes run over every
// package (facts must be computed module-wide) and Scope then filters
// which packages' diagnostics are reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns repolint's analyzer suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetOrder, NoVTime, SingleUse, MetaFreeze, ScratchOwn,
		VTFlow, SharedMut, SingleWriter,
	}
}

// Scope restricts analyzers to the packages whose contract they
// encode; an absent entry means the analyzer reports everywhere. Paths
// match the package or any subpackage, with test variants normalized
// (external test packages match their package under test). For
// analyzers without facts the driver skips out-of-scope packages
// entirely; fact-carrying analyzers run everywhere (facts are a
// whole-module computation) and only their diagnostics are filtered.
var Scope = map[string][]string{
	// The byte-determinism surface: packages whose output lands in
	// CSVs, reports, goldens, or hashes.
	"detorder": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/sweep",
		"repro/internal/experiments", "repro/internal/stats", "repro/internal/platevent",
	},
	// The virtual-clock packages: everything inside an emulation's
	// causal order. sweep is deliberately absent (its progress/ETA
	// output is wall-clock by design), as is vtime itself (the jitter
	// model owns its seeded RNG).
	"novtime": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/platevent",
		"repro/internal/workload", "repro/internal/experiments",
	},
	// vtflow reports where novtime does — the same virtual-clock
	// surface, but with taint arriving through any number of helper
	// hops; facts are still computed over the whole module.
	"vtflow": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/platevent",
		"repro/internal/workload", "repro/internal/experiments",
	},
	// The PDES sharing surface: everything a domain-partitioned event
	// loop would touch concurrently — the loop itself, the scheduler
	// state, platform events, workload sources, the sinks it records
	// into, and the clock.
	"sharedmut": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/platevent",
		"repro/internal/workload", "repro/internal/stats", "repro/internal/vtime",
	},
	// singlewriter is unscoped: the contract travels with the
	// annotated type, wherever it is used.
}

// Finding is one reported diagnostic, position-resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	// Category refines repolint's own findings ("malformed-allow",
	// "stale-allow"); empty for ordinary analyzer diagnostics.
	Category string
	Message  string
	// Suppressed marks findings covered by a reasoned
	// //repolint:allow; they are only collected under
	// Options.KeepSuppressed (the -json machine-readable output
	// records them so audits see what the allows are holding back).
	Suppressed bool
	// Reason is the allow directive's reason for suppressed findings.
	Reason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Options configure Run.
type Options struct {
	// Dir is where `go list` runs; empty = current directory.
	Dir string
	// Tests includes _test.go files (default in cmd/repolint: on).
	Tests bool
	// Analyzers overrides the suite; nil runs Analyzers().
	Analyzers []*analysis.Analyzer
	// KeepSuppressed also returns findings covered by an allow
	// directive, marked Suppressed with their Reason.
	KeepSuppressed bool
	// Facts, when non-nil, is used as the run's fact store and left
	// populated afterwards (the PDES sharing report reads the
	// sharedmut inventory facts out of it).
	Facts *analysis.FactStore
}

// Run loads the packages matched by patterns and applies the analyzer
// suite, honouring Scope and //repolint:allow suppressions. The
// returned findings are sorted by position; a non-empty slice of
// unsuppressed findings means the tree violates a contract (or
// carries a malformed or stale suppression).
func Run(patterns []string, opts Options) ([]Finding, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	pkgs, fset, err := Load(patterns, LoadOptions{Dir: opts.Dir, Tests: opts.Tests})
	if err != nil {
		return nil, err
	}

	facts := opts.Facts
	if facts == nil {
		facts = analysis.NewFactStore()
	}

	// Directives must recognize every suite analyzer, not just the
	// ones this run executes: a subset run (the sharing report, a
	// focused -run) must not misreport another analyzer's allow as
	// unknown.
	known := map[string]bool{"*": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows := allowSet{}
		for _, f := range pkg.Files {
			findings = append(findings, parseAllows(fset, f, known, allows)...)
		}
		// reporting is the set of analyzers whose findings can surface
		// in this package — what an allow directive here could
		// legitimately be suppressing.
		reporting := map[string]bool{}
		for _, a := range analyzers {
			interproc := len(a.FactTypes) > 0
			if inScope(a.Name, pkg.Path) {
				reporting[a.Name] = true
			} else if !interproc {
				continue // out of scope, no facts to compute: skip entirely
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if interproc {
				facts.Bind(pass, pkg.Path)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			if !reporting[a.Name] {
				continue // fact-only visit: diagnostics filtered by Scope
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				reason, suppressed := allows.covers(pos, a.Name)
				if suppressed && !opts.KeepSuppressed {
					continue
				}
				findings = append(findings, Finding{
					Pos: pos, Analyzer: a.Name, Message: d.Message,
					Suppressed: suppressed, Reason: reason,
				})
			}
		}
		// Stale-allow detection: a directive whose analyzer reported
		// nothing on its lines is dead and would rot the audit. Only
		// directives whose analyzer actually could report here are
		// judged — an allow for an analyzer excluded from this run (or
		// scoped away from this package) is merely unused, not stale.
		for _, d := range allows.directives() {
			if d.used {
				continue
			}
			applicable := d.analyzer == "*" && len(reporting) > 0 || reporting[d.analyzer]
			if !applicable {
				continue
			}
			findings = append(findings, Finding{
				Pos:      d.pos,
				Analyzer: "repolint",
				Category: "stale-allow",
				Message: fmt.Sprintf("stale //repolint:allow %s: no %s finding occurs on its lines anymore — remove the directive",
					d.analyzer, d.analyzer),
			})
		}
	}
	sortFindings(findings)
	return findings, nil
}

// inScope applies Scope to a normalized package path; external test
// packages ("p_test") inherit the scope of p.
func inScope(analyzer, pkgPath string) bool {
	roots, restricted := Scope[analyzer]
	if !restricted {
		return true
	}
	path := strings.TrimSuffix(pkgPath, "_test")
	for _, root := range roots {
		if path == root || strings.HasPrefix(path, root+"/") {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
