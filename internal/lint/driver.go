// Package lint is repolint: the repo's determinism and ownership
// contracts compiled into static-analysis passes. Each PR so far
// shipped those contracts as prose "behavior notes" in CHANGES.md and
// pinned them with golden tests after the fact; the analyzers here
// check them at the source level on every `make check` and CI push,
// before a violation ever reaches an emulation run.
//
// The five analyzers and the notes they mechanize:
//
//   - detorder: map iteration feeding output must sort keys first
//     (the Fig9CSV class of bug PR 1 fixed by luck).
//   - novtime: virtual-clock packages use vtime and seeded RNGs only —
//     no wall clock, no global math/rand (determinism by construction).
//   - singleuse: sinks and arrival sources are single-use per run and
//     must be built inside the sweep cell that uses them (PR 3/PR 6).
//   - metafreeze: a *sched.ReadyMeta is frozen once pushed into the
//     ready window (PR 5's pointer-validity contract).
//   - scratchown: Instances() views die at the next Run on the same
//     emulator, and a core.Scratch never crosses goroutines (PR 2).
//
// The driver loads packages itself (see load.go) and applies
// per-analyzer package scoping, so analyzers stay pure functions of
// one type-checked package and remain testable on fixtures.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns repolint's analyzer suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{DetOrder, NoVTime, SingleUse, MetaFreeze, ScratchOwn}
}

// Scope restricts analyzers to the packages whose contract they
// encode; an absent entry means the analyzer runs everywhere. Paths
// match the package or any subpackage, with test variants normalized
// (external test packages match their package under test).
var Scope = map[string][]string{
	// The byte-determinism surface: packages whose output lands in
	// CSVs, reports, goldens, or hashes.
	"detorder": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/sweep",
		"repro/internal/experiments", "repro/internal/stats", "repro/internal/platevent",
	},
	// The virtual-clock packages: everything inside an emulation's
	// causal order. sweep is deliberately absent (its progress/ETA
	// output is wall-clock by design), as is vtime itself (the jitter
	// model owns its seeded RNG).
	"novtime": {
		"repro/internal/core", "repro/internal/sched", "repro/internal/platevent",
		"repro/internal/workload", "repro/internal/experiments",
	},
}

// Finding is one reported diagnostic, position-resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Options configure Run.
type Options struct {
	// Dir is where `go list` runs; empty = current directory.
	Dir string
	// Tests includes _test.go files (default in cmd/repolint: on).
	Tests bool
	// Analyzers overrides the suite; nil runs Analyzers().
	Analyzers []*analysis.Analyzer
}

// Run loads the packages matched by patterns and applies the analyzer
// suite, honouring Scope and //repolint:allow suppressions. The
// returned findings are sorted by position; a non-empty slice means
// the tree violates a contract (or carries a malformed suppression).
func Run(patterns []string, opts Options) ([]Finding, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	pkgs, fset, err := Load(patterns, LoadOptions{Dir: opts.Dir, Tests: opts.Tests})
	if err != nil {
		return nil, err
	}

	known := map[string]bool{"*": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows := allowSet{}
		for _, f := range pkg.Files {
			findings = append(findings, parseAllows(fset, f, known, allows)...)
		}
		for _, a := range analyzers {
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				if allows.covers(pos, a.Name) {
					continue
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// inScope applies Scope to a normalized package path; external test
// packages ("p_test") inherit the scope of p.
func inScope(analyzer, pkgPath string) bool {
	roots, restricted := Scope[analyzer]
	if !restricted {
		return true
	}
	path := strings.TrimSuffix(pkgPath, "_test")
	for _, root := range roots {
		if path == root || strings.HasPrefix(path, root+"/") {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
