package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Type and AST helpers shared by the analyzers. Everything matches by
// package path + name, never by object identity, because each target
// package is type-checked with its own importer instance.

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedAs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name. Generic instantiations match their origin.
func namedAs(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// funcFrom reports whether obj is the package-level function
// pkgPath.name (methods never match).
func funcFrom(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// findInterface resolves the interface type pkgPath.name from the
// pass's package or its transitive imports; nil when the package is
// not in the import closure (the analyzer part that needs it then has
// nothing to check).
func findInterface(pass *analysis.Pass, pkgPath, name string) *types.Interface {
	pkg := findPackage(pass.Pkg, pkgPath, map[*types.Package]bool{})
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func findPackage(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg == nil || seen[pkg] {
		return nil
	}
	seen[pkg] = true
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if found := findPackage(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// implements reports whether t or *t satisfies iface.
func implements(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// inspectStack walks every file, calling fn with each node and the
// stack of its ancestors (outermost first, excluding n itself).
// Returning false prunes the subtree.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// enclosingFunc returns the innermost function literal or declaration
// body on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// enclosingLoop returns the innermost for/range statement on the
// stack that is inside the innermost function, or nil.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// identObj resolves expr to the object of a plain identifier (or nil).
func identObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// methodCall matches a call of the form recv.sel(...) where recv's
// type (behind a pointer) is recvPkg.recvName, returning the receiver
// expression.
func methodCall(info *types.Info, call *ast.CallExpr, recvPkg, recvName, sel string) (ast.Expr, bool) {
	s, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return nil, false
	}
	tv, ok := info.Types[s.X]
	if !ok || !namedAs(tv.Type, recvPkg, recvName) {
		return nil, false
	}
	return s.X, true
}
