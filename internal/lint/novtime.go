package lint

import (
	"go/types"

	"repro/internal/lint/analysis"
)

// NoVTime forbids wall-clock and globally-seeded randomness inside
// the virtual-clock packages. Everything an emulation computes must
// be a function of (inputs, seed): the only legal clock is
// vtime.Time advanced by the discrete-event loop, and the only legal
// randomness is a rand.Rand built from an explicit seed
// (rand.New(rand.NewSource(seed))). A time.Now() or a global
// rand.Intn() in these packages silently breaks byte-determinism —
// fixtures, workers=1 vs N goldens, and the indexed-vs-slice
// differentials all rest on its absence.
var NoVTime = &analysis.Analyzer{
	Name: "novtime",
	Doc:  "virtual-clock packages: no wall clock, no global math/rand",
	Run:  runNoVTime,
}

// bannedTimeFuncs are the wall-clock entry points. Types and
// constants from package time (Duration, Millisecond) stay legal:
// they are units, not clocks.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the explicitly-seeded entry points that remain
// legal; every other package-level math/rand func either consults the
// global source or reseeds it.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoVTime(pass *analysis.Pass) (any, error) {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock; virtual-clock packages must use vtime.Time only", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[fn.Name()] {
				pass.Reportf(id.Pos(), "rand.%s uses the global random source; build a seeded rand.New(rand.NewSource(seed)) instead", fn.Name())
			}
		}
	}
	return nil, nil
}
