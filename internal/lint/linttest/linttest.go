// Package linttest is repolint's golden-fixture harness, a stdlib
// stand-in for golang.org/x/tools/go/analysis/analysistest: it
// type-checks a fixture package (which may import this module's real
// packages — analyzers match real types, so stubs would test
// nothing), runs one analyzer over it, and compares the diagnostics
// against `// want "regex"` comments, analysistest-style: every
// diagnostic must match a want on its line, every want must be hit.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// exportsOnce loads, once per test binary, the gc export data table
// for the whole module plus the stdlib packages fixtures lean on.
var exportsOnce = sync.OnceValues(loadExports)

func loadExports() (map[string]string, error) {
	return lint.ExportData([]string{"./...", "fmt", "sort", "slices", "time", "math/rand", "io", "encoding/csv"}, moduleRoot())
}

// moduleRoot walks up from the working directory to the go.mod; tests
// run in their package directory, so this finds the repo root without
// shelling out.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// Run applies analyzer a to the fixture package rooted at dir
// (conventionally "testdata/<analyzer name>") and diffs diagnostics
// against want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("linttest: loading export data: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	pkg, info, err := lint.CheckFiles(fset, "fixtures/"+filepath.Base(dir), files, exports, nil)
	if err != nil {
		t.Fatalf("linttest: type-checking fixtures: %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.re.MatchString(d.Message) {
				matched = true
				wants[key][i] = nil
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var missed []string
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				missed = append(missed, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re.String()))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// collectWants parses `// want "re" "re2"` comments; regexes may be
// double- or back-quoted. The expectation anchors to the comment's
// own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	wants := map[wantKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the sequence of quoted strings after "want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", pos.Filename, pos.Line, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want regexp: %q", pos.Filename, pos.Line, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, raw, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
