// Package linttest is repolint's golden-fixture harness, a stdlib
// stand-in for golang.org/x/tools/go/analysis/analysistest: it
// type-checks a fixture package (which may import this module's real
// packages — analyzers match real types, so stubs would test
// nothing), runs one analyzer over it, and compares the diagnostics
// against `// want "regex"` comments, analysistest-style: every
// diagnostic must match a want on its line, every want must be hit.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// exportsOnce loads, once per test binary, the gc export data table
// for the whole module plus the stdlib packages fixtures lean on.
var exportsOnce = sync.OnceValues(loadExports)

func loadExports() (map[string]string, error) {
	return lint.ExportData([]string{"./...", "fmt", "sort", "slices", "time", "math/rand", "io", "encoding/csv"}, moduleRoot())
}

// moduleRoot walks up from the working directory to the go.mod; tests
// run in their package directory, so this finds the repo root without
// shelling out.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// Run applies analyzer a to the fixture package rooted at dir
// (conventionally "testdata/<analyzer name>") and diffs diagnostics
// against want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("linttest: loading export data: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	pkg, info, err := lint.CheckFiles(fset, "fixtures/"+filepath.Base(dir), files, exports, nil)
	if err != nil {
		t.Fatalf("linttest: type-checking fixtures: %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if len(a.FactTypes) > 0 {
		analysis.NewFactStore().Bind(pass, pkg.Path())
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}

	matchWants(t, fset, files, diags)
}

// matchWants diffs diagnostics against the files' want comments,
// analysistest-style: every diagnostic must match a want on its line,
// every want must be hit.
func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.re.MatchString(d.Message) {
				matched = true
				wants[key][i] = nil
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var missed []string
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				missed = append(missed, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re.String()))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// RunPackages applies analyzer a to a multi-package fixture tree:
// every subdirectory of dir is one fixture package with import path
// "fixtures/<base(dir)>/<sub>", type-checked in dependency order with
// analyzer facts flowing through one shared FactStore — the harness
// proof that an analyzer's interprocedural reasoning survives package
// boundaries. Diagnostics from every package are matched against the
// want comments of every package (the raw analyzer is scope-free;
// Scope filtering is the driver's concern, not the analyzer's).
// It returns the populated fact store for tests that assert on the
// facts themselves.
func RunPackages(t *testing.T, a *analysis.Analyzer, dir string) *analysis.FactStore {
	t.Helper()
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("linttest: loading export data: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	prefix := "fixtures/" + filepath.Base(dir) + "/"
	fset := token.NewFileSet()
	type fixturePkg struct {
		path    string
		files   []*ast.File
		imports []string // fixture-local imports only
	}
	byPath := map[string]*fixturePkg{}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		var files []*ast.File
		subEntries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for _, se := range subEntries {
			if se.IsDir() || !strings.HasSuffix(se.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(sub, se.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		p := &fixturePkg{path: prefix + e.Name(), files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if strings.HasPrefix(ip, prefix) {
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[p.path] = p
		paths = append(paths, p.path)
	}
	if len(paths) == 0 {
		t.Fatalf("linttest: no fixture packages under %s", dir)
	}
	sort.Strings(paths)

	// Dependency order over the fixture-local import edges.
	var order []string
	state := map[string]int{}
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		deps := append([]string(nil), p.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			visit(dep)
		}
		state[path] = 2
		order = append(order, path)
	}
	for _, path := range paths {
		visit(path)
	}

	facts := analysis.NewFactStore()
	local := map[string]*types.Package{}
	// One importer for the whole tree: fixture packages exchange types
	// (and stdlib type identities) with each other, unlike the driver's
	// per-target isolation.
	imp := lint.NewImporter(fset, exports, nil, local)
	var diags []analysis.Diagnostic
	var allFiles []*ast.File
	for _, path := range order {
		p := byPath[path]
		pkg, info, err := lint.CheckFilesWith(fset, path, p.files, imp)
		if err != nil {
			t.Fatalf("linttest: type-checking %s: %v", path, err)
		}
		local[path] = pkg
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     p.files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if len(a.FactTypes) > 0 {
			facts.Bind(pass, path)
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("linttest: %s on %s: %v", a.Name, path, err)
		}
		allFiles = append(allFiles, p.files...)
	}

	matchWants(t, fset, allFiles, diags)
	return facts
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// collectWants parses `// want "re" "re2"` comments; regexes may be
// double- or back-quoted. The expectation anchors to the comment's
// own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	wants := map[wantKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the sequence of quoted strings after "want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", pos.Filename, pos.Line, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want regexp: %q", pos.Filename, pos.Line, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, raw, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
