package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// VTFlow is the novtime contract made transitive: a call-graph taint
// pass that tracks wall-clock and global-rand values — time.Now,
// time.Since, time.Until results, everything the global math/rand
// source produces — through helper functions, package-level variables
// and struct fields, across package boundaries, into the
// virtual-clock packages. novtime catches `time.Now()` written
// directly inside core; vtflow catches `core` calling
// `util.Stamp()` where util.Stamp (two imports away) returns
// time.Now().UnixNano(), or reading a struct field some constructor
// filled from the wall clock.
//
// Division of labour with novtime: a *direct* banned call is reported
// by novtime alone (vtflow never double-reports the same line);
// vtflow reports the indirect flows — calls to functions whose
// results are tainted, reads of tainted variables or fields, and
// stores of tainted values into variables or fields. Taint is carried
// between packages as analyzer facts (TaintFact), computed bottom-up
// over the whole module; Scope only filters where diagnostics surface.
//
// Allow sites stay authoritative: a wall-clock read carrying a
// //repolint:allow novtime (or vtflow) directive is a vetted source —
// taint does not propagate out of it, so the two TimingMeasured reads
// in core keep their existing allows and their downstream flow
// (measured kernel time entering the duration model, the documented
// purpose of the mode) stays clean without new directives.
var VTFlow = &analysis.Analyzer{
	Name:      "vtflow",
	Doc:       "wall-clock/global-rand taint must not reach virtual-clock packages, even through helpers",
	Run:       runVTFlow,
	FactTypes: []analysis.Fact{(*TaintFact)(nil)},
}

// TaintFact marks a function whose results, or a package-level
// variable or struct field whose value, derives from the wall clock or
// the global random source. Source names the ultimate origin
// ("time.Now", "rand.Intn", ...) for diagnostics.
type TaintFact struct{ Source string }

// AFact marks TaintFact as an analyzer fact.
func (*TaintFact) AFact() {}

// wallClockValueFuncs are the value-producing wall-clock entry points
// (Sleep and the timer constructors are novtime-only: they misbehave
// but produce no value to track).
var wallClockValueFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runVTFlow(pass *analysis.Pass) (any, error) {
	v := &vtflow{
		pass:    pass,
		info:    pass.TypesInfo,
		allowed: vtflowAllowedLines(pass),
		funcs:   map[*types.Func]string{},
		objs:    map[types.Object]string{},
	}

	// Package-level var initializers seed object taint directly.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if src, tainted := v.taintOf(val, nil); tainted && i < len(vs.Names) {
						if obj := v.info.Defs[vs.Names[i]]; obj != nil {
							v.objs[obj] = src
						}
					}
				}
			}
		}
	}

	// Fixpoint over the package's functions: summaries feed each other
	// (helper chains within one package can be declared in any order).
	decls := v.funcDecls()
	for round := 0; round <= len(decls)+1; round++ {
		changed := false
		for _, d := range decls {
			if v.summarize(d) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Publish facts for this package's own tainted objects.
	for fn, src := range v.funcs {
		if fn.Pkg() == pass.Pkg {
			pass.ExportObjectFact(fn, &TaintFact{Source: src})
		}
	}
	for obj, src := range v.objs {
		if obj.Pkg() == pass.Pkg {
			pass.ExportObjectFact(obj, &TaintFact{Source: src})
		}
	}

	v.report(decls)
	return nil, nil
}

type vtflow struct {
	pass    *analysis.Pass
	info    *types.Info
	allowed map[allowKey]bool
	// funcs: functions whose results are tainted; objs: package-level
	// vars and struct fields holding tainted values (local map covers
	// same-package flow before facts are published).
	funcs map[*types.Func]string
	objs  map[types.Object]string
}

type vtFuncDecl struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func (v *vtflow) funcDecls() []vtFuncDecl {
	var out []vtFuncDecl
	for _, f := range v.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := v.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, vtFuncDecl{fd, obj})
		}
	}
	return out
}

// funcTaint resolves the taint of calling fn: the local summary first,
// then the cross-package fact.
func (v *vtflow) funcTaint(fn *types.Func) (string, bool) {
	if src, ok := v.funcs[fn]; ok {
		return src, true
	}
	var fact TaintFact
	if v.pass.ImportObjectFact(fn, &fact) {
		return fact.Source, true
	}
	return "", false
}

// objTaint resolves the taint of reading a variable or field object.
func (v *vtflow) objTaint(obj types.Object) (string, bool) {
	if src, ok := v.objs[obj]; ok {
		return src, true
	}
	var fact TaintFact
	if v.pass.ImportObjectFact(obj, &fact) {
		return fact.Source, true
	}
	return "", false
}

// directSource classifies a call as a wall-clock or global-rand value
// source. Allowed lines (a novtime/vtflow //repolint:allow on or above
// the call) are vetted and do not seed taint.
func (v *vtflow) directSource(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := v.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	var src string
	switch fn.Pkg().Path() {
	case "time":
		if !wallClockValueFuncs[fn.Name()] {
			return "", false
		}
		src = "time." + fn.Name()
	case "math/rand", "math/rand/v2":
		if randConstructors[fn.Name()] {
			return "", false
		}
		src = "rand." + fn.Name()
	default:
		return "", false
	}
	pos := v.pass.Fset.Position(call.Pos())
	if v.allowed[allowKey{pos.Filename, pos.Line}] {
		return "", false
	}
	return src, true
}

// taintOf evaluates whether an expression's value derives from a
// wall-clock/global-rand source. locals is the enclosing function's
// tainted-local set (nil at package scope).
func (v *vtflow) taintOf(e ast.Expr, locals map[types.Object]string) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := v.info.Uses[e]
		if obj == nil {
			return "", false
		}
		if src, ok := locals[obj]; ok {
			return src, true
		}
		if _, ok := obj.(*types.Var); ok {
			return v.objTaint(obj)
		}
		return "", false
	case *ast.SelectorExpr:
		if obj := v.info.Uses[e.Sel]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				if src, ok := v.objTaint(obj); ok {
					return src, true
				}
			}
		}
		// A field or method value of a tainted composite keeps taint
		// (x.t where x itself holds a wall-clock-derived value).
		return v.taintOf(e.X, locals)
	case *ast.CallExpr:
		if tv, ok := v.info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: int64(tainted) is still tainted.
			return v.anyTainted(e.Args, locals)
		}
		if src, ok := v.directSource(e); ok {
			return src, true
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if fn, ok := v.info.Uses[fun].(*types.Func); ok {
				return v.funcTaint(fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := v.info.Uses[fun.Sel].(*types.Func); ok {
				if src, ok := v.funcTaint(fn); ok {
					return src, true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					// Method on a tainted receiver: t.Add(d), t.UnixNano().
					return v.taintOf(fun.X, locals)
				}
			}
		}
		// Calls to untainted functions launder their arguments:
		// fmt.Sprintf(..., elapsed) is reporting, not timekeeping.
		return "", false
	case *ast.BinaryExpr:
		if src, ok := v.taintOf(e.X, locals); ok {
			return src, true
		}
		return v.taintOf(e.Y, locals)
	case *ast.UnaryExpr:
		return v.taintOf(e.X, locals)
	case *ast.ParenExpr:
		return v.taintOf(e.X, locals)
	case *ast.StarExpr:
		return v.taintOf(e.X, locals)
	case *ast.IndexExpr:
		return v.taintOf(e.X, locals)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src, ok := v.taintOf(elt, locals); ok {
				return src, true
			}
		}
		return "", false
	}
	return "", false
}

func (v *vtflow) anyTainted(es []ast.Expr, locals map[types.Object]string) (string, bool) {
	for _, e := range es {
		if src, ok := v.taintOf(e, locals); ok {
			return src, true
		}
	}
	return "", false
}

// summarize runs the intraprocedural dataflow over one function,
// updating the function summary and the package-level object taint
// maps; it reports whether anything new was learned.
func (v *vtflow) summarize(d vtFuncDecl) bool {
	changed := false
	locals := map[types.Object]string{}
	results := v.namedResults(d.decl)

	// Local fixpoint: loops can carry taint backwards through the body.
	for round := 0; ; round++ {
		roundChanged := false
		v.walkOwn(d.decl, func(n ast.Node, inOwnFunc bool) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					src, tainted := v.taintOf(rhs, locals)
					if !tainted {
						continue
					}
					if v.recordStore(lhs, src, locals) {
						roundChanged = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, val := range vs.Values {
						if src, tainted := v.taintOf(val, locals); tainted && i < len(vs.Names) {
							if obj := v.info.Defs[vs.Names[i]]; obj != nil {
								if _, had := locals[obj]; !had {
									locals[obj] = src
									roundChanged = true
								}
							}
						}
					}
				}
			case *ast.ReturnStmt:
				if !inOwnFunc {
					return // a closure's return is not this function's
				}
				src, tainted := v.anyTainted(n.Results, locals)
				if !tainted && len(n.Results) == 0 {
					// Bare return: named results may carry taint.
					for _, r := range results {
						if s, ok := locals[r]; ok {
							src, tainted = s, true
							break
						}
					}
				}
				if tainted {
					if _, had := v.funcs[d.obj]; !had {
						v.funcs[d.obj] = src
						changed = true
					}
				}
			}
		})
		if roundChanged {
			changed = true
		}
		if !roundChanged || round > 32 {
			break
		}
	}
	return changed
}

// recordStore propagates taint into an assignment target: locals stay
// in the local set; package-level vars and struct fields enter the
// object taint map (and, if they belong to this package, become
// facts). Reports true when new taint was recorded.
func (v *vtflow) recordStore(lhs ast.Expr, src string, locals map[types.Object]string) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := v.info.Defs[lhs]
		if obj == nil {
			obj = v.info.Uses[lhs]
		}
		if obj == nil {
			return false
		}
		if vr, ok := obj.(*types.Var); ok && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			if _, had := v.objs[obj]; !had {
				v.objs[obj] = src
				return true
			}
			return false
		}
		if _, had := locals[obj]; !had {
			locals[obj] = src
			return true
		}
	case *ast.SelectorExpr:
		obj, ok := v.info.Uses[lhs.Sel].(*types.Var)
		if !ok {
			return false
		}
		if _, had := v.objs[obj]; !had {
			v.objs[obj] = src
			return true
		}
	}
	return false
}

// namedResults collects the function's named result objects.
func (v *vtflow) namedResults(fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Results == nil {
		return out
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := v.info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// walkOwn walks a function declaration's body, telling the callback
// whether the node belongs to the declaration itself rather than to a
// nested function literal (closure returns must not be attributed to
// the outer function).
func (v *vtflow) walkOwn(fd *ast.FuncDecl, fn func(n ast.Node, inOwnFunc bool)) {
	depth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			depth++
			// Walk the literal with inOwnFunc=false, then prune.
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil || m == n {
					return true
				}
				fn(m, false)
				return true
			})
			depth--
			return false
		}
		fn(n, depth == 0)
		return true
	})
}

// report emits the diagnostics: indirect taint arriving at calls,
// reads, and stores. Direct banned calls are novtime's findings and
// never double-reported here.
func (v *vtflow) report(decls []vtFuncDecl) {
	type diag struct {
		pos ast.Node
		msg string
	}
	var diags []diag
	seen := map[ast.Node]bool{}
	add := func(n ast.Node, format string, args ...any) {
		if seen[n] {
			return
		}
		seen[n] = true
		diags = append(diags, diag{n, fmt.Sprintf(format, args...)})
	}

	// lhsRoots collects identifiers being assigned to, so a store is
	// not also reported as a read.
	lhsIdents := map[*ast.Ident]bool{}
	for _, f := range v.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					lhsIdents[lhs] = true
				case *ast.SelectorExpr:
					lhsIdents[lhs.Sel] = true
				}
			}
			return true
		})
	}

	for _, d := range decls {
		locals := v.taintedLocalsOf(d)
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, isDirect := v.directSource(n); isDirect {
					return true // novtime's finding
				}
				var fn *types.Func
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					fn, _ = v.info.Uses[fun].(*types.Func)
				case *ast.SelectorExpr:
					fn, _ = v.info.Uses[fun.Sel].(*types.Func)
				}
				if fn != nil {
					if src, ok := v.funcTaint(fn); ok {
						add(n, "call to %s returns a wall-clock-derived value (ultimately %s); virtual-clock code must compute times from vtime and seeded RNGs only", fn.Name(), src)
					}
				}
			case *ast.Ident:
				if lhsIdents[n] {
					return true
				}
				obj, ok := v.info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				if src, tainted := v.objTaint(obj); tainted {
					add(n, "%s holds a wall-clock-derived value (ultimately %s); virtual-clock code must not consume it", obj.Name(), src)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					src, tainted := v.taintOf(rhs, locals)
					if !tainted {
						continue
					}
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr:
						if obj, ok := v.info.Uses[lhs.Sel].(*types.Var); ok && obj.IsField() {
							add(n, "stores a wall-clock-derived value (ultimately %s) into field %s; the taint now outlives this function", src, obj.Name())
						}
					case *ast.Ident:
						obj := v.info.Uses[lhs]
						if vr, ok := obj.(*types.Var); ok && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
							add(n, "stores a wall-clock-derived value (ultimately %s) into package-level var %s; every reader inherits the taint", src, vr.Name())
						}
					}
				}
			}
			return true
		})
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].pos.Pos() < diags[j].pos.Pos() })
	for _, d := range diags {
		v.pass.Reportf(d.pos.Pos(), "%s", d.msg)
	}
}

// taintedLocalsOf re-derives the function's tainted-local set for the
// reporting walk (summaries keep only the cross-function state).
func (v *vtflow) taintedLocalsOf(d vtFuncDecl) map[types.Object]string {
	locals := map[types.Object]string{}
	for round := 0; ; round++ {
		changed := false
		v.walkOwn(d.decl, func(n ast.Node, _ bool) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for i, lhs := range as.Lhs {
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				src, tainted := v.taintOf(rhs, locals)
				if !tainted {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					obj := v.info.Defs[id]
					if obj == nil {
						obj = v.info.Uses[id]
					}
					if obj != nil {
						if vr, isVar := obj.(*types.Var); isVar && vr.Parent() != nil && vr.Pkg() != nil && vr.Parent() != vr.Pkg().Scope() {
							if _, had := locals[obj]; !had {
								locals[obj] = src
								changed = true
							}
						}
					}
				}
			}
		})
		if !changed || round > 32 {
			return locals
		}
	}
}

// vtflowAllowedLines collects the lines vetted by a novtime or vtflow
// allow directive (own line and the next), so taint never seeds from a
// deliberately-suppressed wall-clock read.
func vtflowAllowedLines(pass *analysis.Pass) map[allowKey]bool {
	known := map[string]bool{"novtime": true, "vtflow": true, "*": true}
	allowed := map[allowKey]bool{}
	allows := allowSet{}
	for _, f := range pass.Files {
		parseAllows(pass.Fset, f, known, allows)
	}
	for key, m := range allows {
		for name := range m {
			if known[name] {
				allowed[key] = true
			}
		}
	}
	return allowed
}
