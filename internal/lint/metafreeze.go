package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// MetaFreeze enforces the PR 5 ReadyMeta pointer contract: a
// *sched.ReadyMeta handed to View.PushReady is retained by the ready
// window (8 bytes per entry, no copy) and must stay valid and
// immutable until the task leaves the window. Two violation shapes,
// both checked per function, flow-insensitively by source position:
//
//   - the address of a ReadyMeta variable declared OUTSIDE a loop is
//     pushed INSIDE the loop: every iteration pushes the same pointer
//     and each overwrite mutates every queued entry retroactively;
//   - any write through (or to the storage of) a ReadyMeta after its
//     pointer escaped into PushReady: in-window metadata is frozen.
//
// Compiled programs push shared immutable records (&prog.meta[i]);
// those reach PushReady through selector expressions and are not
// tracked — the analyzer watches local variables, where the overwrite
// bug class lives.
var MetaFreeze = &analysis.Analyzer{
	Name: "metafreeze",
	Doc:  "ReadyMeta is frozen once pushed into the ready window",
	Run:  runMetaFreeze,
}

const schedPath = "repro/internal/sched"

func runMetaFreeze(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// escaped[obj] is the earliest PushReady position per variable;
	// valueVar records whether obj is a ReadyMeta value (escaped via
	// &obj — reassigning the variable rewrites pushed storage) rather
	// than a pointer variable (reassigning just repoints it).
	type escape struct {
		pos      token.Pos
		valueVar bool
	}
	escaped := map[types.Object]escape{}

	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := methodCall(info, call, schedPath, "View", "PushReady"); !ok || len(call.Args) != 2 {
			return true
		}
		arg := ast.Unparen(call.Args[1])
		var obj types.Object
		valueVar := false
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			obj = identObj(info, u.X)
			valueVar = true
		} else {
			obj = identObj(info, arg)
		}
		if v, ok := obj.(*types.Var); !ok || v.IsField() {
			return true
		}

		if valueVar {
			if loop := enclosingLoop(stack); loop != nil &&
				!(obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()) {
				pass.Reportf(call.Args[1].Pos(),
					"&%s pushed from inside a loop but declared outside it: every iteration pushes the same pointer and later writes mutate every queued entry (declare the ReadyMeta inside the loop or push compiled per-node meta)",
					obj.Name())
			}
		}
		if prev, ok := escaped[obj]; !ok || call.Pos() < prev.pos {
			escaped[obj] = escape{call.Pos(), valueVar}
		}
		return true
	})

	if len(escaped) == 0 {
		return nil, nil
	}

	// Writes after the escape. Source order within one function is the
	// contract boundary the analyzer can see; same-line pushes inside
	// loops are covered by the loop rule above.
	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding
	checkWrite := func(target ast.Expr, writePos token.Pos) {
		target = ast.Unparen(target)
		var obj types.Object
		through := false // write through the pointer / to a field
		switch t := target.(type) {
		case *ast.SelectorExpr:
			obj = identObj(info, t.X)
			through = true
		case *ast.StarExpr:
			obj = identObj(info, t.X)
			through = true
		case *ast.Ident:
			obj = info.Uses[t]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		esc, ok := escaped[obj]
		if !ok || writePos <= esc.pos {
			return
		}
		// Reassigning a pointer variable repoints it without touching
		// the pushed record; everything else mutates pushed storage.
		if !through && !esc.valueVar {
			return
		}
		finds = append(finds, finding{writePos,
			"write to ReadyMeta " + obj.Name() + " after its pointer escaped into PushReady; in-window metadata is frozen until the task leaves the ready window"})
	}

	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n.Pos())
		}
		return true
	})

	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Report(analysis.Diagnostic{Pos: f.pos, Message: f.msg})
	}
	return nil, nil
}
