package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments. A finding is deliberate when the offending
// line carries (or is immediately preceded by) a comment of the form
//
//	//repolint:allow <analyzer> <reason>
//
// The reason is mandatory and free-form: every silenced finding must
// say why the contract doesn't apply, so suppressions stay auditable.
// A malformed allow — missing analyzer, unknown analyzer, empty
// reason — is itself reported as a finding (analyzer "repolint") and
// suppresses nothing. A well-formed allow that suppresses nothing is
// reported too (category "stale-allow"): the finding it once silenced
// no longer occurs, so the directive is dead weight that would rot the
// `git grep repolint:allow` audit.

const allowPrefix = "repolint:allow"

// allowKey addresses one source line.
type allowKey struct {
	file string
	line int
}

// allowDirective is one parsed //repolint:allow comment. used flips
// when the directive suppresses at least one finding, so the driver
// can report the stale ones after all analyzers ran.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// allowSet records, per source line, which analyzers are suppressed;
// entries of one directive share the *allowDirective so a suppression
// on either covered line marks it used.
type allowSet map[allowKey]map[string]*allowDirective

// covers reports whether a diagnostic from analyzer at pos is
// suppressed, marking the covering directive as used.
func (s allowSet) covers(pos token.Position, analyzer string) (string, bool) {
	m := s[allowKey{pos.Filename, pos.Line}]
	if d, ok := m["*"]; ok {
		d.used = true
		return d.reason, true
	}
	if d, ok := m[analyzer]; ok {
		d.used = true
		return d.reason, true
	}
	return "", false
}

// directives lists every distinct directive in the set, in no
// particular order (the driver sorts findings afterwards).
func (s allowSet) directives() []*allowDirective {
	seen := map[*allowDirective]bool{}
	var out []*allowDirective
	for _, m := range s {
		for _, d := range m {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// parseAllows scans one file's comments for suppression directives
// and merges them into allows. known is the set of valid analyzer
// names ("*" suppresses all); malformed directives are returned as
// findings. A directive covers its own line (trailing comment) and
// the next line (a comment placed above the finding).
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, allows allowSet) []Finding {
	var bad []Finding
	malformed := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{
			Pos:      fset.Position(pos),
			Analyzer: "repolint",
			Category: "malformed-allow",
			Message:  msg,
		})
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				malformed(c.Pos(), "malformed //repolint:allow: missing analyzer name and reason")
				continue
			}
			analyzer := fields[0]
			if !known[analyzer] {
				malformed(c.Pos(), "//repolint:allow names unknown analyzer "+analyzer)
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), analyzer))
			if reason == "" {
				malformed(c.Pos(), "//repolint:allow "+analyzer+" needs a reason: every suppression must say why the contract doesn't apply here")
				continue
			}
			pos := fset.Position(c.Pos())
			d := &allowDirective{pos: pos, analyzer: analyzer, reason: reason}
			for _, l := range []int{pos.Line, pos.Line + 1} {
				key := allowKey{pos.Filename, l}
				m := allows[key]
				if m == nil {
					m = map[string]*allowDirective{}
					allows[key] = m
				}
				m[analyzer] = d
			}
		}
	}
	return bad
}
