package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments. A finding is deliberate when the offending
// line carries (or is immediately preceded by) a comment of the form
//
//	//repolint:allow <analyzer> <reason>
//
// The reason is mandatory and free-form: every silenced finding must
// say why the contract doesn't apply, so suppressions stay auditable.
// A malformed allow — missing analyzer, unknown analyzer, empty
// reason — is itself reported as a finding (analyzer "repolint") and
// suppresses nothing.

const allowPrefix = "repolint:allow"

// allowKey addresses one source line.
type allowKey struct {
	file string
	line int
}

// allowSet records, per source line, which analyzers are suppressed.
type allowSet map[allowKey]map[string]string // analyzer -> reason

// covers reports whether a diagnostic from analyzer at pos is
// suppressed.
func (s allowSet) covers(pos token.Position, analyzer string) bool {
	m := s[allowKey{pos.Filename, pos.Line}]
	if _, ok := m["*"]; ok {
		return true
	}
	_, ok := m[analyzer]
	return ok
}

// parseAllows scans one file's comments for suppression directives
// and merges them into allows. known is the set of valid analyzer
// names ("*" suppresses all); malformed directives are returned as
// findings. A directive covers its own line (trailing comment) and
// the next line (a comment placed above the finding).
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, allows allowSet) []Finding {
	var bad []Finding
	malformed := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{
			Pos:      fset.Position(pos),
			Analyzer: "repolint",
			Message:  msg,
		})
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				malformed(c.Pos(), "malformed //repolint:allow: missing analyzer name and reason")
				continue
			}
			analyzer := fields[0]
			if !known[analyzer] {
				malformed(c.Pos(), "//repolint:allow names unknown analyzer "+analyzer)
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), analyzer))
			if reason == "" {
				malformed(c.Pos(), "//repolint:allow "+analyzer+" needs a reason: every suppression must say why the contract doesn't apply here")
				continue
			}
			pos := fset.Position(c.Pos())
			for _, l := range []int{pos.Line, pos.Line + 1} {
				key := allowKey{pos.Filename, l}
				m := allows[key]
				if m == nil {
					m = map[string]string{}
					allows[key] = m
				}
				m[analyzer] = reason
			}
		}
	}
	return bad
}
