package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllowsFromSource(t *testing.T, src string) (allowSet, []Finding, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	allows := allowSet{}
	known := map[string]bool{"*": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	bad := parseAllows(fset, f, known, allows)
	return allows, bad, fset
}

func TestAllowCoversOwnAndNextLine(t *testing.T) {
	allows, bad, _ := parseAllowsFromSource(t, `package p

func f() {
	_ = 1 //repolint:allow detorder trailing comment with a reason
	_ = 2
	//repolint:allow novtime comment above the finding
	_ = 3
}
`)
	if len(bad) != 0 {
		t.Fatalf("well-formed directives reported as malformed: %v", bad)
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "detorder", true},  // trailing comment, same line
		{5, "detorder", true},  // next line
		{6, "detorder", false}, // two lines down: out of range
		{4, "novtime", false},  // wrong analyzer
		{6, "novtime", true},   // comment's own line
		{7, "novtime", true},   // line below the comment
	}
	for _, c := range cases {
		pos := token.Position{Filename: "allow_fixture.go", Line: c.line}
		if _, got := allows.covers(pos, c.analyzer); got != c.want {
			t.Errorf("covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestAllowRequiresNonEmptyReason(t *testing.T) {
	_, bad, _ := parseAllowsFromSource(t, `package p

//repolint:allow detorder
func f() {}
`)
	if len(bad) != 1 {
		t.Fatalf("expected exactly one malformed-directive finding, got %d: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "repolint" {
		t.Errorf("malformed directive attributed to %q, want \"repolint\"", bad[0].Analyzer)
	}
	if !strings.Contains(bad[0].Message, "needs a reason") {
		t.Errorf("message %q does not demand a reason", bad[0].Message)
	}
}

func TestAllowReasonMustSuppressNothing(t *testing.T) {
	// A reasonless directive must not silence anything on its lines.
	allows, _, _ := parseAllowsFromSource(t, `package p

//repolint:allow detorder
func f() {}
`)
	for line := 3; line <= 4; line++ {
		pos := token.Position{Filename: "allow_fixture.go", Line: line}
		if _, suppressed := allows.covers(pos, "detorder"); suppressed {
			t.Errorf("reasonless directive suppresses detorder on line %d", line)
		}
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	allows, bad, _ := parseAllowsFromSource(t, `package p

//repolint:allow nosuchpass this analyzer does not exist
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "unknown analyzer") {
		t.Fatalf("expected one unknown-analyzer finding, got %v", bad)
	}
	if len(allows) != 0 {
		t.Errorf("unknown-analyzer directive populated the allow set: %v", allows)
	}
}

func TestAllowMissingEverything(t *testing.T) {
	_, bad, _ := parseAllowsFromSource(t, `package p

//repolint:allow
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "missing analyzer name") {
		t.Fatalf("expected one missing-analyzer finding, got %v", bad)
	}
}

func TestAllowWildcard(t *testing.T) {
	allows, bad, _ := parseAllowsFromSource(t, `package p

func f() {
	_ = 1 //repolint:allow * generated table; every contract vetted by its generator
}
`)
	if len(bad) != 0 {
		t.Fatalf("wildcard directive reported as malformed: %v", bad)
	}
	pos := token.Position{Filename: "allow_fixture.go", Line: 4}
	for _, a := range Analyzers() {
		if _, suppressed := allows.covers(pos, a.Name); !suppressed {
			t.Errorf("wildcard does not cover %s", a.Name)
		}
	}
}

func TestAllowTracksUse(t *testing.T) {
	allows, _, _ := parseAllowsFromSource(t, `package p

func f() {
	_ = 1 //repolint:allow detorder reason one
	//repolint:allow novtime reason two
	_ = 2
}
`)
	if _, ok := allows.covers(token.Position{Filename: "allow_fixture.go", Line: 4}, "detorder"); !ok {
		t.Fatalf("detorder directive did not cover its own line")
	}
	var used, unused int
	for _, d := range allows.directives() {
		if d.used {
			used++
		} else {
			unused++
		}
	}
	if used != 1 || unused != 1 {
		t.Errorf("used=%d unused=%d after one suppression, want 1 and 1 (the novtime directive is stale)", used, unused)
	}
}

func TestAllowReasonReturned(t *testing.T) {
	allows, _, _ := parseAllowsFromSource(t, `package p

func f() {
	_ = 1 //repolint:allow detorder assertion-only iteration
}
`)
	reason, ok := allows.covers(token.Position{Filename: "allow_fixture.go", Line: 4}, "detorder")
	if !ok || reason != "assertion-only iteration" {
		t.Errorf("covers returned (%q, %v), want the directive's reason", reason, ok)
	}
}
