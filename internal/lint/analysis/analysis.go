// Package analysis is a minimal, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that repolint needs:
// an Analyzer is a named check, a Pass hands it one type-checked
// package, and Report collects diagnostics.
//
// Why a mirror and not the real thing: this repo builds and lints in
// offline containers where golang.org/x/tools can be neither
// downloaded nor (without a first download) vendored, and pinning it
// in go.mod would make even `go build ./...` unresolvable offline —
// the module graph needs every required module's go.mod. The subset
// below is API-compatible in shape (Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report}), so if x/tools ever
// becomes vendorable the analyzers port by changing one import path
// and deleting this package plus the loader in internal/lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects the package in
// pass and reports findings via pass.Report; the returned value is
// unused by repolint's driver (kept for x/tools API shape).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer mechanizes.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)

	// FactTypes declares the fact types the analyzer exports and
	// imports (one zero value per concrete type, x/tools-style). A
	// non-empty list makes the analyzer interprocedural: the driver
	// runs it over every package of the module bottom-up in import
	// order — package Scope then filters which packages' diagnostics
	// are kept, never which packages are analyzed — so facts computed
	// in a dependency are visible when its importers are analyzed.
	FactTypes []Fact
}

// Pass is one (analyzer, package) unit of work. The driver guarantees
// Files are fully type-checked against Pkg with TypesInfo populated
// (Types, Defs, Uses, Selections).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Analyzers may report in any
	// order (ranging over TypesInfo maps is fine); the driver sorts
	// all findings by position before output.
	Report func(Diagnostic)

	// Fact plumbing, bound by the driver from its FactStore (no-ops
	// when the analyzer declares no FactTypes). Semantics mirror
	// x/tools: ExportObjectFact may only attach facts to objects of
	// the package under analysis; ImportObjectFact retrieves a fact
	// previously exported for obj — by this pass or by the pass over
	// obj's defining package — copying it into the supplied pointer
	// and reporting whether one existed.
	ExportObjectFact func(obj types.Object, fact Fact)
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportPackageFact attaches a fact to the package under analysis;
	// ImportPackageFact reads the fact attached to any package in the
	// import closure (including the current one).
	ExportPackageFact func(fact Fact)
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
