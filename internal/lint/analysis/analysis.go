// Package analysis is a minimal, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that repolint needs:
// an Analyzer is a named check, a Pass hands it one type-checked
// package, and Report collects diagnostics.
//
// Why a mirror and not the real thing: this repo builds and lints in
// offline containers where golang.org/x/tools can be neither
// downloaded nor (without a first download) vendored, and pinning it
// in go.mod would make even `go build ./...` unresolvable offline —
// the module graph needs every required module's go.mod. The subset
// below is API-compatible in shape (Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report}), so if x/tools ever
// becomes vendorable the analyzers port by changing one import path
// and deleting this package plus the loader in internal/lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects the package in
// pass and reports findings via pass.Report; the returned value is
// unused by repolint's driver (kept for x/tools API shape).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer mechanizes.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass is one (analyzer, package) unit of work. The driver guarantees
// Files are fully type-checked against Pkg with TypesInfo populated
// (Types, Defs, Uses, Selections).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Analyzers may report in any
	// order (ranging over TypesInfo maps is fine); the driver sorts
	// all findings by position before output.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
