package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Facts are how repolint's analyzers become interprocedural: an
// analyzer running over package P may attach a fact to one of P's
// objects (a function, a package-level var, a struct field) or to P
// itself, and every later pass over a package that imports P can read
// it back. This mirrors the golang.org/x/tools go/analysis Facts
// design, with one structural difference forced by the offline loader:
// each target package is type-checked in its own importer universe
// (see internal/lint/load.go), so a types.Object for sched.View seen
// from core is a different Go value than the one seen while analyzing
// sched itself. Object identity therefore cannot key the store.
// Instead every fact is addressed by (package path, object key) — the
// object key is a stable textual path ("F" for a package-level object,
// "T.M" for a method, "T.f" for a struct field) — and the fact value
// itself round-trips through gob on every export/import. The encoded
// blobs sit alongside the export-data table the loader already keeps
// per package, so facts survive exactly as long as the export data
// they describe and a future on-disk fact cache only needs to write
// the blobs next to the .a files.

// Fact is a marker interface for analyzer fact types. Implementations
// must be pointer-to-struct with exported fields (gob round-trips
// them) and should be declared alongside the analyzer that owns them.
type Fact interface{ AFact() }

// FactStore holds every fact exported during one driver run, keyed by
// package path + object key + concrete fact type. A single store is
// shared by all analyzers of a run (fact types disambiguate), and the
// linttest harness threads one through multi-package fixtures to prove
// facts cross package boundaries.
type FactStore struct {
	objects  map[factKey][]byte
	packages map[factKey][]byte

	// fieldKeys caches, per types.Package *instance* (universes are
	// per-target, see above), the struct-field -> "T.f" key index.
	fieldKeys map[*types.Package]map[types.Object]string
}

type factKey struct {
	pkg    string // package path, test-variant suffix stripped
	object string // "" for package facts
	typ    string // concrete fact type name
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objects:   map[factKey][]byte{},
		packages:  map[factKey][]byte{},
		fieldKeys: map[*types.Package]map[types.Object]string{},
	}
}

// Bind wires the pass's fact accessors to the store. basePath is the
// import path facts exported by this pass are filed under (the pass
// package's path with any " [p.test]" variant suffix stripped, so the
// test-augmented variant of a package shares its facts with the plain
// one its importers see).
func (s *FactStore) Bind(pass *Pass, basePath string) {
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		if obj == nil || obj.Pkg() == nil {
			panic("ExportObjectFact: object without a package")
		}
		if obj.Pkg() != pass.Pkg {
			panic(fmt.Sprintf("ExportObjectFact: %s is not from the package under analysis (%s)", obj, pass.Pkg.Path()))
		}
		key, ok := s.objectKey(obj)
		if !ok {
			panic(fmt.Sprintf("ExportObjectFact: %s has no stable object key (local objects cannot carry facts)", obj))
		}
		s.objects[factKey{basePath, key, factType(fact)}] = encodeFact(fact)
	}
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		key, ok := s.objectKey(obj)
		if !ok {
			return false
		}
		blob, ok := s.objects[factKey{obj.Pkg().Path(), key, factType(fact)}]
		if !ok {
			return false
		}
		decodeFact(blob, fact)
		return true
	}
	pass.ExportPackageFact = func(fact Fact) {
		s.packages[factKey{basePath, "", factType(fact)}] = encodeFact(fact)
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact Fact) bool {
		if pkg == nil {
			return false
		}
		path := pkg.Path()
		if pkg == pass.Pkg {
			path = basePath
		}
		blob, ok := s.packages[factKey{path, "", factType(fact)}]
		if !ok {
			return false
		}
		decodeFact(blob, fact)
		return true
	}
}

// ObjectFact decodes the fact of the given concrete type attached to
// the object addressed by (pkgPath, objectKey) — objectKey follows the
// textual scheme above ("F", "T.M", "T.f"). Post-run consumers and
// tests use it to probe the store without a types.Object in hand.
func (s *FactStore) ObjectFact(pkgPath, objectKey string, fact Fact) bool {
	blob, ok := s.objects[factKey{pkgPath, objectKey, factType(fact)}]
	if !ok {
		return false
	}
	decodeFact(blob, fact)
	return true
}

// PackageFact decodes the fact of the given concrete type attached to
// pkgPath, for post-run consumers (the PDES sharing report walks the
// sharedmut inventory facts this way). Returns false when absent.
func (s *FactStore) PackageFact(pkgPath string, fact Fact) bool {
	blob, ok := s.packages[factKey{pkgPath, "", factType(fact)}]
	if !ok {
		return false
	}
	decodeFact(blob, fact)
	return true
}

// PackagesWithFact lists, sorted, the package paths carrying a fact of
// the given concrete type.
func (s *FactStore) PackagesWithFact(fact Fact) []string {
	typ := factType(fact)
	var out []string
	for k := range s.packages {
		if k.typ == typ {
			out = append(out, k.pkg)
		}
	}
	sort.Strings(out)
	return out
}

// objectKey computes the stable textual address of obj within its
// package: "N" for package-scope objects, "T.M" for methods, "T.f"
// for fields of package-level named struct types. Local objects (and
// fields of anonymous types) have no key and cannot carry facts.
func (s *FactStore) objectKey(obj types.Object) (string, bool) {
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			named, ok := types.Unalias(derefType(recv.Type())).(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		if o.Parent() == o.Pkg().Scope() {
			return o.Name(), true
		}
		return "", false
	case *types.Var:
		if o.IsField() {
			key, ok := s.fieldIndex(o.Pkg())[o]
			return key, ok
		}
		if o.Parent() == o.Pkg().Scope() {
			return o.Name(), true
		}
		return "", false
	case *types.TypeName, *types.Const:
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name(), true
		}
		return "", false
	}
	return "", false
}

// fieldIndex builds (once per package instance) the field-object ->
// "T.f" map over the package's exported scope: every named type whose
// underlying is a struct contributes its direct fields.
func (s *FactStore) fieldIndex(pkg *types.Package) map[types.Object]string {
	if idx, ok := s.fieldKeys[pkg]; ok {
		return idx
	}
	idx := map[types.Object]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			idx[f] = name + "." + f.Name()
		}
	}
	s.fieldKeys[pkg] = idx
	return idx
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// factType names a fact's concrete type; the pointer is stripped so
// &TaintFact{} and TaintFact{} address the same entry.
func factType(fact Fact) string {
	t := reflect.TypeOf(fact)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.PkgPath() + "." + t.Name()
}

// encodeFact/decodeFact round-trip the fact through gob. The encode on
// every export (not just at an eventual cache write) is deliberate: it
// proves each fact is position-independent serializable data, exactly
// what an on-disk cache alongside the export data would persist.
func encodeFact(fact Fact) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analysis: encoding fact %T: %v", fact, err))
	}
	return buf.Bytes()
}

func decodeFact(blob []byte, fact Fact) {
	// gob leaves zero-valued fields untouched on decode; zero the
	// destination first so importing into a reused fact value never
	// merges two facts.
	if v := reflect.ValueOf(fact); v.Kind() == reflect.Pointer {
		v.Elem().Set(reflect.Zero(v.Elem().Type()))
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(fact); err != nil {
		panic(fmt.Sprintf("analysis: decoding fact %T: %v", fact, err))
	}
}
