// Fixtures for the scratchown analyzer: Instances() views die at the
// next Run/RunStream on the same emulator, and a Scratch never
// crosses a goroutine boundary.
package fixture

import "repro/internal/core"

// True positive: the slice returned by Instances() is backed by the
// emulator's slabs, which the second Run reclaims.
func staleInstances(e *core.Emulator, arrivals []core.Arrival) int {
	insts := e.Instances()
	e.Run(arrivals)
	return insts[0].Index // want `is used after a later Run/RunStream`
}

// Near miss: re-acquiring after the Run resets the view; only the
// fresh slice is read.
func refetch(e *core.Emulator, arrivals []core.Arrival) int {
	insts := e.Instances()
	_ = insts
	e.Run(arrivals)
	insts = e.Instances()
	return len(insts)
}

// Near miss: everything the caller needs is copied out before the
// next Run invalidates the view.
func copyBefore(e *core.Emulator, arrivals []core.Arrival) int {
	insts := e.Instances()
	n := len(insts)
	e.Run(arrivals)
	return n
}

// True positive: a Scratch captured by a goroutine shares mutable
// slabs across threads.
func sharedScratch() {
	s := core.NewScratch()
	go func() {
		_ = s // want `captured by a goroutine from the enclosing scope`
	}()
}

// True positive: passing a Scratch as a goroutine argument is the
// same ownership violation.
func passedScratch(s *core.Scratch) {
	go consume(s) // want `passed into a goroutine`
}

func consume(s *core.Scratch) { _ = s }

// Near miss: the sanctioned shape — each goroutine creates (or pools)
// its own Scratch inside its own frame.
func goroutineLocal() {
	go func() {
		s := core.NewScratch()
		_ = s
	}()
}
