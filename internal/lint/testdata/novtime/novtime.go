// Fixtures for the novtime analyzer: wall-clock reads and global
// math/rand are flagged in virtual-clock packages; vtime arithmetic,
// time units, and explicitly seeded RNGs are legal.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/vtime"
)

// True positives: every wall-clock entry point.
func wallClock() int64 {
	start := time.Now()          // want `time.Now reads the wall clock`
	elapsed := time.Since(start) // want `time.Since reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return int64(elapsed)
}

// True positive: the global random source is process-wide state that
// no seed controls.
func globalRand(n int) int {
	return rand.Intn(n) // want `rand.Intn uses the global random source`
}

// Near miss: time.Duration and the unit constants are units, not
// clocks.
func units(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// Near miss: an explicitly seeded rand.Rand is the sanctioned
// randomness — byte-reproducible from the seed.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Near miss: virtual-clock arithmetic is the whole point.
func virtual(now vtime.Time, d vtime.Duration) vtime.Time {
	return now.Add(d)
}
