// Fixtures for the metafreeze analyzer: a *sched.ReadyMeta handed to
// View.PushReady is retained by the ready window and frozen until the
// task leaves it.
package fixture

import "repro/internal/sched"

// True positive: one hoisted variable, one pointer — every iteration
// pushes the same address and each overwrite mutates every queued
// entry retroactively.
func pushHoisted(v *sched.View, tasks []sched.Task) {
	var m sched.ReadyMeta
	for _, t := range tasks {
		m = sched.ReadyMeta{ClassMask: 1}
		v.PushReady(t, &m) // want `declared outside it`
	}
}

// Near miss: a fresh ReadyMeta per iteration owns its address; the
// pushed pointers stay distinct and are never rewritten.
func pushLoopLocal(v *sched.View, tasks []sched.Task) {
	for _, t := range tasks {
		m := sched.ReadyMeta{ClassMask: 1}
		v.PushReady(t, &m)
	}
}

// True positive: the window retains &m, so this write edits in-window
// metadata.
func writeAfterPush(v *sched.View, t sched.Task) {
	m := sched.ReadyMeta{ClassMask: 1}
	v.PushReady(t, &m)
	m.NumChoices = 3 // want `after its pointer escaped`
}

// True positive: writing through an escaped pointer variable.
func writeThroughPointer(v *sched.View, t sched.Task, m *sched.ReadyMeta) {
	v.PushReady(t, m)
	m.ClassMask = 2 // want `after its pointer escaped`
}

// Near miss: repointing the pointer variable afterwards touches
// nothing the window retains.
func repointAfterPush(v *sched.View, t sched.Task, m *sched.ReadyMeta) {
	v.PushReady(t, m)
	m = nil
	_ = m
}

// Near miss: initialization writes before the push are the normal
// build-then-freeze sequence.
func writeBeforePush(v *sched.View, t sched.Task) {
	var m sched.ReadyMeta
	m.ClassMask = 4
	m.NumChoices = 1
	v.PushReady(t, &m)
}
