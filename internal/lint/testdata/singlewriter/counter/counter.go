// Fixture package counter: two annotated types — one whose mutating
// methods are bare (the single-writer discipline is the caller's
// burden), one whose methods take their own lock (no discipline
// needed).
package counter

import "sync"

// Tally is an accumulation cell owned by exactly one writing
// goroutine; readers get copies via Total.
//
//repolint:contract single-writer
type Tally struct {
	n int
}

// Add is an unlocked mutating method: it enters the contract's method
// table.
func (t *Tally) Add(d int) { t.n += d }

// Bump mutates via another mutating method; the fixpoint classifies it
// too.
func (t *Tally) Bump() { t.Add(1) }

// Total is read-only — the snapshot side of the contract, exempt by
// construction.
func (t *Tally) Total() int { return t.n }

// Safe locks its own mutex before mutating; its methods never enter
// the unlocked table, so call sites are unconstrained.
//
//repolint:contract single-writer
type Safe struct {
	mu sync.Mutex
	n  int
}

// Add is a locked mutating method.
func (s *Safe) Add(d int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += d
}

// True positive: the same Tally written from the function body and a
// spawned goroutine.
func twoWriters() int {
	t := &Tally{}
	t.Add(1)
	go t.Bump() // want `single-writer contract of counter.Tally`
	return t.Total()
}

// True positive: one `go` inside a loop is a writer per iteration.
func fanOut(t *Tally) {
	for i := 0; i < 4; i++ {
		go func() {
			t.Add(i) // want `single-writer contract of counter.Tally.*spawned in a loop`
		}()
	}
}

// Near miss: all writes stay in one spawned goroutine.
func oneWriter(t *Tally) {
	go func() {
		t.Add(1)
		t.Add(2)
	}()
}

// Near miss: a reader goroutine beside the writer is the contract
// working as designed.
func writerAndReader(t *Tally) {
	done := make(chan int, 1)
	go func() { done <- t.Total() }()
	t.Add(1)
	<-done
}

// Near miss: two distinct values, one writer each.
func twoValues() {
	a, b := &Tally{}, &Tally{}
	a.Add(1)
	go func() { b.Add(1) }()
}

// Near miss: locked methods carry their own serialization.
func lockedEverywhere(s *Safe) {
	s.Add(1)
	go s.Add(2)
}

// Near miss: both contexts serialize through an external mutex, the
// progressMirror-drives-Online pattern.
type mirror struct {
	mu sync.Mutex
	t  *Tally
}

func (m *mirror) observe() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t.Add(1)
}

func externallyLocked(m *mirror) {
	m.mu.Lock()
	m.t.Add(1)
	m.mu.Unlock()
	go func() {
		m.mu.Lock()
		m.t.Add(2)
		m.mu.Unlock()
	}()
}
