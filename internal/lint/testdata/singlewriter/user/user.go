// Fixture package user: the contract travels with the type. Tally's
// mutating-method table arrives here as a fact on the imported type;
// nothing in this package re-derives it from source.
package user

import "fixtures/singlewriter/counter"

// True positive across the package boundary.
func race(t *counter.Tally) {
	t.Add(1)
	go t.Add(2) // want `single-writer contract of counter.Tally`
}

// Near miss: a single writer plus snapshot readers, the documented
// usage.
func disciplined(t *counter.Tally) {
	results := make(chan int, 1)
	go func() { results <- t.Total() }()
	t.Add(1)
	<-results
}
