// Fixture package c: the sink, two imports from the time.Now calls in
// package a. Every finding here exists only because TaintFacts crossed
// two package boundaries.
package c

import (
	"fixtures/vtflow/a"
	"fixtures/vtflow/b"
)

// Use consumes a helper whose taint arrived via b's fact.
func Use() int64 {
	d := b.Wrap() // want `call to Wrap returns a wall-clock-derived value .ultimately time.Now.`
	return d
}

// ReadField consumes a tainted struct field via its fact.
func ReadField(cfg *b.Cfg) int64 {
	return cfg.Deadline // want `Deadline holds a wall-clock-derived value`
}

// ReadVar consumes a tainted package-level var via its fact.
func ReadVar() int64 {
	return a.Epoch.UnixNano() // want `Epoch holds a wall-clock-derived value`
}

// UseSafe is the near miss: an untainted helper from the same package
// as the tainted ones stays silent.
func UseSafe() int64 {
	return b.Safe()
}

// UseVetted is the allow-respecting near miss: the source behind
// WrapVetted carries a reasoned allow two packages away.
func UseVetted() int64 {
	return b.WrapVetted()
}

// UntaintedField is the field-level near miss: Budget never saw a
// clock.
func UntaintedField(cfg *b.Cfg) int64 {
	return cfg.Budget
}
