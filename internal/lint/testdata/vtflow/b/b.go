// Fixture package b: the middle hop. Calling a tainted helper is a
// finding here, and b's own wrappers and fields become tainted in
// turn — the facts c will consume.
package b

import "fixtures/vtflow/a"

// Wrap keeps the taint: its result derives from a.Stamp.
func Wrap() int64 {
	return a.Stamp() // want `call to Stamp returns a wall-clock-derived value`
}

// Cfg carries taint in a field once Stamp fills it.
type Cfg struct {
	Deadline int64
	Budget   int64
}

// Fill stores a tainted value into a field; the field fact makes every
// later read of Deadline a finding, in any package.
func (c *Cfg) Fill() {
	c.Deadline = a.Stamp() // want `call to Stamp returns a wall-clock-derived value` `stores a wall-clock-derived value .ultimately time.Now. into field Deadline`
}

// Safe is the near miss: nothing here touches a clock.
func Safe() int64 {
	return 42
}

// WrapVetted calls the allow-vetted source; no taint arrives, so no
// finding — here or in WrapVetted's callers.
func WrapVetted() int64 {
	return a.Vetted()
}
