// Fixture package a: the wall-clock sources. The direct time.Now
// calls here are novtime's findings (vtflow never double-reports a
// direct source); what vtflow owns is the taint they leave behind —
// on Stamp's results, on Epoch — which packages b and c inherit.
package a

import "time"

// Stamp returns a wall-clock timestamp; its result carries taint into
// every caller, however many imports away.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Epoch is tainted by its initializer; reads of it anywhere in the
// module are vtflow findings.
var Epoch = time.Now()

// Vetted is the near miss: the source is covered by a reasoned allow,
// so the taint stops here and callers stay clean — existing allow
// sites keep their meaning under the transitive analysis.
func Vetted() int64 {
	//repolint:allow novtime fixture: vetted measured-timing read, flow audited by hand
	return time.Now().UnixNano()
}
