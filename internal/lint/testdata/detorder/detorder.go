// Fixtures for the detorder analyzer: map ranges whose iteration
// order can reach output are flagged; order-insensitive bodies and
// the collect-keys-then-sort idiom are not.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// True positive: map order feeds CSV-style output directly — the
// Fig9CSV bug class.
func emitUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m { // want `map iteration order is randomized`
		fmt.Fprintf(w, "%s,%f\n", k, v)
	}
}

// Near miss: the canonical fix. Keys are collected, sorted after the
// loop, and only the sorted slice feeds output.
func emitSorted(w io.Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%f\n", k, m[k])
	}
}

// True positive: appending entries for later emission without a sort
// bakes map order into the slice.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

// Near miss: sort.Slice also counts as the sorted-keys idiom.
func collectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Near miss: integer accumulation commutes exactly; order cannot be
// observed.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// True positive: float accumulation is order-sensitive in the low
// bits — exactly what byte-determinism goldens diff.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

// Near miss: map-to-map transfer plus deletes; destination order is
// invisible.
func transfer(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
	for k := range src {
		delete(src, k)
	}
}

// Near miss: counting entries is pure integer accumulation.
func count(m map[int]struct{}) int {
	n := 0
	for range m {
		n++
	}
	return n
}
