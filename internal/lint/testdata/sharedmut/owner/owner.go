// Fixture package owner: one package-level variable per sharedmut
// class, plus the write sites that do and do not count as races under
// a domain-partitioned event loop.
package owner

import "sync"

// Pool is self-synchronizing: safe to share as-is.
var Pool sync.Pool

// Registry is immutable-by-convention: written only from init.
var Registry = map[string]int{}

// Counter is mutable: the runtime writes below are the findings.
var Counter int

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// Cache is mutex-guarded: its struct carries its own lock.
var Cache = &cache{m: map[string]int{}}

// Init-context writes are the convention, not a race.
func init() {
	Registry["a"] = 1
}

// Bump and Reset are the mutable-class true positives.
func Bump() {
	Counter++ // want `runtime reassignment of package-level var Counter .class mutable.`
}

func Reset() {
	Counter = 0 // want `runtime reassignment of package-level var Counter .class mutable.`
}

// Swap is the reassignment true positive: replacing a mutex-guarded
// object races even though its interior is synchronized.
func Swap() {
	Cache = &cache{m: map[string]int{}} // want `runtime reassignment of package-level mutex-guarded var Cache`
}

// Put is the near miss: an interior write through the mutex-guarded
// object, presumed to be under its lock.
func Put(k string, v int) {
	Cache.mu.Lock()
	defer Cache.mu.Unlock()
	Cache.m[k] = v
}

// Locals are nobody's business.
func Sum() int {
	total := 0
	for _, v := range Registry {
		total += v
	}
	return total
}
