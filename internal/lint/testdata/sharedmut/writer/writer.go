// Fixture package writer: cross-package runtime writes, judged against
// the owner's inventory facts — the owning package cannot see these
// writes when reasoning about partitioning.
package writer

import (
	"sync"

	"fixtures/sharedmut/owner"
)

// Poison breaks owner's init-only convention from outside.
func Poison() {
	owner.Registry["x"] = 2 // want `cross-package runtime write to fixtures/sharedmut/owner.Registry, inventoried as immutable-by-convention`
}

// Replace swaps out a self-synchronizing object: direct reassignment
// is a race regardless of the object's own synchronization.
func Replace() {
	owner.Pool = sync.Pool{} // want `cross-package runtime write to fixtures/sharedmut/owner.Pool, inventoried as self-synchronizing`
}

// UsePool is the near miss: method calls on a self-synchronizing
// object are what it is for.
func UsePool() any {
	return owner.Pool.Get()
}

// UseCache is the mutex-guarded near miss: interior access is presumed
// to take the owner's lock.
func UseCache() {
	owner.Put("k", 1)
}
