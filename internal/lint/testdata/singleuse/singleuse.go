// Fixtures for the singleuse analyzer: sinks and arrival sources are
// single-use per run and must be constructed inside the sweep cell
// that uses them.
package fixture

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// True positive: one sink shared by every cell of the grid — the
// PR 3 trap.
func capturedSink() []sweep.Cell[int] {
	shared := &stats.FullReport{}
	var cells []sweep.Cell[int]
	for i := 0; i < 4; i++ {
		cells = append(cells, sweep.Cell[int]{
			Label: "bad",
			Run: func(s *core.Scratch) (int, error) {
				return len(shared.Tasks), nil // want `sink shared is captured from outside the sweep cell closure`
			},
		})
	}
	return cells
}

// Near miss: the sanctioned shape — each cell builds its own sink
// inside the closure.
func cellLocalSink() []sweep.Cell[int] {
	var cells []sweep.Cell[int]
	for i := 0; i < 4; i++ {
		cells = append(cells, sweep.Cell[int]{
			Label: "good",
			Run: func(s *core.Scratch) (int, error) {
				local := &stats.FullReport{}
				return len(local.Tasks), nil
			},
		})
	}
	return cells
}

// Near miss: stats.Discard is stateless by construction and exempt.
func sharedDiscard() []sweep.Cell[int] {
	d := stats.Discard{}
	var cells []sweep.Cell[int]
	for i := 0; i < 4; i++ {
		cells = append(cells, sweep.Cell[int]{
			Label: "discard",
			Run: func(s *core.Scratch) (int, error) {
				_ = d
				return 0, nil
			},
		})
	}
	return cells
}

// True positive: a captured replay source — exhausted by whichever
// cell runs first, every other cell replays nothing.
func capturedReplay(src *workload.ReplaySource) sweep.Cell[int] {
	return sweep.Cell[int]{
		Label: "replay",
		Run: func(s *core.Scratch) (int, error) {
			_ = src // want `arrival source src is captured from outside the sweep cell closure`
			return 0, nil
		},
	}
}

// True positive: an open-loop source is exhausted after one pass; the
// second RunStream sees an empty stream.
func reusedSource(e *core.Emulator, src *workload.OpenLoop) {
	e.RunStream(src)
	e.RunStream(src) // want `arrival source src is reused`
}

// Near miss: a fresh source per run.
func freshSources(e *core.Emulator, mk func() *workload.OpenLoop) {
	a := mk()
	e.RunStream(a)
	b := mk()
	e.RunStream(b)
}

// True positive: one sink wired into two emulator option sets mixes
// two runs' records.
func reusedSinkOptions(snk *stats.FullReport) (core.Options, core.Options) {
	o1 := core.Options{Sink: snk}
	o2 := core.Options{Sink: snk} // want `sink snk is reused`
	return o1, o2
}

// Near miss: one options literal per sink.
func freshSinkOptions() (core.Options, core.Options) {
	a := &stats.FullReport{}
	b := &stats.FullReport{}
	return core.Options{Sink: a}, core.Options{Sink: b}
}

// True positive: one source stamped into two sweep.Emulation specs.
func reusedEmulationSource(src *workload.OpenLoop) (sweep.Emulation, sweep.Emulation) {
	e1 := sweep.Emulation{Source: src}
	e2 := sweep.Emulation{Source: src} // want `arrival source src is reused`
	return e1, e2
}

// True positive (serving layer): a sink built at registration time and
// captured by the handler closure is shared by every request the
// handler serves concurrently.
func handlerCapturedSink(mux *http.ServeMux) {
	shared := &stats.FullReport{}
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		_ = len(shared.Tasks) // want `sink shared is constructed outside the request-scoped handler closure`
	})
}

// Near miss: the sanctioned request-scoped shape — the sink is built
// inside the handler, one per request.
func handlerLocalSink(mux *http.ServeMux) {
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		local := &stats.FullReport{}
		_ = len(local.Tasks)
	})
}

// Near miss: a non-handler two-argument closure capturing a sink is
// outside this rule's shape (rule 1 still applies if it becomes a
// sweep cell).
func notAHandler() func(int, *http.Request) {
	shared := &stats.FullReport{}
	return func(n int, r *http.Request) {
		_ = len(shared.Tasks)
	}
}
