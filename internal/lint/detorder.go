package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// DetOrder flags `for range` over a map in the byte-determinism
// packages unless the loop body is provably order-insensitive or the
// loop is the collect-keys-then-sort idiom. Go randomizes map
// iteration order per run, so any map range whose iteration order can
// reach output — CSV rows, report fields, appends later emitted,
// hashes, float accumulation — is a nondeterminism bug of exactly the
// class PR 1 found (and fixed by luck, not tooling) in Fig9CSV.
//
// Order-insensitive bodies are exempt: statements that only transfer
// entries into another map, delete keys, or accumulate into integer /
// boolean state (integer addition commutes; float addition does NOT —
// summing float64 map values in map order is order-sensitive in the
// last bits, which the byte-determinism goldens would catch only
// sometimes). The sorted-keys idiom — append keys to a slice, sort it
// after the loop, iterate the slice — is recognized and exempt.
var DetOrder = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flag map iteration whose order can reach output; sort keys first",
	Run:  runDetOrder,
}

func runDetOrder(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderInsensitiveBody(info, rs.Body.List) {
			return true
		}
		if keysCollectedThenSorted(info, rs, stack) {
			return true
		}
		pass.Reportf(rs.Pos(), "map iteration order is randomized per run and this loop body is not order-insensitive; iterate sorted keys instead (the Fig9CSV bug class)")
		return true
	})
	return nil, nil
}

// orderInsensitiveBody reports whether every statement in body
// commutes across iterations: map stores, deletes, and integer or
// boolean accumulation cannot observe iteration order.
func orderInsensitiveBody(info *types.Info, body []ast.Stmt) bool {
	for _, stmt := range body {
		if !orderInsensitiveStmt(info, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs := ast.Unparen(s.Lhs[0])
		// m2[k] = v / delete-and-rebuild transfers: the destination is
		// a map, so the write order is invisible.
		if ix, ok := lhs.(*ast.IndexExpr); ok && s.Tok == token.ASSIGN {
			if tv, ok := info.Types[ix.X]; ok {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
			return false
		}
		// Integer/boolean accumulation commutes; float accumulation is
		// order-sensitive in the low bits and stays flagged.
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			tv, ok := info.Types[lhs]
			if !ok {
				return false
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
		}
		return false
	case *ast.IncDecStmt:
		tv, ok := info.Types[ast.Unparen(s.X)]
		if !ok {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	}
	return false
}

// keysCollectedThenSorted recognizes the canonical fix:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or sort.Slice / slices.Sort*, after the loop
//
// The range value must be unused and the loop body must be exactly the
// append; the sort call must name the same slice object later in the
// same function.
func keysCollectedThenSorted(info *types.Info, rs *ast.RangeStmt, stack []ast.Node) bool {
	if rs.Value != nil {
		if id, ok := rs.Value.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	keysObj := identObj(info, assign.Lhs[0])
	if keysObj == nil || len(call.Args) < 1 || identObj(info, call.Args[0]) != keysObj {
		return false
	}

	fnNode := enclosingFunc(stack)
	if fnNode == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnNode, func(n ast.Node) bool {
		if sorted || n == nil {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if identObj(info, arg) == keysObj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isSortCall matches any function from package sort or slices.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "sort" || path == "slices"
}
