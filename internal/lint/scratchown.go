package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// ScratchOwn enforces the Scratch/instance ownership contract (the
// PR 2 behavior note, hardened in PR 5 where stale Instances() access
// became a panic at RunStream but stayed silent for batch Run):
//
//   - a slice returned by Emulator.Instances() is backed by the
//     emulator's Scratch slabs and dies at the next Run/RunStream on
//     the same emulator — using the old value afterwards reads
//     reclaimed (and possibly overwritten) storage;
//   - a core.Scratch is single-owner: handing one to a goroutine —
//     capturing it in a `go func(){...}` literal or passing it as a
//     `go f(s)` argument — shares mutable slabs across threads, which
//     the sweep engine deliberately never does (each worker gets its
//     own scratch from the pool, inside the goroutine).
var ScratchOwn = &analysis.Analyzer{
	Name: "scratchown",
	Doc:  "Instances() views die at the next Run; Scratch never crosses goroutines",
	Run:  runScratchOwn,
}

func runScratchOwn(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding

	// Rule 1: Instances() retained across Run/RunStream.
	type retained struct {
		instObj types.Object // the variable holding the Instances() slice
		emuObj  types.Object // the emulator it came from
		callPos token.Pos
	}
	var views []retained
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := methodCall(info, call, corePath, "Emulator", "Instances")
		if !ok {
			return true
		}
		emuObj := identObj(info, recv)
		if emuObj == nil || len(assign.Lhs) != 1 {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		instObj := info.Defs[id]
		if instObj == nil {
			instObj = info.Uses[id]
		}
		if instObj == nil {
			return true
		}
		views = append(views, retained{instObj, emuObj, call.Pos()})
		return true
	})

	// Re-acquisition resets the clock: only the LAST assignment of a
	// given variable defines when a later Run invalidates it (so
	// `insts = e.Instances()` after a Run is not a stale use).
	last := map[types.Object]retained{}
	for _, v := range views {
		if prev, ok := last[v.instObj]; !ok || v.callPos > prev.callPos {
			last[v.instObj] = v
		}
	}
	views = views[:0]
	for _, v := range last {
		views = append(views, v)
	}

	if len(views) > 0 {
		// Invalidation: a later Run/RunStream on the same emulator.
		invalidated := map[types.Object]token.Pos{} // instObj -> earliest invalidation
		inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var recv ast.Expr
			if r, ok := methodCall(info, call, corePath, "Emulator", "Run"); ok {
				recv = r
			} else if r, ok := methodCall(info, call, corePath, "Emulator", "RunStream"); ok {
				recv = r
			} else {
				return true
			}
			emuObj := identObj(info, recv)
			if emuObj == nil {
				return true
			}
			for _, v := range views {
				if v.emuObj == emuObj && call.Pos() > v.callPos {
					if prev, ok := invalidated[v.instObj]; !ok || call.Pos() < prev {
						invalidated[v.instObj] = call.Pos()
					}
				}
			}
			return true
		})
		if len(invalidated) > 0 {
			inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					return true
				}
				if pos, ok := invalidated[obj]; ok && id.Pos() > pos {
					finds = append(finds, finding{id.Pos(),
						"Instances() result " + obj.Name() + " is used after a later Run/RunStream on the same emulator reclaimed the slabs backing it; copy what you need before re-running"})
				}
				return true
			})
		}
	}

	// Rule 2: Scratch crossing a goroutine boundary.
	isScratch := func(t types.Type) bool { return namedAs(t, corePath, "Scratch") }
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, arg := range g.Call.Args {
			if obj := identObj(info, arg); obj != nil && isScratch(obj.Type()) {
				finds = append(finds, finding{arg.Pos(),
					"Scratch " + obj.Name() + " passed into a goroutine; a Scratch is single-owner — create one inside the goroutine (or take one from a pool there)"})
			}
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		seen := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || obj.IsField() || seen[obj] || !isScratch(obj.Type()) {
				return true
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				return true // goroutine-local scratch: the legal pattern
			}
			seen[obj] = true
			finds = append(finds, finding{id.Pos(),
				"Scratch " + obj.Name() + " captured by a goroutine from the enclosing scope; a Scratch is single-owner — create one inside the goroutine (or take one from a pool there)"})
			return true
		})
		return true
	})

	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Report(analysis.Diagnostic{Pos: f.pos, Message: f.msg})
	}
	return nil, nil
}
