package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// SharedMut is the PDES-readiness inventory. The paper's scheduler
// runs inside one sequential event loop today; splitting that loop
// into LP domains (the optimistic/conservative PDES variants the
// roadmap keeps open) turns every piece of package-level mutable
// state into a potential cross-domain race. This analyzer inventories
// each package's package-level variables into classes —
//
//	self-synchronizing    sync.Pool / sync.Map / sync.Once / mutexes /
//	                      atomics: safe to share as-is
//	mutex-guarded         a struct (or pointer to one) carrying its own
//	                      sync.Mutex/RWMutex field
//	immutable-by-convention  written only from init context (package
//	                      initializers and init funcs)
//	mutable               written at runtime with no synchronization
//	                      story
//
// — publishes the inventory as a package fact (the committed
// PDES_SHARING.md baseline is generated from those facts), attaches a
// per-variable fact, and reports the writes a partitioned loop would
// race on: any runtime write to a `mutable` variable, any runtime
// *reassignment* of a variable regardless of class (swapping out a
// mutex-guarded object races even if its interior is safe), and —
// via the per-variable facts — cross-package runtime writes, where
// the importing package breaks an owner's init-only convention the
// owner cannot see.
//
// Interior writes through self-synchronizing or mutex-guarded
// variables are presumed to happen under the object's own lock and are
// not reported; the class records where to audit if that presumption
// is ever wrong.
var SharedMut = &analysis.Analyzer{
	Name:      "sharedmut",
	Doc:       "package-level mutable state a domain-partitioned event loop would race on",
	Run:       runSharedMut,
	FactTypes: []analysis.Fact{(*SharedVarFact)(nil), (*SharingFact)(nil)},
}

// SharedVarFact classifies one package-level variable for importers
// (cross-package writes consult it).
type SharedVarFact struct{ Class, Type string }

// AFact marks SharedVarFact as an analyzer fact.
func (*SharedVarFact) AFact() {}

// SharedVar is one inventoried package-level variable.
type SharedVar struct{ Name, Type, Class string }

// SharingFact is the package's full inventory, consumed by
// SharingReport when it renders PDES_SHARING.md.
type SharingFact struct{ Vars []SharedVar }

// AFact marks SharingFact as an analyzer fact.
func (*SharingFact) AFact() {}

// Classification names (shared with the report).
const (
	classSelfSync = "self-synchronizing"
	classMutex    = "mutex-guarded"
	classInitOnly = "immutable-by-convention"
	classMutable  = "mutable"
)

type sharedWrite struct {
	v       *types.Var
	pos     ast.Node
	direct  bool // reassignment of the var itself, not an interior write
	runtime bool // outside init context
}

func runSharedMut(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Collect this package's package-level vars, in declaration order.
	var vars []*types.Var
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if v, ok := info.Defs[name].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						vars = append(vars, v)
					}
				}
			}
		}
	}

	// Collect every write whose root is a package-level var (own or
	// imported).
	var writes []sharedWrite
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Recv == nil && fd.Name.Name == "init"
			record := func(lhs ast.Expr, at ast.Node) {
				if v, direct, ok := rootSharedVar(info, lhs); ok {
					writes = append(writes, sharedWrite{v: v, pos: at, direct: direct, runtime: !isInit})
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						record(lhs, n)
					}
				case *ast.IncDecStmt:
					record(n.X, n)
				}
				return true
			})
		}
	}

	// Classify own vars: type first, then write behaviour.
	runtimeWritten := map[*types.Var]bool{}
	for _, w := range writes {
		if w.runtime {
			runtimeWritten[w.v] = true
		}
	}
	class := map[*types.Var]string{}
	var inventory []SharedVar
	for _, v := range vars {
		c := classifyShared(v.Type())
		if c == "" {
			if runtimeWritten[v] {
				c = classMutable
			} else {
				c = classInitOnly
			}
		}
		class[v] = c
		inventory = append(inventory, SharedVar{Name: v.Name(), Type: types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)), Class: c})
		pass.ExportObjectFact(v, &SharedVarFact{Class: c, Type: inventory[len(inventory)-1].Type})
	}
	sort.Slice(inventory, func(i, j int) bool { return inventory[i].Name < inventory[j].Name })
	pass.ExportPackageFact(&SharingFact{Vars: inventory})

	// Report the racy writes.
	sort.Slice(writes, func(i, j int) bool { return writes[i].pos.Pos() < writes[j].pos.Pos() })
	for _, w := range writes {
		if !w.runtime {
			continue
		}
		if w.v.Pkg() == pass.Pkg {
			c := class[w.v]
			switch {
			case w.direct && c != classMutable:
				pass.Reportf(w.pos.Pos(), "runtime reassignment of package-level %s var %s; swapping the object out from under concurrent users races even though its interior is synchronized", c, w.v.Name())
			case c == classMutable:
				kind := "write to"
				if w.direct {
					kind = "reassignment of"
				}
				pass.Reportf(w.pos.Pos(), "runtime %s package-level var %s (class %s); a domain-partitioned event loop would race here — move it into per-run state or give it a synchronization story", kind, w.v.Name(), c)
			}
			continue
		}
		// Cross-package write: consult the owner's inventory fact.
		var fact SharedVarFact
		if !pass.ImportObjectFact(w.v, &fact) {
			continue // outside the module (no facts); not ours to police
		}
		if !w.direct && (fact.Class == classSelfSync || fact.Class == classMutex) {
			continue
		}
		pass.Reportf(w.pos.Pos(), "cross-package runtime write to %s.%s, inventoried as %s by its owner; the owning package cannot see this write when reasoning about partitioning", w.v.Pkg().Path(), w.v.Name(), fact.Class)
	}
	return nil, nil
}

// rootSharedVar resolves the package-level variable (own or imported)
// at the root of an assignment target, reporting whether the target is
// the variable itself (direct reassignment) rather than something
// reached through it.
func rootSharedVar(info *types.Info, e ast.Expr) (v *types.Var, direct bool, ok bool) {
	direct = true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			direct = false
			e = x.X
		case *ast.StarExpr:
			direct = false
			e = x.X
		case *ast.SelectorExpr:
			if id, isIdent := x.X.(*ast.Ident); isIdent {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v := pkgLevelVar(info.Uses[x.Sel])
					return v, direct, v != nil
				}
			}
			direct = false
			e = x.X
		case *ast.Ident:
			v := pkgLevelVar(info.Uses[x])
			return v, direct, v != nil
		default:
			return nil, false, false
		}
	}
}

func pkgLevelVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// classifyShared returns the type-based class of a variable, or ""
// when the class depends on write behaviour.
func classifyShared(t types.Type) string {
	if isSelfSyncType(t) {
		return classSelfSync
	}
	if hasMutexField(t) {
		return classMutex
	}
	return ""
}

func isSelfSyncType(t types.Type) bool {
	named, ok := types.Unalias(derefShared(t)).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		switch named.Obj().Name() {
		case "Pool", "Map", "Once", "Mutex", "RWMutex", "WaitGroup", "Cond":
			return true
		}
	case "sync/atomic":
		return true // every named type in sync/atomic is an atomic box
	}
	return false
}

func hasMutexField(t types.Type) bool {
	st, ok := types.Unalias(derefShared(t)).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := types.Unalias(derefShared(st.Field(i).Type()))
		if named, ok := f.(*types.Named); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" &&
			(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex") {
			return true
		}
	}
	return false
}

func derefShared(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
