package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// SingleUse enforces the one-run-per-value contract on measurement
// sinks and arrival sources (the PR 3 / PR 6 behavior notes):
//
//   - a stats.Sink, core.ArrivalSource, or workload.ReplaySource value
//     captured by a sweep cell closure from an enclosing scope is
//     shared across cells (every worker runs against the same value)
//     and must instead be constructed inside the closure;
//   - the same source value driving two RunStream calls, or the same
//     sink value wired into two core.Options / sweep.Emulation
//     literals, is reused across runs — sources are exhausted after
//     one pass and sinks accumulate records from at most one run;
//   - an HTTP handler closure (func(http.ResponseWriter,
//     *http.Request)) capturing a sink or source from an enclosing
//     scope shares one single-use value across concurrent requests —
//     the serving-layer variant of the same trap; request-scoped
//     values must be constructed inside the handler.
//
// stats.Discard is exempt: it is stateless by construction and safe
// to share.
var SingleUse = &analysis.Analyzer{
	Name: "singleuse",
	Doc:  "sinks and arrival sources are single-use and cell-local",
	Run:  runSingleUse,
}

const (
	statsPath    = "repro/internal/stats"
	corePath     = "repro/internal/core"
	workloadPath = "repro/internal/workload"
	sweepPath    = "repro/internal/sweep"
)

func runSingleUse(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	sinkIface := findInterface(pass, statsPath, "Sink")
	srcIface := findInterface(pass, corePath, "ArrivalSource")

	// kindOf classifies a type under the single-use contract; "" means
	// unconstrained.
	kindOf := func(t types.Type) string {
		if t == nil || namedAs(t, statsPath, "Discard") {
			return ""
		}
		switch {
		case implements(t, sinkIface):
			return "sink"
		case implements(t, srcIface), namedAs(t, workloadPath, "ReplaySource"):
			return "arrival source"
		}
		return ""
	}

	// Rule 1: single-use values captured by sweep cell closures.
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := info.Types[lit]
		if !ok || !namedAs(tv.Type, sweepPath, "Cell") {
			return true
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Run" {
				continue
			}
			fn, ok := kv.Value.(*ast.FuncLit)
			if !ok {
				continue
			}
			reportCapturedSingleUse(pass, fn, kindOf,
				"%s %s is captured from outside the sweep cell closure; cells run concurrently and sinks/sources are single-use — construct it inside the closure")
		}
		return true
	})

	// Rule 1b (the serving layer): the same capture trap in
	// request-handler shape. A handler closure runs once per request,
	// concurrently; anything single-use it captures from the enclosing
	// scope is shared by every request it serves.
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		fn, ok := n.(*ast.FuncLit)
		if !ok || !isHandlerShape(info, fn) {
			return true
		}
		reportCapturedSingleUse(pass, fn, kindOf,
			"%s %s is constructed outside the request-scoped handler closure but captured inside; handlers serve concurrent requests and sinks/sources are single-use — construct it per request")
		return true
	})

	// Rule 2: reuse across runs. Collected per object so the second
	// and every later use is reported, in source order.
	type useSite struct {
		pos  token.Pos
		what string
	}
	uses := map[types.Object][]useSite{}
	record := func(obj types.Object, pos token.Pos, what string) {
		if obj == nil {
			return
		}
		if kindOf(obj.Type()) == "" {
			return
		}
		uses[obj] = append(uses[obj], useSite{pos, what})
	}

	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := methodCall(info, n, corePath, "Emulator", "RunStream"); ok && len(n.Args) == 1 {
				record(argObj(info, n.Args[0]), n.Args[0].Pos(), "RunStream call")
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			isOptions := namedAs(tv.Type, corePath, "Options")
			isEmulation := namedAs(tv.Type, sweepPath, "Emulation")
			if !isOptions && !isEmulation {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || (key.Name != "Sink" && key.Name != "Source") {
					continue
				}
				what := "core.Options literal"
				if isEmulation {
					what = "sweep.Emulation literal"
				}
				record(argObj(info, kv.Value), kv.Value.Pos(), what)
			}
		}
		return true
	})

	type reuse struct {
		site useSite
		obj  types.Object
		n    int
	}
	var reuses []reuse
	for obj, sites := range uses {
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for i, s := range sites[1:] {
			reuses = append(reuses, reuse{s, obj, i + 2})
		}
	}
	sort.Slice(reuses, func(i, j int) bool { return reuses[i].site.pos < reuses[j].site.pos })
	for _, r := range reuses {
		pass.Reportf(r.site.pos, "%s %s is reused (use %d, via %s); sinks and sources are single-use per run — build a fresh one",
			kindOf(r.obj.Type()), r.obj.Name(), r.n, r.site.what)
	}
	return nil, nil
}

// isHandlerShape reports whether fn has the http.HandlerFunc signature
// func(http.ResponseWriter, *http.Request) — the shape the router
// invokes once per request.
func isHandlerShape(info *types.Info, fn *ast.FuncLit) bool {
	tv, ok := info.Types[fn]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	req := sig.Params().At(1).Type()
	if _, isPtr := req.(*types.Pointer); !isPtr {
		return false
	}
	return namedAs(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		namedAs(req, "net/http", "Request")
}

// reportCapturedSingleUse flags identifiers inside fn that resolve to
// single-use values declared outside it. format receives the kind and
// the name, in that order.
func reportCapturedSingleUse(pass *analysis.Pass, fn *ast.FuncLit, kindOf func(types.Type) string, format string) {
	info := pass.TypesInfo
	type capture struct {
		pos  token.Pos
		name string
		kind string
	}
	var caps []capture
	seen := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() {
			return true // declared inside the closure: cell-local, fine
		}
		kind := kindOf(obj.Type())
		if kind == "" {
			return true
		}
		seen[obj] = true
		caps = append(caps, capture{id.Pos(), obj.Name(), kind})
		return true
	})
	sort.Slice(caps, func(i, j int) bool { return caps[i].pos < caps[j].pos })
	for _, c := range caps {
		pass.Report(analysis.Diagnostic{Pos: c.pos, Message: fmt.Sprintf(format, c.kind, c.name)})
	}
}

// argObj resolves an expression used as a single-use value to a
// variable object: a plain identifier or &ident.
func argObj(info *types.Info, expr ast.Expr) types.Object {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	if id, ok := expr.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}
