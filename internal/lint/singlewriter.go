package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// SingleWriter mechanizes the documented single-writer/snapshot-reader
// contract (stats.Online and serve.progressMirror, PR 7/PR 9): a type
// opts in by carrying
//
//	//repolint:contract single-writer
//
// in its doc comment. For an annotated type the analyzer auto-detects
// its mutating methods — methods that write through the receiver or
// call another mutating method on it — and classifies each as locked
// (the method takes the receiver's own sync.Mutex/RWMutex before its
// first mutation) or unlocked. Read-only methods, snapshot copies
// included, are exempt by construction: they never mutate, so they
// never enter the method table.
//
// The contract is then checked at every use site in the module (the
// method table travels as a fact on the type): within one function,
// unlocked mutating calls on the same value must all come from a
// single goroutine context. The function body is one context; every
// `go` statement opens another; a `go` inside a loop is multiple
// writers by itself. A context whose mutating calls are preceded by an
// explicit X.Lock() on some mutex is externally serialized and exempt
// — that is precisely how serve.progressMirror drives stats.Online:
// every touch happens under the mirror's own mutex, one layer up.
var SingleWriter = &analysis.Analyzer{
	Name:      "singlewriter",
	Doc:       "//repolint:contract single-writer types must have one writing goroutine per value",
	Run:       runSingleWriter,
	FactTypes: []analysis.Fact{(*SingleWriterFact)(nil)},
}

const contractPrefix = "repolint:contract"

// SingleWriterFact is the mutating-method table of an annotated type,
// attached to its *types.TypeName.
type SingleWriterFact struct{ Unlocked, Locked []string }

// AFact marks SingleWriterFact as an analyzer fact.
func (*SingleWriterFact) AFact() {}

func runSingleWriter(pass *analysis.Pass) (any, error) {
	sw := &singleWriter{pass: pass, info: pass.TypesInfo}
	sw.collectAnnotated()
	sw.buildMethodTables()
	for tn, fact := range sw.tables {
		pass.ExportObjectFact(tn, fact)
	}
	sw.checkSites()
	return nil, nil
}

type singleWriter struct {
	pass *analysis.Pass
	info *types.Info
	// annotated: this package's contract-carrying named types.
	annotated map[*types.TypeName]bool
	// methods: receiver type -> method decls, for table building.
	methods map[*types.TypeName][]*ast.FuncDecl
	// tables: computed mutating-method tables for this package's types.
	tables map[*types.TypeName]*SingleWriterFact
}

// collectAnnotated finds `//repolint:contract single-writer` type
// declarations. The directive may sit in the TypeSpec's doc or, for
// single-spec declarations, the GenDecl's.
func (sw *singleWriter) collectAnnotated() {
	sw.annotated = map[*types.TypeName]bool{}
	hasContract := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), contractPrefix)
				if !ok {
					continue
				}
				if strings.TrimSpace(rest) == "single-writer" {
					return true
				}
			}
		}
		return false
	}
	for _, f := range sw.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := []*ast.CommentGroup{ts.Doc}
				if len(gd.Specs) == 1 {
					docs = append(docs, gd.Doc)
				}
				if !hasContract(docs...) {
					continue
				}
				if tn, ok := sw.info.Defs[ts.Name].(*types.TypeName); ok {
					sw.annotated[tn] = true
				}
			}
		}
	}
}

// buildMethodTables classifies the annotated types' methods by a
// fixpoint over direct mutations and calls to already-known mutating
// methods on the receiver.
func (sw *singleWriter) buildMethodTables() {
	sw.methods = map[*types.TypeName][]*ast.FuncDecl{}
	sw.tables = map[*types.TypeName]*SingleWriterFact{}
	if len(sw.annotated) == 0 {
		return
	}
	for _, f := range sw.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tn := sw.recvTypeName(fd)
			if tn != nil && sw.annotated[tn] {
				sw.methods[tn] = append(sw.methods[tn], fd)
			}
		}
	}
	for tn, decls := range sw.methods {
		mutating := map[string]bool{}
		locked := map[string]bool{}
		for round := 0; round <= len(decls); round++ {
			changed := false
			for _, fd := range decls {
				name := fd.Name.Name
				if mutating[name] {
					continue
				}
				mutates, underOwnLock := sw.classifyMethod(fd, mutating)
				if mutates {
					mutating[name] = true
					locked[name] = underOwnLock
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		fact := &SingleWriterFact{}
		for name := range mutating {
			if locked[name] {
				fact.Locked = append(fact.Locked, name)
			} else {
				fact.Unlocked = append(fact.Unlocked, name)
			}
		}
		sort.Strings(fact.Unlocked)
		sort.Strings(fact.Locked)
		sw.tables[tn] = fact
	}
}

// recvTypeName resolves a method's receiver to its named type.
func (sw *singleWriter) recvTypeName(fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj := sw.info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	named, ok := types.Unalias(derefShared(obj.Type())).(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// classifyMethod reports whether the method mutates the receiver and,
// if so, whether it takes the receiver's own mutex before the first
// mutation.
func (sw *singleWriter) classifyMethod(fd *ast.FuncDecl, mutating map[string]bool) (mutates, underOwnLock bool) {
	recvObj := sw.info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return false, false
	}
	firstMut := token.NoPos
	firstLock := token.NoPos
	note := func(pos token.Pos, isLock bool) {
		if isLock {
			if !firstLock.IsValid() || pos < firstLock {
				firstLock = pos
			}
		} else if !firstMut.IsValid() || pos < firstMut {
			firstMut = pos
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sw.writesThrough(lhs, recvObj) {
					note(n.Pos(), false)
				}
			}
		case *ast.IncDecStmt:
			if sw.writesThrough(n.X, recvObj) {
				note(n.Pos(), false)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Lock" && sw.isMutexExpr(sel.X) && rootIdentIs(sw.info, sel.X, recvObj) {
				note(n.Pos(), true)
				return true
			}
			// recv.M(...) where M already known mutating.
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && sw.info.Uses[id] == recvObj && mutating[sel.Sel.Name] {
				note(n.Pos(), false)
			}
		}
		return true
	})
	if !firstMut.IsValid() {
		return false, false
	}
	return true, firstLock.IsValid() && firstLock < firstMut
}

// writesThrough reports whether an assignment target reaches shared
// state through the receiver object: recv.f = x, recv.f[i] = x,
// *recv = x. A plain `recv = x` only rebinds the local receiver
// variable and is not a mutation.
func (sw *singleWriter) writesThrough(lhs ast.Expr, recvObj types.Object) bool {
	through := false
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			through = true
			e = x.X
		case *ast.IndexExpr:
			through = true
			e = x.X
		case *ast.StarExpr:
			through = true
			e = x.X
		case *ast.Ident:
			return through && sw.info.Uses[x] == recvObj
		default:
			return false
		}
	}
}

// isMutexExpr reports whether an expression denotes a
// sync.Mutex/RWMutex (value or pointer).
func (sw *singleWriter) isMutexExpr(e ast.Expr) bool {
	tv, ok := sw.info.Types[e]
	if !ok {
		return false
	}
	named, ok := types.Unalias(derefShared(tv.Type)).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// rootIdentIs walks selector/star/index chains down to the base
// identifier and compares it to obj.
func rootIdentIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x] == obj || info.Defs[x] == obj
		default:
			return false
		}
	}
}

// table resolves the mutating-method table of a named type: local
// tables for this package's types, facts for imported ones. nil when
// the type carries no contract.
func (sw *singleWriter) table(tn *types.TypeName) *SingleWriterFact {
	if tn.Pkg() == sw.pass.Pkg {
		return sw.tables[tn]
	}
	var fact SingleWriterFact
	if sw.pass.ImportObjectFact(tn, &fact) {
		return &fact
	}
	return nil
}

// swCall is one unlocked mutating call observed at a use site.
type swCall struct {
	pos     token.Pos
	method  string
	typ     string
	recvKey string
	ctx     int  // 0 = function body; each `go` statement opens a new one
	looped  bool // the call's context is a `go` inside a loop
	guarded bool // an explicit X.Lock() precedes it in the same context
}

// checkSites walks every function in the package and enforces the
// one-writing-context rule per receiver value.
func (sw *singleWriter) checkSites() {
	for _, f := range sw.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sw.checkFunc(fd)
		}
	}
}

func (sw *singleWriter) checkFunc(fd *ast.FuncDecl) {
	var calls []swCall
	nextCtx := 1

	// walk explores one context's subtree; `go` statements divert their
	// payload into a fresh context. locks collects the explicit Lock()
	// calls seen per context, in source order.
	locks := map[int][]token.Pos{}
	handleCall := func(m *ast.CallExpr, ctx int, looped bool) {
		sel, ok := m.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if sel.Sel.Name == "Lock" && sw.isMutexExpr(sel.X) {
			locks[ctx] = append(locks[ctx], m.Pos())
			return
		}
		fn, ok := sw.info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		named, ok := types.Unalias(derefShared(sig.Recv().Type())).(*types.Named)
		if !ok {
			return
		}
		table := sw.table(named.Obj())
		if table == nil {
			return
		}
		for _, name := range table.Unlocked {
			if name == fn.Name() {
				calls = append(calls, swCall{
					pos:     m.Pos(),
					method:  name,
					typ:     named.Obj().Pkg().Name() + "." + named.Obj().Name(),
					recvKey: exprKey(sel.X),
					ctx:     ctx,
					looped:  looped,
				})
				break
			}
		}
	}
	var walk func(n ast.Node, ctx int, looped bool)
	walk = func(n ast.Node, ctx int, looped bool) {
		loopDepth := 0
		var stack []ast.Node
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				switch top.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loopDepth--
				}
				return true
			}
			stack = append(stack, m)
			switch m := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
			case *ast.GoStmt:
				id := nextCtx
				nextCtx++
				walk(m.Call, id, loopDepth > 0)
				stack = stack[:len(stack)-1] // Inspect won't pop a pruned node
				return false
			case *ast.CallExpr:
				handleCall(m, ctx, looped)
			}
			return true
		})
	}
	walk(fd.Body, 0, false)

	// A call is externally serialized when an explicit Lock() in its
	// own context precedes it.
	for i := range calls {
		for _, lp := range locks[calls[i].ctx] {
			if lp < calls[i].pos {
				calls[i].guarded = true
				break
			}
		}
	}

	// Group the unguarded calls by receiver value and count writing
	// contexts (a looped `go` is multiple writers on its own).
	type group struct {
		calls  []swCall
		ctxs   map[int]bool
		weight int
	}
	groups := map[string]*group{}
	ctxSeen := map[string]map[int]bool{}
	var keys []string
	for _, c := range calls {
		if c.guarded {
			continue
		}
		key := c.typ + "|" + c.recvKey
		g := groups[key]
		if g == nil {
			g = &group{ctxs: map[int]bool{}}
			groups[key] = g
			ctxSeen[key] = map[int]bool{}
			keys = append(keys, key)
		}
		g.calls = append(g.calls, c)
		if !ctxSeen[key][c.ctx] {
			ctxSeen[key][c.ctx] = true
			g.ctxs[c.ctx] = true
			if c.looped {
				g.weight += 2
			} else {
				g.weight++
			}
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		g := groups[key]
		if g.weight < 2 {
			continue
		}
		sort.Slice(g.calls, func(i, j int) bool { return g.calls[i].pos < g.calls[j].pos })
		firstCtx := g.calls[0].ctx
		reported := map[int]bool{}
		for _, c := range g.calls {
			if c.looped && !reported[c.ctx] {
				reported[c.ctx] = true
				sw.pass.Reportf(c.pos, "single-writer contract of %s: unlocked mutating method %s is called from a goroutine spawned in a loop — every iteration is another writer on %s", c.typ, c.method, c.recvKey)
				continue
			}
			if c.ctx == firstCtx || reported[c.ctx] {
				continue
			}
			reported[c.ctx] = true
			sw.pass.Reportf(c.pos, "single-writer contract of %s: unlocked mutating method %s on %s is also called from another goroutine-spawn site in this function; only one goroutine may write a single-writer value", c.typ, c.method, c.recvKey)
		}
	}
}

// exprKey renders a receiver expression as a stable grouping key.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[i]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	default:
		return "?"
	}
}
