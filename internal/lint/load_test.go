package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// TestTestVariantFactFlow pins the loader's test-variant handling
// against a scratch module:
//
//   - the test-augmented variant "p [p.test]" replaces the plain
//     package, so facts computed there cover the in-package _test.go
//     helpers too;
//   - the external test package "p_test [p.test]" resolves its import
//     of p to the augmented variant via ImportMap, and — because facts
//     are keyed by base import path — reads the facts the variant
//     exported.
//
// Both are asserted on the facts themselves: a taint source in the
// plain package must surface as TaintFacts on the in-package test
// helper and on the external test's wrapper.
func TestTestVariantFactFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and lints a scratch module")
	}
	dir := t.TempDir()
	writeScratch(t, dir, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"pkg/pkg.go": `package pkg

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Twice() int64 { return Stamp() * 2 }
`,
		"pkg/inpkg_test.go": `package pkg

func helperForTest() int64 { return Stamp() }
`,
		"pkg/ext_test.go": `package pkg_test

import (
	"testing"

	"tmpmod/pkg"
)

func wrap() int64 { return pkg.Twice() }

func TestWrap(t *testing.T) {
	if wrap() == 0 {
		t.Skip("clock at epoch")
	}
}
`,
	})

	facts := analysis.NewFactStore()
	findings, err := lint.Run([]string{"./..."}, lint.Options{
		Dir:       dir,
		Tests:     true,
		Analyzers: []*analysis.Analyzer{lint.VTFlow},
		Facts:     facts,
	})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	// The scratch module is outside vtflow's scope, so facts are
	// computed but no diagnostics surface.
	for _, f := range findings {
		t.Errorf("unexpected finding in out-of-scope scratch module: %s", f)
	}
	var fact lint.TaintFact
	for _, probe := range []struct{ pkg, key string }{
		{"tmpmod/pkg", "Stamp"},         // plain source
		{"tmpmod/pkg", "Twice"},         // propagation within the package
		{"tmpmod/pkg", "helperForTest"}, // in-package test helper: only exists in the augmented variant
		{"tmpmod/pkg_test", "wrap"},     // external test: fact crossed from the augmented variant
	} {
		if !facts.ObjectFact(probe.pkg, probe.key, &fact) {
			t.Errorf("no TaintFact on %s.%s", probe.pkg, probe.key)
		} else if fact.Source != "time.Now" {
			t.Errorf("TaintFact on %s.%s names %q, want time.Now", probe.pkg, probe.key, fact.Source)
		}
	}
}

// TestStaleAllowDetection drives the full suite over a scratch module
// carrying one live allow (it suppresses a real singlewriter finding:
// used, silent) and one dead allow (nothing to suppress: reported as
// stale).
func TestStaleAllowDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and lints a scratch module")
	}
	dir := t.TempDir()
	writeScratch(t, dir, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"pkg/pkg.go": `package pkg

//repolint:contract single-writer
type tally struct{ n int }

func (t *tally) add() { t.n++ }

func spawn() {
	t := &tally{}
	t.add()
	go t.add() //repolint:allow singlewriter scratch fixture: the race is the point
}

//repolint:allow singlewriter nothing mutates here; this directive is dead
var answer = 42
`,
	})

	findings, err := lint.Run([]string{"./..."}, lint.Options{Dir: dir, Tests: true})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	var stale []lint.Finding
	for _, f := range findings {
		if f.Category == "stale-allow" {
			stale = append(stale, f)
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale-allow findings, want exactly 1 (the dead directive): %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "singlewriter") {
		t.Errorf("stale finding does not name the directive's analyzer: %s", stale[0].Message)
	}
	// KeepSuppressed surfaces what the live allow is holding back,
	// with its reason — the -json audit view.
	kept, err := lint.Run([]string{"./..."}, lint.Options{Dir: dir, Tests: true, KeepSuppressed: true})
	if err != nil {
		t.Fatalf("lint.Run (KeepSuppressed): %v", err)
	}
	var suppressed []lint.Finding
	for _, f := range kept {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("got %d suppressed findings, want 1 (the allowed singlewriter race): %v", len(suppressed), suppressed)
	}
	if suppressed[0].Analyzer != "singlewriter" || !strings.Contains(suppressed[0].Reason, "the race is the point") {
		t.Errorf("suppressed finding = %+v, want the singlewriter race with its allow reason", suppressed[0])
	}
}

func writeScratch(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
