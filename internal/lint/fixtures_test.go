package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

// Golden-fixture coverage: every analyzer gets at least one true
// positive and one near-miss (a case just on the legal side of the
// contract) under testdata/<name>/.

func TestDetOrderFixtures(t *testing.T)   { linttest.Run(t, lint.DetOrder, "testdata/detorder") }
func TestNoVTimeFixtures(t *testing.T)    { linttest.Run(t, lint.NoVTime, "testdata/novtime") }
func TestSingleUseFixtures(t *testing.T)  { linttest.Run(t, lint.SingleUse, "testdata/singleuse") }
func TestMetaFreezeFixtures(t *testing.T) { linttest.Run(t, lint.MetaFreeze, "testdata/metafreeze") }
func TestScratchOwnFixtures(t *testing.T) { linttest.Run(t, lint.ScratchOwn, "testdata/scratchown") }

// The interprocedural analyzers get multi-package fixture trees: their
// findings only exist because facts crossed package boundaries.

func TestVTFlowFixtures(t *testing.T) {
	facts := linttest.RunPackages(t, lint.VTFlow, "testdata/vtflow")
	// The two-imports-away proof, stated on the facts themselves: the
	// sink package c matched findings (see its want comments) that
	// require taint computed in a to flow through b's exported fact.
	var fact lint.TaintFact
	for _, probe := range []struct{ pkg, key string }{
		{"fixtures/vtflow/a", "Stamp"},
		{"fixtures/vtflow/b", "Wrap"},
	} {
		if !factsObject(facts, probe.pkg, probe.key, &fact) {
			t.Errorf("no TaintFact on %s.%s; cross-package taint would be invisible", probe.pkg, probe.key)
		} else if fact.Source != "time.Now" {
			t.Errorf("TaintFact on %s.%s names source %q, want time.Now", probe.pkg, probe.key, fact.Source)
		}
	}
}

func TestSharedMutFixtures(t *testing.T) {
	facts := linttest.RunPackages(t, lint.SharedMut, "testdata/sharedmut")
	var inv lint.SharingFact
	if !facts.PackageFact("fixtures/sharedmut/owner", &inv) {
		t.Fatal("owner package exported no SharingFact inventory")
	}
	want := map[string]string{
		"Pool":     "self-synchronizing",
		"Registry": "immutable-by-convention",
		"Counter":  "mutable",
		"Cache":    "mutex-guarded",
	}
	got := map[string]string{}
	for _, v := range inv.Vars {
		got[v.Name] = v.Class
	}
	for name, class := range want {
		if got[name] != class {
			t.Errorf("inventory classifies %s as %q, want %q", name, got[name], class)
		}
	}
}

func TestSingleWriterFixtures(t *testing.T) {
	facts := linttest.RunPackages(t, lint.SingleWriter, "testdata/singlewriter")
	var fact lint.SingleWriterFact
	if !factsObject(facts, "fixtures/singlewriter/counter", "Tally", &fact) {
		t.Fatal("no SingleWriterFact on counter.Tally")
	}
	if len(fact.Unlocked) != 2 || fact.Unlocked[0] != "Add" || fact.Unlocked[1] != "Bump" {
		t.Errorf("Tally unlocked mutating methods = %v, want [Add Bump]", fact.Unlocked)
	}
	if !factsObject(facts, "fixtures/singlewriter/counter", "Safe", &fact) {
		t.Fatal("no SingleWriterFact on counter.Safe")
	}
	if len(fact.Unlocked) != 0 || len(fact.Locked) != 1 || fact.Locked[0] != "Add" {
		t.Errorf("Safe method table = unlocked %v locked %v, want [] [Add]", fact.Unlocked, fact.Locked)
	}
}

// TestRunCleanAtHead drives the real driver end to end over the whole
// module, tests included — the same run `make lint` performs: the load
// path, fact propagation, scoping, allow filtering, and stale-allow
// detection must leave zero findings at HEAD.
func TestRunCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list + full module typecheck")
	}
	findings, err := lint.Run([]string{"./..."}, lint.Options{
		Dir:   moduleRoot(t),
		Tests: true,
	})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding at HEAD: %s", f)
	}
}

// TestSharingReportFresh pins the committed PDES_SHARING.md to the
// sharedmut inventory at HEAD: adding, removing, or re-classifying a
// package-level variable in the PDES sharing surface must regenerate
// the baseline (make sharing-report).
func TestSharingReportFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list + full module typecheck")
	}
	root := moduleRoot(t)
	facts := analysis.NewFactStore()
	if _, err := lint.Run([]string{"./..."}, lint.Options{
		Dir:       root,
		Tests:     false, // the committed baseline covers the non-test sharing surface
		Analyzers: []*analysis.Analyzer{lint.SharedMut},
		Facts:     facts,
	}); err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	want := lint.SharingReport(facts)
	got, err := os.ReadFile(filepath.Join(root, "PDES_SHARING.md"))
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	if string(got) != want {
		t.Errorf("PDES_SHARING.md is stale; regenerate with `make sharing-report`.\n--- committed ---\n%s\n--- generated ---\n%s", got, want)
	}
}

func factsObject(facts *analysis.FactStore, pkg, key string, fact analysis.Fact) bool {
	return facts.ObjectFact(pkg, key, fact)
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
