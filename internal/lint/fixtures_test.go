package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Golden-fixture coverage: every analyzer gets at least one true
// positive and one near-miss (a case just on the legal side of the
// contract) under testdata/<name>/.

func TestDetOrderFixtures(t *testing.T)   { linttest.Run(t, lint.DetOrder, "testdata/detorder") }
func TestNoVTimeFixtures(t *testing.T)    { linttest.Run(t, lint.NoVTime, "testdata/novtime") }
func TestSingleUseFixtures(t *testing.T)  { linttest.Run(t, lint.SingleUse, "testdata/singleuse") }
func TestMetaFreezeFixtures(t *testing.T) { linttest.Run(t, lint.MetaFreeze, "testdata/metafreeze") }
func TestScratchOwnFixtures(t *testing.T) { linttest.Run(t, lint.ScratchOwn, "testdata/scratchown") }

// TestRunCleanAtHead drives the real driver end to end over a package
// that carries //repolint:allow suppressions (core's TimingMeasured
// wall-clock reads, assertion-only map scans in its tests): the load
// path, scoping, and allow filtering must leave zero findings.
func TestRunCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list + full typecheck of internal/core")
	}
	findings, err := lint.Run([]string{"repro/internal/core"}, lint.Options{
		Dir:   moduleRoot(t),
		Tests: true,
	})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding at HEAD: %s", f)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
