// Package experiments programmatically defines every table and figure
// of the paper's evaluation (Section III) so they can be regenerated
// by cmd/experiments, the root bench harness, and the test suite. Each
// experiment returns structured data plus a text rendering close to
// the paper's presentation; README.md records paper-vs-measured.
//
// The grid-shaped experiments (Table I, Figures 9-11) run on the
// sweep engine: cells fan out over a worker pool sized by
// sweep.Options and merge in grid order, so the rendered tables and
// CSV exports are byte-identical at any worker count (see
// ARCHITECTURE.md for the determinism contract).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// labelled stamps a default sweep label for progress output without
// overriding a caller-chosen one.
func labelled(opt sweep.Options, name string) sweep.Options {
	if opt.Label == "" {
		opt.Label = name
	}
	return opt
}

// totalTasks sums the per-PE task counters — the record-free way to
// count completed tasks, so aggregate-only sweeps can run with a
// Discard sink instead of materialising Report.Tasks.
func totalTasks(rep *stats.Report) int {
	n := 0
	for _, pe := range rep.PEs {
		n += pe.Tasks
	}
	return n
}

// --- Table I -----------------------------------------------------------------

// TableIRow is one application's standalone execution time and task
// count on the 3C+2F configuration under FRFS.
type TableIRow struct {
	App       string
	ExecTime  vtime.Duration
	TaskCount int
}

// TableIPaper holds the paper's measured values for comparison.
var TableIPaper = map[string]struct {
	ExecMS float64
	Tasks  int
}{
	apps.NameRangeDetection: {0.32, 6},
	apps.NamePulseDoppler:   {5.60, 770},
	apps.NameWiFiTX:         {0.13, 7},
	apps.NameWiFiRX:         {2.22, 9},
}

// TableI runs each application standalone in validation mode on
// 3 cores + 2 FFT accelerators with FRFS, the paper's Table I setup —
// one sweep cell per application.
func TableI(opt sweep.Options) ([]TableIRow, error) {
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		return nil, err
	}
	specs := apps.Specs()
	var cells []sweep.Cell[TableIRow]
	for _, name := range []string{
		apps.NameRangeDetection, apps.NamePulseDoppler, apps.NameWiFiTX, apps.NameWiFiRX,
	} {
		cells = append(cells, sweep.Cell[TableIRow]{
			Label: "table1 " + name,
			Run: func(s *core.Scratch) (TableIRow, error) {
				em := sweep.Emulation{
					Config:   cfg,
					Policy:   sched.FRFS{},
					Registry: apps.Registry(),
					Arrivals: []core.Arrival{{Spec: specs[name], At: 0}},
					Seed:     1,
					Sink:     stats.Discard{},
				}
				report, err := em.Run(s)
				if err != nil {
					return TableIRow{}, fmt.Errorf("experiments: table I %s: %w", name, err)
				}
				return TableIRow{App: name, ExecTime: report.Makespan, TaskCount: totalTasks(report)}, nil
			},
		})
	}
	return sweep.Run(cells, labelled(opt, "table1"))
}

// RenderTableI formats the rows as the paper prints them.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: application execution time and task count (3C+2F, FRFS)\n")
	fmt.Fprintf(&b, "%-18s %18s %12s %14s\n", "Application", "Exec Time (ms)", "Task Count", "paper (ms)")
	for _, r := range rows {
		paper := TableIPaper[r.App]
		fmt.Fprintf(&b, "%-18s %18.2f %12d %14.2f\n",
			r.App, r.ExecTime.Milliseconds(), r.TaskCount, paper.ExecMS)
	}
	return b.String()
}

// --- Table II ----------------------------------------------------------------

// TableIIResult captures a generated trace's realised counts.
type TableIIResult struct {
	Row    workload.TableIIRow
	Counts map[string]int
	Rate   float64
}

// TableIIGen regenerates the paper's Table II traces and verifies the
// instance counts.
func TableIIGen() ([]TableIIResult, error) {
	specs := apps.Specs()
	var out []TableIIResult
	for _, row := range workload.TableII {
		trace, err := workload.TableIITrace(specs, row)
		if err != nil {
			return nil, err
		}
		out = append(out, TableIIResult{
			Row:    row,
			Counts: workload.Counts(trace),
			Rate:   workload.RateJobsPerMS(trace, workload.TableIIFrame),
		})
	}
	return out, nil
}

// RenderTableII formats the regenerated Table II.
func RenderTableII(results []TableIIResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: instance counts per injection rate (100 ms frame)\n")
	fmt.Fprintf(&b, "%-16s %14s %16s %9s %9s\n", "Rate (jobs/ms)", "PulseDoppler", "RangeDetection", "WiFiTX", "WiFiRX")
	for _, r := range results {
		fmt.Fprintf(&b, "%-16.2f %14d %16d %9d %9d\n",
			r.Rate,
			r.Counts[apps.NamePulseDoppler], r.Counts[apps.NameRangeDetection],
			r.Counts[apps.NameWiFiTX], r.Counts[apps.NameWiFiRX])
	}
	return b.String()
}

// --- Figure 9 ----------------------------------------------------------------

// Fig9Configs are the seven ZCU102 configurations of Figure 9, in the
// paper's x-axis order.
var Fig9Configs = [][2]int{
	{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}, {3, 0},
}

// Fig9PEUtil is one PE's average utilisation in a configuration.
type Fig9PEUtil struct {
	Label string
	Util  float64
}

// Fig9Point is one configuration's result: the execution-time box over
// the iterations (Figure 9a) and mean per-PE utilisation (Figure 9b).
type Fig9Point struct {
	Config  string
	TimesMS []float64
	Box     stats.Box
	PEUtil  []Fig9PEUtil
	MeanMS  float64
}

// Fig9 runs the validation-mode workload (one instance each of pulse
// Doppler, range detection, WiFi TX and RX) on every configuration for
// the given iteration count (the paper uses 50) under FRFS, with
// log-normal timing jitter producing the box spread. Kernels execute
// functionally on the first iteration of each configuration only;
// timing is independent of execution.
func Fig9(iterations int, opt sweep.Options) ([]Fig9Point, error) {
	if iterations <= 0 {
		iterations = 1
	}
	specs := apps.Specs()
	arr, err := workload.Validation(specs, map[string]int{
		apps.NamePulseDoppler:   1,
		apps.NameRangeDetection: 1,
		apps.NameWiFiTX:         1,
		apps.NameWiFiRX:         1,
	})
	if err != nil {
		return nil, err
	}
	// One cell per (configuration, iteration); the per-iteration seed
	// makes each cell independent of worker count and schedule.
	type fig9Cell struct {
		timeMS float64
		utils  []Fig9PEUtil
	}
	var cells []sweep.Cell[fig9Cell]
	var cfgNames []string
	for _, cf := range Fig9Configs {
		cfg, err := platform.ZCU102(cf[0], cf[1])
		if err != nil {
			return nil, err
		}
		cfgNames = append(cfgNames, cfg.Name)
		for it := 0; it < iterations; it++ {
			cells = append(cells, sweep.Cell[fig9Cell]{
				Label: fmt.Sprintf("fig9 %s it%d", cfg.Name, it),
				Run: func(s *core.Scratch) (fig9Cell, error) {
					em := sweep.Emulation{
						Config:        cfg,
						Policy:        sched.FRFS{},
						Registry:      apps.Registry(),
						Arrivals:      arr,
						Seed:          int64(1000 + it),
						JitterSigma:   0.04,
						SkipExecution: it != 0,
						Sink:          stats.Discard{},
					}
					report, err := em.Run(s)
					if err != nil {
						return fig9Cell{}, fmt.Errorf("experiments: fig9 %s: %w", cfg.Name, err)
					}
					c := fig9Cell{timeMS: report.Makespan.Milliseconds()}
					for _, pe := range report.PEs {
						c.utils = append(c.utils, Fig9PEUtil{Label: pe.Label, Util: report.Utilization(pe.PEID)})
					}
					return c, nil
				},
			})
		}
	}
	res, err := sweep.Run(cells, labelled(opt, "fig9"))
	if err != nil {
		return nil, err
	}
	// Fold results in grid order: the same accumulation order as the
	// sequential loop, so box statistics and utilisation means are
	// bit-identical at any worker count.
	var out []Fig9Point
	for ci, name := range cfgNames {
		point := Fig9Point{Config: name}
		utilSums := map[string]float64{}
		var utilOrder []string
		for it := 0; it < iterations; it++ {
			c := res[ci*iterations+it]
			point.TimesMS = append(point.TimesMS, c.timeMS)
			for _, u := range c.utils {
				if _, seen := utilSums[u.Label]; !seen {
					utilOrder = append(utilOrder, u.Label)
				}
				utilSums[u.Label] += u.Util
			}
		}
		point.Box = stats.BoxOf(point.TimesMS)
		point.MeanMS = stats.Mean(point.TimesMS)
		for _, label := range utilOrder {
			point.PEUtil = append(point.PEUtil, Fig9PEUtil{
				Label: label,
				Util:  utilSums[label] / float64(iterations),
			})
		}
		out = append(out, point)
	}
	return out, nil
}

// RenderFig9 formats both panels of Figure 9.
func RenderFig9(points []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9a: workload execution time (ms) per DSSoC configuration (FRFS)\n")
	fmt.Fprintf(&b, "%-8s %10s %30s\n", "Config", "mean", "box [min | q1 med q3 | max]")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %10.2f %30s\n", p.Config, p.MeanMS, p.Box.String())
	}
	fmt.Fprintf(&b, "\nFigure 9b: mean PE utilisation (%%)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s ", p.Config)
		for _, u := range p.PEUtil {
			fmt.Fprintf(&b, " %s=%.1f%%", u.Label, u.Util*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- Figure 10 ----------------------------------------------------------------

// Fig10Point is one (policy, rate) cell: total workload execution time
// and average scheduling overhead on the 3C+2F configuration.
type Fig10Point struct {
	Policy        string
	RateJobsPerMS float64
	ExecTime      vtime.Duration
	AvgOverheadUS float64
	Invocations   int
}

// Fig10Policies are the schedulers the paper compares.
var Fig10Policies = []string{"eft", "met", "frfs"}

// Fig10 sweeps the Table II injection rates for EFT, MET and FRFS on
// 3C+2F in performance mode. rows limits how many Table II rates run
// (0 = all five). Kernels are not executed (pure scheduling study).
func Fig10(rows int, opt sweep.Options) ([]Fig10Point, error) {
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		return nil, err
	}
	specs := apps.Specs()
	table := workload.TableII
	if rows > 0 && rows < len(table) {
		table = table[:rows]
	}
	var cells []sweep.Cell[Fig10Point]
	for _, policyName := range Fig10Policies {
		for _, row := range table {
			cells = append(cells, sweep.Cell[Fig10Point]{
				Label: fmt.Sprintf("fig10 %s@%.2f", policyName, row.RateJobsPerMS),
				Run: func(s *core.Scratch) (Fig10Point, error) {
					// The trace generator is seeded per Table II row, so
					// regenerating it inside the cell is deterministic
					// and keeps cells fully independent.
					trace, err := workload.TableIITrace(specs, row)
					if err != nil {
						return Fig10Point{}, err
					}
					policy, err := sched.New(policyName, 7)
					if err != nil {
						return Fig10Point{}, err
					}
					em := sweep.Emulation{
						Config:        cfg,
						Policy:        policy,
						Registry:      apps.Registry(),
						Arrivals:      trace,
						Seed:          7,
						SkipExecution: true,
						Sink:          stats.Discard{},
					}
					report, err := em.Run(s)
					if err != nil {
						return Fig10Point{}, fmt.Errorf("experiments: fig10 %s@%.2f: %w", policyName, row.RateJobsPerMS, err)
					}
					return Fig10Point{
						Policy:        policyName,
						RateJobsPerMS: row.RateJobsPerMS,
						ExecTime:      report.Makespan,
						AvgOverheadUS: report.Sched.AvgOverheadNS() / 1e3,
						Invocations:   report.Sched.Invocations,
					}, nil
				},
			})
		}
	}
	return sweep.Run(cells, labelled(opt, "fig10"))
}

// RenderFig10 formats both panels of Figure 10.
func RenderFig10(points []Fig10Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: performance mode on 3C+2F\n")
	fmt.Fprintf(&b, "%-8s %14s %18s %22s %12s\n",
		"Policy", "Rate (j/ms)", "Exec time (s)", "Avg sched ovh (us)", "Invocations")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %14.2f %18.3f %22.2f %12d\n",
			p.Policy, p.RateJobsPerMS, p.ExecTime.Seconds(), p.AvgOverheadUS, p.Invocations)
	}
	return b.String()
}

// --- Figure 11 ----------------------------------------------------------------

// Fig11Configs are the twelve Odroid XU3 big.LITTLE configurations of
// Figure 11.
var Fig11Configs = [][2]int{
	{0, 3}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3},
	{3, 1}, {3, 2}, {3, 3}, {4, 1}, {4, 2}, {4, 3},
}

// Fig11DefaultRates spans the paper's 4-18 jobs/ms x-axis.
var Fig11DefaultRates = []float64{4, 8, 12, 15, 18}

// Fig11Point is one (configuration, rate) cell.
type Fig11Point struct {
	Config        string
	RateJobsPerMS float64
	ExecTime      vtime.Duration
}

// Fig11 sweeps injection rates across big.LITTLE configurations in
// performance mode under FRFS, reproducing the Odroid portability
// study. For a given rate the same workload trace is used across all
// configurations, as in the paper.
func Fig11(rates []float64, opt sweep.Options) ([]Fig11Point, error) {
	if len(rates) == 0 {
		rates = Fig11DefaultRates
	}
	specs := apps.Specs()
	var cells []sweep.Cell[Fig11Point]
	for _, rate := range rates {
		// Generate each rate's trace once, up front: all twelve
		// configurations of that rate share it read-only, as in the
		// paper.
		trace, err := workload.RateTrace(specs, rate, workload.TableIIFrame)
		if err != nil {
			return nil, err
		}
		realised := workload.RateJobsPerMS(trace, workload.TableIIFrame)
		for _, cf := range Fig11Configs {
			cfg, err := platform.OdroidXU3(cf[0], cf[1])
			if err != nil {
				return nil, err
			}
			cells = append(cells, sweep.Cell[Fig11Point]{
				Label: fmt.Sprintf("fig11 %s@%.0f", cfg.Name, rate),
				Run: func(s *core.Scratch) (Fig11Point, error) {
					em := sweep.Emulation{
						Config:        cfg,
						Policy:        sched.FRFS{},
						Registry:      apps.Registry(),
						Arrivals:      trace,
						Seed:          11,
						SkipExecution: true,
						Sink:          stats.Discard{},
					}
					report, err := em.Run(s)
					if err != nil {
						return Fig11Point{}, fmt.Errorf("experiments: fig11 %s@%.0f: %w", cfg.Name, rate, err)
					}
					return Fig11Point{
						Config:        cfg.Name,
						RateJobsPerMS: realised,
						ExecTime:      report.Makespan,
					}, nil
				},
			})
		}
	}
	return sweep.Run(cells, labelled(opt, "fig11"))
}

// RenderFig11 formats the sweep grouped by rate.
func RenderFig11(points []Fig11Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Odroid XU3 execution time (s) vs injection rate (FRFS)\n")
	var lastRate float64 = -1
	for _, p := range points {
		if p.RateJobsPerMS != lastRate {
			fmt.Fprintf(&b, "rate %.2f jobs/ms:\n", p.RateJobsPerMS)
			lastRate = p.RateJobsPerMS
		}
		fmt.Fprintf(&b, "  %-10s %10.3f s\n", p.Config, p.ExecTime.Seconds())
	}
	return b.String()
}

// Fig11Best returns the configuration with the lowest execution time
// at the highest swept rate.
func Fig11Best(points []Fig11Point) (string, vtime.Duration) {
	var bestCfg string
	var bestTime vtime.Duration
	var maxRate float64
	for _, p := range points {
		if p.RateJobsPerMS > maxRate {
			maxRate = p.RateJobsPerMS
		}
	}
	for _, p := range points {
		if p.RateJobsPerMS != maxRate {
			continue
		}
		if bestCfg == "" || p.ExecTime < bestTime {
			bestCfg, bestTime = p.Config, p.ExecTime
		}
	}
	return bestCfg, bestTime
}
