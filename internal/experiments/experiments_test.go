package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sweep"
)

// These tests assert the qualitative shapes the paper's evaluation
// establishes — who wins, by roughly what factor, where the anomalies
// fall — using reduced sweep sizes to stay fast. The full-size sweeps
// run through cmd/experiments and the root bench harness.

func TestTableIShape(t *testing.T) {
	rows, err := TableI(sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]TableIRow{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Task counts are exact.
	//repolint:allow detorder assertion-only scan; each app is checked independently of visit order
	for app, paper := range TableIPaper {
		if byApp[app].TaskCount != paper.Tasks {
			t.Errorf("%s: task count %d, paper %d", app, byApp[app].TaskCount, paper.Tasks)
		}
	}
	// Execution-time ordering: PD >> RX > RD > TX, and each within 3x
	// of the paper's absolute value.
	pd := byApp[apps.NamePulseDoppler].ExecTime
	rx := byApp[apps.NameWiFiRX].ExecTime
	rd := byApp[apps.NameRangeDetection].ExecTime
	tx := byApp[apps.NameWiFiTX].ExecTime
	if !(pd > rx && rx > rd && rd > tx) {
		t.Fatalf("ordering violated: pd=%v rx=%v rd=%v tx=%v", pd, rx, rd, tx)
	}
	//repolint:allow detorder assertion-only scan; each app is checked independently of visit order
	for app, paper := range TableIPaper {
		got := byApp[app].ExecTime.Milliseconds()
		if got < paper.ExecMS/3 || got > paper.ExecMS*3 {
			t.Errorf("%s: %.2fms outside 3x of paper %.2fms", app, got, paper.ExecMS)
		}
	}
	out := RenderTableI(rows)
	if !strings.Contains(out, "pulse_doppler") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestTableIIExact(t *testing.T) {
	results, err := TableIIGen()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d rows", len(results))
	}
	for _, r := range results {
		if r.Counts[apps.NamePulseDoppler] != r.Row.PulseDoppler ||
			r.Counts[apps.NameRangeDetection] != r.Row.RangeDetect ||
			r.Counts[apps.NameWiFiTX] != r.Row.WiFiTX ||
			r.Counts[apps.NameWiFiRX] != r.Row.WiFiRX {
			t.Errorf("rate %.2f: counts %v", r.Row.RateJobsPerMS, r.Counts)
		}
	}
	if s := RenderTableII(results); !strings.Contains(s, "6.92") {
		t.Fatalf("render missing rates:\n%s", s)
	}
}

func TestFig9Shape(t *testing.T) {
	points, err := Fig9(3, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("%d configs", len(points))
	}
	byCfg := map[string]Fig9Point{}
	for _, p := range points {
		byCfg[p.Config] = p
	}
	// More PEs improve execution time overall: 3C+0F beats 1C+0F by a
	// factor of at least 2.
	if byCfg["3C+0F"].MeanMS*2 > byCfg["1C+0F"].MeanMS {
		t.Fatalf("3C+0F (%.2f) not >=2x faster than 1C+0F (%.2f)",
			byCfg["3C+0F"].MeanMS, byCfg["1C+0F"].MeanMS)
	}
	// A CPU core helps more than an FFT accelerator at these sizes:
	// 2C+1F beats 1C+2F.
	if byCfg["2C+1F"].MeanMS >= byCfg["1C+2F"].MeanMS {
		t.Fatalf("+1 core (%.2f) did not beat +2 FFT (%.2f)",
			byCfg["2C+1F"].MeanMS, byCfg["1C+2F"].MeanMS)
	}
	// The 2C+2F anomaly: no improvement (within 2%) or regression over
	// 2C+1F because the FFT manager threads share a host core.
	if byCfg["2C+2F"].MeanMS < byCfg["2C+1F"].MeanMS*0.98 {
		t.Fatalf("2C+2F (%.2f) improved over 2C+1F (%.2f); contention model inactive",
			byCfg["2C+2F"].MeanMS, byCfg["2C+1F"].MeanMS)
	}
	// Utilisation: every CPU's utilisation far exceeds every
	// accelerator's (Figure 9b).
	for _, p := range points {
		var minCPU, maxAccel float64 = 2, 0
		for _, u := range p.PEUtil {
			if strings.HasPrefix(u.Label, "A53") {
				if u.Util < minCPU {
					minCPU = u.Util
				}
			} else if u.Util > maxAccel {
				maxAccel = u.Util
			}
		}
		if maxAccel > 0 && minCPU < maxAccel*2 {
			t.Errorf("%s: CPU util %.2f not >> accel util %.2f", p.Config, minCPU, maxAccel)
		}
	}
	// Boxes have spread (jitter) and are ordered.
	for _, p := range points {
		if p.Box.Max <= p.Box.Min {
			t.Errorf("%s: degenerate box %v", p.Config, p.Box)
		}
	}
	if s := RenderFig9(points); !strings.Contains(s, "2C+2F") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

func TestFig10Shape(t *testing.T) {
	// Two lowest rates keep the EFT rows fast.
	points, err := Fig10(2, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(policy string, idx int) Fig10Point {
		var found []Fig10Point
		for _, p := range points {
			if p.Policy == policy {
				found = append(found, p)
			}
		}
		return found[idx]
	}
	// Ordering at every rate: FRFS fastest, then MET, then EFT; the
	// overhead ordering is the reverse.
	for i := 0; i < 2; i++ {
		f, m, e := get("frfs", i), get("met", i), get("eft", i)
		if !(f.ExecTime < m.ExecTime && m.ExecTime < e.ExecTime) {
			t.Fatalf("rate %d: exec ordering broken: frfs=%v met=%v eft=%v",
				i, f.ExecTime, m.ExecTime, e.ExecTime)
		}
		if !(f.AvgOverheadUS < m.AvgOverheadUS && m.AvgOverheadUS < e.AvgOverheadUS) {
			t.Fatalf("rate %d: overhead ordering broken: frfs=%.2f met=%.2f eft=%.2f",
				i, f.AvgOverheadUS, m.AvgOverheadUS, e.AvgOverheadUS)
		}
	}
	// FRFS overhead flat in the paper's few-microsecond band.
	f0 := get("frfs", 0)
	if f0.AvgOverheadUS < 1 || f0.AvgOverheadUS > 10 {
		t.Fatalf("FRFS overhead %.2fus outside the ~2.5us band", f0.AvgOverheadUS)
	}
	// EFT overhead grows with rate much faster than FRFS's.
	e0, e1 := get("eft", 0), get("eft", 1)
	if e1.AvgOverheadUS <= e0.AvgOverheadUS {
		t.Fatalf("EFT overhead did not grow with rate: %.1f -> %.1f", e0.AvgOverheadUS, e1.AvgOverheadUS)
	}
	// FRFS execution time stays close to the 100ms frame at low rate.
	if f0.ExecTime.Seconds() > 0.2 {
		t.Fatalf("FRFS exec %.3fs far above the frame", f0.ExecTime.Seconds())
	}
	if s := RenderFig10(points); !strings.Contains(s, "frfs") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

func TestFig11Shape(t *testing.T) {
	points, err := Fig11([]float64{6, 18}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfg string, rate float64) Fig11Point {
		for _, p := range points {
			if p.Config == cfg && p.RateJobsPerMS > rate-1 && p.RateJobsPerMS < rate+1 {
				return p
			}
		}
		t.Fatalf("missing point %s@%.0f", cfg, rate)
		return Fig11Point{}
	}
	// Execution time grows with injection rate for every config.
	for _, cfg := range []string{"0BIG+3LTL", "3BIG+2LTL", "4BIG+1LTL"} {
		lo, hi := get(cfg, 6), get(cfg, 18)
		if hi.ExecTime <= lo.ExecTime {
			t.Errorf("%s: exec did not grow with rate: %v -> %v", cfg, lo.ExecTime, hi.ExecTime)
		}
	}
	// The weakest config is clearly the slowest.
	if get("0BIG+3LTL", 18).ExecTime <= get("4BIG+1LTL", 18).ExecTime {
		t.Fatal("0BIG+3LTL should be the slowest configuration")
	}
	// The paper's inversion: 4BIG+3LTL and 4BIG+2LTL run *slower* than
	// 4BIG+1LTL at high rate because FRFS scheduling overhead grows
	// with the PE count on the slow LITTLE overlay.
	b41 := get("4BIG+1LTL", 18).ExecTime
	if get("4BIG+3LTL", 18).ExecTime <= b41 {
		t.Fatalf("4BIG+3LTL (%v) not slower than 4BIG+1LTL (%v)", get("4BIG+3LTL", 18).ExecTime, b41)
	}
	if get("4BIG+2LTL", 18).ExecTime <= b41 {
		t.Fatalf("4BIG+2LTL (%v) not slower than 4BIG+1LTL (%v)", get("4BIG+2LTL", 18).ExecTime, b41)
	}
	// 3BIG+2LTL (the paper's best) stays within ~15% of the best
	// configuration at high rate.
	best := b41
	for _, cfg := range []string{"3BIG+1LTL", "3BIG+2LTL", "4BIG+2LTL", "4BIG+3LTL"} {
		if e := get(cfg, 18).ExecTime; e < best {
			best = e
		}
	}
	if e := get("3BIG+2LTL", 18).ExecTime; float64(e) > float64(best)*1.15 {
		t.Fatalf("3BIG+2LTL (%v) more than 15%% off the best (%v)", e, best)
	}
	if cfg, _ := Fig11Best(points); cfg == "" {
		t.Fatal("Fig11Best found nothing")
	}
	if s := RenderFig11(points); !strings.Contains(s, "4BIG+3LTL") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

func TestCS4Shape(t *testing.T) {
	// Reduced n keeps the interpreted tracing fast; the speedup factors
	// scale with n (quadratic vs n log n), so at n=256 the ratio is
	// smaller but the structure is identical.
	r, err := CS4(256, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelsDetected != 6 || r.IOKernels != 3 || r.DFTKernels != 2 || r.CorrKernels != 1 {
		t.Fatalf("detection: %+v", r)
	}
	if !r.BaselineCorrect || !r.OptimisedCorrect {
		t.Fatalf("functional verification failed: %+v", r)
	}
	// At n=256 the library's fixed setup overhead caps the gain near
	// 10x; the ~100x factors appear at the paper's n=1024 (below).
	if r.SpeedupOpt < 5 {
		t.Fatalf("optimised speedup %.1f too small even for n=256", r.SpeedupOpt)
	}
	if r.SpeedupAccel <= 1 {
		t.Fatalf("accelerator speedup %.1f", r.SpeedupAccel)
	}
	if r.OptimisedMakespan >= r.BaselineMakespan {
		t.Fatalf("optimised emulation (%v) not faster than baseline (%v)",
			r.OptimisedMakespan, r.BaselineMakespan)
	}
	if s := RenderCS4(r); !strings.Contains(s, "speedup") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

// TestCS4PaperScale pins the paper's 102x/94x factors at n=1024; run
// with -short to skip the ~4s tracing run.
func TestCS4PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 tracing run")
	}
	r, err := CS4(1024, 137)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupOpt < 70 || r.SpeedupOpt > 150 {
		t.Fatalf("library speedup %.1fx not ~102x", r.SpeedupOpt)
	}
	if r.SpeedupAccel < 60 || r.SpeedupAccel > 130 {
		t.Fatalf("accelerator speedup %.1fx not ~94x", r.SpeedupAccel)
	}
	if r.SpeedupOpt <= r.SpeedupAccel {
		t.Fatalf("library (%.1fx) should beat the accelerator (%.1fx) at n=1024, as in the paper",
			r.SpeedupOpt, r.SpeedupAccel)
	}
	if !r.BaselineCorrect || !r.OptimisedCorrect {
		t.Fatal("output not preserved")
	}
}
