package experiments

import (
	"fmt"
	"strings"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/outliner"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// Case Study 4: automatic application conversion. A monolithic,
// unlabeled C range detection program is dynamically traced, its six
// kernels detected (three heavy-I/O loops, two naive DFTs, one fused
// correlator IDFT), outlined into a framework-compatible DAG, and the
// recognised transforms redirected to an optimised FFT library and the
// FPGA FFT accelerator. The paper measures a 102x average speedup for
// the library substitution and 94x for the accelerator, with correct
// output in both cases; both pipelines here are additionally executed
// through the emulator on the paper's 3-core + 1-FFT target.

// CS4Result captures the conversion study's outcome.
type CS4Result struct {
	N   int
	Lag int

	// Detection outcome.
	KernelsDetected int
	IOKernels       int
	DFTKernels      int
	CorrKernels     int

	// Per-DFT-node costs (annotated) and the derived speedups,
	// averaged over both forward-DFT kernels as the paper reports.
	BaselineDFTCost vtime.Duration
	OptDFTCost      vtime.Duration
	AccelDFTCost    vtime.Duration
	SpeedupOpt      float64
	SpeedupAccel    float64

	// Functional verification through the emulator (3C+1F, FRFS).
	BaselineCorrect   bool
	OptimisedCorrect  bool
	BaselineMakespan  vtime.Duration
	OptimisedMakespan vtime.Duration
}

// CS4PaperSpeedups are the paper's measured averages.
var CS4PaperSpeedups = struct{ Opt, Accel float64 }{102, 94}

// CS4 runs the conversion study at transform length n with the target
// at the given lag. The paper's configuration uses n=1024.
func CS4(n, lag int) (*CS4Result, error) {
	if n <= 0 {
		n = 1024
	}
	if lag <= 0 || lag >= n/2 {
		lag = n / 8
	}
	src := outliner.MonolithicRangeDetection(n, lag)
	mod, err := minic.Compile(src, "rd_monolithic")
	if err != nil {
		return nil, fmt.Errorf("experiments: cs4 compile: %w", err)
	}
	res, err := outliner.Convert(mod, outliner.Options{MaxSteps: 2_000_000_000})
	if err != nil {
		return nil, fmt.Errorf("experiments: cs4 conversion: %w", err)
	}

	out := &CS4Result{N: n, Lag: lag}
	for _, k := range res.Kernels {
		if k.Hot {
			out.KernelsDetected++
		}
	}

	// Baseline DAG: outlined loops as-is.
	baseReg := kernels.NewRegistry()
	baseSpec, _, err := outliner.GenerateSpec(res, outliner.SpecOptions{
		AppName: "rd_auto", Registry: baseReg,
	})
	if err != nil {
		return nil, err
	}
	// Optimised DAG: hash recognition on.
	optReg := kernels.NewRegistry()
	optSpec, recs, err := outliner.GenerateSpec(res, outliner.SpecOptions{
		AppName: "rd_auto_opt", Registry: optReg, Recognize: true,
	})
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		switch r.Kind {
		case "dft":
			out.DFTKernels++
		case "corr_idft":
			out.CorrKernels++
		}
	}
	out.IOKernels = out.KernelsDetected - out.DFTKernels - out.CorrKernels

	// Speedups from the cost annotations of the two recognised forward
	// DFT nodes ("102X average speedup across both DFT kernel
	// executions").
	var baseSum, optSum, accelSum, count int64
	for _, r := range recs {
		if r.Kind != "dft" {
			continue
		}
		baseNode := baseSpec.DAG[r.Node]
		optNode := optSpec.DAG[r.Node]
		baseCPU, _ := baseNode.PlatformFor("cpu")
		optCPU, _ := optNode.PlatformFor("cpu")
		optAccel, okA := optNode.PlatformFor("fft")
		if !okA {
			return nil, fmt.Errorf("experiments: cs4: recognised node %s lacks accelerator entry", r.Node)
		}
		baseSum += baseCPU.CostNS
		optSum += optCPU.CostNS
		accelSum += optAccel.CostNS
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("experiments: cs4: no DFT kernels recognised")
	}
	out.BaselineDFTCost = vtime.Duration(baseSum / count)
	out.OptDFTCost = vtime.Duration(optSum / count)
	out.AccelDFTCost = vtime.Duration(accelSum / count)
	out.SpeedupOpt = float64(baseSum) / float64(optSum)
	out.SpeedupAccel = float64(baseSum) / float64(accelSum)

	// Execute both DAGs on the paper's CS4 target (3 cores + 1 FFT,
	// FRFS) and verify the detected peak: "the application output
	// remains correct".
	cfg, err := platform.ZCU102(3, 1)
	if err != nil {
		return nil, err
	}
	out.BaselineCorrect, out.BaselineMakespan, err = cs4RunDAG(cfg, baseReg, baseSpec, lag)
	if err != nil {
		return nil, fmt.Errorf("experiments: cs4 baseline emulation: %w", err)
	}
	out.OptimisedCorrect, out.OptimisedMakespan, err = cs4RunDAG(cfg, optReg, optSpec, lag)
	if err != nil {
		return nil, fmt.Errorf("experiments: cs4 optimised emulation: %w", err)
	}
	return out, nil
}

// cs4RunDAG executes a generated DAG through the emulator and checks
// the detected peak index against the synthesised target lag.
func cs4RunDAG(cfg *platform.Config, reg *kernels.Registry, spec *appmodel.AppSpec, lag int) (bool, vtime.Duration, error) {
	e, err := core.New(core.Options{
		Config:   cfg,
		Policy:   sched.FRFS{},
		Registry: reg,
		Seed:     1,
	})
	if err != nil {
		return false, 0, err
	}
	report, err := e.Run([]core.Arrival{{Spec: spec, At: 0}})
	if err != nil {
		return false, 0, err
	}
	insts := e.Instances()
	if len(insts) != 1 {
		return false, 0, fmt.Errorf("experiments: cs4: %d instances", len(insts))
	}
	peakV, err := insts[0].Mem.Lookup("peak_index")
	if err != nil {
		return false, 0, err
	}
	peak := int(peakV.Float64s()[0])
	return peak == lag, report.Makespan, nil
}

// RenderCS4 formats the study.
func RenderCS4(r *CS4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case Study 4: automatic application conversion (n=%d, target lag %d)\n", r.N, r.Lag)
	fmt.Fprintf(&b, "kernels detected: %d (%d I/O, %d DFT, %d correlator-IDFT); paper: 6 (3 I/O, 2 DFT, 1 IFFT)\n",
		r.KernelsDetected, r.IOKernels, r.DFTKernels, r.CorrKernels)
	fmt.Fprintf(&b, "naive DFT node cost:      %v\n", r.BaselineDFTCost)
	fmt.Fprintf(&b, "optimised FFT library:    %v  -> speedup %.1fx (paper %.0fx)\n",
		r.OptDFTCost, r.SpeedupOpt, CS4PaperSpeedups.Opt)
	fmt.Fprintf(&b, "FFT accelerator (w/ DMA): %v  -> speedup %.1fx (paper %.0fx)\n",
		r.AccelDFTCost, r.SpeedupAccel, CS4PaperSpeedups.Accel)
	fmt.Fprintf(&b, "emulated on 3C+1F: baseline correct=%v makespan=%v; optimised correct=%v makespan=%v\n",
		r.BaselineCorrect, r.BaselineMakespan, r.OptimisedCorrect, r.OptimisedMakespan)
	return b.String()
}
