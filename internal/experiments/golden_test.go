package experiments

import (
	"bytes"
	"testing"

	"repro/internal/sweep"
)

// The sweep engine's user-facing determinism guarantee: a parallel
// sweep produces byte-identical renderings and CSV exports to the
// sequential one. These goldens diff workers=1 against workers=8 on
// the experiments the paper's figures are built from.

func TestFig10ParallelGolden(t *testing.T) {
	// The Table II grid (policies x injection rates), reduced to the
	// two lowest rates to keep the EFT cells fast.
	seq, err := Fig10(2, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(2, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderFig10(seq), RenderFig10(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	var bufSeq, bufPar bytes.Buffer
	if err := Fig10CSV(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := Fig10CSV(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("parallel CSV diverged:\n--- workers=1\n%s--- workers=8\n%s",
			bufSeq.String(), bufPar.String())
	}
}

func TestFig9ParallelGolden(t *testing.T) {
	// Jittered iterations: per-cell seeding must keep the box
	// statistics bit-identical at any worker count.
	seq, err := Fig9(3, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig9(3, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderFig9(seq), RenderFig9(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	var bufSeq, bufPar bytes.Buffer
	if err := Fig9CSV(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := Fig9CSV(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("parallel Fig9 CSV diverged")
	}
}

func TestScaleParallelGolden(t *testing.T) {
	// The many-PE synthetic grid, reduced to one rate and the two
	// smallest configurations. Every cell injects the same archetypes,
	// so this also drives the shared compiled-template cache from
	// eight workers at once.
	seq, err := Scale([]float64{8}, 2, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Scale([]float64{8}, 2, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderScale(seq), RenderScale(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	var bufSeq, bufPar bytes.Buffer
	if err := ScaleCSV(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := ScaleCSV(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("parallel scale CSV diverged")
	}
}

func TestChurnParallelGolden(t *testing.T) {
	// The robustness study on its first testbed only: every cell shares
	// the platform-event schedules read-only across eight workers, and
	// the ranking join must come out bit-identical at any worker count.
	seq, err := Churn(1, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Churn(1, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderChurn(seq), RenderChurn(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	var bufSeq, bufPar bytes.Buffer
	if err := ChurnCSV(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := ChurnCSV(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("parallel churn CSV diverged")
	}
	// Sanity of the study itself: dynamic rows are ranked, carry a
	// static baseline, and the fault regimes actually requeued work.
	requeues := int64(0)
	for _, p := range seq {
		if p.Regime == "static" {
			if p.Events != 0 || p.Requeues != 0 {
				t.Fatalf("static row %s/%s saw %d events", p.Config, p.Policy, p.Events)
			}
			continue
		}
		if p.Rank == 0 || p.StaticMakespan == 0 {
			t.Fatalf("dynamic row %s/%s/%s missing rank or baseline: %+v", p.Config, p.Regime, p.Policy, p)
		}
		if p.Events == 0 {
			t.Fatalf("dynamic row %s/%s/%s applied no events", p.Config, p.Regime, p.Policy)
		}
		requeues += p.Requeues
	}
	if requeues == 0 {
		t.Fatal("no regime requeued any task — the fault schedules tested nothing")
	}
}

func TestTableIParallelGolden(t *testing.T) {
	seq, err := TableI(sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := TableI(sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderTableI(seq), RenderTableI(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=4\n%s", a, b)
	}
}
