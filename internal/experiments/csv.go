package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/apps"
)

// CSV exports: plot-ready data for each experiment, so the paper's
// figures can be redrawn with any plotting tool.

// TableICSV writes app,exec_ms,tasks,paper_ms rows.
func TableICSV(w io.Writer, rows []TableIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "exec_ms", "tasks", "paper_ms"}); err != nil {
		return err
	}
	for _, r := range rows {
		paper := TableIPaper[r.App]
		if err := cw.Write([]string{
			r.App,
			fmt.Sprintf("%.4f", r.ExecTime.Milliseconds()),
			fmt.Sprintf("%d", r.TaskCount),
			fmt.Sprintf("%.2f", paper.ExecMS),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableIICSV writes rate,app,count rows.
func TableIICSV(w io.Writer, results []TableIIResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate_jobs_per_ms", "app", "count"}); err != nil {
		return err
	}
	appsOrder := []string{
		apps.NamePulseDoppler, apps.NameRangeDetection, apps.NameWiFiTX, apps.NameWiFiRX,
	}
	for _, r := range results {
		for _, app := range appsOrder {
			if err := cw.Write([]string{
				fmt.Sprintf("%.2f", r.Rate), app, fmt.Sprintf("%d", r.Counts[app]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig9CSV writes config,min,q1,median,q3,max,mean plus per-PE
// utilisation rows (long format, one row per PE).
func Fig9CSV(w io.Writer, points []Fig9Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "metric", "pe", "value"}); err != nil {
		return err
	}
	for _, p := range points {
		// Fixed metric order: CSV output must be byte-stable run to
		// run (the parallel-sweep goldens diff it).
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"min_ms", p.Box.Min}, {"q1_ms", p.Box.Q1}, {"median_ms", p.Box.Median},
			{"q3_ms", p.Box.Q3}, {"max_ms", p.Box.Max}, {"mean_ms", p.MeanMS},
		} {
			if err := cw.Write([]string{p.Config, m.name, "", fmt.Sprintf("%.4f", m.v)}); err != nil {
				return err
			}
		}
		for _, u := range p.PEUtil {
			if err := cw.Write([]string{p.Config, "util", u.Label, fmt.Sprintf("%.4f", u.Util)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig10CSV writes policy,rate,exec_s,overhead_us,invocations rows.
func Fig10CSV(w io.Writer, points []Fig10Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "rate_jobs_per_ms", "exec_s", "avg_overhead_us", "invocations"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Policy,
			fmt.Sprintf("%.2f", p.RateJobsPerMS),
			fmt.Sprintf("%.4f", p.ExecTime.Seconds()),
			fmt.Sprintf("%.2f", p.AvgOverheadUS),
			fmt.Sprintf("%d", p.Invocations),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig11CSV writes config,rate,exec_s rows.
func Fig11CSV(w io.Writer, points []Fig11Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "rate_jobs_per_ms", "exec_s"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Config,
			fmt.Sprintf("%.2f", p.RateJobsPerMS),
			fmt.Sprintf("%.4f", p.ExecTime.Seconds()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
