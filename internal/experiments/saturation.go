package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// The saturation study drives the synthetic many-PE platforms with
// open-loop Poisson injection and sweeps the rate until response time
// diverges. It is the paper's performance mode pushed past its design
// point: instead of a fixed Table II trace, traffic arrives as a
// sustained memoryless stream, and instead of the full task log the
// statistics come from the streaming Online sink — p50/p95/p99
// response percentiles at constant memory, which is what makes the
// high-rate (hundreds of thousands of tasks) cells feasible at all.
// Workloads stream through RunStream, so neither the trace nor the
// task slab is ever materialised.

// SaturationFrame is each cell's injection horizon. Percentiles are
// trimmed by a warm-up of SaturationWarmupFraction of the frame.
const SaturationFrame = 100 * vtime.Millisecond

// SaturationWarmupFraction of the frame is discarded from the online
// percentiles so the cold start does not pollute steady state.
const SaturationWarmupFraction = 0.1

// saturationSeed drives the Poisson draws (per-app sub-seeded).
const saturationSeed = 29

// SaturationConfigs are the swept synthetic testbeds.
var SaturationConfigs = [][2]int{
	{16, 4}, {32, 8},
}

// SaturationDefaultRates spans from comfortably below the platforms'
// service capacity to far beyond it, so every config shows both the
// flat region and the divergence. Notably the knee arrives *earlier*
// on the larger platform: completion monitoring costs
// O(PEs)/completion on the serialising overlay core, so at 40 PEs the
// scheduler — not the PE pool — is what saturates first (the same
// effect as Figure 11's 4BIG+3LTL inversion, at scale).
var SaturationDefaultRates = []float64{1, 2, 4, 8, 16, 32}

// SaturationPoint is one (configuration, rate) cell of the study. The
// percentile fields are post-warmup steady-state estimates from the
// online sink; Apps/Tasks count every completion of the run.
type SaturationPoint struct {
	Config        string
	PEs           int
	RateJobsPerMS float64
	Apps          int
	Tasks         int
	Makespan      vtime.Duration
	MeanRespMS    float64
	P50RespMS     float64
	P95RespMS     float64
	P99RespMS     float64
	P95WaitUS     float64
	// Diverged marks a saturated cell: the emulation needed more than
	// half a frame beyond the injection horizon to drain its backlog,
	// i.e. work arrived faster than the platform retired it.
	Diverged bool
}

// Saturation sweeps open-loop Poisson injection rates over the
// synthetic configurations under FRFS. rates defaults to
// SaturationDefaultRates; configs limits how many SaturationConfigs
// entries run (0 = all).
func Saturation(rates []float64, configs int, opt sweep.Options) ([]SaturationPoint, error) {
	if len(rates) == 0 {
		rates = SaturationDefaultRates
	}
	cfgList := SaturationConfigs
	if configs > 0 && configs < len(cfgList) {
		cfgList = cfgList[:configs]
	}
	specs := apps.Specs()
	warmup := vtime.Time(float64(SaturationFrame) * SaturationWarmupFraction)
	var cells []sweep.Cell[SaturationPoint]
	for _, cf := range cfgList {
		cfg, err := platform.Synthetic(cf[0], cf[1])
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			cells = append(cells, sweep.Cell[SaturationPoint]{
				Label: fmt.Sprintf("saturation %s@%.0f", cfg.Name, rate),
				Run: func(s *core.Scratch) (SaturationPoint, error) {
					// The sink and source are stateful, so each cell
					// invocation builds fresh ones; determinism comes
					// from the fixed seed.
					ps, err := workload.RatePoisson(rate, SaturationFrame, saturationSeed)
					if err != nil {
						return SaturationPoint{}, err
					}
					src, err := workload.NewPoissonSource(specs, ps)
					if err != nil {
						return SaturationPoint{}, err
					}
					sink := stats.NewOnline(warmup)
					em := sweep.Emulation{
						Config:        cfg,
						Policy:        sched.FRFS{},
						Registry:      apps.Registry(),
						Seed:          saturationSeed,
						SkipExecution: true,
						Sink:          sink,
						Source:        src,
					}
					report, err := em.Run(s)
					if err != nil {
						return SaturationPoint{}, fmt.Errorf("experiments: saturation %s@%.0f: %w", cfg.Name, rate, err)
					}
					return saturationPoint(cfg, rate, report, sink), nil
				},
			})
		}
	}
	return sweep.Run(cells, labelled(opt, "saturation"))
}

// saturationPoint folds one cell's report and sink into the study row.
func saturationPoint(cfg *platform.Config, rate float64, report *stats.Report, sink *stats.Online) SaturationPoint {
	const msNS = float64(vtime.Millisecond)
	p := SaturationPoint{
		Config:        cfg.Name,
		PEs:           len(cfg.PEs),
		RateJobsPerMS: rate,
		Apps:          int(sink.AppsSeen),
		Tasks:         int(sink.TasksSeen),
		Makespan:      report.Makespan,
		MeanRespMS:    sink.Response.Mean() / msNS,
		P50RespMS:     sink.Response.Quantile(0.50) / msNS,
		P95RespMS:     sink.Response.Quantile(0.95) / msNS,
		P99RespMS:     sink.Response.Quantile(0.99) / msNS,
		P95WaitUS:     sink.Wait.Quantile(0.95) / float64(vtime.Microsecond),
		Diverged:      report.Makespan > SaturationFrame+SaturationFrame/2,
	}
	return p
}

// RenderSaturation formats the study grouped by configuration.
func RenderSaturation(points []SaturationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Saturation study: open-loop Poisson injection on synthetic platforms (FRFS, %v frame, online percentiles)\n",
		vtime.Duration(SaturationFrame))
	fmt.Fprintf(&b, "%-12s %5s %12s %8s %9s %12s %10s %10s %10s %10s %9s\n",
		"Config", "PEs", "Rate (j/ms)", "Apps", "Tasks", "Makespan(s)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)", "diverged")
	lastCfg := ""
	for _, p := range points {
		if p.Config != lastCfg {
			if lastCfg != "" {
				fmt.Fprintln(&b)
			}
			lastCfg = p.Config
		}
		mark := ""
		if p.Diverged {
			mark = "yes"
		}
		fmt.Fprintf(&b, "%-12s %5d %12.2f %8d %9d %12.4f %10.3f %10.3f %10.3f %10.3f %9s\n",
			p.Config, p.PEs, p.RateJobsPerMS, p.Apps, p.Tasks, p.Makespan.Seconds(),
			p.P50RespMS, p.P95RespMS, p.P99RespMS, p.MeanRespMS, mark)
	}
	return b.String()
}

// SaturationCSV writes the study as plot-ready rows.
func SaturationCSV(w io.Writer, points []SaturationPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"config", "pes", "rate_jobs_per_ms", "apps", "tasks", "makespan_s",
		"resp_p50_ms", "resp_p95_ms", "resp_p99_ms", "resp_mean_ms", "wait_p95_us", "diverged",
	}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Config,
			fmt.Sprintf("%d", p.PEs),
			fmt.Sprintf("%.2f", p.RateJobsPerMS),
			fmt.Sprintf("%d", p.Apps),
			fmt.Sprintf("%d", p.Tasks),
			fmt.Sprintf("%.6f", p.Makespan.Seconds()),
			fmt.Sprintf("%.6f", p.P50RespMS),
			fmt.Sprintf("%.6f", p.P95RespMS),
			fmt.Sprintf("%.6f", p.P99RespMS),
			fmt.Sprintf("%.6f", p.MeanRespMS),
			fmt.Sprintf("%.6f", p.P95WaitUS),
			fmt.Sprintf("%t", p.Diverged),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaturationKnee returns the lowest swept rate at which a
// configuration diverged, or 0 if it never did.
func SaturationKnee(points []SaturationPoint, config string) float64 {
	knee := 0.0
	for _, p := range points {
		if p.Config != config || !p.Diverged {
			continue
		}
		if knee == 0 || p.RateJobsPerMS < knee {
			knee = p.RateJobsPerMS
		}
	}
	return knee
}
