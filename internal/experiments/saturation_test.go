package experiments

import (
	"bytes"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// exactQuantile interpolates the q-th quantile of unsorted values,
// the oracle the online estimates are checked against.
func exactQuantile(values []float64, q float64) float64 {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	pos := q * float64(len(v)-1)
	lo := int(pos)
	if lo+1 >= len(v) {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[lo+1]*frac
}

func TestSaturationShape(t *testing.T) {
	points, err := Saturation([]float64{1, 8}, 1, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	low, high := points[0], points[1]
	// Below the knee: the run drains essentially with the frame.
	if low.Diverged {
		t.Fatalf("rate 1 diverged: %+v", low)
	}
	// Far past the knee: response diverges and the run is flagged.
	if !high.Diverged {
		t.Fatalf("rate 8 did not diverge: %+v", high)
	}
	if high.P50RespMS <= 4*low.P50RespMS {
		t.Fatalf("saturated p50 %.3fms not clearly above unloaded %.3fms", high.P50RespMS, low.P50RespMS)
	}
	for _, p := range points {
		if !(p.P50RespMS <= p.P95RespMS && p.P95RespMS <= p.P99RespMS) {
			t.Fatalf("percentiles not ordered: %+v", p)
		}
		if p.Apps == 0 || p.Tasks == 0 {
			t.Fatalf("empty cell: %+v", p)
		}
		if math.IsNaN(p.P50RespMS) || math.IsNaN(p.P99RespMS) {
			t.Fatalf("NaN percentile: %+v", p)
		}
	}
	if knee := SaturationKnee(points, points[0].Config); knee != 8 {
		t.Fatalf("knee = %v, want 8", knee)
	}
	if s := RenderSaturation(points); !strings.Contains(s, "yes") {
		t.Fatalf("render missing divergence mark:\n%s", s)
	}
}

// TestSaturationOverheadInversion pins the study's headline: the
// larger platform saturates at a lower injection rate, because
// completion monitoring costs O(PEs) per task on the serialising
// overlay core (Figure 11's inversion, at scale).
func TestSaturationOverheadInversion(t *testing.T) {
	points, err := Saturation([]float64{4, 8}, 0, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := platform.Synthetic(16, 4)
	big, _ := platform.Synthetic(32, 8)
	var smallAt4, bigAt4 SaturationPoint
	for _, p := range points {
		if p.RateJobsPerMS == 4 {
			switch p.Config {
			case small.Name:
				smallAt4 = p
			case big.Name:
				bigAt4 = p
			}
		}
	}
	if smallAt4.Diverged {
		t.Fatalf("16C+4F diverged at rate 4: %+v", smallAt4)
	}
	if !bigAt4.Diverged {
		t.Fatalf("32C+8F kept up at rate 4; overlay monitoring cost inactive: %+v", bigAt4)
	}
}

// TestSaturationParallelGolden pins the acceptance criterion: the
// online p50/p95/p99 estimates are byte-identical between workers=1
// and workers=8 (the P² fold is a pure function of the per-cell
// record order, which worker count cannot influence).
func TestSaturationParallelGolden(t *testing.T) {
	seq, err := Saturation([]float64{1, 2, 8}, 0, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Saturation([]float64{1, 2, 8}, 0, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderSaturation(seq), RenderSaturation(par); a != b {
		t.Fatalf("parallel rendering diverged:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	var bufSeq, bufPar bytes.Buffer
	if err := SaturationCSV(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := SaturationCSV(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("parallel CSV diverged:\n--- workers=1\n%s--- workers=8\n%s",
			bufSeq.String(), bufPar.String())
	}
}

// TestSaturationOnlineMatchesFullReport is the differential half of
// the acceptance criterion: the same Poisson workload through the
// streaming path with an Online sink must reproduce the FullReport
// path's record counts exactly and its exact quantiles within P²
// tolerance.
func TestSaturationOnlineMatchesFullReport(t *testing.T) {
	specs := apps.Specs()
	cfg, err := platform.Synthetic(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := workload.RatePoisson(4, SaturationFrame, saturationSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Full path: materialised trace, batch Run, complete record log.
	trace, err := workload.Poisson(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	eFull, err := core.New(core.Options{
		Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(),
		Seed: saturationSeed, SkipExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := eFull.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming path: same spec as a source, Online sink, no warmup so
	// the two paths see identical record sets.
	src, err := workload.NewPoissonSource(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	online := stats.NewOnline(0)
	eOn, err := core.New(core.Options{
		Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(),
		Seed: saturationSeed, SkipExecution: true, Sink: online,
	})
	if err != nil {
		t.Fatal(err)
	}
	onRep, err := eOn.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if online.TasksSeen != int64(len(full.Tasks)) || online.AppsSeen != int64(len(full.Apps)) {
		t.Fatalf("online saw %d/%d records, full log has %d/%d",
			online.TasksSeen, online.AppsSeen, len(full.Tasks), len(full.Apps))
	}
	if full.Makespan != onRep.Makespan {
		t.Fatalf("makespan diverged: %v vs %v", full.Makespan, onRep.Makespan)
	}
	var responses, waits []float64
	for _, a := range full.Apps {
		responses = append(responses, float64(a.ResponseTime()))
	}
	for _, r := range full.Tasks {
		waits = append(waits, float64(r.WaitTime()))
	}
	check := func(metric string, d *stats.Dist, exactVals []float64) {
		span := exactQuantile(exactVals, 1) - exactQuantile(exactVals, 0)
		for _, p := range stats.DefaultQuantiles {
			exact := exactQuantile(exactVals, p)
			got := d.Quantile(p)
			if diff := math.Abs(got - exact); diff > 0.15*span {
				t.Errorf("%s p%.0f: online %v vs exact %v (tolerance %v)",
					metric, p*100, got, exact, 0.15*span)
			}
		}
	}
	check("response", &online.Response, responses)
	check("wait", &online.Wait, waits)
}

// TestSaturationMillionTasksBoundedHeap is the scale half of the
// acceptance criterion: a sustained open-loop run of over a million
// tasks through the streaming pipeline completes with allocation
// count — and therefore peak heap — independent of the task count: no
// Report.Tasks growth, no per-task or per-instance leak.
func TestSaturationMillionTasksBoundedHeap(t *testing.T) {
	specs := apps.Specs()
	cfg, err := platform.Synthetic(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 2 jobs/ms is comfortably below this platform's knee, so the
	// system holds steady state for the whole horizon — the in-flight
	// instance pool stops growing after warm-up. 13 seconds of the
	// paper mix is ~26k applications, ~1.08M tasks.
	frame := 13 * vtime.Second
	ps, err := workload.RatePoisson(2, frame, saturationSeed)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewPoissonSource(specs, ps)
	if err != nil {
		t.Fatal(err)
	}
	sink := stats.NewOnline(vtime.Time(frame / 10))
	e, err := core.New(core.Options{
		Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(),
		Seed: saturationSeed, SkipExecution: true, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := e.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if sink.TasksSeen < 1_000_000 {
		t.Fatalf("run produced only %d tasks; the criterion needs >= 1e6", sink.TasksSeen)
	}
	if len(rep.Tasks) != 0 || len(rep.Apps) != 0 {
		t.Fatalf("report grew records under a sink: %d/%d", len(rep.Tasks), len(rep.Apps))
	}
	mallocs := after.Mallocs - before.Mallocs
	// The whole run may allocate only run-constant state: the report,
	// the in-flight instance pool (bounded by concurrency, not
	// horizon), and test noise — measured ~600 for this workload at
	// any horizon. An O(tasks) or O(apps) term would be >= 26k
	// mallocs; the bound sits 100x below that and well above the
	// steady-state constant.
	if mallocs > 10_000 {
		t.Fatalf("streamed run of %d tasks performed %d allocations; heap is not task-count independent",
			sink.TasksSeen, mallocs)
	}
	if !(sink.Response.Quantile(0.5) <= sink.Response.Quantile(0.95) &&
		sink.Response.Quantile(0.95) <= sink.Response.Quantile(0.99)) {
		t.Fatal("steady-state percentiles not ordered")
	}
	t.Logf("%d tasks, %d apps, %d mallocs, p50=%v p95=%v p99=%v",
		sink.TasksSeen, sink.AppsSeen, mallocs,
		vtime.Duration(sink.Response.Quantile(0.50)),
		vtime.Duration(sink.Response.Quantile(0.95)),
		vtime.Duration(sink.Response.Quantile(0.99)))
}
