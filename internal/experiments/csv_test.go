package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/vtime"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return rows
}

func TestTableICSV(t *testing.T) {
	rows := []TableIRow{
		{App: "wifi_tx", ExecTime: 60 * vtime.Microsecond, TaskCount: 7},
	}
	var buf bytes.Buffer
	if err := TableICSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	parsed := parseCSV(t, &buf)
	if len(parsed) != 2 || parsed[0][0] != "app" || parsed[1][0] != "wifi_tx" {
		t.Fatalf("rows: %v", parsed)
	}
	if parsed[1][2] != "7" {
		t.Fatalf("task count column: %v", parsed[1])
	}
}

func TestTableIICSV(t *testing.T) {
	res, err := TableIIGen()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TableIICSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	parsed := parseCSV(t, &buf)
	// header + 5 rates x 4 apps.
	if len(parsed) != 1+5*4 {
		t.Fatalf("%d rows", len(parsed))
	}
}

func TestFig9CSV(t *testing.T) {
	points := []Fig9Point{{
		Config: "2C+1F",
		Box:    stats.Box{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5},
		MeanMS: 3,
		PEUtil: []Fig9PEUtil{{Label: "A531", Util: 0.9}},
	}}
	var buf bytes.Buffer
	if err := Fig9CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2C+1F", "median_ms", "util", "A531"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestFig10And11CSV(t *testing.T) {
	var buf bytes.Buffer
	err := Fig10CSV(&buf, []Fig10Point{{
		Policy: "frfs", RateJobsPerMS: 1.71,
		ExecTime: 99 * vtime.Millisecond, AvgOverheadUS: 3.5, Invocations: 5000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 2 || rows[1][0] != "frfs" {
		t.Fatalf("fig10 rows: %v", rows)
	}
	buf.Reset()
	err = Fig11CSV(&buf, []Fig11Point{{
		Config: "3BIG+2LTL", RateJobsPerMS: 18, ExecTime: 700 * vtime.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 2 || rows[1][0] != "3BIG+2LTL" {
		t.Fatalf("fig11 rows: %v", rows)
	}
}
