package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// The churn study asks the question the static figures cannot: which
// scheduling policy degrades most gracefully when the platform itself
// is dynamic? Every (configuration, regime, policy) cell replays the
// same performance-mode workload under a deterministic platform-event
// schedule — rolling PE faults, DVFS steps, power caps — and is scored
// by makespan degradation against its own static baseline. The output
// is a per-regime robustness ranking of the policy library on the
// three churn testbeds: the uniform synthetic pool, the Odroid's
// big.LITTLE split, and the heterogeneous synthetic pool.

// ChurnFrame is the injection window of the churn workload.
const ChurnFrame = 1 * vtime.Millisecond

// ChurnHorizon bounds event instants: past the injection window, into
// the drain tail, so late faults hit a platform with work in flight.
const ChurnHorizon = vtime.Duration(3 * ChurnFrame / 2)

// churnSeed drives the generated event schedules (per-config
// sub-seeded) and the emulators' jitter model.
const churnSeed = 61

// churnInstancesPerApp sets the workload intensity: enough in-flight
// work that a fault always orphans tasks, small enough that the full
// grid (3 configs x 4 regimes x 7 policies) stays interactive.
const churnInstancesPerApp = 8

// ChurnPoint is one (configuration, regime, policy) cell. Static
// baseline cells carry Regime "static" and zero events.
type ChurnPoint struct {
	Config string
	PEs    int
	Regime string
	Policy string
	// Events and Requeues are the run's dynamic-platform counters: how
	// many schedule entries applied, and how many tasks PE faults threw
	// back onto the ready list.
	Events   int64
	Requeues int64
	Makespan vtime.Duration
	// StaticMakespan is the same (config, policy, workload) without
	// events; DegradationPct is the makespan stretch relative to it —
	// the robustness score the ranking sorts on.
	StaticMakespan vtime.Duration
	DegradationPct float64
	MeanRespMS     float64
	// Rank orders policies within one (config, regime) group by
	// degradation, 1 = most robust. Zero on static rows.
	Rank int
}

// churnConfigs builds the three churn testbeds.
func churnConfigs() ([]*platform.Config, error) {
	syn, err := platform.Synthetic(8, 2)
	if err != nil {
		return nil, err
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		return nil, err
	}
	het, err := platform.SyntheticHet(8, 6, 2)
	if err != nil {
		return nil, err
	}
	return []*platform.Config{syn, od, het}, nil
}

// churnRegime names one event schedule; the order here is the render
// and ranking order.
type churnRegime struct {
	name string
	ev   *platevent.Schedule
}

// churnRegimes builds the per-configuration event regimes. Schedules
// are deterministic in (regime, PE count) only, so every policy of a
// group faces the identical stream.
func churnRegimes(n int) []churnRegime {
	seed := churnSeed + int64(n)*977
	// DVFS-only: a deterministic round-robin of speed steps across the
	// pool, alternating a throttle and a boost.
	steps := []float64{0.6, 1.5}
	dvfs := platevent.New()
	for i := 0; i < 24; i++ {
		at := vtime.Time(int64(ChurnHorizon) * int64(i+1) / 25)
		dvfs.SetSpeedAt(at, i%n, steps[i%len(steps)])
	}
	return []churnRegime{
		{"faults", platevent.Churn(seed, platevent.ChurnConfig{
			NumPEs: n, Horizon: ChurnHorizon, Events: 48, FaultFraction: 1,
		})},
		{"dvfs", dvfs},
		{"mixed", platevent.Churn(seed+1, platevent.ChurnConfig{
			NumPEs: n, Horizon: ChurnHorizon, Events: 64,
			Speeds: []float64{0.6, 1.5}, PowerCaps: []float64{0, 0.8, 1.2},
			FaultFraction: 0.4,
		})},
	}
}

// Churn runs the robustness study over every built-in policy. configs
// limits how many of the three testbeds run (0 = all).
func Churn(configs int, opt sweep.Options) ([]ChurnPoint, error) {
	cfgList, err := churnConfigs()
	if err != nil {
		return nil, err
	}
	if configs > 0 && configs < len(cfgList) {
		cfgList = cfgList[:configs]
	}
	specs := apps.Specs()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	period := workload.PeriodForCount(ChurnFrame, churnInstancesPerApp)
	var injections []workload.AppInjection
	for _, name := range names {
		injections = append(injections, workload.AppInjection{App: name, Period: period, Prob: 1})
	}
	trace, err := workload.Performance(specs, workload.PerfSpec{Frame: ChurnFrame, Injections: injections})
	if err != nil {
		return nil, err
	}

	var cells []sweep.Cell[ChurnPoint]
	addCell := func(cfg *platform.Config, regime string, ev *platevent.Schedule, policyName string) {
		cells = append(cells, sweep.Cell[ChurnPoint]{
			Label: fmt.Sprintf("churn %s/%s/%s", cfg.Name, regime, policyName),
			Run: func(s *core.Scratch) (ChurnPoint, error) {
				policy, err := sched.New(policyName, sched.DefaultQueueDepth)
				if err != nil {
					return ChurnPoint{}, err
				}
				em := sweep.Emulation{
					Config:        cfg,
					Policy:        policy,
					Registry:      apps.Registry(),
					Arrivals:      trace,
					Seed:          churnSeed,
					SkipExecution: true,
					Events:        ev,
				}
				report, err := em.Run(s)
				if err != nil {
					return ChurnPoint{}, fmt.Errorf("experiments: churn %s/%s/%s: %w", cfg.Name, regime, policyName, err)
				}
				var respSum int64
				for _, a := range report.Apps {
					respSum += int64(a.ResponseTime())
				}
				p := ChurnPoint{
					Config:   cfg.Name,
					PEs:      len(cfg.PEs),
					Regime:   regime,
					Policy:   policyName,
					Events:   report.PlatEvents,
					Requeues: report.Requeues,
					Makespan: report.Makespan,
				}
				if len(report.Apps) > 0 {
					p.MeanRespMS = float64(respSum) / float64(len(report.Apps)) / float64(vtime.Millisecond)
				}
				return p, nil
			},
		})
	}
	for _, cfg := range cfgList {
		for _, policyName := range sched.Names() {
			addCell(cfg, "static", nil, policyName)
		}
		for _, reg := range churnRegimes(len(cfg.PEs)) {
			for _, policyName := range sched.Names() {
				addCell(cfg, reg.name, reg.ev, policyName)
			}
		}
	}
	points, err := sweep.Run(cells, labelled(opt, "churn"))
	if err != nil {
		return nil, err
	}
	rankChurn(points)
	return points, nil
}

// rankChurn joins every dynamic row with its static baseline, computes
// the degradation score, and assigns per-(config, regime) robustness
// ranks (ties broken by policy name for determinism).
func rankChurn(points []ChurnPoint) {
	static := map[string]vtime.Duration{}
	for _, p := range points {
		if p.Regime == "static" {
			static[p.Config+"/"+p.Policy] = p.Makespan
		}
	}
	groups := map[string][]int{}
	for i := range points {
		p := &points[i]
		if p.Regime == "static" {
			continue
		}
		if base, ok := static[p.Config+"/"+p.Policy]; ok && base > 0 {
			p.StaticMakespan = base
			p.DegradationPct = (float64(p.Makespan)/float64(base) - 1) * 100
		}
		key := p.Config + "/" + p.Regime
		groups[key] = append(groups[key], i)
	}
	// Iterate groups in sorted-key order: rank writes are disjoint per
	// group today, but map order leaking into a report path is exactly
	// the bug class detorder exists to keep out.
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		idx := groups[key]
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := &points[idx[a]], &points[idx[b]]
			if pa.DegradationPct != pb.DegradationPct {
				return pa.DegradationPct < pb.DegradationPct
			}
			return pa.Policy < pb.Policy
		})
		for rank, i := range idx {
			points[i].Rank = rank + 1
		}
	}
}

// RenderChurn formats the study: per (config, regime), policies in
// robustness order with their degradation against the static baseline.
func RenderChurn(points []ChurnPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn study: policy robustness under dynamic platforms (%v frame, %v event horizon)\n",
		vtime.Duration(ChurnFrame), ChurnHorizon)
	type groupKey struct{ config, regime string }
	var order []groupKey
	seen := map[groupKey]bool{}
	byGroup := map[groupKey][]ChurnPoint{}
	for _, p := range points {
		if p.Regime == "static" {
			continue
		}
		k := groupKey{p.Config, p.Regime}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
		byGroup[k] = append(byGroup[k], p)
	}
	for _, k := range order {
		group := byGroup[k]
		sort.Slice(group, func(i, j int) bool { return group[i].Rank < group[j].Rank })
		fmt.Fprintf(&b, "\n%s under %s (%d events applied):\n", k.config, k.regime, group[0].Events)
		fmt.Fprintf(&b, "  %4s %-10s %14s %14s %9s %9s %12s\n",
			"rank", "policy", "makespan (ms)", "static (ms)", "degr (%)", "requeues", "resp (ms)")
		for _, p := range group {
			fmt.Fprintf(&b, "  %4d %-10s %14.4f %14.4f %9.2f %9d %12.4f\n",
				p.Rank, p.Policy, p.Makespan.Seconds()*1e3, p.StaticMakespan.Seconds()*1e3,
				p.DegradationPct, p.Requeues, p.MeanRespMS)
		}
	}
	return b.String()
}

// ChurnCSV writes every cell (static baselines included) as plot-ready
// rows.
func ChurnCSV(w io.Writer, points []ChurnPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"config", "pes", "regime", "policy", "rank", "events", "requeues",
		"makespan_ms", "static_makespan_ms", "degradation_pct", "resp_mean_ms",
	}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Config,
			fmt.Sprintf("%d", p.PEs),
			p.Regime,
			p.Policy,
			fmt.Sprintf("%d", p.Rank),
			fmt.Sprintf("%d", p.Events),
			fmt.Sprintf("%d", p.Requeues),
			fmt.Sprintf("%.6f", p.Makespan.Seconds()*1e3),
			fmt.Sprintf("%.6f", p.StaticMakespan.Seconds()*1e3),
			fmt.Sprintf("%.4f", p.DegradationPct),
			fmt.Sprintf("%.6f", p.MeanRespMS),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
