package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// The scale study goes beyond the paper's COTS boards: synthetic
// DSSoC configurations up to 64 CPU cores + 16 FFT accelerators under
// injection rates several times Table II's densest row. It exists to
// answer the question the paper's future work raises — how do the
// shipped heuristics and the reservation-queue extension behave when
// the PE pool is an order of magnitude larger than the overlay was
// designed for? — and doubles as the emulator's scalability workout:
// a full run emulates hundreds of thousands of tasks per cell, which
// is only tractable because instantiation is compiled (one slab per
// arrival), the event loop tracks completions incrementally, and the
// scheduler runs on indexed state (sched.View: per-type idle bitmaps,
// a prefix-consuming ready deque) instead of rebuilding and scanning
// ready x PE views per invocation — the saturated cells of this very
// study are where that host-side cost used to go quadratic.

// ScaleConfigs are the synthetic testbeds of the study, from the
// ZCU102's class up to 80 PEs.
var ScaleConfigs = [][2]int{
	{8, 2}, {16, 4}, {32, 8}, {64, 16},
}

// ScaleDefaultRates spans injection rates well past Table II's densest
// row (6.92 jobs/ms).
var ScaleDefaultRates = []float64{8, 16, 32}

// ScalePolicies compares plain FRFS against its reservation-queue
// extension, the pairing the paper's future work singles out for
// larger platforms.
var ScalePolicies = []string{"frfs", "frfs-rq"}

// ScalePoint is one (configuration, policy, rate) cell of the study.
type ScalePoint struct {
	Config        string
	PEs           int
	Policy        string
	RateJobsPerMS float64
	ExecTime      vtime.Duration
	AvgOverheadUS float64
	Tasks         int
	// TasksPerMS is the workload throughput in emulated time: tasks
	// completed per millisecond of virtual makespan.
	TasksPerMS float64
}

// Scale sweeps the synthetic many-PE configurations. rates defaults to
// ScaleDefaultRates; configs limits how many ScaleConfigs entries run
// (0 = all).
func Scale(rates []float64, configs int, opt sweep.Options) ([]ScalePoint, error) {
	if len(rates) == 0 {
		rates = ScaleDefaultRates
	}
	cfgList := ScaleConfigs
	if configs > 0 && configs < len(cfgList) {
		cfgList = cfgList[:configs]
	}
	specs := apps.Specs()
	var cells []sweep.Cell[ScalePoint]
	for _, rate := range rates {
		// One trace per rate, shared read-only by every configuration
		// and policy, as in Figure 11.
		trace, err := workload.RateTrace(specs, rate, workload.TableIIFrame)
		if err != nil {
			return nil, err
		}
		realised := workload.RateJobsPerMS(trace, workload.TableIIFrame)
		for _, cf := range cfgList {
			cfg, err := platform.Synthetic(cf[0], cf[1])
			if err != nil {
				return nil, err
			}
			for _, policyName := range ScalePolicies {
				cells = append(cells, sweep.Cell[ScalePoint]{
					Label: fmt.Sprintf("scale %s/%s@%.0f", cfg.Name, policyName, rate),
					Run: func(s *core.Scratch) (ScalePoint, error) {
						policy, err := sched.New(policyName, 17)
						if err != nil {
							return ScalePoint{}, err
						}
						em := sweep.Emulation{
							Config:        cfg,
							Policy:        policy,
							Registry:      apps.Registry(),
							Arrivals:      trace,
							Seed:          17,
							SkipExecution: true,
							Sink:          stats.Discard{},
						}
						report, err := em.Run(s)
						if err != nil {
							return ScalePoint{}, fmt.Errorf("experiments: scale %s/%s@%.0f: %w", cfg.Name, policyName, rate, err)
						}
						p := ScalePoint{
							Config:        cfg.Name,
							PEs:           len(cfg.PEs),
							Policy:        policyName,
							RateJobsPerMS: realised,
							ExecTime:      report.Makespan,
							AvgOverheadUS: report.Sched.AvgOverheadNS() / 1e3,
							Tasks:         totalTasks(report),
						}
						if ms := report.Makespan.Milliseconds(); ms > 0 {
							p.TasksPerMS = float64(p.Tasks) / ms
						}
						return p, nil
					},
				})
			}
		}
	}
	return sweep.Run(cells, labelled(opt, "scale"))
}

// RenderScale formats the study grouped by rate.
func RenderScale(points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale study: synthetic many-PE configurations (timing-only)\n")
	fmt.Fprintf(&b, "%-12s %5s %-8s %12s %15s %18s %14s\n",
		"Config", "PEs", "Policy", "Rate (j/ms)", "Exec time (s)", "Avg sched ovh (us)", "Tasks/ms")
	var lastRate float64 = -1
	for _, p := range points {
		if p.RateJobsPerMS != lastRate {
			if lastRate >= 0 {
				fmt.Fprintln(&b)
			}
			lastRate = p.RateJobsPerMS
		}
		fmt.Fprintf(&b, "%-12s %5d %-8s %12.2f %15.3f %18.2f %14.1f\n",
			p.Config, p.PEs, p.Policy, p.RateJobsPerMS, p.ExecTime.Seconds(), p.AvgOverheadUS, p.TasksPerMS)
	}
	return b.String()
}

// ScaleCSV writes config,pes,policy,rate,exec_s,ovh_us,tasks,tasks_per_ms rows.
func ScaleCSV(w io.Writer, points []ScalePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"config", "pes", "policy", "rate_jobs_per_ms", "exec_s", "avg_overhead_us", "tasks", "tasks_per_ms",
	}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Config,
			fmt.Sprintf("%d", p.PEs),
			p.Policy,
			fmt.Sprintf("%.2f", p.RateJobsPerMS),
			fmt.Sprintf("%.6f", p.ExecTime.Seconds()),
			fmt.Sprintf("%.2f", p.AvgOverheadUS),
			fmt.Sprintf("%d", p.Tasks),
			fmt.Sprintf("%.2f", p.TasksPerMS),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
