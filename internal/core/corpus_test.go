// Generated-corpus differential: the conversion toolchain (MiniC →
// IR → outliner → DAG) feeds the scheduler parity harness. A seeded
// minicgen corpus is compiled to specs, a recorded execution trace of
// each batch supplies the arrival process (replayed through
// workload.ReplaySource), and every built-in policy must produce a
// report identical to the same run forced onto the legacy slice path —
// batch and stream, across homogeneous, big.LITTLE and heterogeneous
// configurations. This composes the PR 4/5 indexed-vs-slice harness
// with application shapes no hand-written fixture covers.
package core_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/minic/minicgen"
	"repro/internal/outliner"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tracer"
	"repro/internal/workload"
)

// corpusGenConfig sweeps the generator's shape space by seed, the same
// way the minicgen property tests do.
func corpusGenConfig(seed int64) minicgen.Config {
	return minicgen.Config{
		Regions:      2 + int(seed%9),
		Kernels:      1 + int(seed%4),
		MaxLoopDepth: 1 + int(seed%3),
		Helpers:      int(seed % 5),
		MaxCallDepth: 1 + int(seed%3),
		MaxArrayLen:  8 << (seed % 3),
		FanIn:        1 + int(seed%4),
	}
}

// corpusBatch is one generated application library plus its recorded
// arrival trace.
type corpusBatch struct {
	names   []string // deterministic order
	specs   map[string]*appmodel.AppSpec
	prints  map[string]uint64
	results map[string]*outliner.Result
	rec     *tracer.Record
	reg     *kernels.Registry
}

// buildCorpusBatch generates appsPer programs from consecutive seeds,
// converts each through the full pipeline, and records reps rounds of
// interpreter runs as the batch's arrival trace. PerInstrNS is
// compressed far below the spec's cost scale so replayed arrivals
// overlap heavily when emulated, loading the ready queues.
func buildCorpusBatch(t *testing.T, batch, appsPer, reps int) *corpusBatch {
	t.Helper()
	cb := &corpusBatch{
		specs:   map[string]*appmodel.AppSpec{},
		prints:  map[string]uint64{},
		results: map[string]*outliner.Result{},
		reg:     kernels.NewRegistry(),
	}
	for i := 0; i < appsPer; i++ {
		seed := int64(batch*appsPer + i)
		p := minicgen.Generate(seed, corpusGenConfig(seed))
		spec, res, err := p.Build(cb.reg)
		if err != nil {
			t.Fatalf("seed %d failed conversion: %v\nsource:\n%s", seed, err, p.Source())
		}
		cb.names = append(cb.names, spec.AppName)
		cb.specs[spec.AppName] = spec
		cb.prints[spec.AppName] = tracer.Fingerprint(res.Module)
		cb.results[spec.AppName] = res
	}
	recorder := tracer.NewRecorder(0.02)
	recorder.MaxSteps = 100_000_000
	for r := 0; r < reps; r++ {
		for _, name := range cb.names {
			if err := recorder.Run(cb.results[name].Module, name, "main"); err != nil {
				t.Fatalf("recording %s: %v", name, err)
			}
		}
	}
	cb.rec = recorder.Record()
	return cb
}

// corpusConfigs spans the class-interning shapes: homogeneous+accel,
// big.LITTLE (one type, two cost classes), and the synthetic
// heterogeneous pool.
func corpusConfigs(t *testing.T) []*platform.Config {
	t.Helper()
	syn, err := platform.Synthetic(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	het, err := platform.SyntheticHet(8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []*platform.Config{syn, od, het}
}

// compareCorpusReports mirrors the in-package compareReports over the
// exported report surface (this file lives in core_test).
func compareCorpusReports(t *testing.T, want, got *stats.Report) {
	t.Helper()
	if want.ConfigName != got.ConfigName || want.PolicyName != got.PolicyName {
		t.Fatalf("header diverged: want %s/%s, got %s/%s",
			want.ConfigName, want.PolicyName, got.ConfigName, got.PolicyName)
	}
	if want.Makespan != got.Makespan {
		t.Errorf("makespan diverged: want %v, got %v", want.Makespan, got.Makespan)
	}
	if len(want.Tasks) != len(got.Tasks) {
		t.Fatalf("task record count diverged: want %d, got %d", len(want.Tasks), len(got.Tasks))
	}
	for i := range want.Tasks {
		if want.Tasks[i] != got.Tasks[i] {
			t.Fatalf("task record %d diverged:\nwant %+v\ngot  %+v", i, want.Tasks[i], got.Tasks[i])
		}
	}
	if len(want.Apps) != len(got.Apps) {
		t.Fatalf("app record count diverged: want %d, got %d", len(want.Apps), len(got.Apps))
	}
	for i := range want.Apps {
		if want.Apps[i] != got.Apps[i] {
			t.Fatalf("app record %d diverged:\nwant %+v\ngot  %+v", i, want.Apps[i], got.Apps[i])
		}
	}
	if !reflect.DeepEqual(want.PEs, got.PEs) {
		t.Errorf("PE stats diverged:\nwant %+v\ngot  %+v", want.PEs, got.PEs)
	}
	if want.Sched != got.Sched {
		t.Errorf("scheduler stats diverged:\nwant %+v\ngot  %+v", want.Sched, got.Sched)
	}
}

// drainReplay materialises a fresh replay pass as a batch trace.
func drainReplay(cb *corpusBatch) []core.Arrival {
	src := workload.NewReplaySource(cb.rec, cb.specs, cb.prints)
	var out []core.Arrival
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestGeneratedCorpusDifferential is the PR's acceptance bar: 120
// generated DAGs (10 batches x 12 apps, >= 100), each batch replayed
// from its recorded trace under all 7 policies, indexed vs slice-only,
// batch Run and RunStream, on three interning shapes — every pairing
// byte-identical. Everything derives from fixed seeds.
func TestGeneratedCorpusDifferential(t *testing.T) {
	const (
		batches = 10
		appsPer = 12
		reps    = 3
	)
	configs := corpusConfigs(t)
	for b := 0; b < batches; b++ {
		cb := buildCorpusBatch(t, b, appsPer, reps)

		// Replay-vs-record byte identity: the serialised trace survives
		// a marshal round trip bit for bit, and a replay pass delivers
		// exactly the recorded (app, instant) sequence.
		data1, err := cb.rec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		rec2, err := tracer.UnmarshalRecord(data1)
		if err != nil {
			t.Fatal(err)
		}
		data2, err := rec2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data1, data2) {
			t.Fatalf("batch %d: record did not survive a marshal round trip byte-identically", b)
		}
		arrivals := drainReplay(cb)
		if len(arrivals) != len(cb.rec.Entries) {
			t.Fatalf("batch %d: replay delivered %d of %d arrivals", b, len(arrivals), len(cb.rec.Entries))
		}
		for i, a := range arrivals {
			e := cb.rec.Entries[i]
			if a.Spec.AppName != e.App || a.At != e.At {
				t.Fatalf("batch %d: replay arrival %d is %s@%v, trace says %s@%v",
					b, i, a.Spec.AppName, a.At, e.App, e.At)
			}
		}

		cache := core.NewProgramCache()
		for _, cfg := range configs {
			for _, policyName := range sched.Names() {
				t.Run(fmt.Sprintf("batch%02d/%s/%s", b, cfg.Name, policyName), func(t *testing.T) {
					runBatch := func(p sched.Policy) *stats.Report {
						e, err := core.New(core.Options{
							Config: cfg, Policy: p, Registry: cb.reg,
							Seed: 42, JitterSigma: 0.03,
							SkipExecution: true, Programs: cache,
						})
						if err != nil {
							t.Fatal(err)
						}
						rep, err := e.Run(arrivals)
						if err != nil {
							t.Fatal(err)
						}
						return rep
					}
					runStream := func(p sched.Policy) *stats.Report {
						e, err := core.New(core.Options{
							Config: cfg, Policy: p, Registry: cb.reg,
							Seed: 42, JitterSigma: 0.03,
							SkipExecution: true, Programs: cache,
						})
						if err != nil {
							t.Fatal(err)
						}
						rep, err := e.RunStream(workload.NewReplaySource(cb.rec, cb.specs, cb.prints))
						if err != nil {
							t.Fatal(err)
						}
						return rep
					}
					indexed, err := sched.New(policyName, int64(b))
					if err != nil {
						t.Fatal(err)
					}
					slice, err := sched.New(policyName, int64(b))
					if err != nil {
						t.Fatal(err)
					}
					compareCorpusReports(t, runBatch(sched.SliceOnly(slice)), runBatch(indexed))

					indexedS, _ := sched.New(policyName, int64(b))
					sliceS, _ := sched.New(policyName, int64(b))
					compareCorpusReports(t, runStream(sched.SliceOnly(sliceS)), runStream(indexedS))
				})
			}
		}
	}
}

// TestGeneratedCorpusExecutes drops SkipExecution for one batch: the
// generated runfuncs (outlined IR run against instance memory) must
// actually execute under the emulator, and every instance's final
// memory must equal a ground-truth interpreter run of the converted
// module — the functional half the differential's timing-only runs
// don't see.
func TestGeneratedCorpusExecutes(t *testing.T) {
	cb := buildCorpusBatch(t, 99, 6, 2)
	cfg, err := platform.Synthetic(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.New("frfs", 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(core.Options{Config: cfg, Policy: pol, Registry: cb.reg, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := drainReplay(cb)
	total := 0
	for _, a := range arrivals {
		total += a.Spec.TaskCount()
	}
	rep, err := e.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != total {
		t.Fatalf("executed %d of %d generated tasks", len(rep.Tasks), total)
	}
	// Ground truth per app: one interpreter pass over the converted
	// module.
	truth := map[string]map[string][]float64{}
	for _, name := range cb.names {
		env, _, err := tracer.Run(cb.results[name].Module, "main", nil)
		if err != nil {
			t.Fatalf("ground-truth run of %s: %v", name, err)
		}
		truth[name] = env.Globals
	}
	for _, inst := range e.Instances() {
		name := inst.Spec.AppName
		mod := cb.results[name].Module
		for _, gn := range mod.GlobalOrder {
			want := truth[name][gn]
			got := inst.Mem.MustLookup(gn).Float64s()
			if len(want) != len(got) {
				t.Fatalf("%s instance %d: global %s has %d elems, ground truth %d",
					name, inst.Index, gn, len(got), len(want))
			}
			for i := range want {
				// Bitwise: generated arithmetic legitimately produces
				// NaNs, which DeepEqual would reject against themselves.
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s instance %d: global %s[%d] diverged from interpreter ground truth\nwant %v\ngot  %v",
						name, inst.Index, gn, i, want, got)
				}
			}
		}
	}
}
