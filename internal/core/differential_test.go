package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// The emulator-level half of the indexed-scheduler byte-determinism
// contract: every built-in policy, run end to end over the COTS boards
// and the synthetic many-PE grid, must produce a stats.Report
// identical to the same run forced onto the legacy slice path with
// sched.SliceOnly. This covers everything the policy-level parity test
// cannot: the incremental maintenance of the idle/load/availability
// state across dispatches, queue pulls and completion collection, the
// ready-deque compaction, and the charged-overhead feedback into the
// virtual clock.

// differentialConfigs spans the interning shapes the index handles:
// platforms where classes coincide with types (ZCU102, Synthetic) at
// several PE-pool sizes, the Odroid whose big.LITTLE cores split the
// one "cpu" type into two cost classes — since PR 5 a first-class
// indexed configuration, not an EFT-family fallback — and the
// heterogeneous synthetic pool that scales that split past any COTS
// board.
// namedConfig keeps differential grids in declaration order, so
// subtests always run (and first failures always report) in the same
// sequence — repolint's detorder pass would flag a map here.
type namedConfig struct {
	name string
	cfg  *platform.Config
}

func differentialConfigs(t *testing.T) []namedConfig {
	t.Helper()
	var out []namedConfig
	add := func(name string, cfg *platform.Config, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, namedConfig{name, cfg})
	}
	zcu, err := platform.ZCU102(3, 2)
	add("zcu3c2f", zcu, err)
	od, err := platform.OdroidXU3(4, 3)
	add("odroid4b3l", od, err)
	for _, cf := range [][2]int{{8, 2}, {32, 8}, {64, 16}} {
		syn, err := platform.Synthetic(cf[0], cf[1])
		add(syn.Name, syn, err)
	}
	het, err := platform.SyntheticHet(16, 12, 4)
	add("het16b12l4f", het, err)
	return out
}

// differentialWorkload is dense enough to saturate the larger
// synthetic pools (long ready windows, scattered assignments, queue
// churn) while staying fast: ~1.1k tasks of all four applications in
// tight bursts. (Built by hand: the workload package sits above core.)
func differentialWorkload(t *testing.T) []Arrival {
	t.Helper()
	rd := apps.RangeDetection(apps.DefaultRangeParams())
	pd := apps.PulseDoppler(apps.DefaultDopplerParams())
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	wrx := apps.WiFiRX(apps.DefaultWiFiParams())
	var out []Arrival
	at := vtime.Time(0)
	for i := 0; i < 36; i++ {
		out = append(out,
			Arrival{Spec: rd, At: at},
			Arrival{Spec: pd, At: at + 2_000},
			Arrival{Spec: wtx, At: at + 3_500},
			Arrival{Spec: wrx, At: at + 5_000},
		)
		// Burst spacing far below the service capacity of the small
		// boards, mildly loading even the 80-PE pool.
		at += 11_000
	}
	return out
}

func runDifferential(t *testing.T, cfg *platform.Config, policy sched.Policy, trace []Arrival) *stats.Report {
	t.Helper()
	e, err := New(Options{
		Config:        cfg,
		Policy:        policy,
		Registry:      apps.Registry(),
		Seed:          42,
		JitterSigma:   0.03,
		SkipExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(trace)
	if err != nil {
		t.Fatalf("%s/%s: %v", cfg.Name, policy.Name(), err)
	}
	return rep
}

func TestIndexedMatchesSlicePath(t *testing.T) {
	trace := differentialWorkload(t)
	for _, nc := range differentialConfigs(t) {
		name, cfg := nc.name, nc.cfg
		for _, policyName := range sched.Names() {
			t.Run(name+"/"+policyName, func(t *testing.T) {
				indexed, err := sched.New(policyName, 5)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := indexed.(sched.IndexedPolicy); !ok {
					t.Fatalf("built-in policy %s lacks an indexed fast path", policyName)
				}
				slice, err := sched.New(policyName, 5)
				if err != nil {
					t.Fatal(err)
				}
				got := runDifferential(t, cfg, indexed, trace)
				want := runDifferential(t, cfg, sched.SliceOnly(slice), trace)
				compareReports(t, want, got)
			})
		}
	}
}

// TestIndexedMatchesSlicePathStream repeats the differential over the
// streaming entry point: lazy instantiation recycles task slabs
// through free lists, so any stale pointer left in the consumed region
// of the ready deque would surface here as a diverging (or corrupted)
// report. It runs every built-in policy on both a uniform many-PE pool
// and the Odroid's big.LITTLE pool, so the EFT family's cost-class
// decomposition is pinned under streaming too, not just batch Run.
func TestIndexedMatchesSlicePathStream(t *testing.T) {
	syn, err := platform.Synthetic(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	trace := differentialWorkload(t)
	for _, cfg := range []*platform.Config{syn, od} {
		for _, policyName := range sched.Names() {
			t.Run(cfg.Name+"/"+policyName, func(t *testing.T) {
				run := func(p sched.Policy) *stats.Report {
					src := &sliceSource{arr: trace}
					e, err := New(Options{
						Config: cfg, Policy: p, Registry: apps.Registry(),
						Seed: 9, SkipExecution: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					rep, err := e.RunStream(src)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				indexed, _ := sched.New(policyName, 3)
				slice, _ := sched.New(policyName, 3)
				got := run(indexed)
				want := run(sched.SliceOnly(slice))
				compareReports(t, want, got)
			})
		}
	}
}
