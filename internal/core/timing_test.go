package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// TestMakespanRespectsCriticalPath: whatever the schedule, the
// makespan can never beat the DAG's critical path on the fastest
// available PE (the infinite-resource lower bound).
func TestMakespanRespectsCriticalPath(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	cp := vtime.Duration(spec.CriticalPathNS())
	if cp <= 0 {
		t.Fatal("no critical path annotation")
	}
	for _, policy := range sched.Names() {
		e := emulator(t, zcu(t, 3, 2), policy)
		report, err := e.Run([]Arrival{{Spec: spec, At: 0}})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if report.Makespan < cp {
			t.Fatalf("%s: makespan %v beat the critical path %v", policy, report.Makespan, cp)
		}
	}
}

// TestMeasuredModeOnAccelerator: in Measured timing, accelerator tasks
// still charge the DMA transfer model on top of the scaled measured
// compute, so a small FFT remains slower on the accelerator than on a
// core — the modeled and measured modes agree on the paper's headline
// relation.
func TestMeasuredModeOnAccelerator(t *testing.T) {
	p := apps.DefaultRangeParams()
	arrivals := []Arrival{
		{Spec: apps.RangeDetection(p), At: 0},
		{Spec: apps.RangeDetection(p), At: 0},
		{Spec: apps.RangeDetection(p), At: 0},
	}
	cfg := zcu(t, 1, 2)
	e, err := New(Options{
		Config:   cfg,
		Policy:   sched.FRFS{},
		Registry: apps.Registry(),
		Timing:   Measured,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := e.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// Host wall-clock speed varies (and tools like -race inflate it),
	// so the robust invariant is the DMA floor: every accelerator task
	// must take at least the two modeled transfer directions, which
	// measured compute cannot bypass.
	var accelN int
	for _, r := range report.Tasks {
		if r.Platform != "fft" {
			continue
		}
		accelN++
		spec := apps.RangeDetection(p)
		bytes := spec.DataBytes(r.Node)
		floor := vtime.Duration(cfg.DMA.TransferNS(bytes, 1) * 2)
		if r.Duration() < floor {
			t.Fatalf("measured mode: accel task %s took %v, below the DMA floor %v",
				r.Node, r.Duration(), floor)
		}
	}
	if accelN == 0 {
		t.Skip("schedule did not use the accelerators")
	}
	// Functional output intact in measured mode too.
	for _, inst := range e.Instances() {
		if err := apps.CheckRangeDetection(inst.Mem, p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJitterSpreadScalesMakespan: the box-plot machinery depends on
// distinct makespans across seeds at sigma>0 and identical ones at
// sigma=0.
func TestJitterSpreadScalesMakespan(t *testing.T) {
	spec := apps.WiFiRX(apps.DefaultWiFiParams())
	mk := func(seed int64, sigma float64) vtime.Duration {
		e, err := New(Options{
			Config:      zcuCfg(t),
			Policy:      sched.FRFS{},
			Registry:    apps.Registry(),
			Seed:        seed,
			JitterSigma: sigma,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run([]Arrival{{Spec: spec, At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if mk(1, 0) != mk(2, 0) {
		t.Fatal("sigma=0 must be seed-independent")
	}
	if mk(1, 0.05) == mk(2, 0.05) {
		t.Fatal("sigma>0 must vary across seeds")
	}
}

func zcuCfg(t *testing.T) *platform.Config {
	t.Helper()
	cfg, err := platform.ZCU102(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
